//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments all                # every figure/table, full scale
//! experiments fig6 fig7         # a subset
//! experiments all --quick       # reduced datasets (CI-sized)
//! experiments all --markdown    # markdown instead of text tables
//! ```

use lightor_eval::experiments::{fig10, fig11, fig2, fig3, fig6, fig7, fig8, fig9, table1};
use lightor_eval::{ExpEnv, Report};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    let mut which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if which.is_empty() || which.contains(&"all") {
        which = vec![
            "fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "table1",
        ];
    }

    let env = if quick {
        ExpEnv::quick()
    } else {
        ExpEnv::full()
    };
    let mut reports: Vec<Report> = Vec::new();
    for name in which {
        let started = std::time::Instant::now();
        match name {
            "fig2" => reports.push(fig2::run(&env)),
            "fig3" => reports.push(fig3::run(&env)),
            "fig6" => {
                reports.push(fig6::run_a(&env));
                reports.push(fig6::run_b(&env));
            }
            "fig7" => {
                reports.push(fig7::run_a(&env));
                reports.push(fig7::run_b(&env));
            }
            "fig8" => reports.push(fig8::run(&env)),
            "fig9" => reports.push(fig9::run(&env)),
            "fig10" => reports.push(fig10::run(&env)),
            "fig11" => reports.push(fig11::run(&env)),
            "table1" => reports.push(table1::run(&env)),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
        eprintln!("[{name} done in {:.1?}]", started.elapsed());
    }

    for r in &reports {
        if markdown {
            println!("{}", r.to_markdown());
        } else {
            println!("{}", r.to_text());
        }
    }
}
