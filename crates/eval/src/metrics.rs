//! The paper's three Precision@K metrics (Section VII-A).

use lightor_chatsim::SimVideo;
use lightor_types::{Sec, TimeRange};

/// The ±10 s tolerance used by both video metrics ("people typically
/// cannot tolerate more than 10 s delay").
pub const GOOD_DOT_TOL: f64 = 10.0;

/// Chat Precision@K: fraction of the k returned sliding windows that are
/// actually talking about a highlight.
pub fn chat_precision_at_k(windows: &[TimeRange], video: &SimVideo) -> f64 {
    if windows.is_empty() {
        return 0.0;
    }
    let hits = windows
        .iter()
        .filter(|w| video.window_is_highlight(**w))
        .count();
    hits as f64 / windows.len() as f64
}

/// Video Precision@K (start): a start `x` is correct iff some highlight
/// `[s, e]` satisfies `x ∈ [s − 10, e]`.
pub fn video_precision_start(starts: &[Sec], video: &SimVideo) -> f64 {
    if starts.is_empty() {
        return 0.0;
    }
    let tol = Sec(GOOD_DOT_TOL);
    let hits = starts
        .iter()
        .filter(|&&x| video.video.is_good_dot(x, tol))
        .count();
    hits as f64 / starts.len() as f64
}

/// Video Precision@K (end): an end `y` is correct iff some highlight
/// `[s, e]` satisfies `y ∈ [s, e + 10]`. Predictions with no extracted
/// end count as wrong (the k slots are still consumed).
pub fn video_precision_end(ends: &[Option<Sec>], video: &SimVideo) -> f64 {
    if ends.is_empty() {
        return 0.0;
    }
    let tol = Sec(GOOD_DOT_TOL);
    let hits = ends
        .iter()
        .filter(|e| e.is_some_and(|y| video.video.highlights.iter().any(|h| h.accepts_end(y, tol))))
        .count();
    hits as f64 / ends.len() as f64
}

/// Mean of a per-video metric across a test set.
pub fn mean_over_videos(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_chatsim::dota2_dataset;

    fn sample() -> SimVideo {
        dota2_dataset(1, 1).videos.into_iter().next().unwrap()
    }

    #[test]
    fn chat_precision_counts_overlaps() {
        let v = sample();
        let hit = v.response_ranges[0];
        let miss = TimeRange::from_secs(0.0, 5.0);
        assert_eq!(chat_precision_at_k(&[hit, miss], &v), 0.5);
        assert_eq!(chat_precision_at_k(&[], &v), 0.0);
    }

    #[test]
    fn start_precision_uses_good_dot_rule() {
        let v = sample();
        let h = v.video.highlights[0];
        let good = Sec(h.start().0 - 5.0);
        let late = Sec(h.end().0 + 1.0);
        assert_eq!(video_precision_start(&[good, late], &v), 0.5);
    }

    #[test]
    fn end_precision_counts_missing_as_wrong() {
        let v = sample();
        let h = v.video.highlights[0];
        let good = Some(Sec(h.end().0 + 5.0));
        let missing: Option<Sec> = None;
        let early = Some(Sec(h.start().0 - 1.0));
        assert_eq!(video_precision_end(&[good, missing, early], &v), 1.0 / 3.0);
    }

    #[test]
    fn mean_over_videos_handles_empty() {
        assert_eq!(mean_over_videos(&[]), 0.0);
        assert_eq!(mean_over_videos(&[0.5, 1.0]), 0.75);
    }
}
