//! Evaluation harness: the paper's metrics (Section VII-A) and one
//! experiment module per figure/table of the evaluation section.
//!
//! Every experiment is a pure function of a seed (plus a `quick` flag that
//! shrinks dataset sizes for benches and CI) and returns a [`Report`] that
//! renders as an aligned text table or markdown. The `experiments` binary
//! runs any subset:
//!
//! ```text
//! cargo run --release -p lightor-eval --bin experiments -- all
//! cargo run --release -p lightor-eval --bin experiments -- fig6 fig7 --quick
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod metrics;
pub mod report;

pub use harness::{train_initializer, train_type_classifier, ExpEnv};
pub use metrics::{chat_precision_at_k, video_precision_end, video_precision_start, GOOD_DOT_TOL};
pub use report::{Report, Table};
