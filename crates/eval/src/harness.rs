//! Shared experiment plumbing: dataset adapters, standard training
//! routines, and the crowd-backed classifier trainer.

use lightor::{
    DotType, ExtractorConfig, FeatureSet, HighlightExtractor, HighlightInitializer,
    InitializerConfig, PlayPositionFeatures, TrainingVideo, TypeClassifier,
};
use lightor_chatsim::{dota2_dataset, lol_dataset, Dataset, SimVideo};
use lightor_crowdsim::Campaign;
use lightor_simkit::dist::uniform;
use lightor_simkit::SeedTree;
use lightor_types::{PlaySet, RedDot, Sec};
use rayon::prelude::*;

/// Experiment environment: master seed plus a `quick` switch that shrinks
/// dataset sizes (used by unit tests and criterion benches; the
/// `experiments` binary runs full scale).
#[derive(Clone, Copy, Debug)]
pub struct ExpEnv {
    /// Master seed; every experiment derives from it deterministically.
    pub seed: u64,
    /// Shrink datasets for fast runs.
    pub quick: bool,
}

impl ExpEnv {
    /// Full-scale environment with the workspace's canonical seed.
    pub fn full() -> Self {
        ExpEnv {
            seed: 0xC0FFEE,
            quick: false,
        }
    }

    /// Quick environment for tests/benches.
    pub fn quick() -> Self {
        ExpEnv {
            seed: 0xC0FFEE,
            quick: true,
        }
    }

    /// Cap a dataset size under `quick`.
    pub fn cap(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick.min(full)
        } else {
            full
        }
    }

    /// The Dota2 corpus (paper: 60 videos).
    pub fn dota2(&self, n: usize) -> Dataset {
        dota2_dataset(n, self.seed ^ 0xD07A)
    }

    /// The LoL corpus (paper: 173 videos).
    pub fn lol(&self, n: usize) -> Dataset {
        lol_dataset(n, self.seed ^ 0x1017)
    }
}

/// Adapt simulated videos to the Initializer's training view.
pub fn training_views<'a>(videos: &'a [&'a SimVideo]) -> Vec<TrainingVideo<'a>> {
    videos
        .iter()
        .map(|v| TrainingVideo {
            chat: &v.video.chat,
            duration: v.video.meta.duration,
            highlights: &v.video.highlights,
            label_ranges: &v.response_ranges,
        })
        .collect()
}

/// Train an Initializer on the given videos with default config.
pub fn train_initializer(videos: &[&SimVideo], feature_set: FeatureSet) -> HighlightInitializer {
    let views = training_views(videos);
    HighlightInitializer::train(&views, feature_set, InitializerConfig::default())
}

/// Score every test video's top-k red dots, fanning out across videos.
///
/// Scoring is read-only on the model, so videos parallelize trivially;
/// results are returned in `videos` order and are identical to a
/// sequential loop for any thread count.
pub fn par_red_dots(
    init: &HighlightInitializer,
    videos: &[&SimVideo],
    k: usize,
) -> Vec<Vec<RedDot>> {
    videos
        .par_iter()
        .map(|sv| init.red_dots(&sv.video.chat, sv.video.meta.duration, k))
        .collect()
}

/// Train the Type I/II classifier from crowd data, the way a deployment
/// would: place dots at *known* geometries around training-video
/// highlights, run crowd tasks, featurize the filtered plays, fit.
///
/// Returns the classifier and its hold-out accuracy (the paper reports
/// ≈80%, Section V-C).
pub fn train_type_classifier(
    videos: &[&SimVideo],
    campaign: &mut Campaign,
    dots_per_video: usize,
    seed: u64,
) -> (TypeClassifier, f64) {
    let cfg = ExtractorConfig::default();
    let mut rng = SeedTree::new(seed).child("clf-dots").rng();
    let mut examples: Vec<(PlayPositionFeatures, DotType)> = Vec::new();

    // The refinement loop visits dots before the start, in the middle of
    // the highlight, just past its end, and far past it. Training must
    // cover all four geometries or the classifier misfires on the ones it
    // never saw (mid-highlight dots look "across-heavy", which a model
    // trained only on pre-start dots reads as hunting).
    for v in videos {
        for h in v.video.highlights.iter().take(dots_per_video) {
            let (s, e) = (h.start().0, h.end().0);
            let mid_hi = (e - 1.0).min(s + 12.0).max(s + 2.1);
            let placements = [
                (uniform(&mut rng, s - 8.0, s + 2.0), DotType::TypeII),
                (uniform(&mut rng, s + 2.0, mid_hi), DotType::TypeII),
                (e + uniform(&mut rng, 2.0, 10.0), DotType::TypeI),
                (e + uniform(&mut rng, 10.0, 35.0), DotType::TypeI),
            ];
            for (pos, label) in placements {
                let dot = Sec(pos);
                let plays: PlaySet = campaign
                    .run_task(&v.video, dot, cfg.responses_per_task)
                    .plays;
                let filtered = lightor::filter_plays(&plays, dot, &cfg);
                if !filtered.is_empty() {
                    examples.push((lightor::play_position_features(&filtered, dot), label));
                }
            }
        }
    }

    // 75/25 split for the hold-out accuracy estimate.
    let n_train = (examples.len() * 3) / 4;
    let (train, hold) = examples.split_at(n_train.max(2));
    let clf = TypeClassifier::train(train);
    let correct = hold
        .iter()
        .filter(|(f, label)| clf.classify(f) == *label)
        .count();
    let acc = if hold.is_empty() {
        1.0
    } else {
        correct as f64 / hold.len() as f64
    };
    (clf, acc)
}

/// Standard extractor wired from a crowd-trained classifier.
pub fn build_extractor(clf: TypeClassifier) -> HighlightExtractor {
    HighlightExtractor::new(clf, ExtractorConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_caps_sizes() {
        assert_eq!(ExpEnv::quick().cap(60, 6), 6);
        assert_eq!(ExpEnv::full().cap(60, 6), 60);
    }

    #[test]
    fn classifier_reaches_paper_accuracy_band() {
        let env = ExpEnv::quick();
        let data = env.dota2(3);
        let refs: Vec<&SimVideo> = data.videos.iter().collect();
        let mut campaign = Campaign::new(200, env.seed);
        let (_clf, acc) = train_type_classifier(&refs, &mut campaign, 4, env.seed);
        // Paper: "around 80%". Require at least 70% on the hold-out.
        assert!(acc >= 0.70, "classifier hold-out accuracy {acc}");
    }

    #[test]
    fn initializer_trains_from_sim_videos() {
        let env = ExpEnv::quick();
        let data = env.dota2(2);
        let refs: Vec<&SimVideo> = data.videos.iter().collect();
        let init = train_initializer(&refs, FeatureSet::Full);
        assert!((5.0..=45.0).contains(&init.adjustment()));
    }
}
