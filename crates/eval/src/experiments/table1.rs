//! Table I — end-to-end comparison: LIGHTOR vs Joint-LSTM.
//!
//! LIGHTOR trains on ONE labelled LoL video (plus crowd interactions) and
//! is tested on 7 Dota2 videos at k = 5. Joint-LSTM trains on the full
//! LoL corpus with (synthetic) visual features. Paper numbers:
//!
//! | system | P@5 start | P@5 end | training time |
//! |---|---|---|---|
//! | LIGHTOR | 0.906 | 0.719 | 1.06 s |
//! | Joint-LSTM | 0.629 | 0.600 | > 3 days (4×V100) |
//!
//! Absolute times are incomparable (our substrate is a CPU simulator at
//! reduced scale); the *orders-of-magnitude ratio* is the reproduced
//! claim.

use crate::harness::{train_initializer, train_type_classifier, ExpEnv};
use crate::metrics::{mean_over_videos, video_precision_end, video_precision_start};
use crate::report::{fmt3, fmt_duration, Report, Table};
use lightor::{ExtractorConfig, FeatureSet, HighlightExtractor};
use lightor_chatsim::SimVideo;
use lightor_crowdsim::Campaign;
use lightor_neural::joint_lstm::{JointLstm, JointLstmConfig, JointVideo};
use lightor_neural::{synthetic_frame_features, VisualConfig};
use lightor_types::Sec;
use std::time::{Duration, Instant};

const K: usize = 5;

/// Measured end-to-end numbers.
pub struct Table1Result {
    /// LIGHTOR (start, end) precision at k=5.
    pub lightor: (f64, f64),
    /// LIGHTOR model-training wall-clock.
    pub lightor_train: Duration,
    /// Joint-LSTM (start, end) precision at k=5.
    pub joint: (f64, f64),
    /// Joint-LSTM training wall-clock.
    pub joint_train: Duration,
}

fn joint_config(env: &ExpEnv) -> JointLstmConfig {
    if env.quick {
        JointLstmConfig {
            hidden: 8,
            layers: 1,
            seq_len: 6,
            epochs: 2,
            max_samples: 300,
            ..JointLstmConfig::default()
        }
    } else {
        JointLstmConfig::default()
    }
}

/// Run the comparison.
pub fn compute(env: &ExpEnv) -> Table1Result {
    let n_joint_train = env.cap(123, 4);
    let n_test = env.cap(7, 3);
    let lol = env.lol(n_joint_train);
    let dota = env.dota2(n_test);
    let test: Vec<&SimVideo> = dota.videos.iter().collect();

    // ---- LIGHTOR: 1 labelled LoL video + crowd-trained classifier.
    let lol_train: Vec<&SimVideo> = lol.videos[..1].iter().collect();
    let t0 = Instant::now();
    let init = train_initializer(&lol_train, FeatureSet::Full);
    let mut campaign = Campaign::new(492, env.seed ^ 0x7AB1);
    let (clf, _) = train_type_classifier(&lol_train, &mut campaign, 3, env.seed ^ 0x7AB2);
    let lightor_train = t0.elapsed();
    let extractor = HighlightExtractor::new(clf, ExtractorConfig::default());

    let mut per_video_start = Vec::new();
    let mut per_video_end = Vec::new();
    for sv in &test {
        let dots = init.red_dots(&sv.video.chat, sv.video.meta.duration, K);
        let mut starts = Vec::with_capacity(dots.len());
        let mut ends = Vec::with_capacity(dots.len());
        for dot in dots {
            let refined = extractor.refine(dot, &mut |pos: Sec| {
                campaign
                    .run_task(
                        &sv.video,
                        pos,
                        ExtractorConfig::default().responses_per_task,
                    )
                    .plays
            });
            starts.push(refined.start);
            ends.push(refined.end);
        }
        per_video_start.push(video_precision_start(&starts, sv));
        per_video_end.push(video_precision_end(&ends, sv));
    }
    let lightor = (
        mean_over_videos(&per_video_start),
        mean_over_videos(&per_video_end),
    );

    // ---- Joint-LSTM: full LoL corpus with synthetic visual features.
    let vis_cfg = VisualConfig::default();
    let lol_frames: Vec<Vec<[f32; 4]>> = lol
        .videos
        .iter()
        .map(|sv| synthetic_frame_features(&sv.video, &vis_cfg, env.seed ^ 0x71A))
        .collect();
    let joint_videos: Vec<JointVideo> = lol
        .videos
        .iter()
        .zip(&lol_frames)
        .map(|(sv, frames)| JointVideo {
            frames,
            chat: &sv.video.chat,
            duration: sv.video.meta.duration,
            highlights: &sv.video.highlights,
        })
        .collect();
    let (joint_model, joint_train) =
        JointLstm::train(&joint_videos, joint_config(env), env.seed ^ 0x71B);

    let mut per_video_start = Vec::new();
    let mut per_video_end = Vec::new();
    for sv in &test {
        let frames = synthetic_frame_features(&sv.video, &vis_cfg, env.seed ^ 0x71C);
        let jv = JointVideo {
            frames: &frames,
            chat: &sv.video.chat,
            duration: sv.video.meta.duration,
            highlights: &sv.video.highlights,
        };
        let starts = joint_model.detect(&jv, K, 120.0);
        // End estimate: scan forward from each detection while the score
        // stays above 0.5 (bounded at +90 s).
        let ends: Vec<Option<Sec>> = starts
            .iter()
            .map(|&s| {
                let mut t = s.0;
                let limit = (s.0 + 90.0).min(jv.duration.0 - 1.0);
                while t + 1.0 <= limit && joint_model.score_frame(&jv, t + 1.0) >= 0.5 {
                    t += 1.0;
                }
                (t > s.0).then_some(Sec(t))
            })
            .collect();
        per_video_start.push(video_precision_start(&starts, sv));
        per_video_end.push(video_precision_end(&ends, sv));
    }
    let joint = (
        mean_over_videos(&per_video_start),
        mean_over_videos(&per_video_end),
    );

    Table1Result {
        lightor,
        lightor_train,
        joint,
        joint_train,
    }
}

/// Render the table.
pub fn run(env: &ExpEnv) -> Report {
    let r = compute(env);
    let mut report = Report::new("Table I — end-to-end: LIGHTOR vs Joint-LSTM");
    let mut t = Table::new(
        "k = 5, trained on LoL, tested on Dota2",
        &["system", "P@5 (start)", "P@5 (end)", "training time"],
    );
    t.row(vec![
        "Lightor".into(),
        fmt3(r.lightor.0),
        fmt3(r.lightor.1),
        fmt_duration(r.lightor_train),
    ]);
    t.row(vec![
        "Joint-LSTM".into(),
        fmt3(r.joint.0),
        fmt3(r.joint.1),
        fmt_duration(r.joint_train),
    ]);
    report.table(t);
    let ratio = r.joint_train.as_secs_f64() / r.lightor_train.as_secs_f64().max(1e-9);
    report.note(format!(
        "training-time ratio Joint-LSTM / Lightor = {ratio:.0}× (paper: >100000× on GPUs)"
    ));
    report.note(
        "paper: Lightor 0.906 / 0.719, Joint-LSTM 0.629 / 0.600 — expect Lightor to win \
         both columns"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lightor_wins_both_columns() {
        let r = compute(&ExpEnv::quick());
        assert!(
            r.lightor.0 > r.joint.0,
            "start: Lightor {} vs Joint {}",
            r.lightor.0,
            r.joint.0
        );
        assert!(
            r.lightor.0 >= 0.6,
            "Lightor start precision {} below usable band",
            r.lightor.0
        );
        assert!(
            r.joint_train > r.lightor_train,
            "Joint-LSTM should train slower: {:?} vs {:?}",
            r.joint_train,
            r.lightor_train
        );
    }
}
