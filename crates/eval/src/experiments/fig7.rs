//! Figure 7 — evaluation of the adjustment stage.
//!
//! (a) Video Precision@K (start): Toretter (no delay adjustment, <20% in
//!     the paper) vs LIGHTOR (≈3× better) vs the Ideal line (= Figure 6a's
//!     full-model chat precision).
//! (b) The learned constant `c` vs training size. Paper: stable 23–27 s.

use crate::experiments::fig6::ideal_curve;
use crate::harness::{train_initializer, ExpEnv};
use crate::metrics::{mean_over_videos, video_precision_start};
use crate::report::{fmt3, Report, Table};
use lightor::FeatureSet;
use lightor_baselines::Toretter;
use lightor_chatsim::SimVideo;

fn lightor_start_curve(
    init: &lightor::HighlightInitializer,
    test: &[&SimVideo],
    k_max: usize,
) -> Vec<f64> {
    // One scoring pass per video (fanned out), then prefix-truncate: the
    // greedy top-k respects the prefix property, so `red_dots(k)` equals
    // the first k entries of `red_dots(k_max)`.
    let all_dots = crate::harness::par_red_dots(init, test, k_max);
    (1..=k_max)
        .map(|k| {
            let per_video: Vec<f64> = all_dots
                .iter()
                .zip(test)
                .map(|(dots, sv)| {
                    let starts: Vec<_> = dots.iter().take(k).map(|d| d.at).collect();
                    video_precision_start(&starts, sv)
                })
                .collect();
            mean_over_videos(&per_video)
        })
        .collect()
}

fn toretter_start_curve(test: &[&SimVideo], k_max: usize) -> Vec<f64> {
    let toretter = Toretter::default();
    (1..=k_max)
        .map(|k| {
            let per_video: Vec<f64> = test
                .iter()
                .map(|sv| {
                    let dots = toretter.detect(&sv.video.chat, sv.video.meta.duration, k);
                    video_precision_start(&dots, sv)
                })
                .collect();
            mean_over_videos(&per_video)
        })
        .collect()
}

/// Panel (a): adjustment performance against Toretter and the ideal.
pub fn run_a(env: &ExpEnv) -> Report {
    let n_train = env.cap(10, 3);
    let n_test = env.cap(50, 4);
    let data = env.dota2(n_train + n_test);
    let train: Vec<&SimVideo> = data.videos[..n_train].iter().collect();
    let test: Vec<&SimVideo> = data.videos[n_train..].iter().collect();
    let k_max = 10;

    let init = train_initializer(&train, FeatureSet::Full);
    let lightor = lightor_start_curve(&init, &test, k_max);
    let toretter = toretter_start_curve(&test, k_max);
    let ideal = ideal_curve(env, k_max);

    let mut report = Report::new("Figure 7a — adjustment performance");
    let mut t = Table::new(
        format!("Video Precision@K (start), {n_train} train / {n_test} test"),
        &["K", "Toretter", "Lightor", "Ideal"],
    );
    for k in 1..=k_max {
        t.row(vec![
            k.to_string(),
            fmt3(toretter[k - 1]),
            fmt3(lightor[k - 1]),
            fmt3(ideal[k - 1]),
        ]);
    }
    report.table(t);
    report.note(
        "paper shape: Toretter < 0.2 everywhere; Lightor ≈ 3× Toretter, tracking Ideal".to_string(),
    );
    report
}

/// Panel (b): stability of the learned constant.
pub fn run_b(env: &ExpEnv) -> Report {
    let max_train = env.cap(10, 4);
    let data = env.dota2(max_train);

    let mut report = Report::new("Figure 7b — learned adjustment constant vs training size");
    let mut t = Table::new("constant c (seconds)", &["# train videos", "c"]);
    for n in 1..=max_train {
        let train: Vec<&SimVideo> = data.videos[..n].iter().collect();
        let init = train_initializer(&train, FeatureSet::Full);
        t.row(vec![n.to_string(), format!("{:.0}", init.adjustment())]);
    }
    report.table(t);
    report.note("paper band: 23–27 s across all training sizes".to_string());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lightor_beats_toretter_substantially() {
        let report = run_a(&ExpEnv::quick());
        let rows = &report.tables[0].rows;
        let p = |row: usize, col: usize| rows[row][col].parse::<f64>().unwrap();
        // Average over K of Lightor vs Toretter: expect a clear multiple.
        let avg = |col: usize| {
            rows.iter().enumerate().map(|(r, _)| p(r, col)).sum::<f64>() / rows.len() as f64
        };
        let (tor, lig) = (avg(1), avg(2));
        assert!(
            lig >= 1.8 * tor.max(0.05),
            "Lightor {lig} vs Toretter {tor}: expected ≈3× gap"
        );
        assert!(lig >= 0.5, "Lightor start precision too low: {lig}");
    }

    #[test]
    fn constant_is_stable_across_training_sizes() {
        let report = run_b(&ExpEnv::quick());
        let cs: Vec<f64> = report.tables[0]
            .rows
            .iter()
            .map(|r| r[1].parse().unwrap())
            .collect();
        let lo = cs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = cs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            hi - lo <= 10.0,
            "c varies too much across training sizes: {cs:?}"
        );
        assert!(
            (12.0..=35.0).contains(&lo) && (12.0..=35.0).contains(&hi),
            "c outside physical band: {cs:?}"
        );
    }
}
