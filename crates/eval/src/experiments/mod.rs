//! One module per paper figure/table. Each exposes a `run(env) -> Report`
//! (or several, for multi-panel figures).

pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
