//! Figure 2 — analysis of the chat data in one Twitch video.
//!
//! (a) Message-count histogram with a smoothed curve around a highlight:
//!     shows the reaction delay between the highlight start and the chat
//!     peak (paper measures ≈20 s).
//! (b) Feature-value distributions of highlight vs non-highlight windows
//!     (paper example: 109 windows, 13 of them highlights).

use crate::harness::ExpEnv;
use crate::report::{fmt3, Report, Table};
use lightor::{
    sliding_windows_from_ts, window_peak_view, InitializerConfig, TokenizedChat, WindowFeatures,
};
use lightor_simkit::{gaussian_smooth, mean, Histogram};
use lightor_types::TimeRange;

/// Run both panels on the first video of the Dota2 corpus.
pub fn run(env: &ExpEnv) -> Report {
    let data = env.dota2(1);
    let sv = &data.videos[0];
    let mut report = Report::new("Figure 2 — chat analysis of one Dota2 video");

    // Panel (a): histogram around the first highlight (straight off the
    // zero-copy view; no message materialization).
    let h = sv.video.highlights[0];
    let window = TimeRange::from_secs(h.start().0 - 60.0, h.start().0 + 120.0);
    let mut hist = Histogram::with_bin_width(window.start.0, window.end.0, 10.0);
    for m in sv.video.chat.iter_range(window) {
        hist.add(m.ts.0);
    }
    let smoothed = gaussian_smooth(hist.counts(), 1.0);
    let mut t_a = Table::new(
        format!("(a) message counts near highlight {}", h.range),
        &["bin start (s)", "count", "smoothed"],
    );
    for (i, (&c, &s)) in hist.counts().iter().zip(&smoothed).enumerate() {
        t_a.row(vec![
            format!("{:.0}", window.start.0 + i as f64 * 10.0),
            format!("{c:.0}"),
            format!("{s:.1}"),
        ]);
    }
    report.table(t_a);

    // Measured reaction delay: distance from highlight start to the
    // response-window peak.
    let resp = sv.response_ranges[0];
    let peak = window_peak_view(&sv.video.chat, resp, 5.0);
    let delay = peak.0 - h.start().0;
    report.note(format!(
        "measured peak delay = {delay:.1} s after the highlight start (paper: ≈20 s)"
    ));

    // Panel (b): feature distributions over labelled windows, via the
    // tokenize-once corpus (the same fast path the Initializer scores
    // with — featurization is proven bit-identical to the naive pass).
    let cfg = InitializerConfig::default();
    let corpus = TokenizedChat::build_from_view(&sv.video.chat);
    let windows = sliding_windows_from_ts(
        corpus.timestamps(),
        sv.video.meta.duration,
        cfg.window_len,
        cfg.stride_frac,
    );
    let mut hi = Vec::new();
    let mut lo = Vec::new();
    for fw in corpus.featurize_windows(&windows, cfg.peak_bin) {
        if sv.window_is_highlight(fw.range) {
            hi.push(fw.features);
        } else {
            lo.push(fw.features);
        }
    }
    let mut t_b = Table::new(
        format!(
            "(b) feature means over {} windows ({} highlight, {} non-highlight)",
            windows.len(),
            hi.len(),
            lo.len()
        ),
        &["feature", "highlight mean", "non-highlight mean"],
    );
    let summarize = |xs: &[WindowFeatures], pick: fn(&WindowFeatures) -> f64| {
        mean(&xs.iter().map(pick).collect::<Vec<_>>()).unwrap_or(0.0)
    };
    for (name, pick) in [
        (
            "msg num",
            (|f: &WindowFeatures| f.msg_num) as fn(&WindowFeatures) -> f64,
        ),
        ("msg len", |f| f.msg_len),
        ("msg sim", |f| f.msg_sim),
    ] {
        t_b.row(vec![
            name.to_string(),
            fmt3(summarize(&hi, pick)),
            fmt3(summarize(&lo, pick)),
        ]);
    }
    report.table(t_b);
    report.note(
        "expected contrasts: highlight windows have MORE messages, SHORTER messages, \
         HIGHER similarity"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shape_holds() {
        let report = run(&ExpEnv::quick());
        assert_eq!(report.tables.len(), 2);
        // Parse the feature table and assert the paper's contrasts.
        let t = &report.tables[1];
        let get = |row: usize, col: usize| t.rows[row][col].parse::<f64>().unwrap();
        let (hi_num, lo_num) = (get(0, 1), get(0, 2));
        let (hi_len, lo_len) = (get(1, 1), get(1, 2));
        let (hi_sim, lo_sim) = (get(2, 1), get(2, 2));
        assert!(hi_num > lo_num, "msg num contrast: {hi_num} vs {lo_num}");
        assert!(hi_len < lo_len, "msg len contrast: {hi_len} vs {lo_len}");
        assert!(hi_sim > lo_sim, "msg sim contrast: {hi_sim} vs {lo_sim}");
    }

    #[test]
    fn measured_delay_is_physical() {
        let report = run(&ExpEnv::quick());
        let note = &report.notes[0];
        let delay: f64 = note
            .split('=')
            .nth(1)
            .unwrap()
            .trim()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            (5.0..=40.0).contains(&delay),
            "delay {delay} outside plausible band"
        );
    }
}
