//! Figure 6 — evaluation of the prediction stage.
//!
//! (a) Chat Precision@K (K = 1…10) for the three feature sets: message
//!     number only, +length, +similarity. Paper: the count-only model
//!     decays for K ≥ 5; the full model holds 0.7–0.9.
//! (b) Chat Precision@10 vs number of training videos (1…10). Paper: flat
//!     around 0.82 even with a single training video.

use crate::harness::{train_initializer, ExpEnv};
use crate::metrics::{chat_precision_at_k, mean_over_videos};
use crate::report::{fmt3, Report, Table};
use lightor::FeatureSet;
use lightor_chatsim::SimVideo;

/// Mean Chat Precision@K over the test set for one trained model.
fn precision_curve(
    init: &lightor::HighlightInitializer,
    test: &[&SimVideo],
    k_max: usize,
) -> Vec<f64> {
    // One scoring pass per video, then prefix-truncate: the greedy
    // top-k selection is k-independent, so `top_k_windows(k)` equals
    // the first k entries of `top_k_windows(k_max)`.
    let all_top: Vec<Vec<_>> = test
        .iter()
        .map(|sv| {
            init.top_k_windows(&sv.video.chat, sv.video.meta.duration, k_max)
                .iter()
                .map(|w| w.range)
                .collect()
        })
        .collect();
    (1..=k_max)
        .map(|k| {
            let per_video: Vec<f64> = all_top
                .iter()
                .zip(test)
                .map(|(ranges, sv)| chat_precision_at_k(&ranges[..k.min(ranges.len())], sv))
                .collect();
            mean_over_videos(&per_video)
        })
        .collect()
}

/// Panel (a): feature ablation.
pub fn run_a(env: &ExpEnv) -> Report {
    let n_train = env.cap(10, 3);
    let n_test = env.cap(50, 4);
    let data = env.dota2(n_train + n_test);
    let train: Vec<&SimVideo> = data.videos[..n_train].iter().collect();
    let test: Vec<&SimVideo> = data.videos[n_train..].iter().collect();
    let k_max = 10;

    let mut report = Report::new("Figure 6a — prediction performance (feature ablation)");
    let mut t = Table::new(
        format!("Chat Precision@K, {n_train} train / {n_test} test Dota2 videos"),
        &["K", "msg num", "+ msg len", "+ msg sim"],
    );
    let curves: Vec<Vec<f64>> = FeatureSet::ALL
        .iter()
        .map(|&fs| precision_curve(&train_initializer(&train, fs), &test, k_max))
        .collect();
    for k in 1..=k_max {
        t.row(vec![
            k.to_string(),
            fmt3(curves[0][k - 1]),
            fmt3(curves[1][k - 1]),
            fmt3(curves[2][k - 1]),
        ]);
    }
    report.table(t);
    report.note("paper shape: all features ≥ count-only, gap widens for K ≥ 5".to_string());
    report
}

/// Panel (b): effect of training size.
pub fn run_b(env: &ExpEnv) -> Report {
    let max_train = env.cap(10, 3);
    let n_test = env.cap(50, 4);
    let data = env.dota2(max_train + n_test);
    let test: Vec<&SimVideo> = data.videos[max_train..].iter().collect();

    let mut report = Report::new("Figure 6b — effect of training size");
    let mut t = Table::new(
        format!("Chat Precision@10 vs training videos ({n_test} test videos)"),
        &["# train videos", "P@10"],
    );
    for n in 1..=max_train {
        let train: Vec<&SimVideo> = data.videos[..n].iter().collect();
        let init = train_initializer(&train, FeatureSet::Full);
        let p10 = *precision_curve(&init, &test, 10).last().expect("k=10");
        t.row(vec![n.to_string(), fmt3(p10)]);
    }
    report.table(t);
    report.note("paper shape: stable (~0.82) down to a single training video".to_string());
    report
}

/// The full-model curve, reused by Figure 7a as the "Ideal" line.
pub fn ideal_curve(env: &ExpEnv, k_max: usize) -> Vec<f64> {
    let n_train = env.cap(10, 3);
    let n_test = env.cap(50, 4);
    let data = env.dota2(n_train + n_test);
    let train: Vec<&SimVideo> = data.videos[..n_train].iter().collect();
    let test: Vec<&SimVideo> = data.videos[n_train..].iter().collect();
    precision_curve(&train_initializer(&train, FeatureSet::Full), &test, k_max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_model_beats_count_only_at_large_k() {
        let report = run_a(&ExpEnv::quick());
        let rows = &report.tables[0].rows;
        let p = |row: usize, col: usize| rows[row][col].parse::<f64>().unwrap();
        // At K = 10 the full model must dominate count-only.
        let k10 = rows.len() - 1;
        assert!(
            p(k10, 3) >= p(k10, 1),
            "full {} < count-only {} at K=10",
            p(k10, 3),
            p(k10, 1)
        );
        // And reach the paper's usable band.
        assert!(p(k10, 3) >= 0.6, "full model P@10 {}", p(k10, 3));
    }

    #[test]
    fn single_video_training_stays_usable() {
        let report = run_b(&ExpEnv::quick());
        let rows = &report.tables[0].rows;
        let p1: f64 = rows[0][1].parse().unwrap();
        assert!(p1 >= 0.55, "1-video P@10 = {p1}");
    }
}
