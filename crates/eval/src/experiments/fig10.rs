//! Figure 10 — LIGHTOR vs Chat-LSTM: training-data appetite.
//!
//! (a) Both trained on ONE labelled LoL video. Paper: LIGHTOR reaches
//!     high precision; Chat-LSTM does not get off the ground.
//! (b) Chat-LSTM gets 123 labelled videos, LIGHTOR keeps one. Paper:
//!     Chat-LSTM improves but stays below LIGHTOR (it cannot adjust for
//!     the chat delay).

use crate::harness::{train_initializer, ExpEnv};
use crate::metrics::{mean_over_videos, video_precision_start};
use crate::report::{fmt3, Report, Table};
use lightor::FeatureSet;
use lightor_chatsim::SimVideo;
use lightor_neural::{ChatLstm, ChatLstmConfig, LabeledChatVideo};
use lightor_types::Sec;

const K_MAX: usize = 10;

/// Scaled LSTM config: full scale for the experiments binary, tiny for
/// tests/benches.
pub fn lstm_config(env: &ExpEnv) -> ChatLstmConfig {
    if env.quick {
        ChatLstmConfig {
            emb_dim: 8,
            hidden: 12,
            layers: 1,
            epochs: 4,
            lr: 0.015,
            max_chars: 80,
            neg_per_pos: 1.0,
            max_samples: 1600,
            ..ChatLstmConfig::default()
        }
    } else {
        ChatLstmConfig::default()
    }
}

/// Precision@K curve from an ordered detection list (prefix precision).
pub fn prefix_start_curve(dots_per_video: &[(Vec<Sec>, &SimVideo)], k_max: usize) -> Vec<f64> {
    (1..=k_max)
        .map(|k| {
            let per_video: Vec<f64> = dots_per_video
                .iter()
                .map(|(dots, sv)| {
                    let prefix: Vec<Sec> = dots.iter().take(k).copied().collect();
                    video_precision_start(&prefix, sv)
                })
                .collect();
            mean_over_videos(&per_video)
        })
        .collect()
}

/// LIGHTOR's start-precision curve from a model trained on `n_train`
/// videos of `train_pool`.
fn lightor_curve(train_pool: &[&SimVideo], n_train: usize, test: &[&SimVideo]) -> Vec<f64> {
    let init = train_initializer(&train_pool[..n_train], FeatureSet::Full);
    let dots: Vec<(Vec<Sec>, &SimVideo)> = crate::harness::par_red_dots(&init, test, K_MAX)
        .into_iter()
        .zip(test)
        .map(|(dots, sv)| (dots.into_iter().map(|d| d.at).collect(), *sv))
        .collect();
    prefix_start_curve(&dots, K_MAX)
}

/// Chat-LSTM's start-precision curve from a model trained on `n_train`
/// videos.
fn lstm_curve(
    env: &ExpEnv,
    train_pool: &[&SimVideo],
    n_train: usize,
    test: &[&SimVideo],
) -> Vec<f64> {
    let views: Vec<LabeledChatVideo> = train_pool[..n_train]
        .iter()
        .map(|sv| LabeledChatVideo {
            chat: &sv.video.chat,
            duration: sv.video.meta.duration,
            highlights: &sv.video.highlights,
        })
        .collect();
    let (model, _) = ChatLstm::train(&views, lstm_config(env), env.seed ^ 0xF20);
    let dots: Vec<(Vec<Sec>, &SimVideo)> = test
        .iter()
        .map(|sv| {
            let d = model.detect(&sv.video.chat, sv.video.meta.duration, K_MAX, 120.0);
            (d, *sv)
        })
        .collect();
    prefix_start_curve(&dots, K_MAX)
}

/// Run both panels; returns (report, curves) so Figure 11 and tests can
/// reuse the numbers.
pub fn run(env: &ExpEnv) -> Report {
    let big_train = env.cap(123, 6);
    let n_test = env.cap(50, 4);
    let data = env.lol(big_train + n_test);
    let train: Vec<&SimVideo> = data.videos[..big_train].iter().collect();
    let test: Vec<&SimVideo> = data.videos[big_train..].iter().collect();

    let lightor_1 = lightor_curve(&train, 1, &test);
    let lstm_1 = lstm_curve(env, &train, 1, &test);
    let lstm_big = lstm_curve(env, &train, big_train, &test);

    let mut report = Report::new("Figure 10 — LIGHTOR vs Chat-LSTM (training size)");
    let mut t_a = Table::new(
        format!("(a) both trained on 1 LoL video, {n_test} test videos"),
        &["K", "Lightor (1 video)", "Chat-LSTM (1 video)"],
    );
    let mut t_b = Table::new(
        format!("(b) Lightor 1 video vs Chat-LSTM {big_train} videos"),
        &["K", "Lightor (1 video)", "Chat-LSTM (many videos)"],
    );
    for k in 1..=K_MAX {
        t_a.row(vec![
            k.to_string(),
            fmt3(lightor_1[k - 1]),
            fmt3(lstm_1[k - 1]),
        ]);
        t_b.row(vec![
            k.to_string(),
            fmt3(lightor_1[k - 1]),
            fmt3(lstm_big[k - 1]),
        ]);
    }
    report.table(t_a);
    report.table(t_b);
    report.note(
        "paper shape: (a) LSTM near-flat low with 1 video; (b) LSTM improves with data \
         but stays below Lightor"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lightor_dominates_one_video_lstm() {
        let report = run(&ExpEnv::quick());
        let rows = &report.tables[0].rows;
        let avg = |col: usize| {
            rows.iter()
                .map(|r| r[col].parse::<f64>().unwrap())
                .sum::<f64>()
                / rows.len() as f64
        };
        let (lig, lstm) = (avg(1), avg(2));
        assert!(
            lig > lstm + 0.15,
            "Lightor {lig} should clearly beat 1-video Chat-LSTM {lstm}"
        );
    }

    #[test]
    fn more_data_helps_lstm_but_not_enough() {
        let report = run(&ExpEnv::quick());
        let avg = |t: usize, col: usize| {
            let rows = &report.tables[t].rows;
            rows.iter()
                .map(|r| r[col].parse::<f64>().unwrap())
                .sum::<f64>()
                / rows.len() as f64
        };
        let lstm_small = avg(0, 2);
        let lstm_big = avg(1, 2);
        let lightor = avg(1, 1);
        assert!(
            lstm_big >= lstm_small - 0.05,
            "more data should not hurt the LSTM: {lstm_small} -> {lstm_big}"
        );
        assert!(
            lightor > lstm_big,
            "Lightor {lightor} must stay above big-data LSTM {lstm_big}"
        );
    }
}
