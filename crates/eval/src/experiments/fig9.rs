//! Figure 9 — applicability of LIGHTOR in Twitch.
//!
//! Crawl the 20 most recent videos of the top-10 Dota2 channels and plot
//! the CDFs of chat messages per hour and viewers per video. Paper:
//! >80% of videos clear the 500 msgs/hour bar; all clear 100 viewers.

use crate::harness::ExpEnv;
use crate::report::{fmt3, Report, Table};
use lightor_chatsim::SimPlatform;
use lightor_simkit::Ecdf;
use lightor_types::GameKind;

/// The two CDFs plus the headline fractions.
pub struct Fig9Result {
    /// Chat-rate CDF (messages/hour).
    pub chat_cdf: Ecdf,
    /// Viewer-count CDF.
    pub viewer_cdf: Ecdf,
    /// Fraction of videos with ≥ 500 messages/hour.
    pub frac_chat_ok: f64,
    /// Fraction of videos with ≥ 100 viewers.
    pub frac_viewers_ok: f64,
}

/// Crawl the catalog and compute both CDFs.
pub fn compute(env: &ExpEnv) -> Fig9Result {
    let (channels, per_channel) = if env.quick { (4, 5) } else { (10, 20) };
    let platform =
        SimPlatform::top_channels(GameKind::Dota2, channels, per_channel, env.seed ^ 0xF19);
    let rates: Vec<f64> = platform.all_videos().map(|v| v.video.chat_rate()).collect();
    let viewers: Vec<f64> = platform
        .all_videos()
        .map(|v| v.video.meta.viewers as f64)
        .collect();
    let chat_cdf = Ecdf::new(rates);
    let viewer_cdf = Ecdf::new(viewers);
    Fig9Result {
        frac_chat_ok: chat_cdf.fraction_ge(500.0),
        frac_viewers_ok: viewer_cdf.fraction_ge(100.0),
        chat_cdf,
        viewer_cdf,
    }
}

/// Render the figure.
pub fn run(env: &ExpEnv) -> Report {
    let r = compute(env);
    let mut report = Report::new("Figure 9 — applicability on top-channel videos");

    let mut t_a = Table::new(
        format!("(a) chat-rate CDF over {} videos", r.chat_cdf.len()),
        &["msgs/hour ≤", "fraction"],
    );
    for x in [100.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0] {
        t_a.row(vec![format!("{x:.0}"), fmt3(r.chat_cdf.fraction_le(x))]);
    }
    report.table(t_a);

    let mut t_b = Table::new(
        format!("(b) viewer CDF over {} videos", r.viewer_cdf.len()),
        &["viewers ≤", "fraction"],
    );
    for x in [100.0, 500.0, 1000.0, 5000.0, 25000.0, 100000.0] {
        t_b.row(vec![format!("{x:.0}"), fmt3(r.viewer_cdf.fraction_le(x))]);
    }
    report.table(t_b);

    report.note(format!(
        "videos with ≥500 msgs/hour: {} (paper: >0.80); videos with ≥100 viewers: {} (paper: 1.0)",
        fmt3(r.frac_chat_ok),
        fmt3(r.frac_viewers_ok)
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applicability_thresholds_match_paper() {
        let r = compute(&ExpEnv::quick());
        assert!(
            r.frac_chat_ok >= 0.75,
            "chat-rate applicability {}",
            r.frac_chat_ok
        );
        assert!(
            r.frac_chat_ok < 1.0,
            "the low-rate tail should exist ({})",
            r.frac_chat_ok
        );
        assert_eq!(r.frac_viewers_ok, 1.0);
    }

    #[test]
    fn cdfs_are_proper() {
        let r = compute(&ExpEnv::quick());
        assert_eq!(r.chat_cdf.fraction_le(f64::MAX), 1.0);
        assert!(r.viewer_cdf.quantile(0.5).unwrap() >= 100.0);
    }
}
