//! Figure 3 — distribution of play start-position errors by dot type.
//!
//! The paper places single red dots, runs AMT tasks, and plots the
//! density of `play.start − highlight.start` separately for Type I dots
//! (dot after the highlight end → quasi-uniform over −40…+20) and Type II
//! dots (dot before the end → roughly normal, centred a few seconds after
//! the start).

use crate::harness::ExpEnv;
use crate::report::{fmt3, Report, Table};
use lightor::ExtractorConfig;
use lightor_crowdsim::Campaign;
use lightor_simkit::dist::uniform;
use lightor_simkit::{mean, std_dev, Histogram, SeedTree};
use lightor_types::Sec;

/// Offsets of filtered play starts relative to the true highlight start.
fn collect_offsets(env: &ExpEnv, type1: bool) -> Vec<f64> {
    let data = env.dota2(env.cap(7, 3));
    let mut campaign = Campaign::new(492, env.seed ^ 0xF163);
    let mut rng = SeedTree::new(env.seed).child("fig3-dots").rng();
    let cfg = ExtractorConfig::default();
    let mut offsets = Vec::new();

    for sv in &data.videos {
        for h in sv.video.highlights.iter().take(5) {
            let dot = if type1 {
                Sec(h.end().0 + uniform(&mut rng, 8.0, 30.0))
            } else {
                Sec(h.start().0 + uniform(&mut rng, -6.0, 4.0))
            };
            let plays = campaign
                .run_task(&sv.video, dot, cfg.responses_per_task)
                .plays;
            // Scope plays to the dot neighbourhood as Section V-A does,
            // but keep all lengths: the figure shows RAW behaviour.
            for p in plays.iter() {
                if p.range.distance_to(dot).0 <= cfg.neighborhood && p.duration().0 >= 4.0 {
                    offsets.push(p.start().0 - h.start().0);
                }
            }
        }
    }
    offsets
}

/// Run both panels.
pub fn run(env: &ExpEnv) -> Report {
    let mut report = Report::new("Figure 3 — play start-offset distributions");

    for (label, type1) in [("(a) Type I", true), ("(b) Type II", false)] {
        let offsets = collect_offsets(env, type1);
        let mut hist = Histogram::new(-60.0, 60.0, 12);
        for &o in &offsets {
            hist.add(o);
        }
        let dens = hist.density();
        let mut t = Table::new(
            format!("{label}: {} plays", offsets.len()),
            &["offset bin (s)", "density"],
        );
        for (i, d) in dens.iter().enumerate() {
            t.row(vec![
                format!("{:.0}", hist.bin_center(i) - hist.bin_width() / 2.0),
                format!("{d:.4}"),
            ]);
        }
        report.table(t);
        report.note(format!(
            "{label}: mean {} s, std {} s",
            fmt3(mean(&offsets).unwrap_or(0.0)),
            fmt3(std_dev(&offsets).unwrap_or(0.0)),
        ));
    }
    report.note(
        "expected shape: Type I spread wide/quasi-uniform; Type II concentrated, \
         centred a few seconds after the highlight start (paper Figure 3)"
            .to_string(),
    );
    report
}

/// The two summary statistics the shape test needs.
pub fn summary(env: &ExpEnv) -> ((f64, f64), (f64, f64)) {
    let o1 = collect_offsets(env, true);
    let o2 = collect_offsets(env, false);
    (
        (mean(&o1).unwrap_or(0.0), std_dev(&o1).unwrap_or(0.0)),
        (mean(&o2).unwrap_or(0.0), std_dev(&o2).unwrap_or(0.0)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type1_scatters_wider_than_type2() {
        let ((_, s1), (m2, s2)) = summary(&ExpEnv::quick());
        assert!(
            s1 > 1.3 * s2,
            "Type I std {s1} should exceed Type II std {s2}"
        );
        // Type II is concentrated near the highlight start. Dots are
        // placed −6…+4 s around it, so the quick-scale mean can sit a
        // touch below zero; the band tolerates the small-sample draw
        // while still rejecting Type-I-like scatter.
        assert!((-4.0..=14.0).contains(&m2), "Type II mean {m2}");
    }
}
