//! Figure 8 — evaluation of the Highlight Extractor over crowd
//! iterations.
//!
//! Protocol (paper Section VII-C): 7 test videos × 5 red dots from the
//! Initializer; each iteration publishes tasks at the current dot
//! positions, collects 10 responses each, and refines. SocialSkip and
//! Moocer are not iterative: they run on the first iteration's sessions
//! and stay flat. LIGHTOR's start/end precision climbs across iterations.

use crate::harness::{train_initializer, train_type_classifier, ExpEnv};
use crate::metrics::{mean_over_videos, video_precision_end, video_precision_start};
use crate::report::{fmt3, Report, Table};
use lightor::{
    aggregate_type1, aggregate_type2, filter_plays, play_position_features, DotType,
    ExtractorConfig, FeatureSet, TypeClassifier,
};
use lightor_baselines::{Moocer, SocialSkip};
use lightor_chatsim::SimVideo;
use lightor_crowdsim::Campaign;
use lightor_types::{Sec, Session};

const ITERATIONS: usize = 4;
const DOTS_PER_VIDEO: usize = 5;

struct DotTrack {
    video: usize,
    current: Sec,
    end: Option<Sec>,
    /// Start of the previous Type II boundary (convergence detection).
    last_t2: Option<f64>,
    /// Once the position stops moving — or two Type II rounds agree — the
    /// dot is not republished (Algorithm 2 stops when |s - s'| < ε).
    frozen: bool,
}

/// Per-iteration precision series for the three systems.
pub struct Fig8Result {
    /// LIGHTOR start precision per iteration.
    pub lightor_start: Vec<f64>,
    /// LIGHTOR end precision per iteration.
    pub lightor_end: Vec<f64>,
    /// SocialSkip start/end precision (flat).
    pub socialskip: (f64, f64),
    /// Moocer start/end precision (flat).
    pub moocer: (f64, f64),
}

/// Run the full protocol.
pub fn compute(env: &ExpEnv) -> Fig8Result {
    let n_train = env.cap(6, 2);
    let n_test = env.cap(7, 3);
    let data = env.dota2(n_train + n_test);
    let train: Vec<&SimVideo> = data.videos[..n_train].iter().collect();
    let test: Vec<&SimVideo> = data.videos[n_train..].iter().collect();

    let init = train_initializer(&train, FeatureSet::Full);
    let mut campaign = Campaign::new(492, env.seed ^ 0xF188);
    let (classifier, _acc) = train_type_classifier(&train, &mut campaign, 3, env.seed ^ 0xC1F);
    let ex_cfg = ExtractorConfig::default();

    // Initial dots — scored once per video, reused for both the
    // refinement tracks and the baseline comparison below.
    let initial_dots: Vec<(usize, Sec)> = {
        let mut v = Vec::new();
        for (vi, sv) in test.iter().enumerate() {
            for dot in init.red_dots(&sv.video.chat, sv.video.meta.duration, DOTS_PER_VIDEO) {
                v.push((vi, dot.at));
            }
        }
        v
    };
    let mut tracks: Vec<DotTrack> = initial_dots
        .iter()
        .map(|&(vi, at)| DotTrack {
            video: vi,
            current: at,
            end: None,
            last_t2: None,
            frozen: false,
        })
        .collect();

    let mut lightor_start = Vec::with_capacity(ITERATIONS);
    let mut lightor_end = Vec::with_capacity(ITERATIONS);
    let mut first_iter_sessions: Vec<Vec<Session>> = vec![Vec::new(); test.len()];

    for iter in 0..ITERATIONS {
        // One crowd round = one task per live dot, published as a batch
        // so sessions across all videos fan out over one thread pool
        // (results identical to per-track `run_task` calls in order).
        let live: Vec<usize> = tracks
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.frozen)
            .map(|(i, _)| i)
            .collect();
        let batch: Vec<(&lightor_types::LabeledVideo, Sec)> = live
            .iter()
            .map(|&i| (&test[tracks[i].video].video, tracks[i].current))
            .collect();
        let results = campaign.run_tasks(&batch, ex_cfg.responses_per_task);
        for (&ti, result) in live.iter().zip(&results) {
            let track = &mut tracks[ti];
            if iter == 0 {
                first_iter_sessions[track.video].extend(result.sessions.iter().cloned());
            }
            step_dot(track, &result.plays, &classifier, &ex_cfg);
        }
        let (s, e) = precision_now(&tracks, &test);
        lightor_start.push(s);
        lightor_end.push(e);
    }

    // Baselines on iteration-1 interaction data, seeded from the same
    // initial dots the refinement tracks started at.
    let socialskip = baseline_precision(
        &SocialSkipAdapter,
        &initial_dots,
        &test,
        &first_iter_sessions,
    );
    let moocer = baseline_precision(&MoocerAdapter, &initial_dots, &test, &first_iter_sessions);

    Fig8Result {
        lightor_start,
        lightor_end,
        socialskip,
        moocer,
    }
}

fn step_dot(
    track: &mut DotTrack,
    plays: &lightor_types::PlaySet,
    classifier: &TypeClassifier,
    cfg: &ExtractorConfig,
) {
    let before = track.current;
    let filtered = filter_plays(plays, track.current, cfg);
    if filtered.is_empty() {
        track.current = aggregate_type1(track.current, cfg.move_back);
        return;
    }
    let feats = play_position_features(&filtered, track.current);
    match classifier.classify(&feats) {
        DotType::TypeII => {
            if let Some((s, e)) = aggregate_type2(&filtered, track.current) {
                track.current = s;
                track.end = Some(e);
                // Two agreeing Type II boundaries = converged, even if a
                // misclassified Type I round interleaved.
                if track
                    .last_t2
                    .is_some_and(|p| (p - s.0).abs() < cfg.converge_eps)
                {
                    track.frozen = true;
                }
                track.last_t2 = Some(s.0);
            } else {
                track.current = aggregate_type1(track.current, cfg.move_back);
            }
        }
        DotType::TypeI => {
            track.current = aggregate_type1(track.current, cfg.move_back);
        }
    }
    if (track.current.0 - before.0).abs() < cfg.converge_eps && track.end.is_some() {
        track.frozen = true;
    }
}

fn precision_now(tracks: &[DotTrack], test: &[&SimVideo]) -> (f64, f64) {
    let mut per_video_start = Vec::with_capacity(test.len());
    let mut per_video_end = Vec::with_capacity(test.len());
    for (vi, sv) in test.iter().enumerate() {
        let starts: Vec<Sec> = tracks
            .iter()
            .filter(|t| t.video == vi)
            .map(|t| t.current)
            .collect();
        let ends: Vec<Option<Sec>> = tracks
            .iter()
            .filter(|t| t.video == vi)
            .map(|t| t.end)
            .collect();
        per_video_start.push(video_precision_start(&starts, sv));
        per_video_end.push(video_precision_end(&ends, sv));
    }
    (
        mean_over_videos(&per_video_start),
        mean_over_videos(&per_video_end),
    )
}

trait BaselineAdapter {
    fn extract_near(&self, sessions: &[Session], duration: Sec, dot: Sec) -> Option<(Sec, Sec)>;
}

struct SocialSkipAdapter;
impl BaselineAdapter for SocialSkipAdapter {
    fn extract_near(&self, s: &[Session], d: Sec, dot: Sec) -> Option<(Sec, Sec)> {
        SocialSkip::default()
            .extract_near(s, d, dot)
            .map(|r| (r.start, r.end))
    }
}

struct MoocerAdapter;
impl BaselineAdapter for MoocerAdapter {
    fn extract_near(&self, s: &[Session], d: Sec, dot: Sec) -> Option<(Sec, Sec)> {
        Moocer::default()
            .extract_near(s, d, dot)
            .map(|r| (r.start, r.end))
    }
}

fn baseline_precision(
    adapter: &dyn BaselineAdapter,
    dots: &[(usize, Sec)],
    test: &[&SimVideo],
    sessions: &[Vec<Session>],
) -> (f64, f64) {
    let mut per_video_start = Vec::with_capacity(test.len());
    let mut per_video_end = Vec::with_capacity(test.len());
    for (vi, sv) in test.iter().enumerate() {
        let mut starts = Vec::new();
        let mut ends = Vec::new();
        for &(dvi, dot) in dots.iter().filter(|(dvi, _)| *dvi == vi) {
            debug_assert_eq!(dvi, vi);
            match adapter.extract_near(&sessions[vi], sv.video.meta.duration, dot) {
                Some((s, e)) => {
                    starts.push(s);
                    ends.push(Some(e));
                }
                None => {
                    starts.push(dot);
                    ends.push(None);
                }
            }
        }
        per_video_start.push(video_precision_start(&starts, sv));
        per_video_end.push(video_precision_end(&ends, sv));
    }
    (
        mean_over_videos(&per_video_start),
        mean_over_videos(&per_video_end),
    )
}

/// Render the figure.
pub fn run(env: &ExpEnv) -> Report {
    let r = compute(env);
    let mut report = Report::new("Figure 8 — Highlight Extractor over iterations");
    let mut t_s = Table::new(
        "(a) Video Precision@K (start) per iteration",
        &["iteration", "Lightor", "SocialSkip", "MOOCer"],
    );
    let mut t_e = Table::new(
        "(b) Video Precision@K (end) per iteration",
        &["iteration", "Lightor", "SocialSkip", "MOOCer"],
    );
    for i in 0..r.lightor_start.len() {
        t_s.row(vec![
            (i + 1).to_string(),
            fmt3(r.lightor_start[i]),
            fmt3(r.socialskip.0),
            fmt3(r.moocer.0),
        ]);
        t_e.row(vec![
            (i + 1).to_string(),
            fmt3(r.lightor_end[i]),
            fmt3(r.socialskip.1),
            fmt3(r.moocer.1),
        ]);
    }
    report.table(t_s);
    report.table(t_e);
    report.note(
        "paper shape: Lightor improves over iterations and ends far above both baselines"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_chatsim::Dataset;
    use lightor_types::GameKind;

    #[test]
    fn parallel_dataset_builder_yields_identical_metrics_to_serial() {
        // The figure's corpus now comes from the batched parallel
        // dataset builder (`Dataset::generate` fans videos out over
        // rayon). Metrics derived from it must be identical to the
        // serial reference path: same corpus → same trained model →
        // same red dots → same precision series.
        let env = ExpEnv::quick();
        let n = env.cap(6, 2) + env.cap(7, 3);
        let par = env.dota2(n);
        let ser = Dataset::generate_serial(GameKind::Dota2, n, env.seed ^ 0xD07A);
        for (a, b) in par.videos.iter().zip(&ser.videos) {
            assert_eq!(a.video.chat, b.video.chat);
        }

        let train_p: Vec<&SimVideo> = par.videos[..2].iter().collect();
        let train_s: Vec<&SimVideo> = ser.videos[..2].iter().collect();
        let init_p = train_initializer(&train_p, FeatureSet::Full);
        let init_s = train_initializer(&train_s, FeatureSet::Full);
        assert_eq!(init_p.adjustment(), init_s.adjustment());
        for (p, s) in par.videos[2..].iter().zip(&ser.videos[2..]) {
            let dots_p = init_p.red_dots(&p.video.chat, p.video.meta.duration, DOTS_PER_VIDEO);
            let dots_s = init_s.red_dots(&s.video.chat, s.video.meta.duration, DOTS_PER_VIDEO);
            assert_eq!(dots_p, dots_s, "red dots diverge between builders");
        }
        let prec_p = {
            let test: Vec<&SimVideo> = par.videos[2..].iter().collect();
            let starts: Vec<Vec<Sec>> = test
                .iter()
                .map(|sv| {
                    init_p
                        .red_dots(&sv.video.chat, sv.video.meta.duration, DOTS_PER_VIDEO)
                        .iter()
                        .map(|d| d.at)
                        .collect()
                })
                .collect();
            test.iter()
                .zip(&starts)
                .map(|(sv, s)| video_precision_start(s, sv))
                .collect::<Vec<_>>()
        };
        let prec_s = {
            let test: Vec<&SimVideo> = ser.videos[2..].iter().collect();
            let starts: Vec<Vec<Sec>> = test
                .iter()
                .map(|sv| {
                    init_s
                        .red_dots(&sv.video.chat, sv.video.meta.duration, DOTS_PER_VIDEO)
                        .iter()
                        .map(|d| d.at)
                        .collect()
                })
                .collect();
            test.iter()
                .zip(&starts)
                .map(|(sv, s)| video_precision_start(s, sv))
                .collect::<Vec<_>>()
        };
        assert_eq!(prec_p, prec_s, "precision metrics diverge");
    }

    #[test]
    fn lightor_improves_and_beats_baselines() {
        let r = compute(&ExpEnv::quick());
        let first = r.lightor_start[0];
        let last = *r.lightor_start.last().unwrap();
        assert!(
            last >= first - 0.05,
            "start precision regressed: {first} -> {last}"
        );
        assert!(
            last > r.socialskip.0 && last > r.moocer.0,
            "Lightor {last} vs SocialSkip {} / Moocer {}",
            r.socialskip.0,
            r.moocer.0
        );
        let last_end = *r.lightor_end.last().unwrap();
        assert!(
            last_end > r.socialskip.1 && last_end > r.moocer.1,
            "end precision: Lightor {last_end} vs {} / {}",
            r.socialskip.1,
            r.moocer.1
        );
        assert!(last >= 0.5, "final start precision {last}");
    }
}
