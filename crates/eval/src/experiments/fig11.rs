//! Figure 11 — cross-game generalization (train on LoL, test on LoL and
//! Dota2).
//!
//! (a) LIGHTOR transfers: its three features are game-agnostic. The paper
//!     even sees slightly *higher* precision on Dota2 for K > 5 (Dota2
//!     videos contain more highlights per hour of scoreboard time).
//! (b) Chat-LSTM does not transfer: the character patterns it memorizes
//!     are LoL-vocabulary-specific.

use crate::experiments::fig10::{lstm_config, prefix_start_curve};
use crate::harness::{train_initializer, ExpEnv};
use crate::report::{fmt3, Report, Table};
use lightor::FeatureSet;
use lightor_chatsim::SimVideo;
use lightor_neural::{ChatLstm, LabeledChatVideo};
use lightor_types::Sec;

const K_MAX: usize = 10;

/// Curves for one system: (LoL test, Dota2 test).
pub struct TransferCurves {
    /// Precision@K on same-game (LoL) test videos.
    pub lol: Vec<f64>,
    /// Precision@K on cross-game (Dota2) test videos.
    pub dota2: Vec<f64>,
}

/// Compute both panels' curves.
pub fn compute(env: &ExpEnv) -> (TransferCurves, TransferCurves) {
    let n_train_lightor = env.cap(10, 3);
    let n_train_lstm = env.cap(123, 6);
    let n_test = env.cap(50, 6);
    let lol = env.lol(n_train_lstm.max(n_train_lightor) + n_test);
    let dota = env.dota2(n_test);

    let lol_train: Vec<&SimVideo> = lol.videos[..n_train_lstm.max(n_train_lightor)]
        .iter()
        .collect();
    let lol_test: Vec<&SimVideo> = lol.videos[lol.videos.len() - n_test..].iter().collect();
    let dota_test: Vec<&SimVideo> = dota.videos.iter().collect();

    // Panel (a): LIGHTOR.
    let init = train_initializer(&lol_train[..n_train_lightor], FeatureSet::Full);
    let curve_for = |test: &[&SimVideo]| {
        let dots: Vec<(Vec<Sec>, &SimVideo)> = crate::harness::par_red_dots(&init, test, K_MAX)
            .into_iter()
            .zip(test)
            .map(|(dots, sv)| (dots.into_iter().map(|d| d.at).collect(), *sv))
            .collect();
        prefix_start_curve(&dots, K_MAX)
    };
    let lightor = TransferCurves {
        lol: curve_for(&lol_test),
        dota2: curve_for(&dota_test),
    };

    // Panel (b): Chat-LSTM trained on the big LoL pool.
    let views: Vec<LabeledChatVideo> = lol_train[..n_train_lstm]
        .iter()
        .map(|sv| LabeledChatVideo {
            chat: &sv.video.chat,
            duration: sv.video.meta.duration,
            highlights: &sv.video.highlights,
        })
        .collect();
    let (model, _) = ChatLstm::train(&views, lstm_config(env), env.seed ^ 0xF22);
    let lstm_curve_for = |test: &[&SimVideo]| {
        let dots: Vec<(Vec<Sec>, &SimVideo)> = test
            .iter()
            .map(|sv| {
                let d = model.detect(&sv.video.chat, sv.video.meta.duration, K_MAX, 120.0);
                (d, *sv)
            })
            .collect();
        prefix_start_curve(&dots, K_MAX)
    };
    let lstm = TransferCurves {
        lol: lstm_curve_for(&lol_test),
        dota2: lstm_curve_for(&dota_test),
    };

    (lightor, lstm)
}

/// Render the figure.
pub fn run(env: &ExpEnv) -> Report {
    let (lightor, lstm) = compute(env);
    let mut report = Report::new("Figure 11 — cross-game generalization (LoL → Dota2)");
    let mut t_a = Table::new(
        "(a) Lightor trained on LoL",
        &["K", "LoL test", "Dota2 test"],
    );
    let mut t_b = Table::new(
        "(b) Chat-LSTM trained on LoL",
        &["K", "LoL test", "Dota2 test"],
    );
    for k in 1..=K_MAX {
        t_a.row(vec![
            k.to_string(),
            fmt3(lightor.lol[k - 1]),
            fmt3(lightor.dota2[k - 1]),
        ]);
        t_b.row(vec![
            k.to_string(),
            fmt3(lstm.lol[k - 1]),
            fmt3(lstm.dota2[k - 1]),
        ]);
    }
    report.table(t_a);
    report.table(t_b);
    report.note(
        "paper shape: Lightor's LoL/Dota2 curves stay close; Chat-LSTM's Dota2 curve \
         drops well below its LoL curve"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avg(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn lightor_transfers_lstm_does_not() {
        let (lightor, lstm) = compute(&ExpEnv::quick());
        let lightor_gap = avg(&lightor.lol) - avg(&lightor.dota2);
        let lstm_gap = avg(&lstm.lol) - avg(&lstm.dota2);
        // LIGHTOR's cross-game drop must be small; the LSTM's must be
        // clearly larger.
        assert!(
            lightor_gap.abs() <= 0.25,
            "Lightor transfer gap too large: {lightor_gap}"
        );
        assert!(
            lstm_gap > lightor_gap + 0.05,
            "LSTM gap {lstm_gap} should exceed Lightor gap {lightor_gap}"
        );
        // And LIGHTOR on the foreign game still beats the LSTM there.
        assert!(avg(&lightor.dota2) > avg(&lstm.dota2));
    }
}
