//! Experiment output rendering: aligned text tables and markdown.

use std::fmt::Write as _;

/// One table of results (headers + rows of formatted cells).
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cell values, already formatted.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a caption and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns for terminals.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Render as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// A full experiment report: tables plus free-form notes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// Experiment name (e.g. "Figure 6a").
    pub name: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Observations (deltas vs the paper, caveats).
    pub notes: Vec<String>,
}

impl Report {
    /// Start a report.
    pub fn new(name: impl Into<String>) -> Self {
        Report {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Append a table.
    pub fn table(&mut self, t: Table) -> &mut Self {
        self.tables.push(t);
        self
    }

    /// Append a note line.
    pub fn note(&mut self, n: impl Into<String>) -> &mut Self {
        self.notes.push(n.into());
        self
    }

    /// Terminal rendering.
    pub fn to_text(&self) -> String {
        let mut out = format!("==== {} ====\n", self.name);
        for t in &self.tables {
            out.push('\n');
            out.push_str(&t.to_text());
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                let _ = writeln!(out, "note: {n}");
            }
        }
        out
    }

    /// Markdown rendering.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {}\n\n", self.name);
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        for n in &self.notes {
            let _ = writeln!(out, "> {n}");
        }
        out
    }
}

/// Format a probability/precision with 3 decimals.
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a duration compactly.
pub fn fmt_duration(d: std::time::Duration) -> String {
    if d.as_secs_f64() >= 1.0 {
        format!("{:.2} s", d.as_secs_f64())
    } else {
        format!("{:.1} ms", d.as_secs_f64() * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["K", "P@K"]);
        t.row(vec!["1".into(), "0.900".into()]);
        t.row(vec!["10".into(), "0.750".into()]);
        let text = t.to_text();
        assert!(text.contains("## Demo"));
        assert!(text.contains("0.900"));
        let md = t.to_markdown();
        assert!(md.contains("| K | P@K |"));
        assert!(md.contains("| 10 | 0.750 |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new("x", &["a", "b"]).row(vec!["1".into()]);
    }

    #[test]
    fn report_combines_tables_and_notes() {
        let mut r = Report::new("Figure X");
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into()]);
        r.table(t).note("shape holds");
        let text = r.to_text();
        assert!(text.contains("==== Figure X ===="));
        assert!(text.contains("note: shape holds"));
        assert!(r.to_markdown().contains("> shape holds"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt3(0.5), "0.500");
        assert_eq!(fmt_duration(std::time::Duration::from_millis(5)), "5.0 ms");
        assert_eq!(fmt_duration(std::time::Duration::from_secs(2)), "2.00 s");
    }
}
