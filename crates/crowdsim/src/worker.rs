//! Worker population: behaviour styles and per-worker parameters.

use lightor_simkit::dist::uniform;
use lightor_simkit::SimRng;
use lightor_types::UserId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a viewer approaches a red dot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkerStyle {
    /// Clicks the dot, skips the boring lead-in, watches the highlight
    /// through and a few seconds past it. The majority.
    Engaged,
    /// Gives the dot only a few seconds; if nothing exciting happens,
    /// skips away. Produces the short check plays the filter removes.
    Impatient,
    /// Actively scrubs backward/forward hunting for the highlight even
    /// when one is playing — extra hunting noise.
    Seeker,
    /// Starts early, watches far past the highlight; produces the too-long
    /// plays the filter removes.
    Binger,
    /// Ignores the dot and samples random positions. Pure noise.
    Random,
}

impl WorkerStyle {
    /// All styles, for exhaustive tests.
    pub const ALL: [WorkerStyle; 5] = [
        WorkerStyle::Engaged,
        WorkerStyle::Impatient,
        WorkerStyle::Seeker,
        WorkerStyle::Binger,
        WorkerStyle::Random,
    ];
}

/// One simulated crowd worker.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    /// Platform identity used in sessions and play records.
    pub id: UserId,
    /// Behaviour style.
    pub style: WorkerStyle,
    /// Seconds of "nothing happening" this worker tolerates before acting.
    pub patience: f64,
    /// Seconds the worker keeps watching after a highlight ends.
    pub hold: f64,
}

/// Style mix of the population. Engaged viewers dominate — the paper's
/// campaigns worked *because* most AMT viewers genuinely watched — but
/// every noise family is represented.
const STYLE_WEIGHTS: [(WorkerStyle, f64); 5] = [
    (WorkerStyle::Engaged, 0.55),
    (WorkerStyle::Impatient, 0.15),
    (WorkerStyle::Seeker, 0.10),
    (WorkerStyle::Binger, 0.10),
    (WorkerStyle::Random, 0.10),
];

/// Sample one worker with the given id.
pub fn sample_worker(id: UserId, rng: &mut SimRng) -> Worker {
    let roll: f64 = rng.gen();
    let mut acc = 0.0;
    let mut style = WorkerStyle::Engaged;
    for (s, w) in STYLE_WEIGHTS {
        acc += w;
        if roll < acc {
            style = s;
            break;
        }
    }
    Worker {
        id,
        style,
        patience: uniform(rng, 4.0, 14.0),
        hold: uniform(rng, 1.0, 9.0),
    }
}

/// Sample a pool of `n` workers (ids `base_id..base_id+n`).
pub fn sample_pool(n: usize, base_id: u64, rng: &mut SimRng) -> Vec<Worker> {
    (0..n)
        .map(|i| sample_worker(UserId(base_id + i as u64), rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_simkit::SeedTree;

    #[test]
    fn style_mix_is_respected() {
        let mut rng = SeedTree::new(1).rng();
        let pool = sample_pool(2000, 0, &mut rng);
        let engaged = pool
            .iter()
            .filter(|w| w.style == WorkerStyle::Engaged)
            .count() as f64
            / pool.len() as f64;
        assert!((engaged - 0.55).abs() < 0.05, "engaged fraction {engaged}");
        // Every style occurs.
        for s in WorkerStyle::ALL {
            assert!(pool.iter().any(|w| w.style == s), "missing {s:?}");
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let total: f64 = STYLE_WEIGHTS.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parameters_in_range() {
        let mut rng = SeedTree::new(2).rng();
        for w in sample_pool(200, 100, &mut rng) {
            assert!((4.0..14.0).contains(&w.patience));
            assert!((1.0..9.0).contains(&w.hold));
        }
    }

    #[test]
    fn ids_are_sequential() {
        let mut rng = SeedTree::new(3).rng();
        let pool = sample_pool(5, 42, &mut rng);
        let ids: Vec<u64> = pool.iter().map(|w| w.id.0).collect();
        assert_eq!(ids, vec![42, 43, 44, 45, 46]);
    }
}
