//! The per-viewer behaviour state machine.
//!
//! Given a video's ground truth, a red-dot position and a worker, produce
//! the [`Session`] (raw player events) that viewer would generate. The
//! machine branches on the *actual* dot-vs-highlight geometry — the same
//! quantity the Extractor later tries to infer from the aggregate data:
//!
//! * dot at or before the highlight's end → watch-through behaviour
//!   (paper Type II, Figure 3b);
//! * dot after the highlight's end → hunting behaviour (paper Type I,
//!   Figure 3a).

use crate::worker::{Worker, WorkerStyle};
use lightor_simkit::dist::{coin, uniform, TruncNormal};
use lightor_simkit::SimRng;
use lightor_types::{Highlight, Interaction, LabeledVideo, Sec, Session};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Population-level behaviour constants.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionParams {
    /// Std-dev of the click landing position around the dot (seconds).
    pub click_jitter_std: f64,
    /// Mean seconds *into* the highlight where watch-through viewers
    /// settle ("the most exciting part happens a few seconds after the
    /// start", Section V-C) — the source of Figure 3b's +5…+10 median.
    pub skip_mean: f64,
    /// Std-dev of the settle offset.
    pub skip_std: f64,
    /// Truncation bounds of the settle offset relative to the highlight
    /// start.
    pub skip_bounds: (f64, f64),
    /// Backward hunting jump range (seconds).
    pub back_jump: (f64, f64),
    /// Length range of a quick "is this interesting?" check play.
    pub check_len: (f64, f64),
    /// Probability of one extra random noise play per session.
    pub noise_play_prob: f64,
    /// Max distance of noise plays from the dot.
    pub noise_offset: f64,
}

impl Default for SessionParams {
    fn default() -> Self {
        SessionParams {
            click_jitter_std: 1.8,
            skip_mean: 5.0,
            skip_std: 5.0,
            skip_bounds: (-10.0, 18.0),
            back_jump: (15.0, 55.0),
            check_len: (2.0, 5.0),
            noise_play_prob: 0.15,
            noise_offset: 90.0,
        }
    }
}

/// Simulate one viewer's session around `dot`.
pub fn simulate_session(
    video: &LabeledVideo,
    dot: Sec,
    worker: &Worker,
    params: &SessionParams,
    rng: &mut SimRng,
) -> Session {
    let dur = video.meta.duration.0;
    let clamp = |t: f64| t.clamp(0.0, dur);
    let mut ev: Vec<Interaction> = Vec::new();

    match worker.style {
        WorkerStyle::Random => random_browse(&mut ev, dot, dur, params, rng),
        WorkerStyle::Binger => binge(&mut ev, dot, dur, rng),
        _ => {
            if let Some((h, _)) = video.nearest_highlight(dot) {
                let h = *h;
                if dot.0 <= h.end().0 {
                    watch_through(&mut ev, dot, &h, worker, params, dur, rng);
                } else {
                    hunt_backward(&mut ev, dot, &h, worker, params, dur, rng);
                }
            } else {
                random_browse(&mut ev, dot, dur, params, rng);
            }
        }
    }

    // Population-level noise: an unrelated check somewhere near the dot.
    if coin(rng, params.noise_play_prob) {
        let at = clamp(dot.0 + uniform(rng, -params.noise_offset, params.noise_offset));
        let len = uniform(rng, params.check_len.0, params.check_len.1);
        ev.push(Interaction::Play { video_ts: Sec(at) });
        ev.push(Interaction::Leave {
            video_ts: Sec(clamp(at + len)),
        });
    }

    Session::new(worker.id, ev)
}

/// Type II flow: the highlight is (partly) ahead of the dot.
fn watch_through(
    ev: &mut Vec<Interaction>,
    dot: Sec,
    h: &Highlight,
    worker: &Worker,
    params: &SessionParams,
    dur: f64,
    rng: &mut SimRng,
) {
    let jitter = Normal::new(0.0, params.click_jitter_std).expect("positive std");
    let p0 = (dot.0 + jitter.sample(rng)).clamp(0.0, dur);
    ev.push(Interaction::Play { video_ts: Sec(p0) });

    let wait = h.start().0 - p0;
    let end_watch = (h.end().0 + worker.hold).min(dur);

    if worker.style == WorkerStyle::Impatient && wait > worker.patience {
        // Got bored before the highlight arrived; bail.
        let stop = (p0 + worker.patience).min(dur);
        if coin(rng, 0.5) {
            ev.push(Interaction::Leave {
                video_ts: Sec(stop),
            });
        } else {
            ev.push(Interaction::SeekForward {
                from: Sec(stop),
                to: Sec((stop + uniform(rng, 60.0, 180.0)).min(dur)),
            });
            ev.push(Interaction::Leave {
                video_ts: Sec((stop + uniform(rng, 62.0, 185.0)).min(dur)),
            });
        }
        return;
    }

    // Where the viewer actually settles: a few seconds into the action.
    let skip = TruncNormal::new(
        params.skip_mean,
        params.skip_std,
        params.skip_bounds.0,
        params.skip_bounds.1,
    )
    .sample(rng);
    let land = (h.start().0 + skip).max(p0);

    if land > p0 + 2.5 {
        // Quick check at the dot, then scrub to the action.
        let check = uniform(rng, params.check_len.0, params.check_len.1);
        ev.push(Interaction::SeekForward {
            from: Sec((p0 + check).min(dur)),
            to: Sec(land.min(dur)),
        });
    }

    if worker.style == WorkerStyle::Seeker && coin(rng, 0.6) {
        // Seekers double-check there was nothing earlier.
        let back = land - uniform(rng, params.back_jump.0, params.back_jump.1 / 2.0);
        let probe_end = (back + uniform(rng, 3.0, 8.0)).min(dur);
        ev.push(Interaction::SeekBackward {
            from: Sec((land + uniform(rng, 2.0, 6.0)).min(dur)),
            to: Sec(back.max(0.0)),
        });
        ev.push(Interaction::SeekForward {
            from: Sec(probe_end),
            to: Sec(land.min(dur)),
        });
    }

    if end_watch > land {
        ev.push(Interaction::Pause {
            video_ts: Sec(end_watch),
        });
    } else {
        ev.push(Interaction::Leave {
            video_ts: Sec((land + 1.0).min(dur)),
        });
    }
}

/// Type I flow: the highlight already ended before the dot.
fn hunt_backward(
    ev: &mut Vec<Interaction>,
    dot: Sec,
    h: &Highlight,
    worker: &Worker,
    params: &SessionParams,
    dur: f64,
    rng: &mut SimRng,
) {
    let jitter = Normal::new(0.0, params.click_jitter_std).expect("positive std");
    let p0 = (dot.0 + jitter.sample(rng)).clamp(0.0, dur);
    ev.push(Interaction::Play { video_ts: Sec(p0) });

    // Watch ahead briefly; nothing happens (the highlight is behind).
    let give_up = (p0 + worker.patience.min(8.0)).min(dur);

    if worker.style == WorkerStyle::Impatient {
        // Skip to wherever's next; their play never covers the highlight.
        ev.push(Interaction::SeekForward {
            from: Sec(give_up),
            to: Sec((give_up + uniform(rng, 60.0, 180.0)).min(dur)),
        });
        ev.push(Interaction::Leave {
            video_ts: Sec((give_up + uniform(rng, 62.0, 184.0)).min(dur)),
        });
        return;
    }

    // Hunt backward up to twice.
    let mut cursor = give_up;
    let mut found = false;
    for _ in 0..2 {
        let jump = uniform(rng, params.back_jump.0, params.back_jump.1);
        let land = (cursor - worker.patience.min(8.0) - jump).max(0.0);
        ev.push(Interaction::SeekBackward {
            from: Sec(cursor),
            to: Sec(land),
        });
        if land <= h.end().0 {
            // Landed at or before the highlight's end: watch it through.
            let end_watch = (h.end().0 + worker.hold).min(dur);
            ev.push(Interaction::Pause {
                video_ts: Sec(end_watch.max(land + 1.0)),
            });
            found = true;
            break;
        }
        // Still past the highlight: check briefly and jump again.
        let check = uniform(rng, params.check_len.0, params.check_len.1);
        cursor = (land + check).min(dur);
    }
    if !found {
        ev.push(Interaction::Leave {
            video_ts: Sec((cursor + 1.0).min(dur)),
        });
    }
}

/// Noise style: a couple of short plays at arbitrary offsets from the dot.
fn random_browse(
    ev: &mut Vec<Interaction>,
    dot: Sec,
    dur: f64,
    params: &SessionParams,
    rng: &mut SimRng,
) {
    let n = 1 + usize::from(coin(rng, 0.5));
    for _ in 0..n {
        let at = (dot.0 + uniform(rng, -params.noise_offset, params.noise_offset)).clamp(0.0, dur);
        let len = uniform(rng, params.check_len.0, params.check_len.1 + 3.0);
        ev.push(Interaction::Play { video_ts: Sec(at) });
        ev.push(Interaction::Pause {
            video_ts: Sec((at + len).min(dur)),
        });
    }
    ev.push(Interaction::Leave {
        video_ts: Sec(dot.0.clamp(0.0, dur)),
    });
}

/// Marathon style: one very long play spanning the whole neighbourhood.
fn binge(ev: &mut Vec<Interaction>, dot: Sec, dur: f64, rng: &mut SimRng) {
    let start = (dot.0 - uniform(rng, 20.0, 50.0)).max(0.0);
    let end = (dot.0 + uniform(rng, 85.0, 150.0)).min(dur);
    ev.push(Interaction::Play {
        video_ts: Sec(start),
    });
    ev.push(Interaction::Leave { video_ts: Sec(end) });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::sample_pool;
    use lightor_simkit::{mean, std_dev, SeedTree};
    use lightor_types::{ChannelId, ChatLogView, GameKind, UserId, VideoId, VideoMeta};

    fn test_video(highlights: Vec<Highlight>) -> LabeledVideo {
        LabeledVideo {
            meta: VideoMeta {
                id: VideoId(0),
                channel: ChannelId(0),
                game: GameKind::Dota2,
                duration: Sec(3600.0),
                viewers: 1000,
            },
            chat: ChatLogView::empty(),
            highlights,
        }
    }

    fn collect_plays(
        video: &LabeledVideo,
        dot: Sec,
        n_workers: usize,
        seed: u64,
    ) -> Vec<lightor_types::Play> {
        let root = SeedTree::new(seed);
        let mut pool_rng = root.child("pool").rng();
        let pool = sample_pool(n_workers, 0, &mut pool_rng);
        let params = SessionParams::default();
        pool.iter()
            .enumerate()
            .flat_map(|(i, w)| {
                let mut rng = root.child("sess").index(i as u64).rng();
                simulate_session(video, dot, w, &params, &mut rng).plays()
            })
            .collect()
    }

    #[test]
    fn sessions_produce_plays_within_video() {
        let v = test_video(vec![Highlight::from_secs(1990.0, 2005.0)]);
        let plays = collect_plays(&v, Sec(1995.0), 100, 1);
        assert!(plays.len() >= 100, "plays {}", plays.len());
        for p in &plays {
            assert!(p.start().0 >= 0.0 && p.end().0 <= 3600.0);
        }
    }

    #[test]
    fn type2_main_plays_cluster_normally_after_start() {
        // Dot right at the highlight start (good dot): Figure 3b — the
        // dominant plays start a bell-shaped few seconds after h.start.
        let h = Highlight::from_secs(1990.0, 2010.0);
        let v = test_video(vec![h]);
        let plays = collect_plays(&v, Sec(1990.0), 300, 2);
        // Take plays that cover a substantial part of the highlight
        // (the Extractor's filtered set would look like this).
        let offsets: Vec<f64> = plays
            .iter()
            .filter(|p| p.duration().0 >= 8.0 && p.duration().0 <= 75.0)
            .filter(|p| p.range.overlap_len(&h.range).0 >= 5.0)
            .map(|p| p.start().0 - h.start().0)
            .collect();
        assert!(offsets.len() > 100, "sample {}", offsets.len());
        let m = mean(&offsets).unwrap();
        assert!(
            (0.0..=12.0).contains(&m),
            "mean start offset {m}, expected Figure 3b band"
        );
        let s = std_dev(&offsets).unwrap();
        assert!(s < 12.0, "spread too wide: {s}");
    }

    #[test]
    fn type1_plays_scatter_widely() {
        // Dot 30 s after the highlight ended: Figure 3a — hunting spreads
        // start positions quasi-uniformly, far wider than Type II.
        let h = Highlight::from_secs(1990.0, 2005.0);
        let v = test_video(vec![h]);
        let plays = collect_plays(&v, Sec(2035.0), 300, 3);
        let offsets: Vec<f64> = plays
            .iter()
            .filter(|p| p.duration().0 >= 4.0)
            .map(|p| p.start().0 - h.start().0)
            .collect();
        let s1 = std_dev(&offsets).unwrap();

        let plays2 = collect_plays(&v, Sec(1990.0), 300, 3);
        let offsets2: Vec<f64> = plays2
            .iter()
            .filter(|p| p.duration().0 >= 8.0 && p.range.overlap_len(&h.range).0 >= 5.0)
            .map(|p| p.start().0 - h.start().0)
            .collect();
        let s2 = std_dev(&offsets2).unwrap();
        assert!(
            s1 > 1.5 * s2,
            "Type I spread {s1} should dwarf Type II spread {s2}"
        );
    }

    #[test]
    fn type1_generates_plays_before_or_across_dot() {
        // The classifier's signal (Figure 4): hunting produces plays that
        // end before the dot or straddle it.
        let h = Highlight::from_secs(1990.0, 2005.0);
        let v = test_video(vec![h]);
        let dot = Sec(2035.0);
        let plays = collect_plays(&v, dot, 200, 4);
        let before = plays.iter().filter(|p| p.end().0 < dot.0).count();
        let across = plays
            .iter()
            .filter(|p| p.start().0 < dot.0 && p.end().0 >= dot.0)
            .count();
        assert!(
            before + across > plays.len() / 4,
            "hunting signal missing: {before} before + {across} across of {}",
            plays.len()
        );

        // Type II, by contrast, is dominated by plays at/after the dot.
        let dot2 = Sec(1988.0);
        let plays2 = collect_plays(&v, dot2, 200, 5);
        let after2 = plays2
            .iter()
            .filter(|p| p.start().0 >= dot2.0 - 3.0)
            .count();
        assert!(
            after2 * 2 > plays2.len(),
            "{after2} of {} start near/after dot",
            plays2.len()
        );
    }

    #[test]
    fn impatient_workers_do_not_cover_type1_highlights() {
        let h = Highlight::from_secs(1990.0, 2005.0);
        let v = test_video(vec![h]);
        let w = Worker {
            id: UserId(9),
            style: WorkerStyle::Impatient,
            patience: 5.0,
            hold: 3.0,
        };
        let params = SessionParams {
            noise_play_prob: 0.0,
            ..Default::default()
        };
        let mut rng = SeedTree::new(6).rng();
        for _ in 0..50 {
            let plays = simulate_session(&v, Sec(2035.0), &w, &params, &mut rng).plays();
            for p in plays {
                assert!(
                    p.range.overlap_len(&h.range).0 < 1.0,
                    "impatient worker covered the highlight: {}",
                    p.range
                );
            }
        }
    }

    #[test]
    fn bingers_produce_long_plays() {
        let v = test_video(vec![Highlight::from_secs(1990.0, 2005.0)]);
        let w = Worker {
            id: UserId(10),
            style: WorkerStyle::Binger,
            patience: 8.0,
            hold: 4.0,
        };
        let params = SessionParams {
            noise_play_prob: 0.0,
            ..Default::default()
        };
        let mut rng = SeedTree::new(7).rng();
        let plays = simulate_session(&v, Sec(2000.0), &w, &params, &mut rng).plays();
        assert_eq!(plays.len(), 1);
        assert!(
            plays[0].duration().0 > 80.0,
            "binge too short: {}",
            plays[0].range
        );
    }

    #[test]
    fn no_highlights_still_yields_a_session() {
        let v = test_video(vec![]);
        let plays = collect_plays(&v, Sec(1000.0), 40, 8);
        assert!(!plays.is_empty());
    }

    #[test]
    fn sessions_are_deterministic() {
        let v = test_video(vec![Highlight::from_secs(500.0, 520.0)]);
        let a = collect_plays(&v, Sec(505.0), 30, 9);
        let b = collect_plays(&v, Sec(505.0), 30, 9);
        assert_eq!(a, b);
    }
}
