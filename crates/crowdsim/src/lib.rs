//! Implicit-crowd simulator: the stand-in for the paper's 492 Amazon
//! Mechanical Turk workers.
//!
//! The Highlight Extractor's entire design reacts to regularities in how
//! real viewers behave around a red dot (paper Sections V-B/V-C):
//!
//! * when the dot lands **before the end** of the highlight (Type II),
//!   viewers click it, maybe skip the boring lead-in, watch the highlight
//!   through, and hold a few seconds past its end — start offsets come out
//!   roughly *normal* around +5…+10 s (Figure 3b);
//! * when the dot lands **after the end** (Type I), there is nothing to
//!   watch ahead, so viewers hunt: short check plays, backward jumps,
//!   skips to the next dot — start offsets come out roughly *uniform*
//!   over −40…+20 s (Figure 3a);
//! * regardless of type, a fraction of plays are pure noise: 2–5 s random
//!   checks, marathon viewings, plays far from the dot. These are what the
//!   Extractor's filter stage exists to remove.
//!
//! This crate generates those behaviours *mechanistically* — per-worker
//! style, patience and reaction parameters drive a small state machine —
//! so the distributions of Figure 3 emerge rather than being hard-coded,
//! and the Extractor succeeds or fails for the same reasons it does on
//! real interaction data.

#![warn(missing_docs)]

pub mod campaign;
pub mod session;
pub mod worker;

pub use campaign::{Campaign, TaskResult};
pub use session::{simulate_session, SessionParams};
pub use worker::{Worker, WorkerStyle};
