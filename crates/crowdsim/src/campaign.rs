//! AMT-style campaigns: publish a task per red dot, collect N responses.
//!
//! Section VII-C: "We created one task for each red dot. We first
//! published the 35 tasks to AMT. After receiving 10 responses for each
//! task, we computed the new position of each red dot, and published a set
//! of new tasks with updated red-dot positions." [`Campaign`] reproduces
//! that loop: each `run_task` call samples fresh workers from the pool and
//! returns their sessions and derived plays.

use crate::session::{simulate_session, SessionParams};
use crate::worker::{sample_pool, Worker};
use lightor_simkit::SeedTree;
use lightor_types::{LabeledVideo, Play, PlaySet, Sec, Session};
use rand::seq::SliceRandom;

/// The result of one crowd task (one red dot, N viewers).
#[derive(Clone, Debug)]
pub struct TaskResult {
    /// Raw sessions, one per responding worker.
    pub sessions: Vec<Session>,
    /// Play records derived from the sessions.
    pub plays: PlaySet,
}

/// A worker pool plus deterministic task dispatch.
#[derive(Clone, Debug)]
pub struct Campaign {
    workers: Vec<Worker>,
    params: SessionParams,
    root: SeedTree,
    tasks_run: u64,
}

impl Campaign {
    /// Create a campaign backed by `n_workers` simulated workers.
    /// The paper recruited 492.
    pub fn new(n_workers: usize, seed: u64) -> Self {
        let root = SeedTree::new(seed).child("campaign");
        let mut rng = root.child("pool").rng();
        Campaign {
            workers: sample_pool(n_workers, 10_000, &mut rng),
            params: SessionParams::default(),
            root,
            tasks_run: 0,
        }
    }

    /// Override the behaviour parameters (for ablations).
    pub fn with_params(mut self, params: SessionParams) -> Self {
        self.params = params;
        self
    }

    /// Number of workers in the pool.
    pub fn pool_size(&self) -> usize {
        self.workers.len()
    }

    /// Number of tasks dispatched so far.
    pub fn tasks_run(&self) -> u64 {
        self.tasks_run
    }

    /// Publish one task: `n_responses` distinct workers watch `video`
    /// around `dot` and their interactions are logged.
    pub fn run_task(&mut self, video: &LabeledVideo, dot: Sec, n_responses: usize) -> TaskResult {
        let task_node = self.root.child("task").index(self.tasks_run);
        self.tasks_run += 1;

        // Sample respondents without replacement.
        let mut pick_rng = task_node.child("pick").rng();
        let mut idx: Vec<usize> = (0..self.workers.len()).collect();
        idx.shuffle(&mut pick_rng);
        let n = n_responses.min(self.workers.len());

        let mut sessions = Vec::with_capacity(n);
        let mut plays: Vec<Play> = Vec::new();
        for (slot, &wi) in idx[..n].iter().enumerate() {
            let mut rng = task_node.child("worker").index(slot as u64).rng();
            let session = simulate_session(video, dot, &self.workers[wi], &self.params, &mut rng);
            plays.extend(session.plays());
            sessions.push(session);
        }
        TaskResult {
            sessions,
            plays: PlaySet::new(plays),
        }
    }

    /// A collector closure for the Extractor's iterative loop: each call
    /// is one crowd round at the given dot position.
    pub fn collector<'a>(
        &'a mut self,
        video: &'a LabeledVideo,
        n_responses: usize,
    ) -> impl FnMut(Sec) -> PlaySet + 'a {
        move |dot| self.run_task(video, dot, n_responses).plays
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_types::{ChannelId, ChatLog, GameKind, Highlight, VideoId, VideoMeta};

    fn test_video() -> LabeledVideo {
        LabeledVideo {
            meta: VideoMeta {
                id: VideoId(0),
                channel: ChannelId(0),
                game: GameKind::Dota2,
                duration: Sec(3600.0),
                viewers: 500,
            },
            chat: ChatLog::empty(),
            highlights: vec![Highlight::from_secs(1990.0, 2005.0)],
        }
    }

    #[test]
    fn task_returns_requested_responses() {
        let mut c = Campaign::new(100, 1);
        let v = test_video();
        let r = c.run_task(&v, Sec(1995.0), 10);
        assert_eq!(r.sessions.len(), 10);
        assert!(!r.plays.is_empty());
        assert_eq!(c.tasks_run(), 1);
        assert_eq!(c.pool_size(), 100);
    }

    #[test]
    fn responses_capped_by_pool() {
        let mut c = Campaign::new(5, 2);
        let v = test_video();
        let r = c.run_task(&v, Sec(1995.0), 50);
        assert_eq!(r.sessions.len(), 5);
    }

    #[test]
    fn distinct_workers_per_task() {
        let mut c = Campaign::new(100, 3);
        let v = test_video();
        let r = c.run_task(&v, Sec(1995.0), 20);
        let users: std::collections::HashSet<_> = r.sessions.iter().map(|s| s.user).collect();
        assert_eq!(
            users.len(),
            20,
            "workers must be sampled without replacement"
        );
    }

    #[test]
    fn successive_tasks_differ() {
        let mut c = Campaign::new(100, 4);
        let v = test_video();
        let a = c.run_task(&v, Sec(1995.0), 10);
        let b = c.run_task(&v, Sec(1995.0), 10);
        // Same dot, but fresh respondents / randomness.
        assert_ne!(a.plays, b.plays);
        assert_eq!(c.tasks_run(), 2);
    }

    #[test]
    fn campaigns_are_reproducible() {
        let v = test_video();
        let mut c1 = Campaign::new(50, 7);
        let mut c2 = Campaign::new(50, 7);
        let a = c1.run_task(&v, Sec(2000.0), 10);
        let b = c2.run_task(&v, Sec(2000.0), 10);
        assert_eq!(a.plays, b.plays);
    }

    #[test]
    fn collector_advances_rounds() {
        let v = test_video();
        let mut c = Campaign::new(50, 8);
        {
            let mut collect = c.collector(&v, 8);
            let p1 = collect(Sec(1995.0));
            let p2 = collect(Sec(1990.0));
            assert!(!p1.is_empty() && !p2.is_empty());
        }
        assert_eq!(c.tasks_run(), 2);
    }
}
