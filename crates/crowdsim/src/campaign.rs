//! AMT-style campaigns: publish a task per red dot, collect N responses.
//!
//! Section VII-C: "We created one task for each red dot. We first
//! published the 35 tasks to AMT. After receiving 10 responses for each
//! task, we computed the new position of each red dot, and published a set
//! of new tasks with updated red-dot positions." [`Campaign`] reproduces
//! that loop: each `run_task` call samples fresh workers from the pool and
//! returns their sessions and derived plays.
//!
//! # Determinism and parallelism
//!
//! Every task gets a [`SeedTree`] node derived from the campaign seed
//! and a monotone task counter; every response slot within a task gets
//! its own child RNG. Sessions are therefore independent of *how* they
//! are executed: [`Campaign::run_task`] fans response slots out across
//! threads (and [`Campaign::run_tasks`] additionally fans out across
//! tasks), and the results are bit-identical to a sequential run for
//! any thread count.
//!
//! Respondent sampling draws `n` distinct workers with a partial
//! Fisher–Yates walk — O(n) RNG draws instead of shuffling the whole
//! pool index per task.

use crate::session::{simulate_session, SessionParams};
use crate::worker::{sample_pool, Worker};
use lightor_simkit::{SeedTree, SimRng};
use lightor_types::{LabeledVideo, Play, PlaySet, Sec, Session};
use rand::Rng;
use rayon::prelude::*;
use std::collections::HashMap;

/// The result of one crowd task (one red dot, N viewers).
#[derive(Clone, Debug)]
pub struct TaskResult {
    /// Raw sessions, one per responding worker.
    pub sessions: Vec<Session>,
    /// Play records derived from the sessions.
    pub plays: PlaySet,
}

/// A worker pool plus deterministic task dispatch.
#[derive(Clone, Debug)]
pub struct Campaign {
    workers: Vec<Worker>,
    params: SessionParams,
    root: SeedTree,
    tasks_run: u64,
}

/// Draw `n` distinct indices from `0..pool` — a sparse partial
/// Fisher–Yates: exactly `n` RNG draws and O(n) memory, instead of
/// shuffling (and touching) the entire pool index per task.
fn sample_respondents(rng: &mut SimRng, pool: usize, n: usize) -> Vec<usize> {
    let n = n.min(pool);
    // `swapped[i]` records the value a full Fisher–Yates array would
    // hold at position i after the swaps so far.
    let mut swapped: HashMap<usize, usize> = HashMap::with_capacity(2 * n);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let j = rng.gen_range(i..pool);
        let vj = *swapped.get(&j).unwrap_or(&j);
        let vi = *swapped.get(&i).unwrap_or(&i);
        out.push(vj);
        swapped.insert(j, vi);
    }
    out
}

impl Campaign {
    /// Create a campaign backed by `n_workers` simulated workers.
    /// The paper recruited 492.
    pub fn new(n_workers: usize, seed: u64) -> Self {
        let root = SeedTree::new(seed).child("campaign");
        let mut rng = root.child("pool").rng();
        Campaign {
            workers: sample_pool(n_workers, 10_000, &mut rng),
            params: SessionParams::default(),
            root,
            tasks_run: 0,
        }
    }

    /// Override the behaviour parameters (for ablations).
    pub fn with_params(mut self, params: SessionParams) -> Self {
        self.params = params;
        self
    }

    /// Number of workers in the pool.
    pub fn pool_size(&self) -> usize {
        self.workers.len()
    }

    /// Number of tasks dispatched so far.
    pub fn tasks_run(&self) -> u64 {
        self.tasks_run
    }

    /// Reserve the next task's seed node and sample its respondents.
    fn prepare_task(&mut self, n_responses: usize) -> (SeedTree, Vec<usize>) {
        let task_node = self.root.child("task").index(self.tasks_run);
        self.tasks_run += 1;
        let mut pick_rng = task_node.child("pick").rng();
        let picks = sample_respondents(&mut pick_rng, self.workers.len(), n_responses);
        (task_node, picks)
    }

    /// Simulate one prepared slot: respondent `picks[slot]` of the task
    /// rooted at `task_node` watches `video` around `dot`.
    fn simulate_slot(
        &self,
        task_node: &SeedTree,
        video: &LabeledVideo,
        dot: Sec,
        slot: usize,
        worker_index: usize,
    ) -> Session {
        let mut rng = task_node.child("worker").index(slot as u64).rng();
        simulate_session(
            video,
            dot,
            &self.workers[worker_index],
            &self.params,
            &mut rng,
        )
    }

    fn collect_result(sessions: Vec<Session>) -> TaskResult {
        let mut plays: Vec<Play> = Vec::new();
        for session in &sessions {
            plays.extend(session.plays());
        }
        TaskResult {
            sessions,
            plays: PlaySet::new(plays),
        }
    }

    /// Publish one task: `n_responses` distinct workers watch `video`
    /// around `dot` and their interactions are logged. Response slots
    /// run in parallel; output is bit-identical for any thread count.
    pub fn run_task(&mut self, video: &LabeledVideo, dot: Sec, n_responses: usize) -> TaskResult {
        let (task_node, picks) = self.prepare_task(n_responses);
        let slots: Vec<(usize, usize)> = picks.into_iter().enumerate().collect();
        let sessions: Vec<Session> = slots
            .par_iter()
            .map(|&(slot, wi)| self.simulate_slot(&task_node, video, dot, slot, wi))
            .collect();
        Self::collect_result(sessions)
    }

    /// Publish a whole round of tasks at once: task `i` runs at
    /// `tasks[i]`'s video/dot with `n_responses` respondents each.
    ///
    /// Equivalent to calling [`Campaign::run_task`] once per entry in
    /// order — same seed derivation, same results — but every
    /// `(task, slot)` pair lands in one flat parallel domain, so a
    /// round's sessions saturate the thread pool even when individual
    /// tasks are small. This is the eval harness's fan-out shape.
    pub fn run_tasks(
        &mut self,
        tasks: &[(&LabeledVideo, Sec)],
        n_responses: usize,
    ) -> Vec<TaskResult> {
        let prepared: Vec<(SeedTree, Vec<usize>)> = tasks
            .iter()
            .map(|_| self.prepare_task(n_responses))
            .collect();
        // Flatten to (task, slot, worker) so rayon sees one long domain.
        let units: Vec<(usize, usize, usize)> = prepared
            .iter()
            .enumerate()
            .flat_map(|(t, (_, picks))| {
                picks
                    .iter()
                    .enumerate()
                    .map(move |(slot, &wi)| (t, slot, wi))
            })
            .collect();
        let sessions: Vec<Session> = units
            .par_iter()
            .map(|&(t, slot, wi)| {
                let (node, _) = &prepared[t];
                let (video, dot) = tasks[t];
                self.simulate_slot(node, video, dot, slot, wi)
            })
            .collect();
        // Regroup in task order (slot counts are per-task).
        let mut out = Vec::with_capacity(tasks.len());
        let mut cursor = sessions.into_iter();
        for (_, picks) in &prepared {
            let task_sessions: Vec<Session> = cursor.by_ref().take(picks.len()).collect();
            out.push(Self::collect_result(task_sessions));
        }
        out
    }

    /// A collector closure for the Extractor's iterative loop: each call
    /// is one crowd round at the given dot position.
    pub fn collector<'a>(
        &'a mut self,
        video: &'a LabeledVideo,
        n_responses: usize,
    ) -> impl FnMut(Sec) -> PlaySet + 'a {
        move |dot| self.run_task(video, dot, n_responses).plays
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_types::{ChannelId, ChatLogView, GameKind, Highlight, VideoId, VideoMeta};

    fn test_video() -> LabeledVideo {
        LabeledVideo {
            meta: VideoMeta {
                id: VideoId(0),
                channel: ChannelId(0),
                game: GameKind::Dota2,
                duration: Sec(3600.0),
                viewers: 500,
            },
            chat: ChatLogView::empty(),
            highlights: vec![Highlight::from_secs(1990.0, 2005.0)],
        }
    }

    #[test]
    fn task_returns_requested_responses() {
        let mut c = Campaign::new(100, 1);
        let v = test_video();
        let r = c.run_task(&v, Sec(1995.0), 10);
        assert_eq!(r.sessions.len(), 10);
        assert!(!r.plays.is_empty());
        assert_eq!(c.tasks_run(), 1);
        assert_eq!(c.pool_size(), 100);
    }

    #[test]
    fn responses_capped_by_pool() {
        let mut c = Campaign::new(5, 2);
        let v = test_video();
        let r = c.run_task(&v, Sec(1995.0), 50);
        assert_eq!(r.sessions.len(), 5);
    }

    #[test]
    fn distinct_workers_per_task() {
        let mut c = Campaign::new(100, 3);
        let v = test_video();
        let r = c.run_task(&v, Sec(1995.0), 20);
        let users: std::collections::HashSet<_> = r.sessions.iter().map(|s| s.user).collect();
        assert_eq!(
            users.len(),
            20,
            "workers must be sampled without replacement"
        );
    }

    #[test]
    fn sample_respondents_matches_full_fisher_yates() {
        // The sparse walk must equal the classic array-based partial
        // Fisher–Yates (same RNG stream, same output).
        for (pool, n, seed) in [(10, 10, 1u64), (100, 7, 2), (492, 10, 3), (5, 50, 4)] {
            let mut a_rng = SeedTree::new(seed).rng();
            let sparse = sample_respondents(&mut a_rng, pool, n);

            let n_eff = n.min(pool);
            let mut b_rng = SeedTree::new(seed).rng();
            let mut idx: Vec<usize> = (0..pool).collect();
            for i in 0..n_eff {
                let j = b_rng.gen_range(i..pool);
                idx.swap(i, j);
            }
            assert_eq!(sparse, idx[..n_eff], "pool {pool} n {n}");
            // Distinctness.
            let set: std::collections::HashSet<_> = sparse.iter().collect();
            assert_eq!(set.len(), n_eff);
        }
    }

    #[test]
    fn successive_tasks_differ() {
        let mut c = Campaign::new(100, 4);
        let v = test_video();
        let a = c.run_task(&v, Sec(1995.0), 10);
        let b = c.run_task(&v, Sec(1995.0), 10);
        // Same dot, but fresh respondents / randomness.
        assert_ne!(a.plays, b.plays);
        assert_eq!(c.tasks_run(), 2);
    }

    #[test]
    fn campaigns_are_reproducible() {
        let v = test_video();
        let mut c1 = Campaign::new(50, 7);
        let mut c2 = Campaign::new(50, 7);
        let a = c1.run_task(&v, Sec(2000.0), 10);
        let b = c2.run_task(&v, Sec(2000.0), 10);
        assert_eq!(a.plays, b.plays);
    }

    #[test]
    fn run_tasks_matches_sequential_run_task() {
        let v = test_video();
        let dots = [Sec(1992.0), Sec(2000.0), Sec(2030.0)];

        let mut seq = Campaign::new(80, 11);
        let expected: Vec<TaskResult> = dots.iter().map(|&d| seq.run_task(&v, d, 8)).collect();

        let mut batch = Campaign::new(80, 11);
        let tasks: Vec<(&LabeledVideo, Sec)> = dots.iter().map(|&d| (&v, d)).collect();
        let got = batch.run_tasks(&tasks, 8);

        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.sessions, e.sessions);
            assert_eq!(g.plays, e.plays);
        }
        assert_eq!(batch.tasks_run(), seq.tasks_run());
        // And the counter keeps advancing across batches.
        let more = batch.run_tasks(&tasks[..1], 8);
        assert_eq!(more.len(), 1);
        assert_eq!(batch.tasks_run(), 4);
    }

    #[test]
    fn collector_advances_rounds() {
        let v = test_video();
        let mut c = Campaign::new(50, 8);
        {
            let mut collect = c.collector(&v, 8);
            let p1 = collect(Sec(1995.0));
            let p2 = collect(Sec(1990.0));
            assert!(!p1.is_empty() && !p2.is_empty());
        }
        assert_eq!(c.tasks_run(), 2);
    }
}
