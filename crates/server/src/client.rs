//! A tiny std-only HTTP/1.1 client used by the router's proxy path, the
//! integration tests, benches, and the browser-extension example.
//!
//! One [`HttpClient`] is one keep-alive TCP connection: every request
//! reuses the stream until the server answers `Connection: close` (the
//! caller can check [`ClientResponse::closed`] and reconnect).
//! [`HttpClient::send_raw`] writes arbitrary bytes, which is how the
//! malformed-input tests provoke 400/413/431 responses.
//!
//! Failures are the typed [`ClientError`]: the router's retry loop needs
//! to distinguish transport errors (worth a retry on an idempotent GET)
//! from a response that parsed — and a *lying* response (body longer
//! than `Content-Length`, or a connection closed mid-body) must never
//! surface as a truncated success.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Why a request failed. Everything here is a transport- or framing-
/// level failure: a response that arrives and parses is returned as a
/// [`ClientResponse`] whatever its status code.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level I/O failure (connect refused, reset, …).
    Io(std::io::Error),
    /// The read or connect timed out (or a deadline expired).
    Timeout,
    /// The status line or a header did not parse.
    MalformedHead(String),
    /// The `Content-Length` response header did not parse.
    BadContentLength,
    /// The server closed the connection before a full response head.
    ClosedBeforeHead,
    /// The server closed the connection before `Content-Length` bytes
    /// of body arrived — the truncated read is NOT a success.
    ClosedMidBody {
        /// Body bytes that did arrive.
        got: usize,
        /// Bytes `Content-Length` promised.
        expected: usize,
    },
    /// The server sent bytes past the declared `Content-Length`. This
    /// client never pipelines, so trailing bytes mean the response
    /// framing lies and the body cannot be trusted.
    ExcessBody {
        /// Unsolicited bytes observed past the declared body.
        extra: usize,
    },
}

impl ClientError {
    /// Whether retrying the request could help: the failure happened at
    /// the transport level, before (or instead of) a parseable
    /// response. Framing lies ([`ClientError::ExcessBody`],
    /// [`ClientError::MalformedHead`], …) are server bugs — retrying
    /// the same backend would get the same lie.
    pub fn is_transport(&self) -> bool {
        matches!(
            self,
            ClientError::Io(_)
                | ClientError::Timeout
                | ClientError::ClosedBeforeHead
                | ClientError::ClosedMidBody { .. }
        )
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Timeout => write!(f, "request timed out"),
            ClientError::MalformedHead(detail) => write!(f, "malformed response head: {detail}"),
            ClientError::BadContentLength => {
                write!(f, "unparseable Content-Length in response")
            }
            ClientError::ClosedBeforeHead => {
                write!(f, "connection closed before a full response head")
            }
            ClientError::ClosedMidBody { got, expected } => {
                write!(f, "connection closed mid-body ({got} of {expected} bytes)")
            }
            ClientError::ExcessBody { extra } => write!(
                f,
                "{extra} unsolicited byte(s) past the declared Content-Length"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ClientError::Timeout,
            _ => ClientError::Io(e),
        }
    }
}

impl From<ClientError> for std::io::Error {
    fn from(e: ClientError) -> Self {
        match e {
            ClientError::Io(io) => io,
            ClientError::Timeout => {
                std::io::Error::new(std::io::ErrorKind::TimedOut, e.to_string())
            }
            ClientError::ClosedBeforeHead | ClientError::ClosedMidBody { .. } => {
                std::io::Error::new(std::io::ErrorKind::UnexpectedEof, e.to_string())
            }
            ClientError::MalformedHead(_)
            | ClientError::BadContentLength
            | ClientError::ExcessBody { .. } => {
                std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
            }
        }
    }
}

/// A parsed response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers: lowercased names, response order.
    pub headers: Vec<(String, String)>,
    /// Body bytes (exactly `Content-Length` of them).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (panics on non-UTF-8; responses here are JSON
    /// or plain text).
    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).expect("response body is UTF-8")
    }

    /// Deserialize the JSON body into a wire DTO.
    pub fn json<T: serde::Deserialize>(&self) -> serde_json::Result<T> {
        serde_json::from_slice(&self.body)
    }

    /// True when the server signalled it will close the connection.
    pub fn closed(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The `Retry-After` header as a duration, when present and
    /// parseable (integer seconds — the only form this stack emits).
    /// A 503 fast-fail carrying this header tells a retrying caller
    /// *when* the shard expects to be probed again; honoring it beats
    /// burning retry budget on the next blind backoff tick.
    pub fn retry_after(&self) -> Option<Duration> {
        self.header("retry-after")
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(Duration::from_secs)
    }
}

/// A response captured as raw wire bytes for verbatim relay, plus the
/// minimum the proxy needs to route it: status (error accounting),
/// body offset (the rare caller that must parse the body), and whether
/// the server is closing the connection (pooling).
#[derive(Clone, Debug)]
pub struct RelayResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Offset of the body within `raw`.
    pub body_start: usize,
    /// True when the server signalled `Connection: close`.
    pub closed: bool,
    /// The complete response, head and body, exactly as received.
    pub raw: Vec<u8>,
}

impl RelayResponse {
    /// The body bytes (exactly `Content-Length` of them).
    pub fn body(&self) -> &[u8] {
        &self.raw[self.body_start..]
    }

    /// The `Retry-After` header as a duration, scanned from the raw
    /// head (the relay path never builds a header list). Same
    /// integer-seconds contract as [`ClientResponse::retry_after`].
    pub fn retry_after(&self) -> Option<Duration> {
        let head = std::str::from_utf8(&self.raw[..self.body_start]).ok()?;
        for line in head.split("\r\n").skip(1) {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("retry-after") {
                    return value.trim().parse::<u64>().ok().map(Duration::from_secs);
                }
            }
        }
        None
    }
}

/// One keep-alive connection to the server.
pub struct HttpClient {
    stream: TcpStream,
    /// Bytes read past the previous response head/body while draining
    /// the socket.
    buf: Vec<u8>,
    read_timeout: Duration,
    /// The timeout currently programmed into the socket — tracked so
    /// the hot path can skip the `setsockopt` syscall when the socket
    /// is already close enough to the remaining deadline budget.
    effective_timeout: Duration,
    /// Busy-poll window before a blocking read (see [`Self::set_spin`]).
    spin: Option<Duration>,
}

impl HttpClient {
    /// Connect to `addr` with sane test timeouts (2 s connect, 10 s
    /// reads).
    pub fn connect(addr: SocketAddr) -> Result<Self, ClientError> {
        Self::connect_with(addr, Duration::from_secs(2), Duration::from_secs(10))
    }

    /// Connect to `addr` with explicit connect and read timeouts.
    pub fn connect_with(
        addr: SocketAddr,
        connect_timeout: Duration,
        read_timeout: Duration,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
            read_timeout,
            effective_timeout: read_timeout,
            spin: None,
        })
    }

    /// Busy-poll the socket for up to `window` before every blocking
    /// read. A proxy thread awaiting an in-flight backend response
    /// skips the scheduler wakeup (worth a few µs per hop) when the
    /// reply lands inside the window — the userspace analogue of
    /// `SO_BUSY_POLL`. Off by default: it trades bounded CPU for
    /// latency, which only a routing tier on a multi-core host should
    /// pay (on a single core, spinning starves the very thread that
    /// would produce the reply).
    pub fn set_spin(&mut self, window: Option<Duration>) {
        self.spin = window;
    }

    /// Bounded non-blocking poll: `Ok(Some(n))` when bytes (or EOF)
    /// arrived inside the window, `Ok(None)` when the window expired
    /// and the caller should fall back to a blocking read.
    fn try_spin_read(
        &mut self,
        chunk: &mut [u8],
        window: Duration,
    ) -> Result<Option<usize>, ClientError> {
        self.stream.set_nonblocking(true)?;
        let spin_deadline = Instant::now() + window;
        let result = loop {
            match self.stream.read(chunk) {
                Ok(n) => break Ok(Some(n)),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= spin_deadline {
                        break Ok(None);
                    }
                    std::hint::spin_loop();
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => break Err(ClientError::Io(e)),
            }
        };
        self.stream.set_nonblocking(false)?;
        result
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> Result<ClientResponse, ClientError> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post_json(&mut self, path: &str, json: &str) -> Result<ClientResponse, ClientError> {
        self.request("POST", path, Some(json.as_bytes()))
    }

    /// Send one request and read its response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<ClientResponse, ClientError> {
        self.send_raw(&Self::encode(method, path, body))
    }

    /// Send one request that must complete (head and body fully read)
    /// before `deadline` — the router's per-request budget. The read
    /// timeout shrinks to the remaining budget before every read; an
    /// expired deadline is [`ClientError::Timeout`].
    pub fn request_deadline(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        deadline: Instant,
    ) -> Result<ClientResponse, ClientError> {
        let raw = Self::encode(method, path, body);
        self.stream.write_all(&raw)?;
        let result = self.read_response(Some(deadline));
        self.restore_timeout()?;
        result
    }

    /// Like [`Self::request_deadline`], but captures the response as
    /// raw bytes for verbatim relay — the router's hot path. Skips the
    /// per-header allocations of the full parse: only the status line
    /// and the framing headers are examined.
    pub fn request_relay(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        deadline: Instant,
    ) -> Result<RelayResponse, ClientError> {
        let raw = Self::encode(method, path, body);
        self.stream.write_all(&raw)?;
        let result = self.read_relay(Some(deadline));
        self.restore_timeout()?;
        result
    }

    /// Restore the configured steady-state timeout after a deadline
    /// read — unless the deadline path never reprogrammed the socket.
    fn restore_timeout(&mut self) -> Result<(), ClientError> {
        if self.effective_timeout != self.read_timeout {
            self.stream.set_read_timeout(Some(self.read_timeout))?;
            self.effective_timeout = self.read_timeout;
        }
        Ok(())
    }

    fn encode(method: &str, path: &str, body: Option<&[u8]>) -> Vec<u8> {
        use std::io::Write as _;
        let body = body.unwrap_or(&[]);
        let mut raw = Vec::with_capacity(64 + method.len() + path.len() + body.len());
        write!(
            raw,
            "{method} {path} HTTP/1.1\r\nHost: lightor\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .expect("writing to a Vec never fails");
        raw.extend_from_slice(body);
        raw
    }

    /// Write raw bytes (possibly a malformed request) and read one
    /// response back.
    pub fn send_raw(&mut self, raw: &[u8]) -> Result<ClientResponse, ClientError> {
        self.stream.write_all(raw)?;
        self.read_response(None)
    }

    /// Begin a chunked-transfer request: writes the head with
    /// `Transfer-Encoding: chunked` and no `Content-Length`. Follow
    /// with [`Self::send_chunk`] calls, then read the response with
    /// [`Self::finish_chunked`] (or its relay twin).
    pub fn start_chunked(&mut self, method: &str, path: &str) -> Result<(), ClientError> {
        use std::io::Write as _;
        let mut raw = Vec::with_capacity(96 + method.len() + path.len());
        write!(
            raw,
            "{method} {path} HTTP/1.1\r\nHost: lightor\r\nTransfer-Encoding: chunked\r\n\r\n"
        )
        .expect("writing to a Vec never fails");
        self.stream.write_all(&raw)?;
        Ok(())
    }

    /// Send one chunk frame of an in-flight chunked request. Empty
    /// data is a no-op (a zero-size frame would terminate the body).
    pub fn send_chunk(&mut self, data: &[u8]) -> Result<(), ClientError> {
        if data.is_empty() {
            return Ok(());
        }
        use std::io::Write as _;
        let mut frame = Vec::with_capacity(data.len() + 16);
        write!(frame, "{:x}\r\n", data.len()).expect("writing to a Vec never fails");
        frame.extend_from_slice(data);
        frame.extend_from_slice(b"\r\n");
        self.stream.write_all(&frame)?;
        Ok(())
    }

    /// Terminate an in-flight chunked request (the zero chunk) and read
    /// the response, which must complete before `deadline`.
    pub fn finish_chunked(&mut self, deadline: Instant) -> Result<ClientResponse, ClientError> {
        self.stream.write_all(b"0\r\n\r\n")?;
        let result = self.read_response(Some(deadline));
        self.restore_timeout()?;
        result
    }

    /// [`Self::finish_chunked`] capturing the response as raw relay
    /// bytes — the router's streamed-upload hop.
    pub fn finish_chunked_relay(
        &mut self,
        deadline: Instant,
    ) -> Result<RelayResponse, ClientError> {
        self.stream.write_all(b"0\r\n\r\n")?;
        let result = self.read_relay(Some(deadline));
        self.restore_timeout()?;
        result
    }

    /// Read one relay response without sending anything first — used
    /// when a send failed mid-stream because the server answered early
    /// (a mid-stream 503/422) and stopped reading.
    pub fn read_early_relay(&mut self, deadline: Instant) -> Result<RelayResponse, ClientError> {
        let result = self.read_relay(Some(deadline));
        self.restore_timeout()?;
        result
    }

    /// The underlying stream, for tests that need to write a partial
    /// request without reading a response yet.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// One socket read, honouring `deadline` when set. Returns the
    /// number of bytes read (0 = orderly EOF).
    fn read_chunk(
        &mut self,
        chunk: &mut [u8],
        deadline: Option<Instant>,
    ) -> Result<usize, ClientError> {
        if let Some(window) = self.spin {
            if let Some(n) = self.try_spin_read(chunk, window)? {
                return Ok(n);
            }
        }
        let Some(deadline) = deadline else {
            return Ok(self.stream.read(chunk)?);
        };
        // The socket timeout only has to *approximate* the remaining
        // budget: a small overshoot lets the hot path (deadline ≈ the
        // steady-state timeout) skip the setsockopt syscall entirely,
        // and an undershoot just means the read returns early and the
        // loop re-checks the clock.
        const SLACK: Duration = Duration::from_millis(5);
        loop {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(ClientError::Timeout);
            };
            if remaining.is_zero() {
                return Err(ClientError::Timeout);
            }
            if self.effective_timeout > remaining + SLACK || self.effective_timeout.is_zero() {
                self.stream.set_read_timeout(Some(remaining))?;
                self.effective_timeout = remaining;
            }
            match self.stream.read(chunk) {
                Ok(n) => return Ok(n),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // Timed out before the deadline (the programmed
                    // timeout was shorter): loop and re-arm.
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Parse a response head: `(status, headers, content_length)`.
    /// Headers come back lowercased, in response order.
    #[allow(clippy::type_complexity)]
    fn parse_head(head: &[u8]) -> Result<(u16, Vec<(String, String)>, usize), ClientError> {
        let head = std::str::from_utf8(head)
            .map_err(|_| ClientError::MalformedHead("head is not UTF-8".to_string()))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let mut parts = status_line.split(' ');
        let version = parts.next().unwrap_or("");
        let status = if version.starts_with("HTTP/1.") {
            parts
                .next()
                .and_then(|s| s.parse::<u16>().ok())
                .filter(|s| (100..=599).contains(s))
        } else {
            None
        };
        let Some(status) = status else {
            return Err(ClientError::MalformedHead(format!(
                "bad status line: {status_line:?}"
            )));
        };
        let mut headers = Vec::with_capacity(8);
        let mut content_length = 0usize;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                return Err(ClientError::MalformedHead(format!(
                    "header line without a colon: {line:?}"
                )));
            };
            let mut name = name.to_string();
            name.make_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| ClientError::BadContentLength)?;
            }
            headers.push((name, value));
        }
        Ok((status, headers, content_length))
    }

    /// Minimal head parse for the relay path: status code, body length,
    /// and `Connection: close` — no per-header allocations.
    fn parse_head_min(head: &[u8]) -> Result<(u16, usize, bool), ClientError> {
        let head = std::str::from_utf8(head)
            .map_err(|_| ClientError::MalformedHead("head is not UTF-8".to_string()))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let mut parts = status_line.split(' ');
        let version = parts.next().unwrap_or("");
        let status = if version.starts_with("HTTP/1.") {
            parts
                .next()
                .and_then(|s| s.parse::<u16>().ok())
                .filter(|s| (100..=599).contains(s))
        } else {
            None
        };
        let Some(status) = status else {
            return Err(ClientError::MalformedHead(format!(
                "bad status line: {status_line:?}"
            )));
        };
        let mut content_length = 0usize;
        let mut closed = false;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                return Err(ClientError::MalformedHead(format!(
                    "header line without a colon: {line:?}"
                )));
            };
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ClientError::BadContentLength)?;
            } else if name.eq_ignore_ascii_case("connection") {
                closed = value.trim().eq_ignore_ascii_case("close");
            }
        }
        Ok((status, content_length, closed))
    }

    /// Read until a complete head (`\r\n\r\n`) is buffered; returns its
    /// offset. Shared by the parsed and relay read paths.
    fn fill_head(&mut self, deadline: Option<Instant>) -> Result<usize, ClientError> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(i) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                return Ok(i);
            }
            let n = self.read_chunk(&mut chunk, deadline)?;
            if n == 0 {
                self.buf.clear();
                return Err(ClientError::ClosedBeforeHead);
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Read one response as raw relay bytes (see
    /// [`HttpClient::request_relay`]).
    fn read_relay(&mut self, deadline: Option<Instant>) -> Result<RelayResponse, ClientError> {
        let head_end = self.fill_head(deadline)?;
        let (status, content_length, closed) = match Self::parse_head_min(&self.buf[..head_end]) {
            Ok(parsed) => parsed,
            Err(e) => {
                self.buf.clear();
                return Err(e);
            }
        };
        let body_start = head_end + 4;
        self.fill_body(body_start, content_length, deadline)?;
        // One request in flight per connection: trailing bytes mean the
        // framing lies (see read_response).
        if self.buf.len() != body_start + content_length {
            let extra = self.buf.len() - (body_start + content_length);
            self.buf.clear();
            return Err(ClientError::ExcessBody { extra });
        }
        let raw = std::mem::take(&mut self.buf);
        Ok(RelayResponse {
            status,
            body_start,
            closed,
            raw,
        })
    }

    /// Read until the body (starting at `body_start`, `content_length`
    /// bytes) is fully buffered.
    fn fill_body(
        &mut self,
        body_start: usize,
        content_length: usize,
        deadline: Option<Instant>,
    ) -> Result<(), ClientError> {
        let mut chunk = [0u8; 16 * 1024];
        while self.buf.len() < body_start + content_length {
            let n = self.read_chunk(&mut chunk, deadline)?;
            if n == 0 {
                let got = self.buf.len().saturating_sub(body_start);
                self.buf.clear();
                return Err(ClientError::ClosedMidBody {
                    got,
                    expected: content_length,
                });
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        Ok(())
    }

    fn read_response(&mut self, deadline: Option<Instant>) -> Result<ClientResponse, ClientError> {
        let head_end = self.fill_head(deadline)?;
        // Parse the head in place (no copy of the raw bytes); only on
        // error may the buffer be cleared, after the borrow ends.
        let (status, headers, content_length) = match Self::parse_head(&self.buf[..head_end]) {
            Ok(parsed) => parsed,
            Err(e) => {
                self.buf.clear();
                return Err(e);
            }
        };
        let body_start = head_end + 4;
        self.fill_body(body_start, content_length, deadline)?;
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        // This client never pipelines: one request is in flight per
        // connection, so any bytes past the declared body mean the
        // server's framing lies (body longer than Content-Length). The
        // truncated-at-Content-Length read must NOT pass as a success.
        if !self.buf.is_empty() {
            let extra = self.buf.len();
            self.buf.clear();
            return Err(ClientError::ExcessBody { extra });
        }
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Serve one connection with a scripted byte string, then close.
    /// Returns the address to connect to.
    fn scripted_server(script: &'static [u8]) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            if let Ok((mut stream, _)) = listener.accept() {
                // Read the request head so the client's write completes.
                let mut buf = [0u8; 4096];
                let _ = stream.read(&mut buf);
                let _ = stream.write_all(script);
                let _ = stream.flush();
                // Drop → FIN. Delay a little so the client sees the
                // bytes before EOF on slow CI.
                std::thread::sleep(Duration::from_millis(10));
            }
        });
        addr
    }

    fn get_one(script: &'static [u8]) -> Result<ClientResponse, ClientError> {
        let mut c = HttpClient::connect(scripted_server(script)).unwrap();
        c.request_deadline("GET", "/x", None, Instant::now() + Duration::from_secs(5))
    }

    #[test]
    fn well_formed_response_parses() {
        let resp = get_one(b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ok");
        assert!(resp.closed());
    }

    #[test]
    fn retry_after_parses_from_both_response_forms() {
        let resp = get_one(
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 3\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
        assert_eq!(resp.retry_after(), Some(Duration::from_secs(3)));

        let mut c = HttpClient::connect(scripted_server(
            b"HTTP/1.1 503 Service Unavailable\r\nretry-after: 2\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        ))
        .unwrap();
        let relay = c
            .request_relay("GET", "/x", None, Instant::now() + Duration::from_secs(5))
            .unwrap();
        assert_eq!(relay.status, 503);
        assert_eq!(relay.retry_after(), Some(Duration::from_secs(2)));

        // Absent or garbage values parse to None, never panic.
        let resp = get_one(
            b"HTTP/1.1 503 X\r\nRetry-After: soon\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
        assert_eq!(resp.retry_after(), None);
    }

    // The malformed-response matrix — the client-side mirror of the
    // server's malformed-request tests. Every way a backend can lie
    // about a response must come back typed, never as a truncated or
    // garbage success.

    #[test]
    fn garbage_status_line_is_malformed_head() {
        let err = get_one(b"NOT HTTP AT ALL\r\n\r\n").unwrap_err();
        assert!(matches!(err, ClientError::MalformedHead(_)), "{err:?}");
        assert!(!err.is_transport());
    }

    #[test]
    fn non_numeric_status_is_malformed_head() {
        let err = get_one(b"HTTP/1.1 abc Whatever\r\n\r\n").unwrap_err();
        assert!(matches!(err, ClientError::MalformedHead(_)), "{err:?}");
    }

    #[test]
    fn out_of_range_status_is_malformed_head() {
        let err = get_one(b"HTTP/1.1 999999 Huge\r\n\r\n").unwrap_err();
        assert!(matches!(err, ClientError::MalformedHead(_)), "{err:?}");
    }

    #[test]
    fn headerless_colon_line_is_malformed_head() {
        let err = get_one(b"HTTP/1.1 200 OK\r\nbroken header line\r\n\r\n").unwrap_err();
        assert!(matches!(err, ClientError::MalformedHead(_)), "{err:?}");
    }

    #[test]
    fn bad_content_length_is_typed() {
        let err = get_one(b"HTTP/1.1 200 OK\r\nContent-Length: twelve\r\n\r\n").unwrap_err();
        assert!(matches!(err, ClientError::BadContentLength), "{err:?}");
    }

    #[test]
    fn eof_before_head_is_typed() {
        let err = get_one(b"HTTP/1.1 200").unwrap_err();
        assert!(matches!(err, ClientError::ClosedBeforeHead), "{err:?}");
        assert!(err.is_transport(), "worth a retry on another connection");
    }

    #[test]
    fn eof_mid_body_is_not_a_truncated_success() {
        // Content-Length promises 100 bytes; only 5 arrive before FIN.
        let err = get_one(b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nhello").unwrap_err();
        match err {
            ClientError::ClosedMidBody { got, expected } => {
                assert_eq!((got, expected), (5, 100));
            }
            other => panic!("expected ClosedMidBody, got {other:?}"),
        }
    }

    #[test]
    fn excess_body_is_not_a_truncated_success() {
        // Content-Length says 2, but 7 body bytes arrive: the framing
        // lies, so even the first 2 bytes cannot be trusted.
        let err = get_one(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok-extra").unwrap_err();
        match err {
            ClientError::ExcessBody { extra } => assert_eq!(extra, 6),
            other => panic!("expected ExcessBody, got {other:?}"),
        }
        assert!(!ClientError::ExcessBody { extra: 6 }.is_transport());
    }

    #[test]
    fn deadline_expiry_is_timeout() {
        // A server that accepts and never answers.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            if let Ok((stream, _)) = listener.accept() {
                std::thread::sleep(Duration::from_millis(400));
                drop(stream);
            }
        });
        let mut c = HttpClient::connect(addr).unwrap();
        let start = Instant::now();
        let err = c
            .request_deadline(
                "GET",
                "/x",
                None,
                Instant::now() + Duration::from_millis(60),
            )
            .unwrap_err();
        assert!(matches!(err, ClientError::Timeout), "{err:?}");
        assert!(err.is_transport());
        assert!(
            start.elapsed() < Duration::from_millis(350),
            "deadline ignored"
        );
        t.join().unwrap();
    }

    #[test]
    fn failed_connect_is_a_typed_transport_error() {
        // Bind a port, then close it: connecting is refused (or at
        // worst times out), never hangs past the connect timeout.
        let addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let start = Instant::now();
        let err =
            HttpClient::connect_with(addr, Duration::from_millis(200), Duration::from_secs(1))
                .err()
                .expect("connect to a closed port must fail");
        assert!(err.is_transport(), "{err:?}");
        assert!(start.elapsed() < Duration::from_secs(5), "connect hung");
    }

    #[test]
    fn spin_reads_parse_fast_and_slow_responses() {
        // Fast path: the scripted server answers immediately, inside
        // the spin window. Slow path: a delayed response forces the
        // spin window to expire and the blocking fallback to finish
        // the read. Both must parse identically to a plain client.
        let mut c = HttpClient::connect(scripted_server(
            b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok",
        ))
        .unwrap();
        c.set_spin(Some(Duration::from_micros(50)));
        let resp = c.get("/x").unwrap();
        assert_eq!((resp.status, resp.body.as_slice()), (200, b"ok".as_slice()));

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            if let Ok((mut stream, _)) = listener.accept() {
                let mut buf = [0u8; 4096];
                let _ = stream.read(&mut buf);
                // Well past any spin window.
                std::thread::sleep(Duration::from_millis(50));
                let _ = stream.write_all(
                    b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\nConnection: close\r\n\r\nslow",
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        });
        let mut c = HttpClient::connect(addr).unwrap();
        c.set_spin(Some(Duration::from_micros(50)));
        let resp = c
            .request_deadline("GET", "/x", None, Instant::now() + Duration::from_secs(5))
            .unwrap();
        assert_eq!(
            (resp.status, resp.body.as_slice()),
            (200, b"slow".as_slice())
        );
        t.join().unwrap();
    }

    #[test]
    fn client_error_converts_to_io_error_kinds() {
        let io: std::io::Error = ClientError::Timeout.into();
        assert_eq!(io.kind(), std::io::ErrorKind::TimedOut);
        let io: std::io::Error = ClientError::ClosedBeforeHead.into();
        assert_eq!(io.kind(), std::io::ErrorKind::UnexpectedEof);
        let io: std::io::Error = ClientError::ExcessBody { extra: 3 }.into();
        assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
    }
}
