//! A tiny std-only HTTP/1.1 client for the integration tests, benches,
//! and the browser-extension example.
//!
//! One [`HttpClient`] is one keep-alive TCP connection: every request
//! reuses the stream until the server answers `Connection: close` (the
//! caller can check [`ClientResponse::closed`] and reconnect).
//! [`HttpClient::send_raw`] writes arbitrary bytes, which is how the
//! malformed-input tests provoke 400/413/431 responses.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers: lowercased names, response order.
    pub headers: Vec<(String, String)>,
    /// Body bytes (exactly `Content-Length` of them).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (panics on non-UTF-8; responses here are JSON
    /// or plain text).
    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).expect("response body is UTF-8")
    }

    /// Deserialize the JSON body into a wire DTO.
    pub fn json<T: serde::Deserialize>(&self) -> serde_json::Result<T> {
        serde_json::from_slice(&self.body)
    }

    /// True when the server signalled it will close the connection.
    pub fn closed(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// One keep-alive connection to the server.
pub struct HttpClient {
    stream: TcpStream,
    /// Bytes read past the previous response (keep-alive residue).
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connect to `addr` with sane test timeouts (10 s reads).
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post_json(&mut self, path: &str, json: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(json.as_bytes()))
    }

    /// Send one request and read its response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> std::io::Result<ClientResponse> {
        let body = body.unwrap_or(&[]);
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: lightor\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let mut raw = head.into_bytes();
        raw.extend_from_slice(body);
        self.send_raw(&raw)
    }

    /// Write raw bytes (possibly a malformed request) and read one
    /// response back.
    pub fn send_raw(&mut self, raw: &[u8]) -> std::io::Result<ClientResponse> {
        self.stream.write_all(raw)?;
        self.read_response()
    }

    /// The underlying stream, for tests that need to write a partial
    /// request without reading a response yet.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let mut chunk = [0u8; 16 * 1024];
        let head_end = loop {
            if let Some(i) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i;
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before a full response head",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).to_string();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed status line: {status_line:?}"),
                )
            })?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                let name = name.to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "unparseable Content-Length in response",
                        )
                    })?;
                }
                headers.push((name, value));
            }
        }
        let body_start = head_end + 4;
        while self.buf.len() < body_start + content_length {
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}
