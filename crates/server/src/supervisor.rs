//! The supervisor control plane: warm standbys, continuous delta
//! replication, and unattended failover.
//!
//! PR 7 made shard migration a live *protocol* (export → freeze →
//! delta → ring swap) but left a human driving it. The supervisor is
//! that human, mechanized — a deterministic reconciliation loop:
//!
//! ```text
//!            ┌───────────── observe ─────────────┐
//!            │  GET router /healthz:             │
//!            │  ring members, health states,     │
//!            │  dwell times, ring_version        │
//!            └────────────────┬──────────────────┘
//!                             ▼
//!            ┌────────────── plan ───────────────┐
//!            │  per pair, in config order:       │
//!            │  standby in ring     → promoted   │
//!            │  primary left ring   → retired    │
//!            │  primary down        → promote    │
//!            │  never seeded        → bulk sync  │
//!            │  otherwise           → delta sync │
//!            └────────────────┬──────────────────┘
//!                             ▼
//!            ┌────────────── act ────────────────┐
//!            │  bounded actions per tick;        │
//!            │  failures retry next tick         │
//!            └───────────────────────────────────┘
//! ```
//!
//! The plan is derived *only* from the observation and the sync
//! ledger, never from what a previous incarnation believed — which is
//! what makes a supervisor restart mid-failover resume instead of
//! double-promote: if the ring already contains the standby, the
//! range is `promoted` no matter who swapped it; if it still contains
//! the dead primary, promotion re-runs from the top (the final-delta
//! import is idempotent, the ring swap is computed from a fresh
//! observation taken immediately before the POST).
//!
//! Promotion itself is the PR 7 runbook, executed: final delta from
//! the primary if it still answers, else
//! [`LightorService::bundle_from_dir`] on its data directory (the WAL
//! tail holds every acknowledged write — this is the zero-loss path
//! for a SIGKILLed shard), then `POST /admin/ring` on the router with
//! the standby substituted for the primary. The router admits the
//! standby through the existing `recovering` trial path.

use crate::client::{ClientError, HttpClient};
use crate::http::{Request, Response};
use crate::metrics::{HttpMetrics, RouteKey};
use crate::replicate::{sync_pair, ReplicaPair, ReplicaTracker, SyncTimeouts};
use crate::retry::XorShift64;
use crate::router::{resolve, Route};
use crate::server::Handler;
use lightor_platform::wire::{
    PromotionDto, ReplicaStatusDto, RingUpdateResponse, RouterHealthzResponse,
    SupervisorStatsResponse,
};
use lightor_platform::LightorService;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Supervisor tuning knobs.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// The router whose `/healthz` is observed and whose
    /// `POST /admin/ring` drives promotions.
    pub router: SocketAddr,
    /// The replicated ranges to maintain.
    pub pairs: Vec<ReplicaPair>,
    /// Base reconciliation cadence (each tick syncs deltas and checks
    /// health).
    pub tick_interval: Duration,
    /// Uniform jitter added to each tick's sleep so co-scheduled
    /// supervisors don't thundering-herd the same primaries.
    pub tick_jitter: Duration,
    /// TCP connect budget per sync/observe hop.
    pub connect_timeout: Duration,
    /// End-to-end budget per request (export, import, ring swap).
    pub request_timeout: Duration,
    /// Minimum time a primary must have dwelt in `down` before a
    /// promotion fires — 0 promotes on first sight (the router's own
    /// `down_after` threshold already debounced the signal).
    pub down_dwell: Duration,
    /// Expensive actions (syncs, promotions) allowed per tick; the
    /// rest wait for the next tick. Promotions are planned ahead of
    /// syncs so a dead primary never queues behind bulk copies.
    pub max_actions_per_tick: usize,
    /// Seed for the jitter RNG (fixed default; tests override).
    pub jitter_seed: u64,
}

impl SupervisorConfig {
    /// Defaults for a router address and a set of replicated ranges.
    pub fn new(router: SocketAddr, pairs: Vec<ReplicaPair>) -> Self {
        SupervisorConfig {
            router,
            pairs,
            tick_interval: Duration::from_millis(250),
            tick_jitter: Duration::from_millis(50),
            connect_timeout: Duration::from_millis(500),
            request_timeout: Duration::from_secs(2),
            down_dwell: Duration::ZERO,
            max_actions_per_tick: 2,
            jitter_seed: 0x5eed_5eed,
        }
    }

    fn sync_timeouts(&self) -> SyncTimeouts {
        SyncTimeouts {
            connect: self.connect_timeout,
            request: self.request_timeout,
        }
    }
}

/// One range's lifecycle phase (the wire names live in
/// [`ReplicaStatusDto::phase`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// No bulk seed yet — the standby may hold nothing.
    Bootstrapping,
    /// Seeded; the delta loop keeps it warm.
    Replicating,
    /// The primary is down and promotion is in flight.
    Promoting,
    /// The standby is in the ring — this range's job is done.
    Promoted,
    /// The primary left the ring without a promotion (a manual ring
    /// update superseded the supervisor); nothing left to drive.
    Retired,
}

impl Phase {
    /// Stable lowercase wire name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Bootstrapping => "bootstrapping",
            Phase::Replicating => "replicating",
            Phase::Promoting => "promoting",
            Phase::Promoted => "promoted",
            Phase::Retired => "retired",
        }
    }
}

/// One backend row from the router's `/healthz`, address-parsed.
#[derive(Clone, Debug)]
pub struct ObservedBackend {
    /// The ring member's address.
    pub addr: SocketAddr,
    /// Health-state name (`"healthy"`, `"suspect"`, `"down"`,
    /// `"recovering"`).
    pub health: String,
    /// Milliseconds the backend has dwelt in that state.
    pub last_transition_ms: u64,
}

/// A snapshot of the router's view of the cluster — everything the
/// planner reads.
#[derive(Clone, Debug)]
pub struct Observation {
    /// The ring version currently routing.
    pub ring_version: u64,
    /// Ring members with health, in ring order.
    pub backends: Vec<ObservedBackend>,
}

impl Observation {
    /// The row for `addr`, if it is a ring member.
    pub fn backend(&self, addr: SocketAddr) -> Option<&ObservedBackend> {
        self.backends.iter().find(|b| b.addr == addr)
    }

    /// Whether `addr` is a ring member.
    pub fn in_ring(&self, addr: SocketAddr) -> bool {
        self.backend(addr).is_some()
    }
}

/// One planned step, targeting a range by config index. Note actions
/// are free bookkeeping; the rest do network I/O and count against
/// [`SupervisorConfig::max_actions_per_tick`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// The standby is already in the ring — record the range as done.
    NotePromoted {
        /// Config index of the range.
        range: usize,
    },
    /// The primary left the ring without a promotion.
    NoteRetired {
        /// Config index of the range.
        range: usize,
    },
    /// The primary is down: final delta + ring swap.
    Promote {
        /// Config index of the range.
        range: usize,
    },
    /// Seed the standby with a full bundle.
    BulkSync {
        /// Config index of the range.
        range: usize,
    },
    /// Ship state changed since the last watermark.
    DeltaSync {
        /// Config index of the range.
        range: usize,
    },
}

impl Action {
    fn is_expensive(self) -> bool {
        !matches!(
            self,
            Action::NotePromoted { .. } | Action::NoteRetired { .. }
        )
    }
}

/// What one reconciliation tick did — returned for tests and logging;
/// the cumulative story lives in [`Supervisor::stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct TickReport {
    /// Whether the router answered `/healthz`.
    pub observed: bool,
    /// Actions the planner emitted (before the per-tick bound).
    pub planned: usize,
    /// Actions that ran and succeeded.
    pub executed: usize,
    /// Actions that ran and failed (they retry next tick).
    pub failed: usize,
}

struct RangeState {
    pair: ReplicaPair,
    tracker: ReplicaTracker,
    phase: Phase,
}

struct PromotionRecord {
    dto: PromotionDto,
    at: Instant,
}

/// The reconciliation loop and its ledger. All methods take `&self`;
/// a single ticker thread drives [`Supervisor::tick`] while the HTTP
/// handler reads [`Supervisor::stats`] concurrently.
pub struct Supervisor {
    cfg: SupervisorConfig,
    ranges: Mutex<Vec<RangeState>>,
    ticks: AtomicU64,
    actions: AtomicU64,
    promotions: AtomicU64,
    last_promotion: Mutex<Option<PromotionRecord>>,
    shutdown: AtomicBool,
    rng: Mutex<XorShift64>,
}

impl Supervisor {
    /// Build a supervisor over `cfg`. Every range starts
    /// `bootstrapping`; the first tick seeds the standbys.
    pub fn new(cfg: SupervisorConfig) -> Self {
        let ranges = cfg
            .pairs
            .iter()
            .map(|pair| RangeState {
                pair: pair.clone(),
                tracker: ReplicaTracker::default(),
                phase: Phase::Bootstrapping,
            })
            .collect();
        let rng = XorShift64::new(cfg.jitter_seed);
        Supervisor {
            cfg,
            ranges: Mutex::new(ranges),
            ticks: AtomicU64::new(0),
            actions: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            last_promotion: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            rng: Mutex::new(rng),
        }
    }

    /// The configured tick cadence plus a fresh jitter draw.
    pub fn next_sleep(&self) -> Duration {
        let jitter_us = self.cfg.tick_jitter.as_micros() as u64;
        let draw = self
            .rng
            .lock()
            .expect("rng lock poisoned")
            .below(jitter_us + 1);
        self.cfg.tick_interval + Duration::from_micros(draw)
    }

    /// Fetch the router's `/healthz` and parse it into an
    /// [`Observation`]. Rows whose address fails to parse are dropped
    /// (they can only come from a router speaking a different wire
    /// dialect; the planner must not act on them).
    pub fn observe(&self) -> Result<Observation, ClientError> {
        let t = self.cfg.sync_timeouts();
        let mut conn = HttpClient::connect_with(self.cfg.router, t.connect, t.request)?;
        let deadline = Instant::now() + t.request;
        let resp = conn.request_deadline("GET", "/healthz", None, deadline)?;
        if resp.status != 200 {
            return Err(ClientError::Io(std::io::Error::other(format!(
                "router /healthz answered {}",
                resp.status
            ))));
        }
        let dto: RouterHealthzResponse = resp
            .json()
            .map_err(|e| ClientError::Io(std::io::Error::other(format!("healthz body: {e}"))))?;
        Ok(Observation {
            ring_version: dto.ring_version,
            backends: dto
                .backends
                .into_iter()
                .filter_map(|b| {
                    Some(ObservedBackend {
                        addr: b.addr.parse().ok()?,
                        health: b.health,
                        last_transition_ms: b.last_transition_ms,
                    })
                })
                .collect(),
        })
    }

    /// Derive this tick's actions from `obs` — pure (no I/O, no state
    /// writes), deterministic in config order, promotions ahead of
    /// syncs, expensive actions bounded by
    /// [`SupervisorConfig::max_actions_per_tick`].
    pub fn plan(&self, obs: &Observation) -> Vec<Action> {
        let ranges = self.ranges.lock().expect("ranges lock poisoned");
        let mut notes = Vec::new();
        let mut promotes = Vec::new();
        let mut syncs = Vec::new();
        for (range, st) in ranges.iter().enumerate() {
            match st.phase {
                Phase::Promoted | Phase::Retired => continue,
                _ => {}
            }
            if obs.in_ring(st.pair.standby) {
                // Whoever swapped it — this incarnation, a dead one,
                // or an operator — the range is done.
                notes.push(Action::NotePromoted { range });
                continue;
            }
            let Some(primary) = obs.backend(st.pair.primary) else {
                notes.push(Action::NoteRetired { range });
                continue;
            };
            let down_long_enough = primary.health == "down"
                && Duration::from_millis(primary.last_transition_ms) >= self.cfg.down_dwell;
            if down_long_enough || st.phase == Phase::Promoting {
                promotes.push(Action::Promote { range });
            } else if st.tracker.synced_seq.is_none() {
                syncs.push(Action::BulkSync { range });
            } else {
                syncs.push(Action::DeltaSync { range });
            }
        }
        let mut plan = notes;
        let mut budget = self.cfg.max_actions_per_tick;
        for a in promotes.into_iter().chain(syncs) {
            if budget == 0 {
                break;
            }
            budget -= 1;
            plan.push(a);
        }
        plan
    }

    /// One observe → plan → act cycle.
    pub fn tick(&self) -> TickReport {
        let mut report = TickReport::default();
        let obs = match self.observe() {
            Ok(obs) => obs,
            Err(_) => {
                // The router is unreachable; nothing can be planned
                // safely (promoting without an observed ring risks
                // acting on a stale world). Retry next tick.
                self.ticks.fetch_add(1, Ordering::Relaxed);
                return report;
            }
        };
        report.observed = true;
        let plan = self.plan(&obs);
        report.planned = plan.len();
        for action in plan {
            if action.is_expensive() {
                self.actions.fetch_add(1, Ordering::Relaxed);
            }
            if self.act(action) {
                report.executed += 1;
            } else {
                report.failed += 1;
            }
        }
        self.ticks.fetch_add(1, Ordering::Relaxed);
        report
    }

    /// Execute one action; `false` means it failed and will be
    /// re-planned next tick.
    fn act(&self, action: Action) -> bool {
        match action {
            Action::NotePromoted { range } => {
                self.set_phase(range, Phase::Promoted);
                true
            }
            Action::NoteRetired { range } => {
                self.set_phase(range, Phase::Retired);
                true
            }
            Action::BulkSync { range } | Action::DeltaSync { range } => self.sync(range),
            Action::Promote { range } => self.promote(range),
        }
    }

    fn set_phase(&self, range: usize, phase: Phase) {
        let mut ranges = self.ranges.lock().expect("ranges lock poisoned");
        ranges[range].phase = phase;
    }

    /// One sync step for `range` (bulk or delta, decided by the
    /// ledger). The ranges lock is *not* held across the network I/O;
    /// the single-ticker discipline makes the copy-out/copy-back
    /// race-free.
    fn sync(&self, range: usize) -> bool {
        let (pair, mut tracker) = {
            let ranges = self.ranges.lock().expect("ranges lock poisoned");
            let st = &ranges[range];
            (st.pair.clone(), st.tracker.clone())
        };
        let ok = sync_pair(&pair, &mut tracker, self.cfg.sync_timeouts()).is_ok();
        let mut ranges = self.ranges.lock().expect("ranges lock poisoned");
        let st = &mut ranges[range];
        st.tracker = tracker;
        if ok && st.phase == Phase::Bootstrapping {
            st.phase = Phase::Replicating;
        }
        ok
    }

    /// The final pre-swap delta for `range`: live export from the
    /// primary when it still answers, else a full bundle rebuilt from
    /// its data directory (every acknowledged write is in the WAL
    /// tail), else nothing — the standby is promoted at its last
    /// synced watermark. Returns the source actually used (`"live"`,
    /// `"data_dir"`, `"none"`). Public so the promotion-idempotency
    /// test can crash a supervisor exactly between this step and the
    /// ring swap.
    pub fn final_delta(&self, range: usize) -> &'static str {
        let (pair, mut tracker) = {
            let ranges = self.ranges.lock().expect("ranges lock poisoned");
            let st = &ranges[range];
            (st.pair.clone(), st.tracker.clone())
        };
        let t = self.cfg.sync_timeouts();
        let source = if sync_pair(&pair, &mut tracker, t).is_ok() {
            "live"
        } else {
            pair.primary_data_dir
                .as_deref()
                .and_then(|dir| {
                    let bundle = LightorService::bundle_from_dir(dir).ok()?;
                    let raw = serde_json::to_string(&bundle).ok()?;
                    crate::replicate::ship_bundle(pair.standby, raw.as_bytes(), t).ok()?;
                    tracker.synced_seq =
                        Some(bundle.as_of_seq.max(tracker.synced_seq.unwrap_or(0)));
                    tracker.primary_seq = bundle.as_of_seq.max(tracker.primary_seq);
                    tracker.last_sync = Some(Instant::now());
                    Some("data_dir")
                })
                .unwrap_or("none")
        };
        let mut ranges = self.ranges.lock().expect("ranges lock poisoned");
        let st = &mut ranges[range];
        st.tracker = tracker;
        st.phase = Phase::Promoting;
        source
    }

    /// Swap the standby in for the primary on the router's ring. The
    /// desired member set is computed from a *fresh* observation
    /// taken here, not the one the plan saw: between planning and
    /// acting another promotion (this supervisor's or anyone else's)
    /// may have changed the ring, and re-deriving from the live ring
    /// is what keeps the swap idempotent — if the standby is already
    /// a member, there is nothing to POST. Returns the ring version
    /// that routes the standby. Public for the promotion-idempotency
    /// test.
    pub fn swap_ring(&self, range: usize) -> Result<u64, ClientError> {
        let pair = {
            let ranges = self.ranges.lock().expect("ranges lock poisoned");
            ranges[range].pair.clone()
        };
        let obs = self.observe()?;
        if obs.in_ring(pair.standby) {
            return Ok(obs.ring_version);
        }
        let desired: Vec<String> = obs
            .backends
            .iter()
            .map(|b| {
                if b.addr == pair.primary {
                    pair.standby.to_string()
                } else {
                    b.addr.to_string()
                }
            })
            .collect();
        let body =
            serde_json::to_string(&lightor_platform::wire::RingUpdateRequest { backends: desired })
                .expect("ring request serializes");
        let t = self.cfg.sync_timeouts();
        let mut conn = HttpClient::connect_with(self.cfg.router, t.connect, t.request)?;
        let deadline = Instant::now() + t.request;
        let resp = conn.request_deadline("POST", "/admin/ring", Some(body.as_bytes()), deadline)?;
        if resp.status != 200 {
            return Err(ClientError::Io(std::io::Error::other(format!(
                "ring swap answered {}: {}",
                resp.status,
                resp.body_str()
            ))));
        }
        let applied: RingUpdateResponse = resp
            .json()
            .map_err(|e| ClientError::Io(std::io::Error::other(format!("ring body: {e}"))))?;
        Ok(applied.version)
    }

    /// Drive one full promotion for `range`: final delta, then ring
    /// swap, then bookkeeping. `false` leaves the range `promoting`
    /// for the next tick to resume.
    fn promote(&self, range: usize) -> bool {
        let source = self.final_delta(range);
        let version = match self.swap_ring(range) {
            Ok(v) => v,
            Err(_) => return false,
        };
        let pair = {
            let mut ranges = self.ranges.lock().expect("ranges lock poisoned");
            ranges[range].phase = Phase::Promoted;
            ranges[range].pair.clone()
        };
        self.promotions.fetch_add(1, Ordering::Relaxed);
        let mut last = self.last_promotion.lock().expect("promotion lock poisoned");
        *last = Some(PromotionRecord {
            dto: PromotionDto {
                from: pair.primary.to_string(),
                to: pair.standby.to_string(),
                ring_version: version,
                ms_ago: 0,
                final_delta_source: source.to_string(),
            },
            at: Instant::now(),
        });
        true
    }

    /// The current [`SupervisorStatsResponse`] — the body of
    /// `GET /stats`.
    pub fn stats(&self) -> SupervisorStatsResponse {
        let now = Instant::now();
        let ranges = self.ranges.lock().expect("ranges lock poisoned");
        let ranges = ranges
            .iter()
            .map(|st| ReplicaStatusDto {
                primary: st.pair.primary.to_string(),
                standby: st.pair.standby.to_string(),
                phase: st.phase.name().to_string(),
                synced_seq: st.tracker.synced_seq.unwrap_or(0),
                lag_ops: st.tracker.lag_ops(),
                lag_ms: st.tracker.lag_ms(now),
                deltas_shipped: st.tracker.deltas_shipped,
                bulk_syncs: st.tracker.bulk_syncs,
            })
            .collect();
        let last_promotion = self
            .last_promotion
            .lock()
            .expect("promotion lock poisoned")
            .as_ref()
            .map(|rec| PromotionDto {
                ms_ago: now.saturating_duration_since(rec.at).as_millis() as u64,
                ..rec.dto.clone()
            });
        SupervisorStatsResponse {
            ticks: self.ticks.load(Ordering::Relaxed),
            actions: self.actions.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            last_promotion,
            ranges,
        }
    }

    /// The phase of `range` — test/debug peek.
    pub fn phase(&self, range: usize) -> Phase {
        self.ranges.lock().expect("ranges lock poisoned")[range].phase
    }

    /// The ticker loop: tick, sleep jittered, until shutdown.
    fn run(self: &Arc<Self>) {
        while !self.shutdown.load(Ordering::SeqCst) {
            self.tick();
            let sleep = self.next_sleep();
            // Sleep in small slices so shutdown is prompt.
            let deadline = Instant::now() + sleep;
            while Instant::now() < deadline && !self.shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

impl Handler for Supervisor {
    fn handle(&self, req: &Request, _metrics: &HttpMetrics) -> (RouteKey, Response) {
        let route = match resolve(&req.method, &req.path) {
            Ok(r) => r,
            Err(e) => return (RouteKey::Other, e.response()),
        };
        match route {
            Route::Healthz => (RouteKey::Healthz, Response::text(200, "ok\n")),
            Route::Stats => (RouteKey::Stats, Response::json(200, &self.stats())),
            _ => (
                RouteKey::Other,
                Response::error(
                    404,
                    "not_found",
                    "the supervisor serves /healthz and /stats only",
                ),
            ),
        }
    }
}

/// A running supervisor: an HTTP server for `/healthz` + `/stats`
/// plus the background reconciliation ticker.
pub struct SupervisorServer {
    server: Option<crate::server::HttpServer>,
    supervisor: Arc<Supervisor>,
    ticker: Option<std::thread::JoinHandle<()>>,
}

impl SupervisorServer {
    /// Bind `addr` for observability and start reconciling `cfg`.
    pub fn bind(
        addr: impl std::net::ToSocketAddrs,
        cfg: SupervisorConfig,
        server_cfg: crate::server::ServerConfig,
    ) -> std::io::Result<Self> {
        let supervisor = Arc::new(Supervisor::new(cfg));
        let server = crate::server::HttpServer::bind_handler(addr, supervisor.clone(), server_cfg)?;
        let ticker = {
            let supervisor = supervisor.clone();
            std::thread::Builder::new()
                .name("supervisor-ticker".into())
                .spawn(move || supervisor.run())?
        };
        Ok(SupervisorServer {
            server: Some(server),
            supervisor,
            ticker: Some(ticker),
        })
    }

    /// The supervisor's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.as_ref().expect("server running").local_addr()
    }

    /// The supervisor behind this server (stats peeks in tests).
    pub fn supervisor(&self) -> &Arc<Supervisor> {
        &self.supervisor
    }

    /// Graceful shutdown: stop the ticker, drain the HTTP server.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.supervisor.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.ticker.take() {
            let _ = t.join();
        }
        if let Some(s) = self.server.take() {
            s.shutdown();
        }
    }
}

impl Drop for SupervisorServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(p: u16, s: u16) -> ReplicaPair {
        ReplicaPair {
            primary: format!("127.0.0.1:{p}").parse().unwrap(),
            standby: format!("127.0.0.1:{s}").parse().unwrap(),
            primary_data_dir: None,
        }
    }

    fn observation(rows: &[(u16, &str, u64)]) -> Observation {
        Observation {
            ring_version: 1,
            backends: rows
                .iter()
                .map(|&(port, health, dwell)| ObservedBackend {
                    addr: format!("127.0.0.1:{port}").parse().unwrap(),
                    health: health.to_string(),
                    last_transition_ms: dwell,
                })
                .collect(),
        }
    }

    fn supervisor(pairs: Vec<ReplicaPair>) -> Supervisor {
        // The router address is never dialed by `plan` (pure).
        Supervisor::new(SupervisorConfig::new("127.0.0.1:1".parse().unwrap(), pairs))
    }

    #[test]
    fn plan_bootstraps_then_deltas_a_healthy_pair() {
        let sup = supervisor(vec![pair(7801, 7901)]);
        let obs = observation(&[(7801, "healthy", 5_000), (7802, "healthy", 5_000)]);
        assert_eq!(sup.plan(&obs), vec![Action::BulkSync { range: 0 }]);

        // Pretend the bulk seed landed.
        {
            let mut ranges = sup.ranges.lock().unwrap();
            ranges[0].tracker.synced_seq = Some(40);
            ranges[0].phase = Phase::Replicating;
        }
        assert_eq!(sup.plan(&obs), vec![Action::DeltaSync { range: 0 }]);
    }

    #[test]
    fn plan_promotes_a_down_primary_and_respects_dwell() {
        let mut cfg = SupervisorConfig::new("127.0.0.1:1".parse().unwrap(), vec![pair(7801, 7901)]);
        cfg.down_dwell = Duration::from_millis(200);
        let sup = Supervisor::new(cfg);
        {
            let mut ranges = sup.ranges.lock().unwrap();
            ranges[0].tracker.synced_seq = Some(40);
            ranges[0].phase = Phase::Replicating;
        }

        // Down, but not long enough: keep replicating (the export
        // will fail against a dead primary, but that is a harmless
        // failed sync, not a premature promotion).
        let blip = observation(&[(7801, "down", 80), (7802, "healthy", 5_000)]);
        assert_eq!(sup.plan(&blip), vec![Action::DeltaSync { range: 0 }]);

        // Past the dwell: promote.
        let dead = observation(&[(7801, "down", 900), (7802, "healthy", 5_000)]);
        assert_eq!(sup.plan(&dead), vec![Action::Promote { range: 0 }]);

        // A suspect primary is NOT promoted — the router still routes
        // to it.
        let wobbly = observation(&[(7801, "suspect", 900), (7802, "healthy", 5_000)]);
        assert_eq!(sup.plan(&wobbly), vec![Action::DeltaSync { range: 0 }]);
    }

    #[test]
    fn plan_is_idempotent_across_a_supervisor_restart() {
        // A fresh supervisor (restart mid-failover) observing a ring
        // that already contains the standby must conclude "promoted",
        // never re-promote.
        let sup = supervisor(vec![pair(7801, 7901)]);
        let swapped = observation(&[(7901, "recovering", 50), (7802, "healthy", 5_000)]);
        assert_eq!(sup.plan(&swapped), vec![Action::NotePromoted { range: 0 }]);
        assert!(sup.act(Action::NotePromoted { range: 0 }));
        assert_eq!(sup.phase(0), Phase::Promoted);
        // Terminal: nothing further is ever planned for the range.
        assert!(sup.plan(&swapped).is_empty());
    }

    #[test]
    fn plan_retires_a_range_whose_primary_left_the_ring() {
        let sup = supervisor(vec![pair(7801, 7901)]);
        // Neither primary nor standby in the ring: an operator
        // re-rung the cluster around the supervisor.
        let rerung = observation(&[(7803, "healthy", 5_000), (7804, "healthy", 5_000)]);
        assert_eq!(sup.plan(&rerung), vec![Action::NoteRetired { range: 0 }]);
        assert!(sup.act(Action::NoteRetired { range: 0 }));
        assert_eq!(sup.phase(0), Phase::Retired);
        assert!(sup.plan(&rerung).is_empty());
    }

    #[test]
    fn plan_bounds_expensive_actions_and_prioritizes_promotions() {
        let mut cfg = SupervisorConfig::new(
            "127.0.0.1:1".parse().unwrap(),
            vec![pair(7801, 7901), pair(7802, 7902), pair(7803, 7903)],
        );
        cfg.max_actions_per_tick = 2;
        let sup = Supervisor::new(cfg);
        {
            let mut ranges = sup.ranges.lock().unwrap();
            for r in ranges.iter_mut() {
                r.tracker.synced_seq = Some(10);
                r.phase = Phase::Replicating;
            }
        }
        // Range 2's primary is down; ranges 0 and 1 want deltas. The
        // promote must not queue behind the syncs, and only 2 of the
        // 3 actions run this tick.
        let obs = observation(&[
            (7801, "healthy", 5_000),
            (7802, "healthy", 5_000),
            (7803, "down", 900),
        ]);
        let plan = sup.plan(&obs);
        assert_eq!(
            plan,
            vec![Action::Promote { range: 2 }, Action::DeltaSync { range: 0 }]
        );
    }

    #[test]
    fn phase_names_are_wire_stable() {
        assert_eq!(Phase::Bootstrapping.name(), "bootstrapping");
        assert_eq!(Phase::Replicating.name(), "replicating");
        assert_eq!(Phase::Promoting.name(), "promoting");
        assert_eq!(Phase::Promoted.name(), "promoted");
        assert_eq!(Phase::Retired.name(), "retired");
    }
}
