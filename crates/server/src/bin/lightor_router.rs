//! `lightor-router` — the cluster-mode front door: consistent-hash
//! video ids across N `lightor-serve` backends, health-check each one,
//! and proxy the single-node route table with deadlines and bounded
//! retries.
//!
//! ```text
//! lightor-router --backend HOST:PORT [--backend HOST:PORT ...]
//!                [--port N] [--workers N] [--request-timeout-ms N]
//! ```
//!
//! Defaults: port 7979, 4 workers, 2000 ms per-request deadline.
//! Prints one `listening on http://…` line once bound (smoke tests
//! grep for it), then routes until killed.
//!
//! The `--backend` list is only the *boot* ring: `POST /admin/ring`
//! swaps in a new backend set at runtime (live resharding, shard
//! replacement) — see the operations runbook in the `lightor_server`
//! crate docs for the full migration recipes.

use lightor_server::cluster::{ClusterConfig, RouterServer};
use lightor_server::ServerConfig;
use std::net::SocketAddr;
use std::time::Duration;

struct Args {
    port: u16,
    workers: usize,
    backends: Vec<SocketAddr>,
    request_timeout: Duration,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        port: 7979,
        workers: 4,
        backends: Vec::new(),
        request_timeout: Duration::from_millis(2000),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--port" => {
                args.port = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--backend" => args.backends.push(
                value("--backend")?
                    .parse()
                    .map_err(|e| format!("--backend: {e}"))?,
            ),
            "--request-timeout-ms" => {
                args.request_timeout = Duration::from_millis(
                    value("--request-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--request-timeout-ms: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.backends.is_empty() {
        return Err("at least one --backend is required".into());
    }
    Ok(args)
}

fn main() -> std::io::Result<()> {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lightor-router: {e}");
            eprintln!(
                "usage: lightor-router --backend HOST:PORT [--backend HOST:PORT ...] \
                 [--port N] [--workers N] [--request-timeout-ms N]"
            );
            std::process::exit(2);
        }
    };

    let cluster_cfg = ClusterConfig {
        request_timeout: args.request_timeout,
        ..ClusterConfig::new(args.backends)
    };
    let server = RouterServer::bind(
        ("127.0.0.1", args.port),
        cluster_cfg,
        ServerConfig {
            workers: args.workers.max(1),
            ..ServerConfig::default()
        },
    )?;
    // The readiness line smoke tests grep for.
    println!("lightor-router listening on http://{}", server.local_addr());

    // Route until killed (std-only: no signal handling; the process
    // owner — CI, an operator, a supervisor — terminates us).
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
