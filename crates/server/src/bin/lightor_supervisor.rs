//! `lightor-supervisor` — the cluster's replication and failover
//! control plane: keep one warm standby per watched primary by
//! shipping delta bundles continuously, watch the router's `/healthz`,
//! and when a primary trips `down`, promote its standby with a live
//! ring update — no operator in the loop.
//!
//! ```text
//! lightor-supervisor --router HOST:PORT
//!                    --pair PRIMARY,STANDBY[,DATA_DIR]
//!                    [--pair ...] [--port N] [--workers N]
//!                    [--tick-ms N] [--down-dwell-ms N]
//!                    [--request-timeout-ms N]
//! ```
//!
//! Defaults: port 7990, 2 workers, 250 ms tick, 0 ms down dwell,
//! 2000 ms per-request deadline. `DATA_DIR` is the primary's data
//! directory when it is reachable from this process — the zero-loss
//! final-delta path for a primary that dies without answering a last
//! export. Prints one `listening on http://…` line once bound (smoke
//! tests grep for it), then reconciles until killed. `GET /stats`
//! reports per-range lag, phases, and promotions.

use lightor_server::replicate::ReplicaPair;
use lightor_server::supervisor::{SupervisorConfig, SupervisorServer};
use lightor_server::ServerConfig;
use std::net::SocketAddr;
use std::time::Duration;

struct Args {
    port: u16,
    workers: usize,
    router: Option<SocketAddr>,
    pairs: Vec<ReplicaPair>,
    tick: Duration,
    down_dwell: Duration,
    request_timeout: Duration,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        port: 7990,
        workers: 2,
        router: None,
        pairs: Vec::new(),
        tick: Duration::from_millis(250),
        down_dwell: Duration::ZERO,
        request_timeout: Duration::from_millis(2000),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--port" => {
                args.port = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--router" => {
                args.router = Some(
                    value("--router")?
                        .parse()
                        .map_err(|e| format!("--router: {e}"))?,
                )
            }
            "--pair" => args.pairs.push(ReplicaPair::parse(&value("--pair")?)?),
            "--tick-ms" => {
                args.tick = Duration::from_millis(
                    value("--tick-ms")?
                        .parse()
                        .map_err(|e| format!("--tick-ms: {e}"))?,
                )
            }
            "--down-dwell-ms" => {
                args.down_dwell = Duration::from_millis(
                    value("--down-dwell-ms")?
                        .parse()
                        .map_err(|e| format!("--down-dwell-ms: {e}"))?,
                )
            }
            "--request-timeout-ms" => {
                args.request_timeout = Duration::from_millis(
                    value("--request-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--request-timeout-ms: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.router.is_none() {
        return Err("--router is required".into());
    }
    if args.pairs.is_empty() {
        return Err("at least one --pair PRIMARY,STANDBY[,DATA_DIR] is required".into());
    }
    Ok(args)
}

fn main() -> std::io::Result<()> {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lightor-supervisor: {e}");
            eprintln!(
                "usage: lightor-supervisor --router HOST:PORT \
                 --pair PRIMARY,STANDBY[,DATA_DIR] [--pair ...] \
                 [--port N] [--workers N] [--tick-ms N] \
                 [--down-dwell-ms N] [--request-timeout-ms N]"
            );
            std::process::exit(2);
        }
    };

    let cfg = SupervisorConfig {
        tick_interval: args.tick,
        down_dwell: args.down_dwell,
        request_timeout: args.request_timeout,
        ..SupervisorConfig::new(args.router.expect("validated above"), args.pairs)
    };
    let server = SupervisorServer::bind(
        ("127.0.0.1", args.port),
        cfg,
        ServerConfig {
            workers: args.workers.max(1),
            ..ServerConfig::default()
        },
    )?;
    // The readiness line smoke tests grep for.
    println!(
        "lightor-supervisor listening on http://{}",
        server.local_addr()
    );

    // Reconcile until killed (std-only: no signal handling; the
    // process owner — CI, an operator — terminates us).
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
