//! `lightor-serve` — run the paper's web service end to end from one
//! command: train models on simulated labelled data, open the durable
//! service, and serve the browser-extension routes over HTTP.
//!
//! ```text
//! lightor-serve [--port N] [--data-dir PATH] [--workers N] [--seed N] [--quick]
//!               [--restore-from PATH]
//! ```
//!
//! Defaults: port 7878, a fresh temp data dir, 4 workers. `--quick`
//! shrinks the training corpus and simulated platform so a backend
//! boots in a fraction of the time — for smoke tests and the chaos
//! harness, which start several backends per run. Prints one
//! `listening on http://…` line once the socket is bound (smoke tests
//! wait for it) and one `catalog: <id> <id> …` line listing the
//! simulated platform's video ids (the chaos harness shards load by
//! them), then serves until killed. Before binding it also warms every
//! already-crawled corpus and prints `corpus: N loaded, M rebuilt` —
//! `loaded` decoded straight from persisted v3 tokenized sections,
//! `rebuilt` re-tokenized from raw text (a restart of a populated data
//! dir reports `0 rebuilt`).
//!
//! `--restore-from PATH` is the crash-replacement path: PATH is a dead
//! backend's data directory. Before the socket binds, its chat segments
//! and KV state (snapshot + WAL tail — [`KvStore`] replay picks up
//! every acknowledged write) are read into a bundle and imported into
//! this process's own fresh data dir, so the replacement answers for
//! the dead shard's videos the moment the `listening` line prints.
//! Prints one `restored: N videos from PATH` line before the banner.
//!
//! [`KvStore`]: lightor_platform::store::KvStore

use lightor::{ExtractorConfig, FeatureSet, HighlightExtractor, ModelBundle};
use lightor_chatsim::{dota2_dataset, SimPlatform};
use lightor_crowdsim::Campaign;
use lightor_eval::harness::{train_initializer, train_type_classifier};
use lightor_platform::{LightorService, ServiceConfig};
use lightor_server::{HttpServer, ServerConfig};
use lightor_types::GameKind;
use std::sync::Arc;

struct Args {
    port: u16,
    data_dir: Option<std::path::PathBuf>,
    workers: usize,
    seed: u64,
    quick: bool,
    restore_from: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        port: 7878,
        data_dir: None,
        workers: 4,
        seed: 71,
        quick: false,
        restore_from: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--port" => {
                args.port = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?
            }
            "--data-dir" => args.data_dir = Some(value("--data-dir")?.into()),
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--quick" => args.quick = true,
            "--restore-from" => args.restore_from = Some(value("--restore-from")?.into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> std::io::Result<()> {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lightor-serve: {e}");
            eprintln!(
                "usage: lightor-serve [--port N] [--data-dir PATH] [--workers N] [--seed N] \
                 [--quick] [--restore-from PATH]"
            );
            std::process::exit(2);
        }
    };

    // Offline phase: train the Initializer and the play-position type
    // classifier on simulated labelled videos (same recipe as the
    // browser-extension example). Wall time is reported via
    // `GET /stats` (`train_boot_ms`) so operators can see what a boot
    // cost without scraping logs.
    eprintln!("training models (seed {})...", args.seed);
    let train_started = std::time::Instant::now();
    let labelled = dota2_dataset(1, args.seed);
    let train: Vec<_> = labelled.videos.iter().collect();
    let workers_budget = if args.quick { 60 } else { 300 };
    let mut campaign = Campaign::new(workers_budget, args.seed ^ 1);
    let initializer = train_initializer(&train, FeatureSet::Full);
    let (classifier, _) = train_type_classifier(&train, &mut campaign, 4, args.seed ^ 2);
    let models = ModelBundle {
        initializer,
        extractor: HighlightExtractor::new(classifier, ExtractorConfig::default()),
        provenance: format!("lightor-serve seed {}", args.seed),
    };
    let train_boot_ms = train_started.elapsed().as_millis() as u64;

    let (channels, per_channel) = if args.quick { (2, 2) } else { (3, 4) };
    let platform = SimPlatform::top_channels(GameKind::Dota2, channels, per_channel, args.seed ^ 3);
    let mut catalog: Vec<u64> = platform.all_videos().map(|v| v.video.meta.id.0).collect();
    catalog.sort_unstable();
    let data_dir = args.data_dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("lightor-serve-{}", std::process::id()))
    });
    let svc = Arc::new(LightorService::open(
        &data_dir,
        models,
        platform,
        ServiceConfig::default(),
    )?);
    svc.set_train_boot_ms(train_boot_ms);

    // Crash replacement: adopt a dead backend's range before taking
    // traffic. The dead dir's WAL replay happens inside
    // `bundle_from_dir`, so everything the old process acknowledged —
    // including writes that never made it into a snapshot — lands here.
    if let Some(dead_dir) = &args.restore_from {
        let bundle = LightorService::bundle_from_dir(dead_dir)?;
        let applied = svc.import_bundle(&bundle)?;
        println!(
            "restored: {} videos from {}",
            applied.videos,
            dead_dir.display()
        );
    }

    // Warm every already-crawled video's scoring corpus before taking
    // traffic. With the v3 tokenized sections in place this is a decode,
    // not a re-tokenization: a restart of a populated data dir prints
    // `corpus: N loaded, 0 rebuilt` (the CI server smoke asserts the
    // `0 rebuilt` half — restarts must never re-run the tokenizer).
    let (loaded, rebuilt) = svc.warm_corpora()?;
    println!("corpus: {loaded} loaded, {rebuilt} rebuilt");

    let server = HttpServer::bind(
        ("127.0.0.1", args.port),
        svc,
        ServerConfig {
            workers: args.workers.max(1),
            ..ServerConfig::default()
        },
    )?;
    // The readiness line smoke tests grep for.
    println!("lightor-serve listening on http://{}", server.local_addr());
    // The video ids this backend's simulated platform knows — the
    // chaos harness and cluster smoke test drive load against these.
    println!(
        "catalog: {}",
        catalog
            .iter()
            .map(|id| id.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    eprintln!("data dir: {}", data_dir.display());

    // Serve until killed (std-only: no signal handling; the process
    // owner — CI, an operator, a supervisor — terminates us).
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
