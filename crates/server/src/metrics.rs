//! Per-route serving counters, merged into `GET /stats`.
//!
//! Lock-free: each route keeps four atomics (requests, errors,
//! cumulative latency, max latency), bumped once per response on the
//! worker thread and snapshotted into [`RouteStatsDto`] rows when
//! `/stats` is served. Unroutable traffic (404s, parse errors, 503
//! load-sheds) lands in the `"other"` bucket so nothing is invisible.

use lightor_platform::wire::RouteStatsDto;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The fixed route set the server exposes (plus the catch-all).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteKey {
    /// `GET /healthz`
    Healthz = 0,
    /// `GET /video/{id}/dots`
    Dots = 1,
    /// `POST /video/{id}/rescore`
    Rescore = 2,
    /// `POST /sessions`
    Sessions = 3,
    /// `GET /stats`
    Stats = 4,
    /// `POST /admin/compact`
    Compact = 5,
    /// `POST /admin/export`
    Export = 6,
    /// `POST /admin/import`
    Import = 7,
    /// `POST /admin/ring`
    Ring = 8,
    /// `POST /sessions/stream`
    SessionsStream = 9,
    /// Anything unroutable: 404/405, parse errors, load-sheds.
    Other = 10,
}

/// Route templates, indexed by [`RouteKey`].
pub const ROUTE_NAMES: [&str; 11] = [
    "GET /healthz",
    "GET /video/{id}/dots",
    "POST /video/{id}/rescore",
    "POST /sessions",
    "GET /stats",
    "POST /admin/compact",
    "POST /admin/export",
    "POST /admin/import",
    "POST /admin/ring",
    "POST /sessions/stream",
    "other",
];

#[derive(Default)]
struct RouteCounters {
    requests: AtomicU64,
    errors: AtomicU64,
    latency_total_us: AtomicU64,
    latency_max_us: AtomicU64,
}

/// Streamed-ingest counters (`POST /sessions/stream`), alongside the
/// per-route request rows: NDJSON lines accepted/rejected, batches
/// folded into refinement state vs recognized as replays, and the
/// open-stream gauge (`opened − completed`).
#[derive(Default)]
pub struct StreamMetrics {
    lines_accepted: AtomicU64,
    lines_rejected: AtomicU64,
    batches_folded: AtomicU64,
    batches_replayed: AtomicU64,
    streams_opened: AtomicU64,
    streams_completed: AtomicU64,
}

impl StreamMetrics {
    /// A stream began (the head was dispatched to the NDJSON handler).
    pub fn stream_opened(&self) {
        self.streams_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// A stream finished, successfully or not.
    pub fn stream_completed(&self) {
        self.streams_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Account one stream's line/batch outcomes in bulk.
    pub fn add_lines(&self, accepted: u64, rejected: u64, folded: u64, replayed: u64) {
        self.lines_accepted.fetch_add(accepted, Ordering::Relaxed);
        self.lines_rejected.fetch_add(rejected, Ordering::Relaxed);
        self.batches_folded.fetch_add(folded, Ordering::Relaxed);
        self.batches_replayed.fetch_add(replayed, Ordering::Relaxed);
    }

    /// NDJSON lines accepted so far.
    pub fn lines_accepted(&self) -> u64 {
        self.lines_accepted.load(Ordering::Relaxed)
    }

    /// NDJSON lines rejected so far (typed per-line 422s).
    pub fn lines_rejected(&self) -> u64 {
        self.lines_rejected.load(Ordering::Relaxed)
    }

    /// Batches folded into refinement state so far.
    pub fn batches_folded(&self) -> u64 {
        self.batches_folded.load(Ordering::Relaxed)
    }

    /// Batches recognized as idempotent replays so far.
    pub fn batches_replayed(&self) -> u64 {
        self.batches_replayed.load(Ordering::Relaxed)
    }

    /// Streams currently open (opened − completed).
    pub fn open_streams(&self) -> u64 {
        self.streams_opened
            .load(Ordering::Relaxed)
            .saturating_sub(self.streams_completed.load(Ordering::Relaxed))
    }
}

/// All routes' counters; shared across worker threads.
#[derive(Default)]
pub struct HttpMetrics {
    routes: [RouteCounters; 11],
    accept_errors: AtomicU64,
    /// Streamed-ingest counters, surfaced in `GET /stats`.
    pub stream: StreamMetrics,
}

impl HttpMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one failed `accept()` on the listener. Accept failures
    /// (EMFILE, ENFILE, …) never reach a route, so without this counter
    /// they would be invisible in `/stats`.
    pub fn record_accept_error(&self) {
        self.accept_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Failed `accept()` calls so far.
    pub fn accept_errors(&self) -> u64 {
        self.accept_errors.load(Ordering::Relaxed)
    }

    /// Record one response on `route` with its status and handler latency.
    pub fn record(&self, route: RouteKey, status: u16, elapsed: Duration) {
        let c = &self.routes[route as usize];
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        c.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            c.errors.fetch_add(1, Ordering::Relaxed);
        }
        c.latency_total_us.fetch_add(us, Ordering::Relaxed);
        c.latency_max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Requests recorded on one route so far.
    pub fn requests(&self, route: RouteKey) -> u64 {
        self.routes[route as usize].requests.load(Ordering::Relaxed)
    }

    /// One [`RouteStatsDto`] row per route, in [`ROUTE_NAMES`] order.
    pub fn snapshot(&self) -> Vec<RouteStatsDto> {
        self.routes
            .iter()
            .zip(ROUTE_NAMES)
            .map(|(c, route)| RouteStatsDto {
                route: route.to_string(),
                requests: c.requests.load(Ordering::Relaxed),
                errors: c.errors.load(Ordering::Relaxed),
                latency_total_us: c.latency_total_us.load(Ordering::Relaxed),
                latency_max_us: c.latency_max_us.load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots_per_route() {
        let m = HttpMetrics::new();
        m.record(RouteKey::Dots, 200, Duration::from_micros(120));
        m.record(RouteKey::Dots, 404, Duration::from_micros(80));
        m.record(RouteKey::Sessions, 200, Duration::from_micros(300));
        let snap = m.snapshot();
        assert_eq!(snap.len(), ROUTE_NAMES.len());
        let dots = &snap[RouteKey::Dots as usize];
        assert_eq!(dots.route, "GET /video/{id}/dots");
        assert_eq!(dots.requests, 2);
        assert_eq!(dots.errors, 1);
        assert_eq!(dots.latency_total_us, 200);
        assert_eq!(dots.latency_max_us, 120);
        assert_eq!(snap[RouteKey::Sessions as usize].requests, 1);
        assert_eq!(snap[RouteKey::Healthz as usize].requests, 0);
    }

    #[test]
    fn stream_counters_track_opens_and_lines() {
        let m = HttpMetrics::new();
        assert_eq!(m.stream.open_streams(), 0);
        m.stream.stream_opened();
        m.stream.stream_opened();
        assert_eq!(m.stream.open_streams(), 2);
        m.stream.stream_completed();
        assert_eq!(m.stream.open_streams(), 1);
        m.stream.add_lines(5, 2, 4, 1);
        m.stream.add_lines(1, 0, 1, 0);
        assert_eq!(m.stream.lines_accepted(), 6);
        assert_eq!(m.stream.lines_rejected(), 2);
        assert_eq!(m.stream.batches_folded(), 5);
        assert_eq!(m.stream.batches_replayed(), 1);
    }

    #[test]
    fn accept_errors_count_separately_from_routes() {
        let m = HttpMetrics::new();
        assert_eq!(m.accept_errors(), 0);
        m.record_accept_error();
        m.record_accept_error();
        assert_eq!(m.accept_errors(), 2);
        assert!(m.snapshot().iter().all(|r| r.requests == 0));
    }
}
