//! Cluster mode: a health-checked routing tier in front of N
//! `lightor-serve` backends.
//!
//! The router owns no data. It consistent-hashes video ids onto
//! backends ([`Ring`]) and proxies the single-node route table
//! unchanged, so the browser extension talks to one address whether
//! LIGHTOR runs as one process or a sharded fleet:
//!
//! * `GET /video/{id}/dots`, `POST /video/{id}/rescore`,
//!   `POST /sessions` → the shard owning the video id (`/sessions`
//!   bodies carry the id; the router parses the upload to place it);
//! * `POST /admin/compact` → broadcast to every shard, responses
//!   summed;
//! * `GET /healthz`, `GET /stats` → answered by the router itself with
//!   per-shard health and aggregated backend stats
//!   ([`wire::RouterHealthzResponse`], [`wire::RouterStatsResponse`]).
//!
//! # Failure policy
//!
//! Every proxied request runs under a deadline. Idempotent GETs may
//! retry on *transport* errors only (see
//! [`ClientError::is_transport`]), with jittered exponential backoff,
//! bounded by [`RetryPolicy`] and by a cluster-wide [`RetryBudget`] so
//! a down shard cannot amplify load. Writes never retry: they go out
//! on a fresh connection (never a pooled keep-alive one, whose silent
//! death after the bytes left would make "did it apply?" ambiguous and
//! tempt a replay), so the common failure — connect refused, shard
//! down — happens *before* the request is sent and is provably
//! side-effect-free.
//!
//! Request outcomes and active `GET /healthz` probes both feed each
//! backend's [`BackendHealth`] state machine, which doubles as a
//! circuit breaker: enough consecutive failures trip the shard to
//! `down`, after which requests fast-fail `503` with a `Retry-After`
//! tracking the next probe, and probes back off exponentially.

use crate::client::{ClientError, ClientResponse, HttpClient, RelayResponse};
use crate::health::{BackendHealth, HealthPolicy, HealthState};
use crate::http::{Request, Response};
use crate::metrics::{HttpMetrics, RouteKey};
use crate::retry::{RetryBudget, RetryPolicy, XorShift64};
use crate::router::{resolve, Route};
use crate::server::Handler;
use lightor_platform::wire::{
    BackendHealthDto, BackendStatsDto, CompactResponse, RouterHealthzResponse, RouterStatsResponse,
    SessionUpload, StatsResponse,
};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Router tuning knobs.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Backend addresses, in ring order.
    pub backends: Vec<SocketAddr>,
    /// Virtual nodes per backend on the hash ring.
    pub vnodes: usize,
    /// TCP connect timeout towards a backend.
    pub connect_timeout: Duration,
    /// End-to-end deadline per proxied request (spans all retries).
    pub request_timeout: Duration,
    /// Deadline for one active health probe.
    pub probe_timeout: Duration,
    /// Health state-machine thresholds and probe cadence.
    pub health: HealthPolicy,
    /// Retry shape for idempotent GETs.
    pub retry: RetryPolicy,
}

impl ClusterConfig {
    /// Defaults for a given backend set.
    pub fn new(backends: Vec<SocketAddr>) -> Self {
        ClusterConfig {
            backends,
            vnodes: 64,
            connect_timeout: Duration::from_millis(500),
            request_timeout: Duration::from_secs(2),
            probe_timeout: Duration::from_millis(500),
            health: HealthPolicy::default(),
            retry: RetryPolicy::default(),
        }
    }
}

/// One backend's connection pool, health, and counters.
struct Backend {
    addr: SocketAddr,
    health: Mutex<BackendHealth>,
    /// One pooled keep-alive connection for GETs and stats sweeps.
    /// Writes bypass the pool on purpose (see the module docs).
    conn: Mutex<Option<HttpClient>>,
    proxied: AtomicU64,
    proxy_errors: AtomicU64,
    retries: AtomicU64,
}

/// FNV-1a, for hashing backend addresses onto the ring.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finalizer — scrambles sequential video ids so shard
/// assignment is uniform even for ids 0,1,2,…
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A consistent-hash ring: `vnodes` points per backend, sorted. A key
/// maps to the first point clockwise from its hash. Adding or removing
/// one backend moves only ~1/N of the key space.
struct Ring {
    /// `(point, backend index)`, sorted by point.
    points: Vec<(u64, usize)>,
}

impl Ring {
    fn build(backends: &[SocketAddr], vnodes: usize) -> Self {
        let mut points = Vec::with_capacity(backends.len() * vnodes);
        for (idx, addr) in backends.iter().enumerate() {
            let base = fnv1a64(addr.to_string().as_bytes());
            for v in 0..vnodes as u64 {
                points.push((splitmix64(base ^ splitmix64(v)), idx));
            }
        }
        points.sort_unstable();
        Ring { points }
    }

    /// The backend owning `video`.
    fn owner(&self, video: u64) -> usize {
        let key = splitmix64(video);
        let i = self.points.partition_point(|&(p, _)| p < key);
        self.points[if i == self.points.len() { 0 } else { i }].1
    }
}

/// The routing tier: ring + per-backend state + retry budget. Serves
/// HTTP through its [`Handler`] impl (see [`RouterServer`]).
pub struct Cluster {
    backends: Vec<Backend>,
    ring: Ring,
    cfg: ClusterConfig,
    budget: RetryBudget,
    rng: Mutex<XorShift64>,
    requests: AtomicU64,
    errors_5xx: AtomicU64,
    shutdown: AtomicBool,
}

impl Cluster {
    /// Build the ring and per-backend state. Panics on an empty
    /// backend list (a router with nothing behind it is a config bug).
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(!cfg.backends.is_empty(), "cluster needs at least 1 backend");
        let now = Instant::now();
        let backends = cfg
            .backends
            .iter()
            .map(|&addr| Backend {
                addr,
                health: Mutex::new(BackendHealth::new(cfg.health, now)),
                conn: Mutex::new(None),
                proxied: AtomicU64::new(0),
                proxy_errors: AtomicU64::new(0),
                retries: AtomicU64::new(0),
            })
            .collect();
        let ring = Ring::build(&cfg.backends, cfg.vnodes.max(1));
        Cluster {
            backends,
            ring,
            budget: RetryBudget::default(),
            rng: Mutex::new(XorShift64::new(0x1D0_71E5)),
            requests: AtomicU64::new(0),
            errors_5xx: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            cfg,
        }
    }

    /// Index of the backend owning `video` (exposed for tests and the
    /// chaos harness, which must know which shard to kill).
    pub fn shard_for(&self, video: u64) -> usize {
        self.ring.owner(video)
    }

    /// Address of backend `idx`.
    pub fn backend_addr(&self, idx: usize) -> SocketAddr {
        self.backends[idx].addr
    }

    /// Current health state of backend `idx`.
    pub fn backend_health(&self, idx: usize) -> HealthState {
        self.lock_health(&self.backends[idx]).state()
    }

    fn lock_health<'a>(&self, b: &'a Backend) -> std::sync::MutexGuard<'a, BackendHealth> {
        b.health.lock().expect("health lock poisoned")
    }

    fn mark_success(&self, b: &Backend) {
        self.lock_health(b).record_success(Instant::now());
    }

    fn mark_failure(&self, b: &Backend, probe: bool) {
        // Lock order: rng before health, everywhere.
        let mut rng = self.rng.lock().expect("rng lock poisoned");
        let mut h = self.lock_health(b);
        if probe {
            h.record_probe_failure(Instant::now(), &mut rng);
        } else {
            h.record_failure(Instant::now(), &mut rng);
        }
    }

    /// `Some(503)` when the shard is down; `None` when it may be tried.
    fn gate(&self, b: &Backend) -> Option<Response> {
        let h = self.lock_health(b);
        if h.is_available() {
            return None;
        }
        let secs = h.retry_after_secs(Instant::now());
        Some(
            Response::error(503, "shard_down", "the shard owning this video is down")
                .with_header("Retry-After", secs.to_string()),
        )
    }

    /// One proxied exchange on the pooled connection (creating it on
    /// demand). The connection goes back to the pool only after a
    /// fully parsed, keep-alive response; every error path drops it.
    fn exchange(
        &self,
        b: &Backend,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        deadline: Instant,
    ) -> Result<ClientResponse, ClientError> {
        let pooled = b.conn.lock().expect("conn lock poisoned").take();
        let mut conn = match pooled {
            Some(c) => c,
            None => HttpClient::connect_with(
                b.addr,
                self.cfg.connect_timeout,
                self.cfg.request_timeout,
            )?,
        };
        let resp = conn.request_deadline(method, path, body, deadline)?;
        if !resp.closed() {
            let mut slot = b.conn.lock().expect("conn lock poisoned");
            if slot.is_none() {
                *slot = Some(conn);
            }
        }
        Ok(resp)
    }

    /// The relay twin of [`Cluster::exchange`]: same pooling rules, but
    /// the response comes back as raw wire bytes for verbatim relay —
    /// no per-header parse, no head re-serialization. This is the
    /// proxied-GET hot path.
    fn relay_exchange(
        &self,
        b: &Backend,
        path: &str,
        deadline: Instant,
    ) -> Result<RelayResponse, ClientError> {
        let pooled = b.conn.lock().expect("conn lock poisoned").take();
        let mut conn = match pooled {
            Some(c) => c,
            None => HttpClient::connect_with(
                b.addr,
                self.cfg.connect_timeout,
                self.cfg.request_timeout,
            )?,
        };
        let resp = conn.request_relay("GET", path, None, deadline)?;
        if !resp.closed {
            let mut slot = b.conn.lock().expect("conn lock poisoned");
            if slot.is_none() {
                *slot = Some(conn);
            }
        }
        Ok(resp)
    }

    /// Proxy an idempotent GET to backend `idx`: pooled connection,
    /// per-request deadline, budgeted jittered retries on transport
    /// errors, verbatim relay of the backend's bytes.
    fn proxy_get(&self, idx: usize, path: &str) -> Response {
        let b = &self.backends[idx];
        if let Some(resp) = self.gate(b) {
            return resp;
        }
        b.proxied.fetch_add(1, Ordering::Relaxed);
        self.budget.record_attempt();
        let deadline = Instant::now() + self.cfg.request_timeout;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.relay_exchange(b, path, deadline) {
                Ok(resp) => {
                    self.mark_success(b);
                    return Response::relay(resp.status, resp.raw);
                }
                Err(e) => {
                    self.mark_failure(b, false);
                    let backoff = {
                        let mut rng = self.rng.lock().expect("rng lock poisoned");
                        self.cfg.retry.backoff(attempt, &mut rng)
                    };
                    let out_of_time = Instant::now() + backoff >= deadline;
                    if !e.is_transport()
                        || attempt >= self.cfg.retry.max_attempts
                        || out_of_time
                        || self.lock_health(b).state() == HealthState::Down
                        || !self.budget.try_withdraw()
                    {
                        b.proxy_errors.fetch_add(1, Ordering::Relaxed);
                        return Response::error(502, "bad_gateway", &e.to_string());
                    }
                    b.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff);
                }
            }
        }
    }

    /// Proxy a write to backend `idx`: fresh connection, one attempt,
    /// never retried (see the module docs). `Err` carries the ready
    /// client-facing failure (shard down, bad gateway).
    fn write_once(&self, idx: usize, path: &str, body: &[u8]) -> Result<RelayResponse, Response> {
        let b = &self.backends[idx];
        if let Some(resp) = self.gate(b) {
            return Err(resp);
        }
        b.proxied.fetch_add(1, Ordering::Relaxed);
        self.budget.record_attempt();
        let deadline = Instant::now() + self.cfg.request_timeout;
        let result =
            HttpClient::connect_with(b.addr, self.cfg.connect_timeout, self.cfg.request_timeout)
                .and_then(|mut conn| conn.request_relay("POST", path, Some(body), deadline));
        match result {
            Ok(resp) => {
                self.mark_success(b);
                Ok(resp)
            }
            Err(e) => {
                self.mark_failure(b, false);
                b.proxy_errors.fetch_add(1, Ordering::Relaxed);
                Err(Response::error(502, "bad_gateway", &e.to_string()))
            }
        }
    }

    /// [`Cluster::write_once`] relayed straight to the client.
    fn proxy_write(&self, idx: usize, path: &str, body: &[u8]) -> Response {
        match self.write_once(idx, path, body) {
            Ok(resp) => Response::relay(resp.status, resp.raw),
            Err(resp) => resp,
        }
    }

    /// `POST /sessions`: the video id lives in the body, so parse the
    /// upload (which also rejects garbage before it crosses the wire
    /// again) and route to the owning shard with the original bytes.
    fn route_session(&self, body: &[u8]) -> Response {
        let upload: SessionUpload = match serde_json::from_slice(body) {
            Ok(u) => u,
            Err(_) => return Response::error(400, "bad_json", "body must be a SessionUpload"),
        };
        self.proxy_write(self.shard_for(upload.video), "/sessions", body)
    }

    /// `POST /admin/compact`: broadcast to every shard; sums the
    /// per-shard results. Any failed shard fails the broadcast (the
    /// caller must know compaction did not complete everywhere).
    fn broadcast_compact(&self) -> Response {
        let mut total = CompactResponse {
            reclaimed_bytes: 0,
            dropped_records: 0,
            live_records: 0,
        };
        for idx in 0..self.backends.len() {
            let resp = match self.write_once(idx, "/admin/compact", &[]) {
                Ok(resp) => resp,
                Err(resp) => return resp,
            };
            if resp.status != 200 {
                return Response::relay(resp.status, resp.raw);
            }
            match serde_json::from_slice::<CompactResponse>(resp.body()) {
                Ok(r) => {
                    total.reclaimed_bytes += r.reclaimed_bytes;
                    total.dropped_records += r.dropped_records;
                    total.live_records += r.live_records;
                }
                Err(_) => {
                    return Response::error(
                        502,
                        "bad_gateway",
                        "backend returned an unparseable compact response",
                    )
                }
            }
        }
        Response::json(200, &total)
    }

    /// Router `GET /healthz`: per-shard health, overall status.
    fn healthz(&self) -> Response {
        let backends: Vec<BackendHealthDto> = self
            .backends
            .iter()
            .map(|b| BackendHealthDto {
                addr: b.addr.to_string(),
                health: self.lock_health(b).state().name().to_string(),
            })
            .collect();
        let all_healthy = backends.iter().all(|b| b.health == "healthy");
        Response::json(
            200,
            &RouterHealthzResponse {
                status: if all_healthy { "ok" } else { "degraded" }.to_string(),
                backends,
            },
        )
    }

    /// Router `GET /stats`: router counters plus a best-effort sweep of
    /// each live backend's own `/stats`.
    fn stats(&self, metrics: &HttpMetrics) -> Response {
        let backends: Vec<BackendStatsDto> = self
            .backends
            .iter()
            .map(|b| {
                let (health, available) = {
                    let h = self.lock_health(b);
                    (h.state().name().to_string(), h.is_available())
                };
                let stats: Option<StatsResponse> = if available {
                    let deadline = Instant::now() + self.cfg.probe_timeout;
                    self.exchange(b, "GET", "/stats", None, deadline)
                        .ok()
                        .filter(|r| r.status == 200)
                        .and_then(|r| r.json().ok())
                } else {
                    None
                };
                let h = self.lock_health(b);
                BackendStatsDto {
                    addr: b.addr.to_string(),
                    health,
                    proxied: b.proxied.load(Ordering::Relaxed),
                    proxy_errors: b.proxy_errors.load(Ordering::Relaxed),
                    retries: b.retries.load(Ordering::Relaxed),
                    probe_failures: h.probe_failures(),
                    breaker_trips: h.breaker_trips(),
                    stats,
                }
            })
            .collect();
        Response::json(
            200,
            &RouterStatsResponse {
                requests: self.requests.load(Ordering::Relaxed),
                errors_5xx: self.errors_5xx.load(Ordering::Relaxed),
                accept_errors: metrics.accept_errors(),
                backends,
            },
        )
    }

    /// One probe sweep at `now`: actively probe every backend whose
    /// probe is due. Returns how many probes ran.
    fn probe_due_backends(&self) -> usize {
        let mut probed = 0;
        for b in &self.backends {
            if !self.lock_health(b).probe_due(Instant::now()) {
                continue;
            }
            probed += 1;
            let deadline = Instant::now() + self.cfg.probe_timeout;
            let ok =
                HttpClient::connect_with(b.addr, self.cfg.probe_timeout, self.cfg.probe_timeout)
                    .and_then(|mut conn| conn.request_deadline("GET", "/healthz", None, deadline))
                    .map(|resp| resp.status == 200)
                    .unwrap_or(false);
            if ok {
                self.mark_success(b);
            } else {
                self.mark_failure(b, true);
            }
        }
        probed
    }

    /// The prober loop: sweep due probes until shutdown.
    fn probe_loop(self: &Arc<Self>) {
        while !self.shutdown.load(Ordering::SeqCst) {
            self.probe_due_backends();
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Handler for Cluster {
    fn handle(&self, req: &Request, metrics: &HttpMetrics) -> (RouteKey, Response) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let route = match resolve(&req.method, &req.path) {
            Ok(r) => r,
            Err(e) => return (RouteKey::Other, e.response()),
        };
        let response = match route {
            Route::Healthz => self.healthz(),
            Route::Stats => self.stats(metrics),
            Route::Dots(id) => self.proxy_get(self.shard_for(id), &req.path),
            Route::Rescore(id) => self.proxy_write(self.shard_for(id), &req.path, &req.body),
            Route::Sessions => self.route_session(&req.body),
            Route::Compact => self.broadcast_compact(),
        };
        if response.status >= 500 {
            self.errors_5xx.fetch_add(1, Ordering::Relaxed);
        }
        (route.key(), response)
    }
}

/// A running router: an [`HttpServer`] serving a [`Cluster`] handler,
/// plus the background prober thread.
pub struct RouterServer {
    server: Option<crate::server::HttpServer>,
    cluster: Arc<Cluster>,
    prober: Option<std::thread::JoinHandle<()>>,
}

impl RouterServer {
    /// Bind `addr` and start routing to `cfg.backends`.
    pub fn bind(
        addr: impl std::net::ToSocketAddrs,
        cfg: ClusterConfig,
        server_cfg: crate::server::ServerConfig,
    ) -> std::io::Result<Self> {
        let cluster = Arc::new(Cluster::new(cfg));
        let server = crate::server::HttpServer::bind_handler(addr, cluster.clone(), server_cfg)?;
        let prober = {
            let cluster = cluster.clone();
            std::thread::Builder::new()
                .name("router-prober".into())
                .spawn(move || cluster.probe_loop())?
        };
        Ok(RouterServer {
            server: Some(server),
            cluster,
            prober: Some(prober),
        })
    }

    /// The router's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.as_ref().expect("server running").local_addr()
    }

    /// The cluster behind this server (ring lookups, health peeks).
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// Graceful shutdown: stop the prober, drain the HTTP server.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.cluster.shutdown.store(true, Ordering::SeqCst);
        if let Some(p) = self.prober.take() {
            let _ = p.join();
        }
        if let Some(s) = self.server.take() {
            s.shutdown();
        }
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<SocketAddr> {
        (0..n)
            .map(|i| format!("127.0.0.1:{}", 7900 + i).parse().unwrap())
            .collect()
    }

    #[test]
    fn ring_is_deterministic_and_total() {
        let ring = Ring::build(&addrs(3), 64);
        assert_eq!(ring.points.len(), 3 * 64);
        for video in 0..1000u64 {
            let a = ring.owner(video);
            assert_eq!(a, ring.owner(video), "owner must be stable");
            assert!(a < 3);
        }
    }

    #[test]
    fn ring_spreads_keys_across_backends() {
        let ring = Ring::build(&addrs(3), 64);
        let mut counts = [0usize; 3];
        for video in 0..3000u64 {
            counts[ring.owner(video)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            // Perfect balance is 1000; vnode hashing should land well
            // within 2:1 of it.
            assert!((500..=2000).contains(&c), "backend {i} owns {c} of 3000");
        }
    }

    #[test]
    fn ring_reshuffles_minimally_when_a_backend_joins() {
        let three = Ring::build(&addrs(3), 64);
        let four = Ring::build(&addrs(4), 64);
        let moved = (0..3000u64)
            .filter(|&v| {
                let before = three.owner(v);
                let after = four.owner(v);
                before != after && after != 3
            })
            .count();
        // Keys may move *to* the new backend (~1/4 of them); moving
        // between the surviving three means the hash is not consistent.
        assert!(moved < 150, "{moved} of 3000 keys moved between survivors");
    }

    #[test]
    fn cluster_routes_videos_like_the_ring() {
        let cluster = Cluster::new(ClusterConfig::new(addrs(3)));
        let ring = Ring::build(&addrs(3), 64);
        for video in 0..100 {
            assert_eq!(cluster.shard_for(video), ring.owner(video));
        }
        assert_eq!(cluster.backend_addr(0), addrs(3)[0]);
        assert_eq!(cluster.backend_health(0), HealthState::Healthy);
    }

    #[test]
    #[should_panic(expected = "at least 1 backend")]
    fn empty_backend_list_is_a_config_bug() {
        let _ = Cluster::new(ClusterConfig::new(Vec::new()));
    }
}
