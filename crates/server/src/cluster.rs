//! Cluster mode: a health-checked routing tier in front of N
//! `lightor-serve` backends.
//!
//! The router owns no data. It consistent-hashes video ids onto
//! backends ([`Ring`]) and proxies the single-node route table
//! unchanged, so the browser extension talks to one address whether
//! LIGHTOR runs as one process or a sharded fleet:
//!
//! * `GET /video/{id}/dots`, `POST /video/{id}/rescore`,
//!   `POST /sessions` → the shard owning the video id (`/sessions`
//!   bodies carry the id; the router parses the upload to place it);
//! * `POST /admin/compact` → broadcast to every shard, responses
//!   summed;
//! * `GET /healthz`, `GET /stats` → answered by the router itself with
//!   per-shard health and aggregated backend stats
//!   ([`wire::RouterHealthzResponse`], [`wire::RouterStatsResponse`]);
//! * `POST /admin/ring` → swap in a new backend set without a restart
//!   (see below).
//!
//! # Versioned ring
//!
//! The ring is an epoch ([`RingEpoch`]): version 1 is built at boot,
//! and every applied `POST /admin/ring` builds version N+1 from the
//! posted addresses. Addresses the router already knows carry their
//! [`Backend`] over — health state, connection pool, counters —
//! while new addresses are admitted in `Recovering` and must earn
//! `Healthy` through the ordinary state machine. For a bounded
//! overlap window after a swap ([`ClusterConfig::ring_overlap`]) the
//! previous epoch is kept: reads that fail on the new owner
//! (5xx/404) are double-routed to the old owner, so a request racing
//! the cutover never observes a gap; writes always go to the new
//! owner, where the migrated state lives and future reads will look.
//!
//! # Failure policy
//!
//! Every proxied request runs under a deadline. Idempotent GETs may
//! retry on *transport* errors only (see
//! [`ClientError::is_transport`]), with jittered exponential backoff,
//! bounded by [`RetryPolicy`] and by a cluster-wide [`RetryBudget`] so
//! a down shard cannot amplify load. Writes never retry: they go out
//! on a fresh connection (never a pooled keep-alive one, whose silent
//! death after the bytes left would make "did it apply?" ambiguous and
//! tempt a replay), so the common failure — connect refused, shard
//! down — happens *before* the request is sent and is provably
//! side-effect-free.
//!
//! Request outcomes and active `GET /healthz` probes both feed each
//! backend's [`BackendHealth`] state machine, which doubles as a
//! circuit breaker: enough consecutive failures trip the shard to
//! `down`, after which requests fast-fail `503` with a `Retry-After`
//! tracking the next probe, and probes back off exponentially.

use crate::client::{ClientError, ClientResponse, HttpClient, RelayResponse};
use crate::health::{BackendHealth, HealthPolicy, HealthState};
use crate::http::{Request, Response};
use crate::metrics::{HttpMetrics, RouteKey};
use crate::retry::{RetryBudget, RetryPolicy, XorShift64};
use crate::router::{resolve, Route};
use crate::server::{BodySource, Handler, StreamBodyError};
use lightor_platform::wire::{
    BackendHealthDto, BackendStatsDto, CompactResponse, RingUpdateRequest, RingUpdateResponse,
    RouterHealthzResponse, RouterStatsResponse, SessionUpload, StatsResponse, StreamAccepted,
    StreamBatchDto,
};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Router tuning knobs.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Backend addresses, in ring order.
    pub backends: Vec<SocketAddr>,
    /// Virtual nodes per backend on the hash ring.
    pub vnodes: usize,
    /// TCP connect timeout towards a backend.
    pub connect_timeout: Duration,
    /// End-to-end deadline per proxied request (spans all retries).
    pub request_timeout: Duration,
    /// Deadline for one active health probe.
    pub probe_timeout: Duration,
    /// Health state-machine thresholds and probe cadence.
    pub health: HealthPolicy,
    /// Retry shape for idempotent GETs.
    pub retry: RetryPolicy,
    /// How long after a ring swap the previous epoch keeps serving as
    /// a read fallback (and its backends keep being probed).
    pub ring_overlap: Duration,
}

impl ClusterConfig {
    /// Defaults for a given backend set.
    pub fn new(backends: Vec<SocketAddr>) -> Self {
        ClusterConfig {
            backends,
            vnodes: 64,
            connect_timeout: Duration::from_millis(500),
            request_timeout: Duration::from_secs(2),
            probe_timeout: Duration::from_millis(500),
            health: HealthPolicy::default(),
            retry: RetryPolicy::default(),
            ring_overlap: Duration::from_secs(2),
        }
    }
}

/// One backend's connection pool, health, and counters. Shared by
/// `Arc` across ring epochs: a ring swap that keeps an address keeps
/// its health history, pool, and counters too.
struct Backend {
    addr: SocketAddr,
    health: Mutex<BackendHealth>,
    /// One pooled keep-alive connection for GETs and stats sweeps.
    /// Writes bypass the pool on purpose (see the module docs).
    conn: Mutex<Option<HttpClient>>,
    proxied: AtomicU64,
    proxy_errors: AtomicU64,
    retries: AtomicU64,
}

impl Backend {
    fn with_health(addr: SocketAddr, health: BackendHealth) -> Self {
        Backend {
            addr,
            health: Mutex::new(health),
            conn: Mutex::new(None),
            proxied: AtomicU64::new(0),
            proxy_errors: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    /// A boot-ring backend, assumed healthy until proven otherwise.
    fn boot(addr: SocketAddr, policy: HealthPolicy, now: Instant) -> Self {
        Self::with_health(addr, BackendHealth::new(policy, now))
    }

    /// A backend first seen in a ring update: admitted in `Recovering`,
    /// it takes trial traffic but must earn `Healthy`.
    fn admitted(addr: SocketAddr, policy: HealthPolicy, now: Instant) -> Self {
        Self::with_health(addr, BackendHealth::new_recovering(policy, now))
    }
}

/// FNV-1a, for hashing backend addresses onto the ring.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finalizer — scrambles sequential video ids so shard
/// assignment is uniform even for ids 0,1,2,…
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A consistent-hash ring: `vnodes` points per backend, sorted. A key
/// maps to the first point clockwise from its hash. Adding or removing
/// one backend moves only ~1/N of the key space.
struct Ring {
    /// `(point, backend index)`, sorted by point.
    points: Vec<(u64, usize)>,
}

/// The default hash base for a ring slot, derived from the member's
/// address. A one-for-one substitution inherits the departed slot's
/// base instead of deriving a fresh one — see [`Cluster::apply_ring`].
fn addr_base(addr: &SocketAddr) -> u64 {
    fnv1a64(addr.to_string().as_bytes())
}

impl Ring {
    /// Build from addresses, each slot at its default base — what the
    /// boot ring does via [`Cluster::new`]; kept for tests that need a
    /// reference ring without a `Cluster`.
    #[cfg(test)]
    fn build(backends: &[SocketAddr], vnodes: usize) -> Self {
        let bases: Vec<u64> = backends.iter().map(addr_base).collect();
        Self::build_from_bases(&bases, vnodes)
    }

    /// Build from explicit per-slot hash bases. A slot's vnode points
    /// are a pure function of its base, so two rings sharing a base
    /// place that slot's points identically — the stability guarantee
    /// that makes an address substitution ownership-preserving.
    fn build_from_bases(bases: &[u64], vnodes: usize) -> Self {
        let mut points = Vec::with_capacity(bases.len() * vnodes);
        for (idx, &base) in bases.iter().enumerate() {
            for v in 0..vnodes as u64 {
                points.push((splitmix64(base ^ splitmix64(v)), idx));
            }
        }
        points.sort_unstable();
        Ring { points }
    }

    /// The backend owning `video`.
    fn owner(&self, video: u64) -> usize {
        let key = splitmix64(video);
        let i = self.points.partition_point(|&(p, _)| p < key);
        self.points[if i == self.points.len() { 0 } else { i }].1
    }
}

/// One version of the cluster topology: the ring plus the backends it
/// indexes into, immutable once built. Swapped wholesale by
/// `POST /admin/ring`.
struct RingEpoch {
    /// Monotonic: the boot ring is 1, every applied update adds 1.
    version: u64,
    backends: Vec<Arc<Backend>>,
    /// Per-slot hash bases, parallel to `backends`. Carried so the
    /// next swap can keep a substituted slot's vnode points — and
    /// therefore its key range — exactly where the departed member's
    /// were.
    bases: Vec<u64>,
    ring: Ring,
}

impl RingEpoch {
    fn owner(&self, video: u64) -> &Arc<Backend> {
        &self.backends[self.ring.owner(video)]
    }
}

/// The live topology: the current epoch, plus — for a bounded window
/// after a swap — the previous one as a read fallback.
struct Topology {
    current: RingEpoch,
    /// `(epoch, expires_at)`; dropped lazily once expired.
    previous: Option<(RingEpoch, Instant)>,
}

/// The routing tier: versioned ring + per-backend state + retry
/// budget. Serves HTTP through its [`Handler`] impl (see
/// [`RouterServer`]).
pub struct Cluster {
    topo: RwLock<Topology>,
    cfg: ClusterConfig,
    budget: RetryBudget,
    rng: Mutex<XorShift64>,
    requests: AtomicU64,
    errors_5xx: AtomicU64,
    shutdown: AtomicBool,
}

impl Cluster {
    /// Build the boot ring (version 1) and per-backend state. Panics
    /// on an empty backend list (a router with nothing behind it is a
    /// config bug).
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(!cfg.backends.is_empty(), "cluster needs at least 1 backend");
        let now = Instant::now();
        let backends = cfg
            .backends
            .iter()
            .map(|&addr| Arc::new(Backend::boot(addr, cfg.health, now)))
            .collect();
        let bases: Vec<u64> = cfg.backends.iter().map(addr_base).collect();
        let ring = Ring::build_from_bases(&bases, cfg.vnodes.max(1));
        Cluster {
            topo: RwLock::new(Topology {
                current: RingEpoch {
                    version: 1,
                    backends,
                    bases,
                    ring,
                },
                previous: None,
            }),
            budget: RetryBudget::default(),
            rng: Mutex::new(XorShift64::new(0x1D0_71E5)),
            requests: AtomicU64::new(0),
            errors_5xx: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            cfg,
        }
    }

    fn topo(&self) -> std::sync::RwLockReadGuard<'_, Topology> {
        self.topo.read().expect("topology lock poisoned")
    }

    /// The current ring's version (boot = 1; `POST /admin/ring` bumps).
    pub fn ring_version(&self) -> u64 {
        self.topo().current.version
    }

    /// Index of the backend owning `video` in the *current* epoch
    /// (exposed for tests and the chaos harness, which must know which
    /// shard to kill).
    pub fn shard_for(&self, video: u64) -> usize {
        self.topo().current.ring.owner(video)
    }

    /// Address of backend `idx` in the current epoch.
    pub fn backend_addr(&self, idx: usize) -> SocketAddr {
        self.topo().current.backends[idx].addr
    }

    /// Current health state of backend `idx` in the current epoch.
    pub fn backend_health(&self, idx: usize) -> HealthState {
        let b = self.topo().current.backends[idx].clone();
        let health = self.lock_health(&b);
        health.state()
    }

    /// Swap in a new ring built from `addrs` (version = current + 1).
    /// Known addresses keep their [`Backend`] — health, pool, counters
    /// — across the swap; new addresses are admitted in `Recovering`.
    /// The outgoing epoch stays behind as a read fallback until
    /// [`ClusterConfig::ring_overlap`] elapses.
    ///
    /// **Substitutions preserve ownership.** An address already in a
    /// live epoch keeps the hash base (and so the exact key range) it
    /// had there, and a brand-new address that one-for-one replaces a
    /// single departed member inherits the departed slot's base. That
    /// is the failover/replacement contract: a standby promoted over a
    /// dead primary — or a restored shard swapped in for the process
    /// it replaces — takes over *exactly* the old member's videos.
    /// Without it, rehashing the new address would silently strand a
    /// slice of the dead shard's acknowledged state on survivors that
    /// never received it. Any other membership change (growing,
    /// shrinking, multiple simultaneous replacements) hashes new
    /// addresses fresh and re-shards as consistent hashing normally
    /// does.
    pub fn apply_ring(&self, addrs: Vec<SocketAddr>) -> Result<RingUpdateResponse, String> {
        if addrs.is_empty() {
            return Err("a ring needs at least 1 backend".into());
        }
        let mut dedup = addrs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        if dedup.len() != addrs.len() {
            return Err("duplicate backend address in ring update".into());
        }
        let now = Instant::now();
        let mut topo = self.topo.write().expect("topology lock poisoned");
        let known: std::collections::HashMap<SocketAddr, Arc<Backend>> = topo
            .current
            .backends
            .iter()
            .chain(topo.previous.iter().flat_map(|(e, _)| e.backends.iter()))
            .map(|b| (b.addr, b.clone()))
            .collect();
        let backends: Vec<Arc<Backend>> = addrs
            .iter()
            .map(|&addr| {
                known
                    .get(&addr)
                    .cloned()
                    .unwrap_or_else(|| Arc::new(Backend::admitted(addr, self.cfg.health, now)))
            })
            .collect();
        // Slot bases: live addresses keep theirs (current epoch wins
        // over the overlap fallback); a single unknown address that
        // one-for-one replaces a single departed member inherits the
        // departed slot's base (see the method docs); anything else
        // hashes fresh.
        let known_bases: std::collections::HashMap<SocketAddr, u64> = topo
            .previous
            .iter()
            .flat_map(|(e, _)| e.backends.iter().zip(&e.bases))
            .chain(topo.current.backends.iter().zip(&topo.current.bases))
            .map(|(b, &base)| (b.addr, base))
            .collect();
        let departed: Vec<u64> = topo
            .current
            .backends
            .iter()
            .zip(&topo.current.bases)
            .filter(|(b, _)| !addrs.contains(&b.addr))
            .map(|(_, &base)| base)
            .collect();
        let unknown = addrs
            .iter()
            .filter(|a| !known_bases.contains_key(a))
            .count();
        let bases: Vec<u64> = addrs
            .iter()
            .map(|addr| match known_bases.get(addr) {
                Some(&base) => base,
                None if unknown == 1 && departed.len() == 1 => departed[0],
                None => addr_base(addr),
            })
            .collect();
        let ring = Ring::build_from_bases(&bases, self.cfg.vnodes.max(1));
        let version = topo.current.version + 1;
        let outgoing = std::mem::replace(
            &mut topo.current,
            RingEpoch {
                version,
                backends,
                bases,
                ring,
            },
        );
        topo.previous = Some((outgoing, now + self.cfg.ring_overlap));
        Ok(RingUpdateResponse {
            version,
            backends: addrs.iter().map(ToString::to_string).collect(),
        })
    }

    /// Drop the previous epoch once its overlap window has passed.
    fn maybe_expire_overlap(&self) {
        let expired = match &self.topo().previous {
            Some((_, until)) => Instant::now() >= *until,
            None => return,
        };
        if expired {
            self.topo.write().expect("topology lock poisoned").previous = None;
        }
    }

    /// The owners of `video`: current epoch's, plus the previous
    /// epoch's while the overlap window is open and the owner actually
    /// differs.
    fn owners(&self, video: u64) -> (Arc<Backend>, Option<Arc<Backend>>) {
        let topo = self.topo();
        let cur = topo.current.owner(video).clone();
        let prev = topo
            .previous
            .as_ref()
            .filter(|(_, until)| Instant::now() < *until)
            .map(|(e, _)| e.owner(video))
            .filter(|b| b.addr != cur.addr)
            .cloned();
        (cur, prev)
    }

    /// Every distinct backend in the current epoch plus the (unexpired)
    /// previous one — the probe sweep's working set during overlap.
    fn all_backends(&self) -> Vec<Arc<Backend>> {
        let topo = self.topo();
        let mut out: Vec<Arc<Backend>> = topo.current.backends.to_vec();
        if let Some((prev, until)) = &topo.previous {
            if Instant::now() < *until {
                for b in &prev.backends {
                    if !out.iter().any(|c| c.addr == b.addr) {
                        out.push(b.clone());
                    }
                }
            }
        }
        out
    }

    fn lock_health<'a>(&self, b: &'a Backend) -> std::sync::MutexGuard<'a, BackendHealth> {
        b.health.lock().expect("health lock poisoned")
    }

    fn mark_success(&self, b: &Backend) {
        self.lock_health(b).record_success(Instant::now());
    }

    fn mark_failure(&self, b: &Backend, probe: bool) {
        // Lock order: rng before health, everywhere.
        let mut rng = self.rng.lock().expect("rng lock poisoned");
        let mut h = self.lock_health(b);
        if probe {
            h.record_probe_failure(Instant::now(), &mut rng);
        } else {
            h.record_failure(Instant::now(), &mut rng);
        }
    }

    /// `Some(503)` when the shard is down; `None` when it may be tried.
    fn gate(&self, b: &Backend) -> Option<Response> {
        let h = self.lock_health(b);
        if h.is_available() {
            return None;
        }
        let secs = h.retry_after_secs(Instant::now());
        Some(
            Response::error(503, "shard_down", "the shard owning this video is down")
                .with_header("Retry-After", secs.to_string()),
        )
    }

    /// One proxied exchange on the pooled connection (creating it on
    /// demand). The connection goes back to the pool only after a
    /// fully parsed, keep-alive response; every error path drops it.
    fn exchange(
        &self,
        b: &Backend,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        deadline: Instant,
    ) -> Result<ClientResponse, ClientError> {
        let pooled = b.conn.lock().expect("conn lock poisoned").take();
        let mut conn = match pooled {
            Some(c) => c,
            None => HttpClient::connect_with(
                b.addr,
                self.cfg.connect_timeout,
                self.cfg.request_timeout,
            )?,
        };
        let resp = conn.request_deadline(method, path, body, deadline)?;
        if !resp.closed() {
            let mut slot = b.conn.lock().expect("conn lock poisoned");
            if slot.is_none() {
                *slot = Some(conn);
            }
        }
        Ok(resp)
    }

    /// The relay twin of [`Cluster::exchange`]: same pooling rules, but
    /// the response comes back as raw wire bytes for verbatim relay —
    /// no per-header parse, no head re-serialization. This is the
    /// proxied-GET hot path.
    fn relay_exchange(
        &self,
        b: &Backend,
        path: &str,
        deadline: Instant,
    ) -> Result<RelayResponse, ClientError> {
        let pooled = b.conn.lock().expect("conn lock poisoned").take();
        let mut conn = match pooled {
            Some(c) => c,
            None => HttpClient::connect_with(
                b.addr,
                self.cfg.connect_timeout,
                self.cfg.request_timeout,
            )?,
        };
        let resp = conn.request_relay("GET", path, None, deadline)?;
        if !resp.closed {
            let mut slot = b.conn.lock().expect("conn lock poisoned");
            if slot.is_none() {
                *slot = Some(conn);
            }
        }
        Ok(resp)
    }

    /// Proxy an idempotent GET to `b`: pooled connection, per-request
    /// deadline, budgeted jittered retries on transport errors,
    /// verbatim relay of the backend's bytes. A parsed `503` carrying
    /// `Retry-After` is also retried — after waiting exactly what the
    /// backend asked for, budget permitting, instead of hammering the
    /// next blind backoff tick.
    fn proxy_get(&self, b: &Backend, path: &str) -> Response {
        if let Some(resp) = self.gate(b) {
            return resp;
        }
        b.proxied.fetch_add(1, Ordering::Relaxed);
        self.budget.record_attempt();
        let deadline = Instant::now() + self.cfg.request_timeout;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.relay_exchange(b, path, deadline) {
                Ok(resp) => {
                    self.mark_success(b);
                    if resp.status == 503 && attempt < self.cfg.retry.max_attempts {
                        if let Some(wait) = resp.retry_after() {
                            if Instant::now() + wait < deadline && self.budget.try_withdraw() {
                                b.retries.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(wait);
                                continue;
                            }
                        }
                    }
                    return Response::relay(resp.status, resp.raw);
                }
                Err(e) => {
                    self.mark_failure(b, false);
                    let backoff = {
                        let mut rng = self.rng.lock().expect("rng lock poisoned");
                        self.cfg.retry.backoff(attempt, &mut rng)
                    };
                    let out_of_time = Instant::now() + backoff >= deadline;
                    if !e.is_transport()
                        || attempt >= self.cfg.retry.max_attempts
                        || out_of_time
                        || self.lock_health(b).state() == HealthState::Down
                        || !self.budget.try_withdraw()
                    {
                        b.proxy_errors.fetch_add(1, Ordering::Relaxed);
                        return Response::error(502, "bad_gateway", &e.to_string());
                    }
                    b.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff);
                }
            }
        }
    }

    /// Route a read: the current owner first; on a gap answer (5xx, or
    /// 404 from a shard that may not have the video yet) retry the
    /// previous epoch's owner while the overlap window is open. A
    /// request racing a ring swap never observes the handoff.
    fn route_read(&self, video: u64, path: &str) -> Response {
        self.maybe_expire_overlap();
        let (cur, prev) = self.owners(video);
        let resp = self.proxy_get(&cur, path);
        if resp.status < 500 && resp.status != 404 {
            return resp;
        }
        if let Some(prev) = prev {
            let fallback = self.proxy_get(&prev, path);
            if fallback.status < 400 {
                return fallback;
            }
        }
        resp
    }

    /// Route a write: always the current owner — that is where the
    /// migrated state lives and where every future read will look.
    /// (Falling back to the old owner would strand the write on an
    /// epoch about to be dropped.)
    fn route_write(&self, video: u64, path: &str, body: &[u8]) -> Response {
        self.maybe_expire_overlap();
        let (cur, _) = self.owners(video);
        self.proxy_write(&cur, path, body)
    }

    /// Proxy a write to `b`: fresh connection, one attempt, never
    /// retried (see the module docs). `Err` carries the ready
    /// client-facing failure (shard down, bad gateway).
    fn write_once(&self, b: &Backend, path: &str, body: &[u8]) -> Result<RelayResponse, Response> {
        if let Some(resp) = self.gate(b) {
            return Err(resp);
        }
        b.proxied.fetch_add(1, Ordering::Relaxed);
        self.budget.record_attempt();
        let deadline = Instant::now() + self.cfg.request_timeout;
        let result =
            HttpClient::connect_with(b.addr, self.cfg.connect_timeout, self.cfg.request_timeout)
                .and_then(|mut conn| conn.request_relay("POST", path, Some(body), deadline));
        match result {
            Ok(resp) => {
                self.mark_success(b);
                Ok(resp)
            }
            Err(e) => {
                self.mark_failure(b, false);
                b.proxy_errors.fetch_add(1, Ordering::Relaxed);
                Err(Response::error(502, "bad_gateway", &e.to_string()))
            }
        }
    }

    /// [`Cluster::write_once`] relayed straight to the client.
    fn proxy_write(&self, b: &Backend, path: &str, body: &[u8]) -> Response {
        match self.write_once(b, path, body) {
            Ok(resp) => Response::relay(resp.status, resp.raw),
            Err(resp) => resp,
        }
    }

    /// `POST /sessions`: the video id lives in the body, so parse the
    /// upload (which also rejects garbage before it crosses the wire
    /// again) and route to the owning shard with the original bytes.
    fn route_session(&self, body: &[u8]) -> Response {
        let upload: SessionUpload = match serde_json::from_slice(body) {
            Ok(u) => u,
            Err(_) => return Response::error(400, "bad_json", "body must be a SessionUpload"),
        };
        self.route_write(upload.video, "/sessions", body)
    }

    /// `POST /sessions/stream` with a buffered (Content-Length) body:
    /// the first non-blank line carries the video id; the whole body is
    /// already here, so route it like any other write.
    fn route_session_stream_buffered(&self, body: &[u8]) -> Response {
        let Some(line) = body
            .split(|&b| b == b'\n')
            .map(|l| l.trim_ascii())
            .find(|l| !l.is_empty())
        else {
            return empty_stream_ack();
        };
        let batch: StreamBatchDto = match serde_json::from_slice(line) {
            Ok(b) => b,
            Err(_) => {
                return Response::error(400, "bad_json", "first line must be a StreamBatchDto")
            }
        };
        self.route_write(batch.video, "/sessions/stream", body)
    }

    /// Relay a streamed NDJSON upload to the owning shard chunk by
    /// chunk. The video id lives on the first line, so the router
    /// buffers only up to the first non-blank newline (bounded), picks
    /// the owner, then forwards the buffered prefix and every later
    /// chunk as it arrives — the hop never holds the whole stream.
    /// Like every write it goes out on a fresh connection and never
    /// retries; a backend that answers early (mid-stream freeze `503`,
    /// budget `422`) and stops reading has that early response relayed
    /// instead of a blind `502`.
    fn relay_session_stream(&self, body: &mut dyn BodySource) -> Response {
        const MAX_FIRST_LINE: usize = 256 * 1024;
        let mut prefix: Vec<u8> = Vec::new();
        let mut ended = false;
        let mut scan = 0usize; // start of the line being assembled
        let (line_start, line_end) = loop {
            if let Some(pos) = prefix[scan..].iter().position(|&b| b == b'\n') {
                let (s, e) = (scan, scan + pos);
                if !prefix[s..e].trim_ascii().is_empty() {
                    break (s, e);
                }
                scan = e + 1;
                continue;
            }
            if ended {
                break (scan, prefix.len());
            }
            if prefix.len() - scan > MAX_FIRST_LINE {
                return Response::error(
                    400,
                    "line_too_long",
                    "first NDJSON line exceeds 256 KiB; the router cannot route it",
                );
            }
            match body.next_chunk() {
                Ok(Some(data)) => prefix.extend_from_slice(&data),
                Ok(None) => ended = true,
                Err(e) => return stream_pull_error(e),
            }
        };
        let first_line = prefix[line_start..line_end].trim_ascii();
        if first_line.is_empty() {
            // Nothing but blank lines: same zero-line ack a backend
            // would give, no shard involved.
            return empty_stream_ack();
        }
        let batch: StreamBatchDto = match serde_json::from_slice(first_line) {
            Ok(b) => b,
            Err(_) => {
                return Response::error(400, "bad_json", "first line must be a StreamBatchDto")
            }
        };

        self.maybe_expire_overlap();
        let (owner, _) = self.owners(batch.video);
        if let Some(resp) = self.gate(&owner) {
            return resp;
        }
        owner.proxied.fetch_add(1, Ordering::Relaxed);
        self.budget.record_attempt();
        let mut conn = match HttpClient::connect_with(
            owner.addr,
            self.cfg.connect_timeout,
            self.cfg.request_timeout,
        ) {
            Ok(conn) => conn,
            Err(e) => {
                self.mark_failure(&owner, false);
                owner.proxy_errors.fetch_add(1, Ordering::Relaxed);
                return Response::error(502, "bad_gateway", &e.to_string());
            }
        };
        let mut send_result = conn
            .start_chunked("POST", "/sessions/stream")
            .and_then(|()| conn.send_chunk(&prefix));
        if send_result.is_ok() && !ended {
            loop {
                match body.next_chunk() {
                    Ok(Some(data)) => {
                        if let Err(e) = conn.send_chunk(&data) {
                            send_result = Err(e);
                            break;
                        }
                    }
                    Ok(None) => break,
                    // The *client* side failed; dropping `conn` cuts
                    // the backend stream, which loses only what was
                    // never acknowledged.
                    Err(e) => return stream_pull_error(e),
                }
            }
        }
        let deadline = Instant::now() + self.cfg.request_timeout;
        let read = match send_result {
            Ok(()) => conn.finish_chunked_relay(deadline),
            // The backend stopped reading mid-send: it usually
            // answered early (frozen video, blown error budget). Relay
            // that answer if one is there.
            Err(_) => conn.read_early_relay(deadline),
        };
        match read {
            Ok(resp) => {
                self.mark_success(&owner);
                Response::relay(resp.status, resp.raw)
            }
            Err(e) => {
                self.mark_failure(&owner, false);
                owner.proxy_errors.fetch_add(1, Ordering::Relaxed);
                Response::error(502, "bad_gateway", &e.to_string())
            }
        }
    }

    /// `POST /admin/ring`: parse and apply a ring update, without a
    /// restart. Bad addresses or an empty/duplicated set answer 400;
    /// nothing about the running topology changes on a rejected update.
    fn handle_ring(&self, body: &[u8]) -> Response {
        let req: RingUpdateRequest = match serde_json::from_slice(body) {
            Ok(r) => r,
            Err(_) => return Response::error(400, "bad_json", "body must be a RingUpdateRequest"),
        };
        let mut addrs = Vec::with_capacity(req.backends.len());
        for s in &req.backends {
            match s.parse::<SocketAddr>() {
                Ok(a) => addrs.push(a),
                Err(_) => {
                    return Response::error(
                        400,
                        "bad_addr",
                        &format!("not a host:port backend address: {s:?}"),
                    )
                }
            }
        }
        match self.apply_ring(addrs) {
            Ok(applied) => Response::json(200, &applied),
            Err(msg) => Response::error(400, "bad_ring", &msg),
        }
    }

    /// `POST /admin/compact`: broadcast to every shard; sums the
    /// per-shard results. Any failed shard fails the broadcast (the
    /// caller must know compaction did not complete everywhere).
    fn broadcast_compact(&self) -> Response {
        let mut total = CompactResponse {
            reclaimed_bytes: 0,
            dropped_records: 0,
            live_records: 0,
        };
        let backends = self.topo().current.backends.to_vec();
        for b in &backends {
            let resp = match self.write_once(b, "/admin/compact", &[]) {
                Ok(resp) => resp,
                Err(resp) => return resp,
            };
            if resp.status != 200 {
                return Response::relay(resp.status, resp.raw);
            }
            match serde_json::from_slice::<CompactResponse>(resp.body()) {
                Ok(r) => {
                    total.reclaimed_bytes += r.reclaimed_bytes;
                    total.dropped_records += r.dropped_records;
                    total.live_records += r.live_records;
                }
                Err(_) => {
                    return Response::error(
                        502,
                        "bad_gateway",
                        "backend returned an unparseable compact response",
                    )
                }
            }
        }
        Response::json(200, &total)
    }

    /// Router `GET /healthz`: per-shard health, ring version, overall
    /// status.
    fn healthz(&self) -> Response {
        let (ring_version, snapshot) = {
            let topo = self.topo();
            (topo.current.version, topo.current.backends.to_vec())
        };
        let now = Instant::now();
        let backends: Vec<BackendHealthDto> = snapshot
            .iter()
            .map(|b| {
                let h = self.lock_health(b);
                BackendHealthDto {
                    addr: b.addr.to_string(),
                    health: h.state().name().to_string(),
                    last_transition_ms: h.last_transition_ms(now),
                }
            })
            .collect();
        let all_healthy = backends.iter().all(|b| b.health == "healthy");
        Response::json(
            200,
            &RouterHealthzResponse {
                status: if all_healthy { "ok" } else { "degraded" }.to_string(),
                ring_version,
                backends,
            },
        )
    }

    /// Router `GET /stats`: router counters plus a best-effort sweep of
    /// each live backend's own `/stats`. The sweep never fails the
    /// aggregate: a shard that is down (or whose sweep request failed)
    /// reports `unreachable: true` with `stats: null`, and every other
    /// row is still real.
    fn stats(&self, metrics: &HttpMetrics) -> Response {
        let (ring_version, snapshot) = {
            let topo = self.topo();
            (topo.current.version, topo.current.backends.to_vec())
        };
        let backends: Vec<BackendStatsDto> = snapshot
            .iter()
            .map(|b| {
                let (health, available) = {
                    let h = self.lock_health(b);
                    (h.state().name().to_string(), h.is_available())
                };
                let stats: Option<StatsResponse> = if available {
                    let deadline = Instant::now() + self.cfg.probe_timeout;
                    self.exchange(b, "GET", "/stats", None, deadline)
                        .ok()
                        .filter(|r| r.status == 200)
                        .and_then(|r| r.json().ok())
                } else {
                    None
                };
                let h = self.lock_health(b);
                BackendStatsDto {
                    addr: b.addr.to_string(),
                    health,
                    proxied: b.proxied.load(Ordering::Relaxed),
                    proxy_errors: b.proxy_errors.load(Ordering::Relaxed),
                    retries: b.retries.load(Ordering::Relaxed),
                    probe_failures: h.probe_failures(),
                    breaker_trips: h.breaker_trips(),
                    unreachable: stats.is_none(),
                    stats,
                }
            })
            .collect();
        Response::json(
            200,
            &RouterStatsResponse {
                requests: self.requests.load(Ordering::Relaxed),
                errors_5xx: self.errors_5xx.load(Ordering::Relaxed),
                accept_errors: metrics.accept_errors(),
                ring_version,
                backends,
            },
        )
    }

    /// One probe sweep at `now`: actively probe every backend whose
    /// probe is due — across both epochs during overlap, so a shard
    /// being migrated away from stays watched until the window closes.
    /// Returns how many probes ran.
    fn probe_due_backends(&self) -> usize {
        let mut probed = 0;
        for b in &self.all_backends() {
            if !self.lock_health(b).probe_due(Instant::now()) {
                continue;
            }
            probed += 1;
            let deadline = Instant::now() + self.cfg.probe_timeout;
            let ok =
                HttpClient::connect_with(b.addr, self.cfg.probe_timeout, self.cfg.probe_timeout)
                    .and_then(|mut conn| conn.request_deadline("GET", "/healthz", None, deadline))
                    .map(|resp| resp.status == 200)
                    .unwrap_or(false);
            if ok {
                self.mark_success(b);
            } else {
                self.mark_failure(b, true);
            }
        }
        probed
    }

    /// The prober loop: sweep due probes until shutdown.
    fn probe_loop(self: &Arc<Self>) {
        while !self.shutdown.load(Ordering::SeqCst) {
            self.maybe_expire_overlap();
            self.probe_due_backends();
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Handler for Cluster {
    fn handle(&self, req: &Request, metrics: &HttpMetrics) -> (RouteKey, Response) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let route = match resolve(&req.method, &req.path) {
            Ok(r) => r,
            Err(e) => return (RouteKey::Other, e.response()),
        };
        let response = match route {
            Route::Healthz => self.healthz(),
            Route::Stats => self.stats(metrics),
            Route::Dots(id) => self.route_read(id, &req.path),
            Route::Rescore(id) => self.route_write(id, &req.path, &req.body),
            Route::Sessions => self.route_session(&req.body),
            Route::SessionsStream => self.route_session_stream_buffered(&req.body),
            Route::Compact => self.broadcast_compact(),
            Route::Ring => self.handle_ring(&req.body),
            // Bundles move between a migration driver and a specific
            // shard; proxying them through the ring would re-route by
            // video id and defeat the point.
            Route::Export | Route::Import => Response::error(
                404,
                "not_found",
                "export/import are backend routes; talk to the shard directly",
            ),
        };
        if response.status >= 500 {
            self.errors_5xx.fetch_add(1, Ordering::Relaxed);
        }
        (route.key(), response)
    }

    fn wants_stream(&self, method: &str, path: &str) -> bool {
        matches!(resolve(method, path), Ok(Route::SessionsStream))
    }

    fn handle_stream(
        &self,
        _head: &Request,
        body: &mut dyn BodySource,
        metrics: &HttpMetrics,
    ) -> (RouteKey, Response) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        metrics.stream.stream_opened();
        let response = self.relay_session_stream(body);
        metrics.stream.stream_completed();
        if response.status >= 500 {
            self.errors_5xx.fetch_add(1, Ordering::Relaxed);
        }
        (RouteKey::SessionsStream, response)
    }
}

/// The zero-line `POST /sessions/stream` ack (an empty or all-blank
/// stream), identical at the router and a backend.
fn empty_stream_ack() -> Response {
    Response::json(
        200,
        &StreamAccepted {
            lines_accepted: 0,
            lines_rejected: 0,
            batches_folded: 0,
            batches_replayed: 0,
            plays_buffered: 0,
            dots_refined: 0,
            last_seq: 0,
            rejected: Vec::new(),
        },
    )
}

/// Map a failed pull from the *client's* stream to the response the
/// client (if still there) should see.
fn stream_pull_error(e: StreamBodyError) -> Response {
    match e {
        StreamBodyError::Timeout => Response::error(
            408,
            "request_timeout",
            "stream stalled past the progress deadline",
        ),
        StreamBodyError::TooLarge => {
            Response::error(413, "body_too_large", "stream buffer overflowed its bound")
        }
        StreamBodyError::Malformed(m) => Response::error(400, "bad_request", m),
        // Nobody is left to read this; the server skips the write.
        StreamBodyError::Disconnected => {
            Response::error(400, "bad_request", "client disconnected mid-stream")
        }
    }
}

/// A running router: an [`HttpServer`] serving a [`Cluster`] handler,
/// plus the background prober thread.
pub struct RouterServer {
    server: Option<crate::server::HttpServer>,
    cluster: Arc<Cluster>,
    prober: Option<std::thread::JoinHandle<()>>,
}

impl RouterServer {
    /// Bind `addr` and start routing to `cfg.backends`.
    pub fn bind(
        addr: impl std::net::ToSocketAddrs,
        cfg: ClusterConfig,
        server_cfg: crate::server::ServerConfig,
    ) -> std::io::Result<Self> {
        let cluster = Arc::new(Cluster::new(cfg));
        let server = crate::server::HttpServer::bind_handler(addr, cluster.clone(), server_cfg)?;
        let prober = {
            let cluster = cluster.clone();
            std::thread::Builder::new()
                .name("router-prober".into())
                .spawn(move || cluster.probe_loop())?
        };
        Ok(RouterServer {
            server: Some(server),
            cluster,
            prober: Some(prober),
        })
    }

    /// The router's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.as_ref().expect("server running").local_addr()
    }

    /// The cluster behind this server (ring lookups, health peeks).
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// Graceful shutdown: stop the prober, drain the HTTP server.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.cluster.shutdown.store(true, Ordering::SeqCst);
        if let Some(p) = self.prober.take() {
            let _ = p.join();
        }
        if let Some(s) = self.server.take() {
            s.shutdown();
        }
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<SocketAddr> {
        (0..n)
            .map(|i| format!("127.0.0.1:{}", 7900 + i).parse().unwrap())
            .collect()
    }

    #[test]
    fn ring_is_deterministic_and_total() {
        let ring = Ring::build(&addrs(3), 64);
        assert_eq!(ring.points.len(), 3 * 64);
        for video in 0..1000u64 {
            let a = ring.owner(video);
            assert_eq!(a, ring.owner(video), "owner must be stable");
            assert!(a < 3);
        }
    }

    #[test]
    fn ring_spreads_keys_across_backends() {
        let ring = Ring::build(&addrs(3), 64);
        let mut counts = [0usize; 3];
        for video in 0..3000u64 {
            counts[ring.owner(video)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            // Perfect balance is 1000; vnode hashing should land well
            // within 2:1 of it.
            assert!((500..=2000).contains(&c), "backend {i} owns {c} of 3000");
        }
    }

    #[test]
    fn ring_reshuffles_minimally_when_a_backend_joins() {
        let three = Ring::build(&addrs(3), 64);
        let four = Ring::build(&addrs(4), 64);
        let moved = (0..3000u64)
            .filter(|&v| {
                let before = three.owner(v);
                let after = four.owner(v);
                before != after && after != 3
            })
            .count();
        // Keys may move *to* the new backend (~1/4 of them); moving
        // between the surviving three means the hash is not consistent.
        assert!(moved < 150, "{moved} of 3000 keys moved between survivors");
    }

    #[test]
    fn cluster_routes_videos_like_the_ring() {
        let cluster = Cluster::new(ClusterConfig::new(addrs(3)));
        let ring = Ring::build(&addrs(3), 64);
        for video in 0..100 {
            assert_eq!(cluster.shard_for(video), ring.owner(video));
        }
        assert_eq!(cluster.backend_addr(0), addrs(3)[0]);
        assert_eq!(cluster.backend_health(0), HealthState::Healthy);
    }

    #[test]
    #[should_panic(expected = "at least 1 backend")]
    fn empty_backend_list_is_a_config_bug() {
        let _ = Cluster::new(ClusterConfig::new(Vec::new()));
    }

    #[test]
    fn ring_updates_bump_the_version_and_admit_new_backends_recovering() {
        let cluster = Cluster::new(ClusterConfig::new(addrs(2)));
        assert_eq!(cluster.ring_version(), 1, "boot ring is version 1");
        assert_eq!(cluster.backend_health(0), HealthState::Healthy);

        let applied = cluster.apply_ring(addrs(3)).unwrap();
        assert_eq!(applied.version, 2);
        assert_eq!(applied.backends.len(), 3);
        assert_eq!(cluster.ring_version(), 2);
        // Known addresses carried their health over; the new one is on
        // trial.
        assert_eq!(cluster.backend_health(0), HealthState::Healthy);
        assert_eq!(cluster.backend_health(1), HealthState::Healthy);
        assert_eq!(cluster.backend_health(2), HealthState::Recovering);
        // The current ring routes exactly like a fresh 3-backend ring.
        let fresh = Ring::build(&addrs(3), 64);
        for video in 0..200 {
            assert_eq!(cluster.shard_for(video), fresh.owner(video));
        }
    }

    #[test]
    fn one_for_one_substitution_preserves_every_ownership() {
        // The promotion/replacement contract: swapping a single
        // address hands the newcomer exactly the departed member's
        // key range — no key may move between survivors, and none may
        // land anywhere but the substitute.
        let old = addrs(3);
        let cluster = Cluster::new(ClusterConfig::new(old.clone()));
        let before: Vec<usize> = (0..3000u64).map(|v| cluster.shard_for(v)).collect();

        let replaced = 1usize;
        let mut new_ring = old.clone();
        new_ring[replaced] = "10.9.8.7:6543".parse().unwrap();
        cluster.apply_ring(new_ring.clone()).unwrap();
        for (v, &owner_before) in before.iter().enumerate() {
            let owner_after = cluster.shard_for(v as u64);
            assert_eq!(
                new_ring[owner_after],
                if owner_before == replaced {
                    new_ring[replaced]
                } else {
                    old[owner_before]
                },
                "video {v} moved off its slot across a substitution"
            );
        }

        // Substitutions chain: replacing the substitute hands the same
        // range over again (the inherited base propagates).
        let mut third = new_ring.clone();
        third[replaced] = "10.9.8.7:6544".parse().unwrap();
        cluster.apply_ring(third.clone()).unwrap();
        for (v, &owner_before) in before.iter().enumerate() {
            let owner_after = cluster.shard_for(v as u64);
            assert_eq!(
                third[owner_after],
                if owner_before == replaced {
                    third[replaced]
                } else {
                    old[owner_before]
                },
                "video {v} moved off its slot across a chained substitution"
            );
        }
    }

    #[test]
    fn bad_ring_updates_change_nothing() {
        let cluster = Cluster::new(ClusterConfig::new(addrs(2)));
        assert!(cluster.apply_ring(Vec::new()).is_err());
        let mut dup = addrs(2);
        dup.push(dup[0]);
        assert!(cluster.apply_ring(dup).is_err());
        assert_eq!(cluster.ring_version(), 1, "rejected updates don't bump");
    }

    #[test]
    fn overlap_window_keeps_the_old_owner_as_read_fallback() {
        let cfg = ClusterConfig {
            ring_overlap: Duration::from_millis(80),
            ..ClusterConfig::new(addrs(2))
        };
        let cluster = Cluster::new(cfg);
        cluster.apply_ring(addrs(3)).unwrap();

        // Some video must be owned differently across the two epochs.
        let old_ring = Ring::build(&addrs(2), 64);
        let moved = (0..500u64)
            .find(|&v| {
                cluster.shard_for(v) == 2 && old_ring.owner(v) < 2 // moved to the new backend
            })
            .expect("some video moved to the new backend");
        let (cur, prev) = cluster.owners(moved);
        assert_eq!(cur.addr, addrs(3)[2]);
        let prev = prev.expect("old owner is the fallback during overlap");
        assert_eq!(prev.addr, addrs(3)[old_ring.owner(moved)]);

        // Past the window the fallback expires.
        std::thread::sleep(Duration::from_millis(100));
        cluster.maybe_expire_overlap();
        let (_, prev) = cluster.owners(moved);
        assert!(prev.is_none(), "overlap fallback expired");
    }
}
