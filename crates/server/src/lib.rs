//! The network edge of the paper's deployment (Section VI, Figure 5):
//! a hand-rolled, std-only, multi-threaded HTTP/1.1 front end over
//! `lightor_platform`'s wire DTOs and [`LightorService`].
//!
//! # The Figure 5 loop, route by route
//!
//! The paper ships LIGHTOR as a browser extension talking to a web
//! service. Every arrow in that loop is one route here:
//!
//! * **"viewer opens a recorded video"** → `GET /video/{id}/dots`.
//!   The extension extracts the video id on page load and fetches the
//!   red dots to draw on the progress bar ([`wire::DotsResponse`]).
//!   First sight of a video crawls its chat replay and runs the
//!   Highlight Initializer; later requests serve the *refined*
//!   positions, so the dots viewers see improve as the crowd watches.
//! * **"interactions stream back"** → `POST /sessions`. The extension
//!   uploads one [`wire::SessionUpload`] per viewing session (play /
//!   pause / seek / leave events). The service buffers the derived
//!   plays against the nearest dot and runs a refinement round — the
//!   implicit-crowdsourcing step that turns passive viewers into
//!   labellers. Garbage payloads (NaN/negative timestamps, unknown
//!   videos) are rejected with a typed 422 ([`wire::UploadError`]).
//! * **"model refresh"** → `POST /video/{id}/rescore`: re-run the
//!   Initializer at a chosen `k` without touching refinement state.
//! * **operations** → `GET /stats` (service + per-route HTTP counters,
//!   [`wire::StatsResponse`]), `POST /admin/compact` (reclaim storage,
//!   [`wire::CompactResponse`]), `GET /healthz` (liveness).
//!
//! # Architecture
//!
//! std-only by design — no async runtime, no HTTP dependency, and the
//! vendored registry stubs stay stubs:
//!
//! * [`pool`] — a bounded fixed-size worker pool (the accept backlog);
//! * [`http`] — incremental HTTP/1.1 parsing (header/body limits →
//!   400/413/431/501) and response framing;
//! * [`router`] — the route table above, over [`LightorService`];
//! * [`metrics`] — per-route request/error/latency counters, merged
//!   into `GET /stats`;
//! * [`server`] — listener + keep-alive connection loop + graceful
//!   drain on shutdown;
//! * [`client`] — a tiny keep-alive client driving the integration
//!   tests, the loopback benches, and `examples/browser_extension.rs`.
//!
//! The `lightor-serve` binary wires a simulated platform behind the
//! server so the whole loop runs from one command.

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod router;
pub mod server;

pub use client::{ClientResponse, HttpClient};
pub use http::{HttpError, Limits, Request, RequestParser, Response};
pub use lightor_platform::wire;
pub use lightor_platform::LightorService;
pub use metrics::{HttpMetrics, RouteKey, ROUTE_NAMES};
pub use pool::ThreadPool;
pub use router::{Route, RouteError, SessionAccepted};
pub use server::{HttpServer, ServerConfig};
