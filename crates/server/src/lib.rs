//! The network edge of the paper's deployment (Section VI, Figure 5):
//! a hand-rolled, std-only, multi-threaded HTTP/1.1 front end over
//! `lightor_platform`'s wire DTOs and [`LightorService`].
//!
//! # The Figure 5 loop, route by route
//!
//! The paper ships LIGHTOR as a browser extension talking to a web
//! service. Every arrow in that loop is one route here:
//!
//! * **"viewer opens a recorded video"** → `GET /video/{id}/dots`.
//!   The extension extracts the video id on page load and fetches the
//!   red dots to draw on the progress bar ([`wire::DotsResponse`]).
//!   First sight of a video crawls its chat replay and runs the
//!   Highlight Initializer; later requests serve the *refined*
//!   positions, so the dots viewers see improve as the crowd watches.
//! * **"interactions stream back"** → `POST /sessions`. The extension
//!   uploads one [`wire::SessionUpload`] per viewing session (play /
//!   pause / seek / leave events). The service buffers the derived
//!   plays against the nearest dot and runs a refinement round — the
//!   implicit-crowdsourcing step that turns passive viewers into
//!   labellers. Garbage payloads (NaN/negative timestamps, unknown
//!   videos) are rejected with a typed 422 ([`wire::UploadError`]).
//! * **"interactions stream back, live"** → `POST /sessions/stream`.
//!   The streaming twin: a chunked (or Content-Length) NDJSON body,
//!   one [`wire::StreamBatchDto`] event batch per line, folded
//!   incrementally as each line arrives. Acknowledged batches are
//!   WAL-durable *before* the [`wire::StreamAccepted`] ack; a client
//!   that tags batches with a per-`(video, client)` `seq` can replay
//!   from its last acknowledged sequence after any crash without
//!   double-counting (replays are recognized and skipped). Malformed
//!   lines reject the *line* — typed, with its 1-based number — not
//!   the session, up to a 16-line error budget
//!   ([`wire::StreamRejected`]).
//! * **"model refresh"** → `POST /video/{id}/rescore`: re-run the
//!   Initializer at a chosen `k` without touching refinement state.
//! * **operations** → `GET /stats` (service + per-route HTTP counters,
//!   [`wire::StatsResponse`] — including the tokenized-corpus columns:
//!   `tokenized_hits` / `tokenized_misses` count corpora decoded from
//!   persisted v3 sections vs re-tokenized from raw text,
//!   `tokenized_lazy_upgrades` counts v2→v3 persists, and
//!   `train_boot_ms` is the boot-time model-training wall clock),
//!   `POST /admin/compact` (reclaim storage,
//!   [`wire::CompactResponse`]), `GET /healthz` (liveness).
//!
//! # Architecture
//!
//! std-only by design — no async runtime, no HTTP dependency, and the
//! vendored registry stubs stay stubs:
//!
//! * [`pool`] — a bounded fixed-size worker pool (the accept backlog);
//! * [`http`] — incremental HTTP/1.1 parsing (header/body limits →
//!   400/413/431/501) and response framing;
//! * [`router`] — the route table above, over [`LightorService`];
//! * [`metrics`] — per-route request/error/latency counters, merged
//!   into `GET /stats`;
//! * [`server`] — listener + keep-alive connection loop + graceful
//!   drain on shutdown;
//! * [`client`] — a tiny keep-alive client driving the integration
//!   tests, the loopback benches, and `examples/browser_extension.rs`.
//!
//! The `lightor-serve` binary wires a simulated platform behind the
//! server so the whole loop runs from one command.
//!
//! # Cluster topology
//!
//! One process only goes so far; the fault-tolerant rung shards the
//! catalog across N `lightor-serve` backends behind `lightor-router`:
//!
//! ```text
//!   extension ──▶ lightor-router ──▶ lightor-serve (shard 0)
//!                   │  consistent     lightor-serve (shard 1)
//!                   │  hash on          …
//!                   └─ video id      lightor-serve (shard N-1)
//! ```
//!
//! * [`cluster`] — the [`Cluster`] ring (FNV-1a keys on a SplitMix64
//!   vnode ring, 64 vnodes per backend) plus [`RouterServer`], a thin
//!   [`Handler`] that owns per-backend connection pools. Video routes
//!   proxy to the owning shard; `/stats` fans out and aggregates;
//!   `POST /admin/compact` broadcasts. Proxied responses are *relayed*
//!   — the backend's bytes are forwarded verbatim after a minimal head
//!   scan (status, `Content-Length`, `Connection`), so the proxy hop
//!   adds no parse/rebuild work on the hot path.
//! * [`health`] — per-backend probe state machine
//!   (healthy → suspect → down → recovering) driven by a background
//!   `GET /healthz` prober with jittered exponential backoff. Down
//!   shards fast-fail `503` + `Retry-After` instead of eating a
//!   connect timeout per request.
//! * [`retry`] — [`RetryPolicy`] (per-request deadline, bounded
//!   attempts, jittered backoff) and a global [`RetryBudget`] so a
//!   flapping shard can't amplify load. Only idempotent GETs are
//!   retried; writes never re-run on a fresh connection, because an
//!   acknowledged-but-disconnected `POST /sessions` may already have
//!   refined the model.
//!
//! The `lightor-router` binary wires these together
//! (`--backend host:port` per shard). Backends stay plain
//! `lightor-serve` processes — killing one degrades exactly its key
//! range while the survivors keep answering, which is what the chaos
//! tests (`tests/cluster_chaos.rs`) and the CI cluster smoke assert.
//!
//! The ring is *versioned*: `POST /admin/ring` swaps in a new backend
//! set without a restart, and backends ship state to each other with
//! `POST /admin/export` / `POST /admin/import` bundles (per-video KV
//! snapshots + WAL-tail state, chat records, and v3 tokenized-corpus
//! sections, CRC-framed — an imported shard scores its new range
//! without re-running the tokenizer). Together
//! those make resharding and shard replacement live operations; the
//! recipes below are the whole procedure.
//!
//! # Operations runbook
//!
//! **Reading `/healthz`.** The router's `GET /healthz` reports
//! `status` (`"ok"` / `"degraded"`), the `ring_version` currently
//! routing, and one entry per shard whose `health` is one of:
//!
//! * `"healthy"` — taking traffic, probes passing;
//! * `"suspect"` — consecutive failures accumulating; still serving,
//!   trips to `down` at the policy threshold;
//! * `"down"` — circuit open: requests fast-fail `503` with a
//!   `Retry-After`; background probes keep testing it;
//! * `"recovering"` — a probe succeeded (or the shard was newly
//!   admitted by a ring update): trial traffic flows, a failure sends
//!   it back to `down`, sustained successes earn `healthy`.
//!
//! **Adding a backend.** Boot a fresh `lightor-serve`; for every shard
//! that loses part of its range to the newcomer, `POST /admin/export`
//! (`{"videos":[],"since_seq":0,"freeze_ms":0}`) on the shard and ship
//! the bundle verbatim to the newcomer's `POST /admin/import`. Then
//! cut over: re-export with `since_seq` set to the bulk bundle's
//! `as_of_seq` and a small `freeze_ms` (the sub-second write-freeze
//! window), import that delta, and `POST /admin/ring` on the router
//! with the full new address list. The router bumps the ring version,
//! admits the new address in `recovering`, and keeps the outgoing
//! epoch as a read fallback for a bounded overlap window — reads never
//! observe a gap, and writes resume the moment the swap lands (the new
//! owner was never frozen).
//!
//! **Replacing a crashed shard.** The dead process's data dir is all
//! that is needed: boot a replacement with
//! `lightor-serve --restore-from <dead-data-dir>` (it re-reads the
//! snapshot + WAL tail — every acknowledged write — and imports the
//! range before binding), import the restored range into any other
//! shard that will own part of it, then `POST /admin/ring` with the
//! dead address swapped for the replacement. The replacement joins in
//! `recovering` and earns `healthy` through the ordinary probe state
//! machine.
//!
//! **Applying a ring update.** `POST /admin/ring` with
//! `{"backends":["host:port", …]}`. Known addresses carry their
//! health, connection pools, and counters across the swap; the
//! response and subsequent `/healthz` / `/stats` bodies carry the new
//! `ring_version`. Updates are rejected (`400`) if the list is empty
//! or contains duplicates, and nothing changes on rejection.
//! Swapping exactly one new address in for exactly one departed
//! member is **ownership-preserving**: the newcomer takes over
//! precisely the departed member's videos (this is what a supervisor
//! promotion or a `--restore-from` replacement relies on — no key
//! quietly moves to a survivor that never received the dead shard's
//! state). Any other membership change re-shards as consistent
//! hashing normally does, so grow/shrink operations still need the
//! export/import migration dance first.
//!
//! **Streaming ingest.** `POST /sessions/stream` accepts a chunked (or
//! `Content-Length`) NDJSON body and folds each line as it arrives, so
//! a long-lived uploader holds one connection, not one buffered body.
//! What to know when operating it:
//!
//! * *Progress deadlines.* A streamed body must make progress — each
//!   read window is bounded by [`ServerConfig`]'s `body_progress`
//!   (default 2 s; per-route override via `Handler::body_progress`).
//!   A stalled uploader (slowloris) gets a clean `408
//!   request_timeout` naming the deadline, never a hung worker. Raise
//!   it only for uploaders that legitimately pause between batches;
//!   prefer client-side keep-alive batches over a long deadline.
//! * *Budgets.* Lines over 256 KiB are rejected (and skipped to the
//!   next newline without buffering); a connection accumulating more
//!   than 16 rejected lines is terminated with `422
//!   error_budget_exhausted` listing every rejection so far. Total
//!   buffered bytes per connection stay bounded by [`Limits`] — an
//!   over-limit body is `413`.
//! * *Reading `/stats`.* `stream_open` is the number of streams in
//!   flight right now; `stream_lines_accepted` / `stream_lines_rejected`
//!   count per-line outcomes; `stream_batches_folded` counts batches
//!   that advanced refinement state and `stream_batches_replayed`
//!   counts duplicates recognized by their `seq` watermark and
//!   skipped. `folded + replayed` reconciling with `lines_accepted`
//!   (buffered `POST /sessions` also counts one `folded` each) is the
//!   healthy steady state.
//! * *Resume after a crash.* Every `StreamAccepted` ack means the
//!   batches it covers are WAL-durable on the owning shard. A client
//!   that tags batches with a monotone per-`(video, client)` `seq`
//!   resumes by replaying from its last acked `last_seq` + 1; sending
//!   earlier batches again is harmless (they come back
//!   `batches_replayed`, fold nothing).
//! * *Freeze windows.* A mid-stream export freeze answers `503
//!   frozen` with a `Retry-After` and terminates the stream cleanly;
//!   the router relays a streamed body chunk-by-chunk to the owning
//!   shard and never retries a streamed write, so resume with the
//!   `seq` protocol after the window passes.
//!
//! # Supervisor topology
//!
//! Everything above is a human following a recipe. The
//! `lightor-supervisor` binary ([`supervisor`], [`replicate`]) is that
//! human, mechanized — deploy it next to the router when shard death
//! must not page anyone:
//!
//! ```text
//!   lightor-supervisor ──observe──▶ lightor-router /healthz
//!        │    │                         │ consistent hash
//!        │    └──────bulk + deltas──┐   ▼
//!        │                          │ lightor-serve (primary A)
//!        │                          ▼
//!        │                      lightor-serve (warm standby A')
//!        └─── on A down: final delta + POST /admin/ring (A → A')
//! ```
//!
//! One `--pair PRIMARY,STANDBY[,DATA_DIR]` per protected range. The
//! supervisor runs a single-threaded observe → plan → act loop: it
//! seeds each standby with one bulk bundle, then ships deltas every
//! tick (`--tick-ms`, default 250) using the `since_seq`/`as_of_seq`
//! watermarks, tracking lag in ops and milliseconds. When the router's
//! `/healthz` reports a primary `down` (optionally dwelling
//! `--down-dwell-ms` first; each health row carries
//! `last_transition_ms` for exactly this), it promotes unattended:
//! final delta from the primary if it still answers, else a WAL-tail
//! rebuild from `DATA_DIR` (the zero-acknowledged-loss path for a
//! SIGKILLed shard), then a ring update with the standby substituted.
//! The plan is derived only from the live observation, so a supervisor
//! crash mid-failover resumes on restart and never double-promotes.
//!
//! Its `GET /stats` reports per-range phase
//! (`bootstrapping`/`replicating`/`promoting`/`promoted`/`retired`),
//! `synced_seq`, lag, bundle counts, and the last promotion. Without a
//! supervisor the cluster degrades to the manual runbook above —
//! nothing else depends on it, and it owns no request-path state.

#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod health;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod replicate;
pub mod retry;
pub mod router;
pub mod server;
pub mod supervisor;

pub use client::{ClientError, ClientResponse, HttpClient};
pub use cluster::{Cluster, ClusterConfig, RouterServer};
pub use health::{BackendHealth, HealthPolicy, HealthState};
pub use http::{Framing, HttpError, Limits, Request, RequestParser, Response, StreamChunk};
pub use lightor_platform::wire;
pub use lightor_platform::LightorService;
pub use metrics::{HttpMetrics, RouteKey, StreamMetrics, ROUTE_NAMES};
pub use pool::ThreadPool;
pub use replicate::{ReplicaPair, ReplicaTracker, SyncTimeouts};
pub use retry::{RetryBudget, RetryPolicy, XorShift64};
pub use router::{Route, RouteError, SessionAccepted};
pub use server::{BodySource, Handler, HttpServer, ServerConfig, StreamBodyError};
pub use supervisor::{Supervisor, SupervisorConfig, SupervisorServer};
