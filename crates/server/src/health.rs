//! Per-backend health tracking: a four-state machine driven by probe
//! results *and* live request outcomes, with jittered exponential
//! backoff on probes to a down shard.
//!
//! ```text
//!            failure                 #failures ≥ down_after
//!  Healthy ──────────▶ Suspect ───────────────────────────▶ Down
//!     ▲                   │ success                            │ probe success
//!     │                   ▼                                    ▼
//!     │◀────────────── Healthy                            Recovering
//!     │                                                        │
//!     └────── #successes ≥ recover_after ──────────────────────┘
//!                        (any failure → Down again)
//! ```
//!
//! `Healthy`, `Suspect`, and `Recovering` receive traffic; `Down` does
//! not (requests fast-fail 503 at the router). The same transitions
//! fire for request failures as for probe failures, which is what makes
//! the machine double as a circuit breaker: a burst of transport errors
//! trips the shard to `Down` without waiting for the prober to notice.

use crate::retry::XorShift64;
use std::time::{Duration, Instant};

/// The four health states (see the module diagram).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// Answering normally.
    Healthy,
    /// Failed recently, but not often enough to stop routing to it.
    Suspect,
    /// Tripped: receives probes only, on a backed-off schedule.
    Down,
    /// A probe succeeded; trial traffic flows while successes accrue.
    Recovering,
}

impl HealthState {
    /// Stable lowercase name for wire DTOs (`"healthy"`, `"suspect"`,
    /// `"down"`, `"recovering"`).
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Down => "down",
            HealthState::Recovering => "recovering",
        }
    }
}

/// Thresholds and probe cadence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive failures that trip `Suspect` → `Down`.
    pub down_after: u32,
    /// Consecutive successes that promote `Recovering` → `Healthy`.
    pub recover_after: u32,
    /// Probe cadence while not down.
    pub probe_interval: Duration,
    /// First probe delay after tripping down (doubles per failed
    /// probe, jittered).
    pub probe_backoff_base: Duration,
    /// Probe-delay ceiling while down.
    pub probe_backoff_max: Duration,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            down_after: 3,
            recover_after: 2,
            probe_interval: Duration::from_millis(500),
            probe_backoff_base: Duration::from_millis(250),
            probe_backoff_max: Duration::from_secs(4),
        }
    }
}

/// Health ledger of one backend. All methods take `now` explicitly so
/// tests drive the clock instead of sleeping.
#[derive(Debug)]
pub struct BackendHealth {
    policy: HealthPolicy,
    state: HealthState,
    consecutive_failures: u32,
    consecutive_successes: u32,
    /// Failed probes while down (backoff exponent).
    down_probes: u32,
    next_probe_at: Instant,
    probe_failures: u64,
    breaker_trips: u64,
    /// When `state` last changed (construction counts). A supervisor
    /// deciding whether "down" warrants a promotion needs the dwell
    /// time, not just the state name.
    last_transition: Instant,
}

impl BackendHealth {
    /// A backend assumed healthy at `now`, due for its first probe
    /// immediately.
    pub fn new(policy: HealthPolicy, now: Instant) -> Self {
        BackendHealth {
            policy,
            state: HealthState::Healthy,
            consecutive_failures: 0,
            consecutive_successes: 0,
            down_probes: 0,
            next_probe_at: now,
            probe_failures: 0,
            breaker_trips: 0,
            last_transition: now,
        }
    }

    /// A backend admitted in `Recovering` at `now` — how a ring update
    /// introduces an address the router has never health-checked. It
    /// takes trial traffic immediately but must string together
    /// `recover_after` successes before it counts as healthy, and a
    /// single failure re-trips it to `Down` — a misconfigured address
    /// in a ring update never lingers as "healthy by assumption".
    pub fn new_recovering(policy: HealthPolicy, now: Instant) -> Self {
        BackendHealth {
            state: HealthState::Recovering,
            ..Self::new(policy, now)
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Whether the router may send this backend live traffic.
    pub fn is_available(&self) -> bool {
        self.state != HealthState::Down
    }

    /// Failed active probes since start.
    pub fn probe_failures(&self) -> u64 {
        self.probe_failures
    }

    /// Transitions into `Down` since start.
    pub fn breaker_trips(&self) -> u64 {
        self.breaker_trips
    }

    /// Milliseconds this backend has been in its current state at
    /// `now` — surfaced per backend in the router's `/healthz` rows.
    pub fn last_transition_ms(&self, now: Instant) -> u64 {
        now.saturating_duration_since(self.last_transition)
            .as_millis() as u64
    }

    /// Whether an active probe is due at `now`.
    pub fn probe_due(&self, now: Instant) -> bool {
        now >= self.next_probe_at
    }

    /// Seconds a client should wait before retrying a down shard —
    /// the router's `Retry-After` value. At least 1 (the header is
    /// integer seconds and 0 invites a tight retry loop).
    pub fn retry_after_secs(&self, now: Instant) -> u64 {
        self.next_probe_at
            .saturating_duration_since(now)
            .as_secs()
            .max(1)
    }

    /// Record a successful request or probe at `now`.
    pub fn record_success(&mut self, now: Instant) {
        self.consecutive_failures = 0;
        self.next_probe_at = now + self.policy.probe_interval;
        match self.state {
            HealthState::Healthy => {}
            HealthState::Suspect => {
                self.state = HealthState::Healthy;
                self.last_transition = now;
            }
            HealthState::Down => {
                // First good probe: trial traffic may flow again.
                self.state = HealthState::Recovering;
                self.last_transition = now;
                self.down_probes = 0;
                self.consecutive_successes = 1;
                self.maybe_recover(now);
            }
            HealthState::Recovering => {
                self.consecutive_successes += 1;
                self.maybe_recover(now);
            }
        }
    }

    fn maybe_recover(&mut self, now: Instant) {
        if self.consecutive_successes >= self.policy.recover_after {
            self.state = HealthState::Healthy;
            self.last_transition = now;
            self.consecutive_successes = 0;
        }
    }

    /// Record a failed request at `now`. `rng` drives probe-backoff
    /// jitter on a trip into `Down`.
    pub fn record_failure(&mut self, now: Instant, rng: &mut XorShift64) {
        self.consecutive_failures += 1;
        self.consecutive_successes = 0;
        match self.state {
            HealthState::Healthy => {
                self.state = HealthState::Suspect;
                self.last_transition = now;
                if self.consecutive_failures >= self.policy.down_after {
                    self.trip(now, rng);
                }
            }
            HealthState::Suspect => {
                if self.consecutive_failures >= self.policy.down_after {
                    self.trip(now, rng);
                }
            }
            // Any failure while recovering re-trips immediately: the
            // backend showed it is not actually back.
            HealthState::Recovering => self.trip(now, rng),
            HealthState::Down => {
                // A failed probe while down: back off harder.
                self.down_probes = self.down_probes.saturating_add(1);
                self.next_probe_at = now + self.probe_backoff(rng);
            }
        }
    }

    /// Record a failed active probe at `now` (a request failure that
    /// also bumps the probe-failure counter surfaced in `/stats`).
    pub fn record_probe_failure(&mut self, now: Instant, rng: &mut XorShift64) {
        self.probe_failures += 1;
        self.record_failure(now, rng);
    }

    fn trip(&mut self, now: Instant, rng: &mut XorShift64) {
        self.state = HealthState::Down;
        self.last_transition = now;
        self.breaker_trips += 1;
        self.down_probes = 0;
        self.next_probe_at = now + self.probe_backoff(rng);
    }

    /// Jittered exponential probe delay while down: a uniform draw
    /// from `[ceiling/2, ceiling]` where `ceiling` doubles per failed
    /// probe. The half-floor keeps probes from hammering a struggling
    /// backend even at maximum jitter bad luck.
    fn probe_backoff(&self, rng: &mut XorShift64) -> Duration {
        let exp = self.down_probes.min(16);
        let ceiling = self
            .policy
            .probe_backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.policy.probe_backoff_max);
        let half = ceiling / 2;
        half + Duration::from_micros(rng.below(half.as_micros() as u64 + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (BackendHealth, XorShift64, Instant) {
        let t0 = Instant::now();
        (
            BackendHealth::new(HealthPolicy::default(), t0),
            XorShift64::new(99),
            t0,
        )
    }

    #[test]
    fn failures_walk_healthy_suspect_down() {
        let (mut h, mut rng, t0) = fixture();
        assert_eq!(h.state(), HealthState::Healthy);
        assert!(h.is_available());

        h.record_failure(t0, &mut rng);
        assert_eq!(h.state(), HealthState::Suspect);
        assert!(h.is_available(), "suspect still serves traffic");

        h.record_failure(t0, &mut rng);
        assert_eq!(h.state(), HealthState::Suspect);

        h.record_failure(t0, &mut rng);
        assert_eq!(h.state(), HealthState::Down);
        assert!(!h.is_available());
        assert_eq!(h.breaker_trips(), 1);
    }

    #[test]
    fn success_clears_suspect() {
        let (mut h, mut rng, t0) = fixture();
        h.record_failure(t0, &mut rng);
        h.record_failure(t0, &mut rng);
        h.record_success(t0);
        assert_eq!(h.state(), HealthState::Healthy);
        // The failure streak reset: it takes down_after fresh failures
        // to trip.
        h.record_failure(t0, &mut rng);
        h.record_failure(t0, &mut rng);
        assert_eq!(h.state(), HealthState::Suspect);
    }

    #[test]
    fn recovery_needs_consecutive_successes() {
        let (mut h, mut rng, t0) = fixture();
        for _ in 0..3 {
            h.record_failure(t0, &mut rng);
        }
        assert_eq!(h.state(), HealthState::Down);

        h.record_success(t0);
        assert_eq!(h.state(), HealthState::Recovering);
        assert!(h.is_available(), "recovering takes trial traffic");

        h.record_success(t0);
        assert_eq!(h.state(), HealthState::Healthy, "recover_after=2 met");
        assert_eq!(h.breaker_trips(), 1);
    }

    #[test]
    fn failure_during_recovery_retrips() {
        let (mut h, mut rng, t0) = fixture();
        for _ in 0..3 {
            h.record_failure(t0, &mut rng);
        }
        h.record_success(t0);
        assert_eq!(h.state(), HealthState::Recovering);
        h.record_failure(t0, &mut rng);
        assert_eq!(h.state(), HealthState::Down);
        assert_eq!(h.breaker_trips(), 2, "re-trip counts");
    }

    #[test]
    fn probe_backoff_doubles_and_caps_while_down() {
        let policy = HealthPolicy::default();
        let (mut h, mut rng, t0) = fixture();
        for _ in 0..3 {
            h.record_failure(t0, &mut rng);
        }
        // Just tripped: first probe within [base/2, base].
        let delay0 = h.next_probe_at - t0;
        assert!(delay0 >= policy.probe_backoff_base / 2);
        assert!(delay0 <= policy.probe_backoff_base);
        assert!(!h.probe_due(t0));
        assert!(h.probe_due(t0 + policy.probe_backoff_base));

        // Each failed probe doubles the ceiling...
        h.record_probe_failure(t0, &mut rng);
        let delay1 = h.next_probe_at - t0;
        assert!(delay1 <= policy.probe_backoff_base * 2);
        assert!(delay1 >= policy.probe_backoff_base);

        // ...up to the cap.
        for _ in 0..10 {
            h.record_probe_failure(t0, &mut rng);
        }
        let capped = h.next_probe_at - t0;
        assert!(capped <= policy.probe_backoff_max);
        assert!(capped >= policy.probe_backoff_max / 2);
        assert_eq!(h.probe_failures(), 11);
        // Still exactly one trip: failed probes while down do not re-trip.
        assert_eq!(h.breaker_trips(), 1);
    }

    #[test]
    fn retry_after_tracks_next_probe_with_a_floor() {
        let (mut h, mut rng, t0) = fixture();
        for _ in 0..3 {
            h.record_failure(t0, &mut rng);
        }
        // Drive the backoff to multi-second delays.
        for _ in 0..8 {
            h.record_probe_failure(t0, &mut rng);
        }
        let secs = h.retry_after_secs(t0);
        assert!(secs >= 1, "floor");
        assert!(secs <= 4, "cap is 4s");
        // Long past the probe time, the floor still holds.
        assert_eq!(h.retry_after_secs(t0 + Duration::from_secs(60)), 1);
    }

    #[test]
    fn healthy_probe_cadence_follows_interval() {
        let policy = HealthPolicy::default();
        let (mut h, _rng, t0) = fixture();
        assert!(h.probe_due(t0), "first probe immediate");
        h.record_success(t0);
        assert!(!h.probe_due(t0 + policy.probe_interval / 2));
        assert!(h.probe_due(t0 + policy.probe_interval));
    }

    #[test]
    fn recovering_admission_must_earn_healthy() {
        let t0 = Instant::now();
        let mut rng = XorShift64::new(7);
        let mut h = BackendHealth::new_recovering(HealthPolicy::default(), t0);
        assert_eq!(h.state(), HealthState::Recovering);
        assert!(h.is_available(), "admitted shards take trial traffic");
        assert!(h.probe_due(t0), "first probe immediate");

        // One failure while on trial trips straight to down.
        h.record_failure(t0, &mut rng);
        assert_eq!(h.state(), HealthState::Down);

        // A fresh admission walks to healthy on recover_after successes.
        let mut h = BackendHealth::new_recovering(HealthPolicy::default(), t0);
        h.record_success(t0);
        assert_eq!(h.state(), HealthState::Recovering);
        h.record_success(t0);
        assert_eq!(h.state(), HealthState::Healthy);
    }

    #[test]
    fn last_transition_tracks_state_changes_only() {
        let (mut h, mut rng, t0) = fixture();
        // Fresh backend: in Healthy since construction.
        assert_eq!(h.last_transition_ms(t0 + Duration::from_millis(250)), 250);

        // A success in Healthy is not a transition — the dwell clock
        // keeps running.
        h.record_success(t0 + Duration::from_millis(100));
        assert_eq!(h.last_transition_ms(t0 + Duration::from_millis(250)), 250);

        // Healthy → Suspect restamps.
        let t1 = t0 + Duration::from_millis(300);
        h.record_failure(t1, &mut rng);
        assert_eq!(h.state(), HealthState::Suspect);
        assert_eq!(h.last_transition_ms(t1 + Duration::from_millis(40)), 40);

        // A repeat failure that stays Suspect does not restamp.
        h.record_failure(t1 + Duration::from_millis(10), &mut rng);
        assert_eq!(h.state(), HealthState::Suspect);
        assert_eq!(h.last_transition_ms(t1 + Duration::from_millis(40)), 40);

        // The trip to Down restamps — this is the dwell time the
        // supervisor reads before promoting.
        let t2 = t1 + Duration::from_millis(500);
        h.record_failure(t2, &mut rng);
        assert_eq!(h.state(), HealthState::Down);
        assert_eq!(h.last_transition_ms(t2 + Duration::from_millis(75)), 75);

        // Down → Recovering → Healthy restamp at each hop.
        let t3 = t2 + Duration::from_secs(1);
        h.record_success(t3);
        assert_eq!(h.state(), HealthState::Recovering);
        assert_eq!(h.last_transition_ms(t3 + Duration::from_millis(5)), 5);
        let t4 = t3 + Duration::from_millis(200);
        h.record_success(t4);
        assert_eq!(h.state(), HealthState::Healthy);
        assert_eq!(h.last_transition_ms(t4 + Duration::from_millis(9)), 9);
    }

    #[test]
    fn state_names_are_wire_stable() {
        assert_eq!(HealthState::Healthy.name(), "healthy");
        assert_eq!(HealthState::Suspect.name(), "suspect");
        assert_eq!(HealthState::Down.name(), "down");
        assert_eq!(HealthState::Recovering.name(), "recovering");
    }
}
