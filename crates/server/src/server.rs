//! The listener + connection machinery: `std::net::TcpListener`, a
//! fixed worker pool, keep-alive connections, and graceful shutdown.
//!
//! One acceptor thread owns the listener. Each accepted connection is
//! admitted through the pool's bounded queue ([`crate::pool`]); when
//! the queue is full the acceptor answers `503` inline and closes —
//! load is shed at the door instead of queueing unboundedly.
//!
//! A worker runs the whole life of its connection: feed socket bytes to
//! the incremental parser, dispatch complete requests through the
//! router, write responses, repeat while keep-alive holds. Reads use a
//! short poll timeout so idle connections notice the shutdown flag
//! quickly.
//!
//! [`HttpServer::shutdown`] is the graceful path: stop accepting (the
//! acceptor is woken by a self-connect), then drain — workers finish
//! the request currently in flight (including one whose bytes are
//! still arriving, up to a drain grace period) before closing their
//! connections, and the pool joins every worker.

use crate::http::{Limits, Request, RequestParser, Response};
use crate::metrics::{HttpMetrics, RouteKey};
use crate::pool::ThreadPool;
use lightor_platform::LightorService;
use std::io::{ErrorKind, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Bounded accept backlog: connections queued past the busy
    /// workers before the acceptor sheds load with `503`.
    pub backlog: usize,
    /// Parser limits (431/413 thresholds).
    pub limits: Limits,
    /// Idle keep-alive timeout: a connection with no request in flight
    /// for this long is closed.
    pub keep_alive: Duration,
    /// How long shutdown waits for a partially received request to
    /// finish arriving before the connection is dropped.
    pub drain_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            backlog: 64,
            limits: Limits::default(),
            keep_alive: Duration::from_secs(5),
            drain_grace: Duration::from_secs(2),
        }
    }
}

/// How often a worker wakes from a blocked read to check the shutdown
/// flag and the idle deadline.
const READ_POLL: Duration = Duration::from_millis(25);

/// What an [`HttpServer`] serves: one parsed request in, one response
/// out, tagged with the metrics bucket it belongs to.
///
/// [`LightorService`] implements this with the standard route table
/// ([`crate::router`]); the cluster router ([`crate::cluster`])
/// implements it with proxy logic — both reuse the same listener,
/// worker-pool, keep-alive, and graceful-drain machinery underneath.
pub trait Handler: Send + Sync + 'static {
    /// Handle one complete request. `metrics` is the server's own
    /// counter set, passed in so `/stats`-style routes can merge it.
    fn handle(&self, req: &Request, metrics: &HttpMetrics) -> (RouteKey, Response);
}

/// Shared connection context.
struct Ctx {
    handler: Arc<dyn Handler>,
    metrics: Arc<HttpMetrics>,
    shutdown: AtomicBool,
    cfg: ServerConfig,
}

/// A running HTTP front end over one [`LightorService`].
pub struct HttpServer {
    ctx: Arc<Ctx>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    pool: Arc<ThreadPool>,
}

impl HttpServer {
    /// Bind `addr` (port 0 picks a free port) and start serving `svc`
    /// with the standard route table.
    pub fn bind(
        addr: impl ToSocketAddrs,
        svc: Arc<LightorService>,
        cfg: ServerConfig,
    ) -> std::io::Result<Self> {
        Self::bind_handler(addr, svc, cfg)
    }

    /// Bind `addr` and serve an arbitrary [`Handler`] — the seam the
    /// cluster router uses to get a full HTTP front end for free.
    pub fn bind_handler(
        addr: impl ToSocketAddrs,
        handler: Arc<impl Handler>,
        cfg: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let ctx = Arc::new(Ctx {
            handler,
            metrics: Arc::new(HttpMetrics::new()),
            shutdown: AtomicBool::new(false),
            cfg,
        });
        let pool = Arc::new(ThreadPool::new(cfg.workers, cfg.backlog));
        let acceptor = {
            let ctx = ctx.clone();
            let pool = pool.clone();
            std::thread::Builder::new()
                .name("http-acceptor".into())
                .spawn(move || accept_loop(listener, &ctx, &pool))?
        };
        Ok(HttpServer {
            ctx,
            addr: local,
            acceptor: Some(acceptor),
            pool,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The per-route counters (also served by `GET /stats`).
    pub fn metrics(&self) -> Arc<HttpMetrics> {
        self.ctx.metrics.clone()
    }

    /// Graceful shutdown: stop accepting, drain in-flight connections,
    /// join every thread. Blocks until the server is fully down.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.ctx.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // Drains queued connections and joins workers (workers see the
        // shutdown flag and close after the in-flight request).
        self.pool.shutdown();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, ctx: &Arc<Ctx>, pool: &ThreadPool) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match pool.try_acquire() {
                    Some(permit) => {
                        let ctx = ctx.clone();
                        permit.submit(move || serve_connection(stream, &ctx));
                    }
                    None => shed_load(stream, ctx),
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Surface the failure in /stats — a silent accept loop
                // hides fd exhaustion until clients notice.
                ctx.metrics.record_accept_error();
                // Persistent accept errors (EMFILE under fd
                // exhaustion, ENFILE, …) fail instantly; without a
                // pause this thread would hot-spin a core exactly
                // when the server is already overloaded.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Answer `503` and close — the bounded backlog is full.
fn shed_load(mut stream: TcpStream, ctx: &Ctx) {
    let resp = Response::error(503, "overloaded", "server backlog is full; retry");
    let _ = resp.write_to(&mut stream, false);
    let _ = stream.shutdown(Shutdown::Both);
    ctx.metrics.record(RouteKey::Other, 503, Duration::ZERO);
}

/// Run one connection to completion: parse → dispatch → respond, while
/// keep-alive holds and the server is not draining.
fn serve_connection(stream: TcpStream, ctx: &Ctx) {
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut parser = RequestParser::new(ctx.cfg.limits);
    let mut read_buf = [0u8; 16 * 1024];
    let mut last_activity = Instant::now();
    // Set once the shutdown flag is observed with bytes still in
    // flight: the worker keeps reading until the request completes or
    // this deadline passes.
    let mut drain_deadline: Option<Instant> = None;

    loop {
        match parser.try_next() {
            Ok(Some(req)) => {
                let started = Instant::now();
                let (key, response) = ctx.handler.handle(&req, &ctx.metrics);
                let shutting_down = ctx.shutdown.load(Ordering::SeqCst);
                let keep_alive = req.keep_alive && !shutting_down;
                // Record before writing: once a client holds the
                // response, its request is visible in /stats.
                ctx.metrics.record(key, response.status, started.elapsed());
                let wrote = response.write_to(&mut stream, keep_alive);
                if wrote.is_err() || !keep_alive {
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
                last_activity = Instant::now();
                continue;
            }
            Ok(None) => {}
            Err(e) => {
                // Parse-level failure: answer with its status and close
                // (the framing is unrecoverable).
                let response = Response::error(
                    e.status(),
                    match e.status() {
                        413 => "body_too_large",
                        431 => "headers_too_large",
                        501 => "not_implemented",
                        _ => "bad_request",
                    },
                    e.message(),
                );
                let _ = response.write_to(&mut stream, false);
                ctx.metrics
                    .record(RouteKey::Other, e.status(), Duration::ZERO);
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        }

        // No complete request buffered: decide whether to keep waiting.
        let shutting_down = ctx.shutdown.load(Ordering::SeqCst);
        if shutting_down {
            if parser.is_empty() {
                // Nothing in flight — close immediately.
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            let deadline =
                *drain_deadline.get_or_insert_with(|| Instant::now() + ctx.cfg.drain_grace);
            if Instant::now() > deadline {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        } else if last_activity.elapsed() > ctx.cfg.keep_alive {
            // Idle keep-alive expiry — and, because `last_activity`
            // only resets when a *response* completes, also the
            // overall deadline for one request to finish arriving.
            // A slowloris client dribbling a byte at a time cannot
            // hold the worker past this window.
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }

        match stream.read(&mut read_buf) {
            Ok(0) => {
                // Peer closed.
                return;
            }
            Ok(n) => {
                parser.extend(&read_buf[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}
