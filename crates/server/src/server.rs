//! The listener + connection machinery: `std::net::TcpListener`, a
//! fixed worker pool, keep-alive connections, and graceful shutdown.
//!
//! One acceptor thread owns the listener. Each accepted connection is
//! admitted through the pool's bounded queue ([`crate::pool`]); when
//! the queue is full the acceptor answers `503` inline and closes —
//! load is shed at the door instead of queueing unboundedly.
//!
//! A worker runs the whole life of its connection: feed socket bytes to
//! the incremental parser, dispatch complete requests through the
//! router, write responses, repeat while keep-alive holds. Reads use a
//! short poll timeout so idle connections notice the shutdown flag
//! quickly.
//!
//! [`HttpServer::shutdown`] is the graceful path: stop accepting (the
//! acceptor is woken by a self-connect), then drain — workers finish
//! the request currently in flight (including one whose bytes are
//! still arriving, up to a drain grace period) before closing their
//! connections, and the pool joins every worker.

use crate::http::{HttpError, Limits, Request, RequestParser, Response, StreamChunk};
use crate::metrics::{HttpMetrics, RouteKey};
use crate::pool::ThreadPool;
use lightor_platform::LightorService;
use std::io::{ErrorKind, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Bounded accept backlog: connections queued past the busy
    /// workers before the acceptor sheds load with `503`.
    pub backlog: usize,
    /// Parser limits (431/413 thresholds).
    pub limits: Limits,
    /// Idle keep-alive timeout: a connection with no request in flight
    /// for this long is closed.
    pub keep_alive: Duration,
    /// How long shutdown waits for a partially received request to
    /// finish arriving before the connection is dropped.
    pub drain_grace: Duration,
    /// Default body-progress deadline: once a request's head is
    /// complete, its body must make progress (buffered: any bytes;
    /// streamed: a decoded chunk) at least this often or the request
    /// is answered `408` and the connection closed. Routes can
    /// override via [`Handler::body_progress`].
    pub body_progress: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            backlog: 64,
            limits: Limits::default(),
            keep_alive: Duration::from_secs(5),
            drain_grace: Duration::from_secs(2),
            body_progress: Duration::from_secs(2),
        }
    }
}

/// How often a worker wakes from a blocked read to check the shutdown
/// flag and the idle deadline.
const READ_POLL: Duration = Duration::from_millis(25);

/// What an [`HttpServer`] serves: one parsed request in, one response
/// out, tagged with the metrics bucket it belongs to.
///
/// [`LightorService`] implements this with the standard route table
/// ([`crate::router`]); the cluster router ([`crate::cluster`])
/// implements it with proxy logic — both reuse the same listener,
/// worker-pool, keep-alive, and graceful-drain machinery underneath.
pub trait Handler: Send + Sync + 'static {
    /// Handle one complete request. `metrics` is the server's own
    /// counter set, passed in so `/stats`-style routes can merge it.
    fn handle(&self, req: &Request, metrics: &HttpMetrics) -> (RouteKey, Response);

    /// True when this route's body should be *streamed* to
    /// [`Self::handle_stream`] instead of buffered: the server hands
    /// over as soon as the head is parsed, before any body bytes need
    /// to exist.
    fn wants_stream(&self, _method: &str, _path: &str) -> bool {
        false
    }

    /// Per-route body-progress deadline override; `None` uses
    /// [`ServerConfig::body_progress`]. Streaming routes that expect
    /// naturally slow clients (a live session dribbling events in real
    /// time) return a larger window here without loosening the guard
    /// for every buffered route.
    fn body_progress(&self, _method: &str, _path: &str) -> Option<Duration> {
        None
    }

    /// Handle a streamed-body request: `head` carries the parsed head
    /// (empty body) and `body` yields decoded body chunks as they
    /// arrive. The default answers `501` — a handler that returns
    /// `true` from [`Self::wants_stream`] must override this.
    fn handle_stream(
        &self,
        _head: &Request,
        _body: &mut dyn BodySource,
        _metrics: &HttpMetrics,
    ) -> (RouteKey, Response) {
        (
            RouteKey::Other,
            Response::error(
                501,
                "not_implemented",
                "this route does not accept streamed bodies",
            ),
        )
    }
}

/// Why a streamed body stopped yielding chunks (see [`BodySource`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamBodyError {
    /// No decoded progress within the route's progress deadline (or
    /// the server began draining mid-stream) — answer `408`.
    Timeout,
    /// The connection buffer overflowed its bound — answer `413`.
    TooLarge,
    /// The body framing is broken — answer `400`.
    Malformed(&'static str),
    /// The peer closed or the socket died; there is usually nobody
    /// left to answer.
    Disconnected,
}

/// A streamed request body, pulled chunk by chunk.
///
/// `Ok(Some(bytes))` is decoded body data (transfer framing never
/// shows through), `Ok(None)` is clean end-of-body. Implementations
/// block until one of those or a [`StreamBodyError`] — each call gets
/// a fresh progress deadline, so time a handler spends processing
/// between calls never counts against the client.
pub trait BodySource {
    /// Pull the next decoded chunk.
    fn next_chunk(&mut self) -> Result<Option<Vec<u8>>, StreamBodyError>;
}

/// Shared connection context.
struct Ctx {
    handler: Arc<dyn Handler>,
    metrics: Arc<HttpMetrics>,
    shutdown: AtomicBool,
    cfg: ServerConfig,
}

/// A running HTTP front end over one [`LightorService`].
pub struct HttpServer {
    ctx: Arc<Ctx>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    pool: Arc<ThreadPool>,
}

impl HttpServer {
    /// Bind `addr` (port 0 picks a free port) and start serving `svc`
    /// with the standard route table.
    pub fn bind(
        addr: impl ToSocketAddrs,
        svc: Arc<LightorService>,
        cfg: ServerConfig,
    ) -> std::io::Result<Self> {
        Self::bind_handler(addr, svc, cfg)
    }

    /// Bind `addr` and serve an arbitrary [`Handler`] — the seam the
    /// cluster router uses to get a full HTTP front end for free.
    pub fn bind_handler(
        addr: impl ToSocketAddrs,
        handler: Arc<impl Handler>,
        cfg: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let ctx = Arc::new(Ctx {
            handler,
            metrics: Arc::new(HttpMetrics::new()),
            shutdown: AtomicBool::new(false),
            cfg,
        });
        let pool = Arc::new(ThreadPool::new(cfg.workers, cfg.backlog));
        let acceptor = {
            let ctx = ctx.clone();
            let pool = pool.clone();
            std::thread::Builder::new()
                .name("http-acceptor".into())
                .spawn(move || accept_loop(listener, &ctx, &pool))?
        };
        Ok(HttpServer {
            ctx,
            addr: local,
            acceptor: Some(acceptor),
            pool,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The per-route counters (also served by `GET /stats`).
    pub fn metrics(&self) -> Arc<HttpMetrics> {
        self.ctx.metrics.clone()
    }

    /// Graceful shutdown: stop accepting, drain in-flight connections,
    /// join every thread. Blocks until the server is fully down.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.ctx.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // Drains queued connections and joins workers (workers see the
        // shutdown flag and close after the in-flight request).
        self.pool.shutdown();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, ctx: &Arc<Ctx>, pool: &ThreadPool) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match pool.try_acquire() {
                    Some(permit) => {
                        let ctx = ctx.clone();
                        permit.submit(move || serve_connection(stream, &ctx));
                    }
                    None => shed_load(stream, ctx),
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Surface the failure in /stats — a silent accept loop
                // hides fd exhaustion until clients notice.
                ctx.metrics.record_accept_error();
                // Persistent accept errors (EMFILE under fd
                // exhaustion, ENFILE, …) fail instantly; without a
                // pause this thread would hot-spin a core exactly
                // when the server is already overloaded.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Answer `503` and close — the bounded backlog is full.
fn shed_load(mut stream: TcpStream, ctx: &Ctx) {
    let resp = Response::error(503, "overloaded", "server backlog is full; retry");
    let _ = resp.write_to(&mut stream, false);
    let _ = stream.shutdown(Shutdown::Both);
    ctx.metrics.record(RouteKey::Other, 503, Duration::ZERO);
}

/// Answer a parse-level failure with its status code, record it in the
/// catch-all bucket, and close — the framing is unrecoverable.
fn answer_parse_error(stream: &mut TcpStream, ctx: &Ctx, e: HttpError) {
    let response = Response::error(
        e.status(),
        match e.status() {
            408 => "request_timeout",
            413 => "body_too_large",
            431 => "headers_too_large",
            501 => "not_implemented",
            _ => "bad_request",
        },
        e.message(),
    );
    let _ = response.write_to(stream, false);
    ctx.metrics
        .record(RouteKey::Other, e.status(), Duration::ZERO);
    let _ = stream.shutdown(Shutdown::Both);
}

/// The live [`BodySource`] over one connection: pulls decoded chunks
/// out of the parser, refilling it from the socket, under a fresh
/// progress deadline per [`BodySource::next_chunk`] call.
struct SocketBody<'a> {
    stream: &'a mut TcpStream,
    parser: &'a mut RequestParser,
    /// Per-chunk progress deadline (route override or server default).
    progress: Duration,
    shutdown: &'a AtomicBool,
    grace: Duration,
    /// Armed when the shutdown flag is first seen mid-stream.
    shutdown_deadline: Option<Instant>,
    /// The body reached its clean end (`StreamChunk::End`).
    drained: bool,
    /// The peer vanished; writing a response is pointless.
    disconnected: bool,
}

impl BodySource for SocketBody<'_> {
    fn next_chunk(&mut self) -> Result<Option<Vec<u8>>, StreamBodyError> {
        if self.drained {
            return Ok(None);
        }
        let started = Instant::now();
        let mut read_buf = [0u8; 16 * 1024];
        loop {
            match self.parser.next_stream_chunk() {
                Ok(StreamChunk::Data(data)) => return Ok(Some(data)),
                Ok(StreamChunk::End) => {
                    self.drained = true;
                    return Ok(None);
                }
                Ok(StreamChunk::NeedMore) => {}
                Err(HttpError::BodyTooLarge) | Err(HttpError::HeadersTooLarge) => {
                    return Err(StreamBodyError::TooLarge)
                }
                Err(e) => return Err(StreamBodyError::Malformed(e.message())),
            }
            // Nothing decodable buffered: wait for socket bytes, under
            // the progress deadline (and the drain grace once the
            // server is shutting down).
            if started.elapsed() > self.progress {
                return Err(StreamBodyError::Timeout);
            }
            if self.shutdown.load(Ordering::SeqCst) {
                let deadline = *self
                    .shutdown_deadline
                    .get_or_insert_with(|| Instant::now() + self.grace);
                if Instant::now() > deadline {
                    return Err(StreamBodyError::Timeout);
                }
            }
            match self.stream.read(&mut read_buf) {
                Ok(0) => {
                    self.disconnected = true;
                    return Err(StreamBodyError::Disconnected);
                }
                Ok(n) => self.parser.extend(&read_buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.disconnected = true;
                    return Err(StreamBodyError::Disconnected);
                }
            }
        }
    }
}

/// Run one connection to completion: parse → dispatch → respond, while
/// keep-alive holds and the server is not draining.
fn serve_connection(stream: TcpStream, ctx: &Ctx) {
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut parser = RequestParser::new(ctx.cfg.limits);
    let mut read_buf = [0u8; 16 * 1024];
    let mut last_activity = Instant::now();
    // Last time any request bytes arrived: the body-progress clock for
    // buffered requests (408 when a header-complete request's body
    // stalls past the route's deadline).
    let mut last_progress = Instant::now();
    // Set once the shutdown flag is observed with bytes still in
    // flight: the worker keeps reading until the request completes or
    // this deadline passes.
    let mut drain_deadline: Option<Instant> = None;

    loop {
        // Streamed dispatch runs off the head alone — the handler takes
        // over before the body exists. Peek errors fall through to
        // `try_next`, which surfaces the same error with a status.
        if parser.head_complete() {
            if let Ok(Some((head, _))) = parser.peek_head() {
                if ctx.handler.wants_stream(&head.method, &head.path) {
                    let head = parser
                        .begin_stream()
                        .expect("peek_head succeeded")
                        .expect("head is complete");
                    let started = Instant::now();
                    let progress = ctx
                        .handler
                        .body_progress(&head.method, &head.path)
                        .unwrap_or(ctx.cfg.body_progress);
                    let mut body = SocketBody {
                        stream: &mut stream,
                        parser: &mut parser,
                        progress,
                        shutdown: &ctx.shutdown,
                        grace: ctx.cfg.drain_grace,
                        shutdown_deadline: None,
                        drained: false,
                        disconnected: false,
                    };
                    let (key, response) = ctx.handler.handle_stream(&head, &mut body, &ctx.metrics);
                    let (drained, disconnected) = (body.drained, body.disconnected);
                    ctx.metrics.record(key, response.status, started.elapsed());
                    if disconnected {
                        let _ = stream.shutdown(Shutdown::Both);
                        return;
                    }
                    // Reuse the connection only when the body reached
                    // its clean end — otherwise unread body bytes would
                    // be parsed as the next request.
                    let keep_alive =
                        head.keep_alive && drained && !ctx.shutdown.load(Ordering::SeqCst);
                    let wrote = response.write_to(&mut stream, keep_alive);
                    if wrote.is_err() || !keep_alive {
                        let _ = stream.shutdown(Shutdown::Both);
                        return;
                    }
                    last_activity = Instant::now();
                    last_progress = Instant::now();
                    continue;
                }
            }
        }

        match parser.try_next() {
            Ok(Some(req)) => {
                let started = Instant::now();
                let (key, response) = ctx.handler.handle(&req, &ctx.metrics);
                let shutting_down = ctx.shutdown.load(Ordering::SeqCst);
                let keep_alive = req.keep_alive && !shutting_down;
                // Record before writing: once a client holds the
                // response, its request is visible in /stats.
                ctx.metrics.record(key, response.status, started.elapsed());
                let wrote = response.write_to(&mut stream, keep_alive);
                if wrote.is_err() || !keep_alive {
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
                last_activity = Instant::now();
                last_progress = Instant::now();
                continue;
            }
            Ok(None) => {}
            Err(e) => {
                answer_parse_error(&mut stream, ctx, e);
                return;
            }
        }

        // No complete request buffered: decide whether to keep waiting.
        let shutting_down = ctx.shutdown.load(Ordering::SeqCst);
        if shutting_down {
            if parser.is_empty() {
                // Nothing in flight — close immediately.
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            let deadline =
                *drain_deadline.get_or_insert_with(|| Instant::now() + ctx.cfg.drain_grace);
            if Instant::now() > deadline {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        } else {
            if parser.head_complete() {
                // A header-complete request whose body has stalled past
                // the route's progress deadline gets a clean 408 — not
                // a silent close at keep-alive expiry.
                let progress = match parser.peek_head() {
                    Ok(Some((head, _))) => ctx
                        .handler
                        .body_progress(&head.method, &head.path)
                        .unwrap_or(ctx.cfg.body_progress),
                    _ => ctx.cfg.body_progress,
                };
                if last_progress.elapsed() > progress {
                    answer_parse_error(&mut stream, ctx, HttpError::RequestTimeout);
                    return;
                }
            }
            if last_activity.elapsed() > ctx.cfg.keep_alive {
                // Idle keep-alive expiry — and, because `last_activity`
                // only resets when a *response* completes, also the
                // overall deadline for one request to finish arriving.
                // A slowloris client dribbling a byte at a time cannot
                // hold the worker past this window.
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        }

        match stream.read(&mut read_buf) {
            Ok(0) => {
                // Peer closed.
                return;
            }
            Ok(n) => {
                parser.extend(&read_buf[..n]);
                last_progress = Instant::now();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}
