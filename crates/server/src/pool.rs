//! A bounded, fixed-size worker thread pool (std-only).
//!
//! This is the server's accept backlog *and* a general-purpose pool for
//! `'static` jobs: `N` long-lived workers pull boxed closures from a
//! queue whose depth is capped up front. Admission is a two-step
//! reserve/submit protocol ([`ThreadPool::try_acquire`] →
//! [`Permit::submit`]) so callers holding a resource they may still
//! need on rejection — the HTTP acceptor holds the client's
//! `TcpStream` — can learn "queue full" *before* moving the resource
//! into a closure, and answer 503 themselves.
//!
//! Shutdown is graceful by construction: [`ThreadPool::shutdown`]
//! closes admission, lets the workers drain everything already queued,
//! and joins them. A panicking job takes neither the worker nor the
//! pool down; it is caught, counted, and the worker returns to the
//! queue.
//!
//! The `rayon` stub deliberately does **not** route its parallel
//! regions through this pool — see the module docs in
//! `vendor/rayon/src/lib.rs` for why (nested regions would deadlock a
//! fixed pool without work-stealing, and the stub's borrowed closures
//! would need lifetime-erasing `unsafe` to cross a `'static` queue).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Queue state behind the pool's one lock.
struct State {
    queue: VecDeque<Job>,
    /// Permits handed out but not yet submitted; they hold queue slots.
    reserved: usize,
    shutting_down: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a job lands in the queue (or shutdown starts).
    work_ready: Condvar,
    queue_cap: usize,
    /// Jobs that panicked (caught; the worker survives).
    panics: AtomicU64,
}

/// A fixed-size worker pool over a bounded job queue.
///
/// `shutdown` takes `&self`, so a pool can be shared (`Arc`) between
/// the thread that feeds it and the one that eventually drains it.
pub struct ThreadPool {
    shared: Arc<Shared>,
    worker_count: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// A reserved queue slot: submitting is infallible once you hold one.
///
/// Dropping a permit without submitting releases the slot.
pub struct Permit<'a> {
    shared: &'a Shared,
    submitted: bool,
}

impl ThreadPool {
    /// Start `workers` threads over a queue of at most `queue_cap`
    /// pending jobs. Both are clamped to ≥ 1.
    pub fn new(workers: usize, queue_cap: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                reserved: 0,
                shutting_down: false,
            }),
            work_ready: Condvar::new(),
            queue_cap: queue_cap.max(1),
            panics: AtomicU64::new(0),
        });
        let worker_count = workers.max(1);
        let workers = (0..worker_count)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("pool-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            worker_count,
            workers: Mutex::new(workers),
        }
    }

    /// Reserve a queue slot. `None` when the queue (queued + reserved)
    /// is at capacity or the pool is shutting down — the caller still
    /// holds whatever it meant to move into the job and can shed load.
    pub fn try_acquire(&self) -> Option<Permit<'_>> {
        let mut state = self.shared.state.lock().expect("pool lock");
        if state.shutting_down || state.queue.len() + state.reserved >= self.shared.queue_cap {
            return None;
        }
        state.reserved += 1;
        Some(Permit {
            shared: &self.shared,
            submitted: false,
        })
    }

    /// Reserve-and-submit in one call; `false` means the job was
    /// rejected (queue full or shutting down) and never ran.
    pub fn try_execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        match self.try_acquire() {
            Some(permit) => {
                permit.submit(job);
                true
            }
            None => false,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Jobs currently queued (not yet picked up).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().expect("pool lock").queue.len()
    }

    /// Jobs that panicked since the pool started (all caught).
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: refuse new permits, drain everything already
    /// queued — including jobs submitted through permits acquired
    /// before the shutdown — and join the workers. Blocks until all
    /// in-flight work has finished (so it also waits for outstanding
    /// permits to be submitted or dropped). Idempotent; later calls
    /// return immediately.
    ///
    /// Must not be called from inside a pool job (a worker cannot join
    /// itself).
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutting_down = true;
        }
        self.shared.work_ready.notify_all();
        let handles: Vec<JoinHandle<()>> =
            self.workers.lock().expect("pool lock").drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Permit<'_> {
    /// Put `job` on the queue; a worker will run it — even if
    /// `shutdown` started after this permit was acquired (workers
    /// drain outstanding permits before exiting).
    pub fn submit(mut self, job: impl FnOnce() + Send + 'static) {
        let mut state = self.shared.state.lock().expect("pool lock");
        state.reserved -= 1;
        state.queue.push_back(Box::new(job));
        drop(state);
        self.submitted = true;
        // notify_all: during shutdown every idle worker re-evaluates
        // its exit condition (`reserved` just changed), and one of
        // them takes the job.
        self.shared.work_ready.notify_all();
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        if !self.submitted {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.reserved -= 1;
            drop(state);
            // A released slot changes the workers' shutdown exit
            // condition too.
            self.shared.work_ready.notify_all();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                // Exit only once shutdown has started AND no permit is
                // outstanding: a held [`Permit`] promises its holder an
                // infallible `submit`, so someone must stay to run it.
                if state.shutting_down && state.reserved == 0 {
                    return;
                }
                state = shared.work_ready.wait(state).expect("pool lock");
            }
        };
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_shutdown_drains() {
        let pool = ThreadPool::new(3, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..40 {
            let counter = counter.clone();
            assert!(pool.try_execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 40);
    }

    #[test]
    fn queue_is_bounded_and_permits_release_on_drop() {
        // One worker, blocked; queue of 2 fills after two submissions.
        let pool = ThreadPool::new(1, 2);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        assert!(pool.try_execute(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        }));
        // Make sure the worker took the blocking job off the queue.
        started_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("worker started");
        assert!(pool.try_execute(|| {}));
        assert!(pool.try_execute(|| {}));
        // Queue full now (2 queued, worker busy).
        assert!(pool.try_acquire().is_none());
        // An unsubmitted permit must give its slot back.
        {
            let ran_before = pool.try_acquire();
            assert!(ran_before.is_none());
        }
        release_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = ThreadPool::new(1, 8);
        assert!(pool.try_execute(|| panic!("job panic")));
        let (tx, rx) = mpsc::channel::<()>();
        assert!(pool.try_execute(move || tx.send(()).unwrap()));
        rx.recv_timeout(Duration::from_secs(5))
            .expect("worker survived the panic");
        assert_eq!(pool.panics(), 1);
        pool.shutdown();
    }

    #[test]
    fn permit_acquired_before_shutdown_still_runs_its_job() {
        let pool = Arc::new(ThreadPool::new(2, 8));
        let permit_taken = Arc::new(std::sync::Barrier::new(2));
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let submitter = {
            let pool = pool.clone();
            let permit_taken = permit_taken.clone();
            std::thread::spawn(move || {
                let permit = pool.try_acquire().expect("pool is idle");
                permit_taken.wait();
                // Give shutdown() a head start before submitting.
                std::thread::sleep(Duration::from_millis(100));
                permit.submit(move || done_tx.send(()).unwrap());
            })
        };
        permit_taken.wait();
        // Shutdown races the held permit; the job must still run.
        pool.shutdown();
        done_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("job submitted through a pre-shutdown permit ran");
        submitter.join().unwrap();
    }

    #[test]
    fn shutdown_refuses_new_jobs_and_is_idempotent() {
        let pool = ThreadPool::new(2, 8);
        pool.shutdown();
        assert!(!pool.try_execute(|| {}));
        assert!(pool.try_acquire().is_none());
        pool.shutdown(); // second call is a no-op
    }
}
