//! Retry policy for the router's proxy path: bounded attempts, jittered
//! exponential backoff, and a token-bucket retry budget.
//!
//! Retries are only safe and only useful under three conditions, each
//! encoded here rather than left to call-site discipline:
//!
//! * **idempotence** — the router only retries GETs, and only on
//!   *transport* errors (the backend may be fine; the connection was
//!   not). A response that arrived, whatever its status, is final.
//! * **bounded amplification** — [`RetryBudget`] caps retries to a
//!   fraction of recent first attempts (Finagle-style token bucket), so
//!   a down shard costs ~1.1× the offered load, not `max_attempts`×.
//! * **decorrelation** — backoff is exponential with full jitter
//!   ([`RetryPolicy::backoff`]), so a burst of failures does not
//!   resynchronize into retry waves.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A small xorshift64* PRNG for jitter — this crate is std-only (no
/// `rand`), and jitter needs speed and decorrelation, not quality.
#[derive(Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeded PRNG; a zero seed is nudged to a fixed odd constant
    /// (xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Attempt/backoff shape for one logical request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request (first try + retries).
    pub max_attempts: u32,
    /// Backoff before retry #1 (doubles per subsequent retry).
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// Full-jitter backoff before retry number `retry` (1-based): a
    /// uniform draw from `[0, min(base · 2^(retry-1), max)]`.
    pub fn backoff(&self, retry: u32, rng: &mut XorShift64) -> Duration {
        let exp = retry.saturating_sub(1).min(16);
        let ceiling = self
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        let micros = ceiling.as_micros() as u64;
        Duration::from_micros(rng.below(micros.saturating_add(1)))
    }
}

/// Token buckets are integer-denominated; this scale gives the ratio
/// milli-token resolution.
const SCALE: i64 = 1000;

/// A Finagle-style retry budget: every first attempt deposits
/// `ratio` tokens, every retry withdraws one. Retries are allowed only
/// while the bucket is positive, which caps retry amplification at
/// ~`1 + ratio` of the offered load no matter how hard a backend
/// fails. A small burst allowance keeps single sporadic failures
/// retryable even from a cold start.
#[derive(Debug)]
pub struct RetryBudget {
    /// Balance in milli-tokens (may go negative transiently under
    /// concurrent withdrawals; clamped on deposit).
    balance: AtomicI64,
    /// Milli-tokens deposited per first attempt.
    deposit: i64,
    /// Balance ceiling (burst cap), milli-tokens.
    cap: i64,
    /// Retries denied because the bucket was empty.
    exhausted: AtomicU64,
}

impl RetryBudget {
    /// A budget allowing `ratio` retries per first attempt (clamped to
    /// `[0, 1]`), with a burst allowance of `burst` retries.
    pub fn new(ratio: f64, burst: u32) -> Self {
        let ratio = ratio.clamp(0.0, 1.0);
        let cap = i64::from(burst.max(1)) * SCALE;
        RetryBudget {
            balance: AtomicI64::new(cap),
            deposit: (ratio * SCALE as f64) as i64,
            cap,
            exhausted: AtomicU64::new(0),
        }
    }

    /// Record one first attempt (deposits `ratio` tokens).
    pub fn record_attempt(&self) {
        self.balance
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                Some((b + self.deposit).min(self.cap))
            })
            .ok();
    }

    /// Try to withdraw one retry token. `false` means the budget is
    /// exhausted and the caller must not retry.
    pub fn try_withdraw(&self) -> bool {
        let ok = self
            .balance
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                (b >= SCALE).then_some(b - SCALE)
            })
            .is_ok();
        if !ok {
            self.exhausted.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Retries denied because the bucket was empty.
    pub fn exhausted_count(&self) -> u64 {
        self.exhausted.load(Ordering::Relaxed)
    }
}

impl Default for RetryBudget {
    /// 10% retry ratio with a 10-retry burst — Finagle's defaults.
    fn default() -> Self {
        RetryBudget::new(0.1, 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            assert_ne!(x, 0);
        }
        // Zero seed does not collapse to the fixed point.
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
        // below() respects its bound.
        for bound in [1u64, 2, 7, 1000] {
            for _ in 0..50 {
                assert!(a.below(bound) < bound);
            }
        }
        assert_eq!(a.below(0), 0);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy::default();
        let mut rng = XorShift64::new(7);
        // Ceilings: retry 1 → 10ms, retry 2 → 20ms, retry 5+ → 200ms cap.
        for _ in 0..200 {
            assert!(p.backoff(1, &mut rng) <= Duration::from_millis(10));
            assert!(p.backoff(2, &mut rng) <= Duration::from_millis(20));
            assert!(p.backoff(50, &mut rng) <= Duration::from_millis(200));
        }
        // Jitter actually varies (full jitter, not fixed steps).
        let draws: std::collections::HashSet<u128> = (0..32)
            .map(|_| p.backoff(3, &mut rng).as_micros())
            .collect();
        assert!(draws.len() > 1, "backoff draws never varied");
    }

    #[test]
    fn budget_allows_burst_then_denies() {
        let b = RetryBudget::new(0.0, 3);
        assert!(b.try_withdraw());
        assert!(b.try_withdraw());
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw(), "burst of 3 exceeded");
        assert_eq!(b.exhausted_count(), 1);
    }

    #[test]
    fn budget_refills_from_attempts_at_ratio() {
        let b = RetryBudget::new(0.1, 1);
        // Drain the burst allowance.
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw());
        // 10 first attempts at ratio 0.1 buy exactly one retry.
        for _ in 0..9 {
            b.record_attempt();
            assert!(!b.try_withdraw(), "retry allowed before ratio earned it");
        }
        b.record_attempt();
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw());
    }

    #[test]
    fn flapping_backend_drains_budget_recovers_and_never_amplifies() {
        // A backend that flaps — bursts of transport failures between
        // healthy stretches — is the worst case for retry storms. Walk
        // the budget through two full flap cycles and check all three
        // properties: it drains to denial, it recovers from healthy
        // first-attempt volume, and total retries never exceed
        // burst + ratio × attempts (the amplification cap).
        let b = RetryBudget::new(0.1, 5);
        let mut attempts = 0u64;
        let mut granted = 0u64;
        for cycle in 0..2 {
            // Flap: every request fails and wants max_attempts retries.
            let mut denied_this_flap = 0;
            for _ in 0..100 {
                b.record_attempt();
                attempts += 1;
                for _ in 0..2 {
                    if b.try_withdraw() {
                        granted += 1;
                    } else {
                        denied_this_flap += 1;
                    }
                }
            }
            assert!(
                denied_this_flap > 0,
                "cycle {cycle}: the bucket never drained under 2× retry demand"
            );
            assert!(
                !b.try_withdraw(),
                "cycle {cycle}: still granting after a sustained flap"
            );
            // Healthy stretch: first attempts succeed, nothing retries,
            // the bucket refills at the deposit ratio.
            for _ in 0..60 {
                b.record_attempt();
                attempts += 1;
            }
            assert!(
                b.try_withdraw(),
                "cycle {cycle}: budget did not recover from healthy traffic"
            );
            granted += 1;
        }
        // Amplification cap: burst + ceil(ratio × attempts).
        let cap = 5 + (attempts as f64 * 0.1).ceil() as u64;
        assert!(
            granted <= cap,
            "granted {granted} retries from {attempts} attempts (cap {cap})"
        );
        assert!(b.exhausted_count() > 0, "denials were counted");
    }

    #[test]
    fn budget_balance_is_capped_at_burst() {
        let b = RetryBudget::new(1.0, 2);
        // Massive attempt volume must not bank unlimited retries.
        for _ in 0..1000 {
            b.record_attempt();
        }
        assert!(b.try_withdraw());
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw(), "cap exceeded");
    }
}
