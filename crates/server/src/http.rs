//! Incremental HTTP/1.1 request parsing and response writing (std-only).
//!
//! The parser is push-based: the connection loop feeds it raw socket
//! bytes ([`RequestParser::extend`]) and polls [`RequestParser::try_next`],
//! which yields a complete [`Request`], `None` ("need more bytes"), or a
//! typed [`HttpError`] that maps straight to a status code:
//!
//! * `400` — malformed request line, header, `Content-Length`, or
//!   chunked framing;
//! * `408` — a body stalled past its progress deadline (raised by the
//!   connection loop, which owns the clock; the parser only names it);
//! * `413` — declared or decoded body larger than the configured cap;
//! * `431` — head (request line + headers) larger than the cap;
//! * `501` — a transfer encoding other than chunked.
//!
//! Framing is strict `Content-Length` or RFC 7230 chunked transfer
//! coding (decoded transparently — `try_next` yields the de-chunked
//! body). Pipelined bytes after one request's body are kept in the
//! buffer for the next `try_next` call, which is what keep-alive needs.
//!
//! # Streamed bodies
//!
//! Routes that consume the body incrementally (the NDJSON ingest
//! endpoint) use the streaming half of the API instead of `try_next`:
//! [`RequestParser::begin_stream`] consumes the head and switches the
//! parser into streamed-body mode, after which
//! [`RequestParser::next_stream_chunk`] yields decoded body pieces
//! ([`StreamChunk::Data`]) as bytes arrive, until [`StreamChunk::End`].
//! Memory stays bounded the whole way: chunk-size lines are capped
//! (`400` past [`MAX_CHUNK_LINE`]), the raw buffer never grows beyond
//! the body cap plus a fixed framing allowance (`413`), and a streamed
//! chunked body has no *total* cap — the data flows through the buffer
//! instead of accumulating in it.

use std::io::Write;

/// Parser limits: how much head and body one request may carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Request line + headers cap, bytes (431 beyond this).
    pub max_head_bytes: usize,
    /// Body cap, bytes (413 beyond this).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Maximum number of header lines a request may carry.
const MAX_HEADERS: usize = 100;

/// Longest accepted chunk-size line (hex digits + extensions). A size
/// line that runs past this without a CRLF is a 400, which bounds how
/// much garbage a client can feed before the first framing decision.
const MAX_CHUNK_LINE: usize = 64;

/// Raw-buffer allowance past the body cap for chunk framing overhead
/// (size lines, CRLFs, trailers) while a chunked body accumulates.
const CHUNK_SLACK: usize = 16 * 1024;

/// A parse-level failure, mapped to its HTTP status code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// 400 — the request is syntactically broken.
    BadRequest(&'static str),
    /// 408 — the body stalled past the route's progress deadline.
    RequestTimeout,
    /// 413 — the declared (or decoded) body exceeds the cap.
    BodyTooLarge,
    /// 431 — the head exceeds the cap (or too many headers).
    HeadersTooLarge,
    /// 501 — a transfer encoding this server does not implement.
    NotImplemented(&'static str),
}

impl HttpError {
    /// The status code this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::RequestTimeout => 408,
            HttpError::BodyTooLarge => 413,
            HttpError::HeadersTooLarge => 431,
            HttpError::NotImplemented(_) => 501,
        }
    }

    /// Human-readable detail for the error body.
    pub fn message(&self) -> &'static str {
        match self {
            HttpError::BadRequest(m) | HttpError::NotImplemented(m) => m,
            HttpError::RequestTimeout => "request body stalled past the progress deadline",
            HttpError::BodyTooLarge => "request body exceeds the configured limit",
            HttpError::HeadersTooLarge => "request head exceeds the configured limit",
        }
    }
}

/// How a request's body is framed on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Framing {
    /// Exactly this many raw bytes (strict `Content-Length`).
    Length(usize),
    /// RFC 7230 chunked transfer coding, decoded by the parser.
    Chunked,
}

/// One step of a streamed body (see
/// [`RequestParser::next_stream_chunk`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamChunk {
    /// Decoded body bytes — framing never shows through.
    Data(Vec<u8>),
    /// Nothing decodable is buffered; feed more socket bytes.
    NeedMore,
    /// The body is complete; the parser is ready for the next request.
    End,
}

/// One parsed request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path, query string stripped.
    pub path: String,
    /// Header list: lowercased names, trimmed values, request order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (exactly `Content-Length` of them, or the
    /// decoded chunked body; empty for a streamed head).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A fully parsed head plus the framing it declared, before any body.
struct ParsedHead {
    request: Request,
    framing: Framing,
    /// Offset of the first body byte in the parser buffer.
    body_start: usize,
}

/// Where a streamed chunked body is in its framing grammar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChunkPhase {
    /// Expecting a `SIZE[;ext]\r\n` line.
    Size,
    /// Inside a chunk's data bytes.
    Data,
    /// Expecting the CRLF that terminates a chunk's data.
    DataCrlf,
    /// Past the zero chunk: consuming trailer lines until a blank one.
    Trailers,
    /// The terminal blank line was seen; the body is complete.
    Done,
}

/// Progress state of a streamed body between `next_stream_chunk` calls.
#[derive(Debug)]
struct StreamState {
    framing: Framing,
    /// `Length`: raw bytes still owed. `Chunked`: bytes left in the
    /// current chunk's data.
    remaining: usize,
    phase: ChunkPhase,
}

/// Incremental request parser over a growable byte buffer.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    limits: Limits,
    /// Set while a streamed body is being consumed (between
    /// `begin_stream` and `StreamChunk::End`).
    stream: Option<StreamState>,
}

impl RequestParser {
    /// A parser enforcing `limits`.
    pub fn new(limits: Limits) -> Self {
        RequestParser {
            buf: Vec::new(),
            limits,
            stream: None,
        }
    }

    /// Feed raw socket bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True when no unconsumed bytes are buffered (nothing in flight).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty() && self.stream.is_none()
    }

    /// True when a complete head is buffered — a request is mid-flight
    /// even if its body has not finished arriving. The connection loop
    /// uses this to arm the body-progress deadline.
    pub fn head_complete(&self) -> bool {
        find_head_end(&self.buf).is_some()
    }

    /// Parse the head of the next buffered request without consuming
    /// anything: the returned [`Request`] carries an empty body, plus
    /// the body [`Framing`] the wire declared. The connection loop uses
    /// this to pick per-route deadlines and streamed dispatch before
    /// the body exists.
    pub fn peek_head(&self) -> Result<Option<(Request, Framing)>, HttpError> {
        Ok(self.parse_head()?.map(|h| (h.request, h.framing)))
    }

    /// Try to parse one complete request off the front of the buffer.
    ///
    /// `Ok(None)` means "incomplete — feed more bytes". Errors are
    /// terminal for the connection: the buffer state is unspecified
    /// afterwards and the caller should answer and close.
    pub fn try_next(&mut self) -> Result<Option<Request>, HttpError> {
        debug_assert!(
            self.stream.is_none(),
            "try_next during an active body stream"
        );
        let Some(head) = self.parse_head()? else {
            return Ok(None);
        };
        let body_start = head.body_start;
        match head.framing {
            Framing::Length(content_length) => {
                if self.buf.len() < body_start + content_length {
                    return Ok(None);
                }
                let mut request = head.request;
                request.body = self.buf[body_start..body_start + content_length].to_vec();
                // Keep pipelined bytes for the next request.
                self.buf.drain(..body_start + content_length);
                Ok(Some(request))
            }
            Framing::Chunked => {
                match decode_chunked(&self.buf[body_start..], self.limits.max_body_bytes)? {
                    Some((body, consumed)) => {
                        let mut request = head.request;
                        request.body = body;
                        self.buf.drain(..body_start + consumed);
                        Ok(Some(request))
                    }
                    None => {
                        // Bounded buffering while chunks accumulate:
                        // the decoded cap plus framing allowance.
                        if self.buf.len() - body_start > self.limits.max_body_bytes + CHUNK_SLACK {
                            return Err(HttpError::BodyTooLarge);
                        }
                        Ok(None)
                    }
                }
            }
        }
    }

    /// Consume the next request's head and switch into streamed-body
    /// mode: subsequent [`Self::next_stream_chunk`] calls yield the
    /// decoded body incrementally. Returns the head as a [`Request`]
    /// with an empty body, or `None` when the head is incomplete.
    pub fn begin_stream(&mut self) -> Result<Option<Request>, HttpError> {
        debug_assert!(
            self.stream.is_none(),
            "begin_stream during an active body stream"
        );
        let Some(head) = self.parse_head()? else {
            return Ok(None);
        };
        self.buf.drain(..head.body_start);
        self.stream = Some(match head.framing {
            Framing::Length(n) => StreamState {
                framing: head.framing,
                remaining: n,
                phase: ChunkPhase::Data,
            },
            Framing::Chunked => StreamState {
                framing: head.framing,
                remaining: 0,
                phase: ChunkPhase::Size,
            },
        });
        Ok(Some(head.request))
    }

    /// Decode the next piece of a streamed body. Call only between
    /// [`Self::begin_stream`] and the [`StreamChunk::End`] it ends on;
    /// after `End` the parser is back in normal (`try_next`) mode with
    /// any pipelined bytes intact.
    pub fn next_stream_chunk(&mut self) -> Result<StreamChunk, HttpError> {
        // The raw buffer must never grow unboundedly even if the
        // handler pulls slower than the socket fills.
        if self.buf.len() > self.limits.max_body_bytes + CHUNK_SLACK {
            return Err(HttpError::BodyTooLarge);
        }
        let Some(mut state) = self.stream.take() else {
            return Err(HttpError::BadRequest("no streamed body is active"));
        };
        let result = self.advance_stream(&mut state);
        match &result {
            Ok(StreamChunk::End) => {} // leave self.stream = None
            _ => self.stream = Some(state),
        }
        result
    }

    /// One decoding step over `state`; factored out so the state can be
    /// moved out of `self` while the buffer is mutated.
    fn advance_stream(&mut self, state: &mut StreamState) -> Result<StreamChunk, HttpError> {
        if let Framing::Length(_) = state.framing {
            if state.remaining == 0 {
                return Ok(StreamChunk::End);
            }
            if self.buf.is_empty() {
                return Ok(StreamChunk::NeedMore);
            }
            let take = state.remaining.min(self.buf.len());
            let data: Vec<u8> = self.buf.drain(..take).collect();
            state.remaining -= take;
            return Ok(StreamChunk::Data(data));
        }
        // Chunked: run the framing grammar as far as the buffer allows,
        // accumulating decoded data.
        let mut out = Vec::new();
        loop {
            match state.phase {
                ChunkPhase::Size => {
                    let Some(eol) = find_crlf(&self.buf) else {
                        if self.buf.len() > MAX_CHUNK_LINE {
                            return Err(HttpError::BadRequest("chunk size line too long"));
                        }
                        break;
                    };
                    let size = parse_chunk_size(&self.buf[..eol])?;
                    self.buf.drain(..eol + 2);
                    if size == 0 {
                        state.phase = ChunkPhase::Trailers;
                    } else {
                        state.remaining = size;
                        state.phase = ChunkPhase::Data;
                    }
                }
                ChunkPhase::Data => {
                    if self.buf.is_empty() {
                        break;
                    }
                    let take = state.remaining.min(self.buf.len());
                    out.extend(self.buf.drain(..take));
                    state.remaining -= take;
                    if state.remaining == 0 {
                        state.phase = ChunkPhase::DataCrlf;
                    }
                }
                ChunkPhase::DataCrlf => {
                    if self.buf.len() < 2 {
                        break;
                    }
                    if &self.buf[..2] != b"\r\n" {
                        return Err(HttpError::BadRequest("chunk data not terminated by CRLF"));
                    }
                    self.buf.drain(..2);
                    state.phase = ChunkPhase::Size;
                }
                ChunkPhase::Trailers => {
                    let Some(eol) = find_crlf(&self.buf) else {
                        if self.buf.len() > self.limits.max_head_bytes {
                            return Err(HttpError::HeadersTooLarge);
                        }
                        break;
                    };
                    let blank = eol == 0;
                    // Trailer header lines are consumed and ignored.
                    self.buf.drain(..eol + 2);
                    if blank {
                        state.phase = ChunkPhase::Done;
                    }
                }
                ChunkPhase::Done => break,
            }
        }
        if !out.is_empty() {
            return Ok(StreamChunk::Data(out));
        }
        if state.phase == ChunkPhase::Done {
            Ok(StreamChunk::End)
        } else {
            Ok(StreamChunk::NeedMore)
        }
    }

    /// Parse the head (request line + headers + framing) off the front
    /// of the buffer without consuming it. `Ok(None)` = incomplete.
    fn parse_head(&self) -> Result<Option<ParsedHead>, HttpError> {
        let Some(head_len) = find_head_end(&self.buf) else {
            if self.buf.len() > self.limits.max_head_bytes {
                return Err(HttpError::HeadersTooLarge);
            }
            return Ok(None);
        };
        if head_len > self.limits.max_head_bytes {
            return Err(HttpError::HeadersTooLarge);
        }
        let head = std::str::from_utf8(&self.buf[..head_len])
            .map_err(|_| HttpError::BadRequest("request head is not valid UTF-8"))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let (method, path, version_11) = parse_request_line(request_line)?;

        let mut headers = Vec::with_capacity(8);
        for line in lines {
            if line.is_empty() {
                continue;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(HttpError::HeadersTooLarge);
            }
            let (name, value) = line
                .split_once(':')
                .ok_or(HttpError::BadRequest("header line without a colon"))?;
            if name.is_empty() || name.contains(' ') || name.contains('\t') {
                return Err(HttpError::BadRequest("malformed header name"));
            }
            let mut name = name.to_string();
            name.make_ascii_lowercase();
            headers.push((name, value.trim().to_string()));
        }

        // RFC 7230 §3.3.2: conflicting Content-Length values are a
        // smuggling vector (a proxy may frame by one, us by another) —
        // reject duplicates outright unless they agree.
        let mut content_length = 0usize;
        let mut seen_length: Option<usize> = None;
        for (name, value) in &headers {
            if name == "content-length" {
                let parsed = value
                    .parse::<usize>()
                    .map_err(|_| HttpError::BadRequest("unparseable Content-Length"))?;
                if seen_length.is_some_and(|prev| prev != parsed) {
                    return Err(HttpError::BadRequest("conflicting Content-Length headers"));
                }
                seen_length = Some(parsed);
                content_length = parsed;
            }
        }
        let framing = match header_value(&headers, "transfer-encoding") {
            // Transfer-Encoding alongside Content-Length is the other
            // half of the same smuggling vector — reject it outright
            // instead of picking a winner.
            Some(v) if v.trim().eq_ignore_ascii_case("chunked") => {
                if seen_length.is_some() {
                    return Err(HttpError::BadRequest(
                        "both Transfer-Encoding and Content-Length present",
                    ));
                }
                Framing::Chunked
            }
            Some(_) => {
                return Err(HttpError::NotImplemented(
                    "only the chunked transfer encoding is supported",
                ))
            }
            None => Framing::Length(content_length),
        };
        if let Framing::Length(n) = framing {
            if n > self.limits.max_body_bytes {
                return Err(HttpError::BodyTooLarge);
            }
        }

        // Header values kept their original case; match Connection
        // tokens case-insensitively without allocating.
        let keep_alive = match header_value(&headers, "connection") {
            Some(v) if contains_ignore_case(v, "close") => false,
            Some(v) if contains_ignore_case(v, "keep-alive") => true,
            _ => version_11,
        };
        Ok(Some(ParsedHead {
            request: Request {
                method: method.to_string(),
                path: path.to_string(),
                headers,
                body: Vec::new(),
                keep_alive,
            },
            framing,
            // Head ends with "\r\n\r\n": the body starts 4 bytes past.
            body_start: head_len + 4,
        }))
    }
}

/// Decode a complete chunked body from `raw`: `Ok(Some((body,
/// consumed)))` once the terminal chunk and its trailer section are
/// fully buffered, `Ok(None)` when more bytes are needed.
fn decode_chunked(raw: &[u8], max_body: usize) -> Result<Option<(Vec<u8>, usize)>, HttpError> {
    let mut body = Vec::new();
    let mut pos = 0usize;
    loop {
        let Some(eol) = find_crlf(&raw[pos..]) else {
            if raw.len() - pos > MAX_CHUNK_LINE {
                return Err(HttpError::BadRequest("chunk size line too long"));
            }
            return Ok(None);
        };
        let size = parse_chunk_size(&raw[pos..pos + eol])?;
        pos += eol + 2;
        if size == 0 {
            // Trailer section: zero or more header lines, then CRLF.
            loop {
                let Some(eol) = find_crlf(&raw[pos..]) else {
                    return Ok(None);
                };
                let blank = eol == 0;
                pos += eol + 2;
                if blank {
                    return Ok(Some((body, pos)));
                }
            }
        }
        if body.len() + size > max_body {
            return Err(HttpError::BodyTooLarge);
        }
        if raw.len() < pos + size + 2 {
            return Ok(None);
        }
        body.extend_from_slice(&raw[pos..pos + size]);
        if &raw[pos + size..pos + size + 2] != b"\r\n" {
            return Err(HttpError::BadRequest("chunk data not terminated by CRLF"));
        }
        pos += size + 2;
    }
}

/// Parse one `SIZE[;extensions]` chunk-size line (sans CRLF).
fn parse_chunk_size(line: &[u8]) -> Result<usize, HttpError> {
    if line.len() > MAX_CHUNK_LINE {
        return Err(HttpError::BadRequest("chunk size line too long"));
    }
    let line = std::str::from_utf8(line)
        .map_err(|_| HttpError::BadRequest("chunk size line is not valid UTF-8"))?;
    // Chunk extensions (";name=value") are legal; ignore them.
    let size = line.split(';').next().unwrap_or("").trim();
    usize::from_str_radix(size, 16).map_err(|_| HttpError::BadRequest("unparseable chunk size"))
}

/// Offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Offset of the next `\r\n`, if present.
fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

/// ASCII case-insensitive substring search (header token lists are
/// short; the quadratic worst case cannot bite).
fn contains_ignore_case(haystack: &str, needle: &str) -> bool {
    haystack
        .as_bytes()
        .windows(needle.len())
        .any(|w| w.eq_ignore_ascii_case(needle.as_bytes()))
}

fn header_value<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Split `METHOD SP PATH SP VERSION`; returns (method, path-sans-query,
/// is-HTTP/1.1).
fn parse_request_line(line: &str) -> Result<(&str, &str, bool), HttpError> {
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest("malformed request line"));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest("malformed method token"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest("request target must be a path"));
    }
    let version_11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::BadRequest("unsupported HTTP version")),
    };
    let path = target.split('?').next().unwrap_or(target);
    Ok((method, path, version_11))
}

/// Reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A response ready to serialize onto the socket.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    content_type: String,
    /// Extra headers beyond the framing set (e.g. `Retry-After`).
    headers: Vec<(&'static str, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// A complete pre-serialized response (head + body) relayed
    /// verbatim from a backend — the router's hot path. When set,
    /// `write_to` sends these bytes untouched instead of composing a
    /// head from the fields above.
    relay: Option<Vec<u8>>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: &str) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".to_string(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            relay: None,
        }
    }

    /// An `application/json` response from any wire DTO.
    pub fn json<T: serde::Serialize>(status: u16, value: &T) -> Self {
        Response {
            status,
            content_type: "application/json".to_string(),
            headers: Vec::new(),
            body: serde_json::to_vec(value).expect("wire DTOs always serialize"),
            relay: None,
        }
    }

    /// A response with explicit content type and raw body bytes — the
    /// proxy passthrough path (no re-serialization of backend bodies).
    pub fn raw(status: u16, content_type: impl Into<String>, body: Vec<u8>) -> Self {
        Response {
            status,
            content_type: content_type.into(),
            headers: Vec::new(),
            body,
            relay: None,
        }
    }

    /// A backend response relayed verbatim: `raw` is the complete wire
    /// bytes (status line through body) exactly as the backend sent
    /// them, and `status` is carried alongside for error accounting.
    /// Skips the router-side head re-serialization entirely.
    pub fn relay(status: u16, raw: Vec<u8>) -> Self {
        Response {
            status,
            content_type: String::new(),
            headers: Vec::new(),
            body: Vec::new(),
            relay: Some(raw),
        }
    }

    /// Attach one extra response header (e.g. `Retry-After`).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// The standard error body: `{"error":{"code":…,"message":…}}`.
    pub fn error(status: u16, code: &str, message: &str) -> Self {
        // Built as a Value tree so string escaping is serde_json's,
        // not a second hand-rolled escaper that can drift.
        let body = serde_json::Value::Map(vec![(
            "error".to_string(),
            serde_json::Value::Map(vec![
                ("code".to_string(), serde_json::Value::Str(code.to_string())),
                (
                    "message".to_string(),
                    serde_json::Value::Str(message.to_string()),
                ),
            ]),
        )]);
        Response {
            status,
            content_type: "application/json".to_string(),
            headers: Vec::new(),
            body: serde_json::value_to_string(&body).into_bytes(),
            relay: None,
        }
    }

    /// Serialize head + body in one write. `keep_alive` decides the
    /// `Connection` header and must match what the connection loop
    /// actually does afterwards.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        if let Some(raw) = &self.relay {
            // Relayed verbatim, including the backend's own Connection
            // header. The connection loop still applies its own
            // keep-alive decision afterwards; RFC 7230 §6.5 permits a
            // server to close a connection it advertised as persistent,
            // so the rare mismatch stays within spec.
            return w.write_all(raw);
        }
        let mut out = Vec::with_capacity(self.body.len() + 128);
        out.extend_from_slice(
            format!(
                "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
                self.status,
                reason(self.status),
                self.content_type,
                self.body.len(),
                if keep_alive { "keep-alive" } else { "close" },
            )
            .as_bytes(),
        );
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        w.write_all(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        let mut p = RequestParser::new(Limits::default());
        p.extend(raw);
        p.try_next()
    }

    #[test]
    fn parses_a_get_request() {
        let req = parse_one(b"GET /video/7/dots?x=1 HTTP/1.1\r\nHost: h\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/video/7/dots");
        assert_eq!(req.header("host"), Some("h"));
        assert!(req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_body_and_keeps_pipelined_bytes() {
        let mut p = RequestParser::new(Limits::default());
        p.extend(b"POST /sessions HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdGET /healthz HTTP/1.1\r\n\r\n");
        let first = p.try_next().unwrap().unwrap();
        assert_eq!(first.body, b"abcd");
        let second = p.try_next().unwrap().unwrap();
        assert_eq!(second.path, "/healthz");
        assert!(p.is_empty());
    }

    #[test]
    fn incremental_feeding_yields_one_request() {
        let raw = b"POST /sessions HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let mut p = RequestParser::new(Limits::default());
        for chunk in raw.chunks(7) {
            p.extend(chunk);
        }
        // Everything buffered now; a single poll must yield the request.
        let req = p.try_next().unwrap().unwrap();
        assert_eq!(req.body, b"hello");

        // And byte-by-byte: Incomplete until the last byte.
        let mut p = RequestParser::new(Limits::default());
        for &b in &raw[..raw.len() - 1] {
            p.extend(&[b]);
            assert!(p.try_next().unwrap().is_none());
        }
        p.extend(&raw[raw.len() - 1..]);
        assert!(p.try_next().unwrap().is_some());
    }

    #[test]
    fn malformed_inputs_map_to_400() {
        for raw in [
            &b"NOT A REQUEST\r\n\r\n"[..],
            b"get /lower HTTP/1.1\r\n\r\n",
            b"GET nopath HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad header line\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad name: v\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: twelve\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
        ] {
            match parse_one(raw) {
                Err(e) => assert_eq!(e.status(), 400, "{:?} for {:?}", e, raw),
                other => panic!("expected 400 for {raw:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_head_maps_to_431() {
        let mut p = RequestParser::new(Limits {
            max_head_bytes: 64,
            max_body_bytes: 1024,
        });
        p.extend(b"GET /x HTTP/1.1\r\nX-Big: ");
        p.extend(&[b'a'; 100]);
        assert_eq!(p.try_next(), Err(HttpError::HeadersTooLarge));
    }

    #[test]
    fn oversized_body_maps_to_413() {
        let mut p = RequestParser::new(Limits {
            max_head_bytes: 1024,
            max_body_bytes: 8,
        });
        p.extend(b"POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n");
        assert_eq!(p.try_next(), Err(HttpError::BodyTooLarge));
    }

    #[test]
    fn conflicting_content_lengths_map_to_400() {
        // Disagreeing duplicates: the smuggling vector — reject.
        let err =
            parse_one(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 100\r\n\r\nAAAAA")
                .unwrap_err();
        assert_eq!(err.status(), 400);
        // Agreeing duplicates are tolerated (same framing either way).
        let req =
            parse_one(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nAAAAA")
                .unwrap()
                .unwrap();
        assert_eq!(req.body, b"AAAAA");
        // A comma-folded list is unparseable as one integer — reject.
        let err = parse_one(b"POST /x HTTP/1.1\r\nContent-Length: 5, 5\r\n\r\nAAAAA").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn error_body_is_escaped_json() {
        let resp = Response::error(400, "bad_request", "a \"quoted\"\nmessage");
        let body = String::from_utf8(resp.body).unwrap();
        assert_eq!(
            body,
            r#"{"error":{"code":"bad_request","message":"a \"quoted\"\nmessage"}}"#
        );
    }

    #[test]
    fn chunked_bodies_decode_buffered() {
        let req = parse_one(
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
              5\r\nhello\r\n6;ext=1\r\n world\r\n0\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body, b"hello world");

        // Trailer headers after the zero chunk are consumed, and
        // pipelined bytes after the body survive for the next request.
        let mut p = RequestParser::new(Limits::default());
        p.extend(
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
              2\r\nok\r\n0\r\nX-Trailer: v\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n",
        );
        let first = p.try_next().unwrap().unwrap();
        assert_eq!(first.body, b"ok");
        let second = p.try_next().unwrap().unwrap();
        assert_eq!(second.path, "/healthz");
        assert!(p.is_empty());
    }

    #[test]
    fn chunked_bodies_decode_incrementally() {
        let raw: &[u8] = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                           3\r\nabc\r\n4\r\ndefg\r\n0\r\n\r\n";
        let mut p = RequestParser::new(Limits::default());
        for &b in &raw[..raw.len() - 1] {
            p.extend(&[b]);
            assert!(p.try_next().unwrap().is_none());
        }
        p.extend(&raw[raw.len() - 1..]);
        let req = p.try_next().unwrap().unwrap();
        assert_eq!(req.body, b"abcdefg");
    }

    #[test]
    fn chunked_framing_failures_are_typed() {
        // Unparseable chunk size → 400.
        let err = parse_one(
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\nhello\r\n0\r\n\r\n",
        )
        .unwrap_err();
        assert_eq!(err.status(), 400);
        // Chunk data not CRLF-terminated → 400.
        let err = parse_one(
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhelloXX0\r\n\r\n",
        )
        .unwrap_err();
        assert_eq!(err.status(), 400);
        // A size line that never ends → 400 after MAX_CHUNK_LINE.
        let mut p = RequestParser::new(Limits::default());
        p.extend(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        p.extend(&[b'1'; MAX_CHUNK_LINE + 8]);
        assert_eq!(p.try_next().unwrap_err().status(), 400);
        // Decoded body past the cap → 413, even before the terminal
        // chunk arrives.
        let mut p = RequestParser::new(Limits {
            max_head_bytes: 1024,
            max_body_bytes: 8,
        });
        p.extend(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n9\r\nAAAAAAAAA\r\n");
        assert_eq!(p.try_next(), Err(HttpError::BodyTooLarge));
    }

    #[test]
    fn unknown_transfer_encodings_map_to_501() {
        let err = parse_one(b"POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 501);
        // chunked + Content-Length is the smuggling pairing → 400.
        let err = parse_one(
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 5\r\n\r\n",
        )
        .unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn streamed_bodies_yield_decoded_chunks() {
        let mut p = RequestParser::new(Limits::default());
        p.extend(b"POST /sessions/stream HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert!(p.head_complete());
        let (head, framing) = p.peek_head().unwrap().unwrap();
        assert_eq!(framing, Framing::Chunked);
        assert_eq!(head.path, "/sessions/stream");
        let head = p.begin_stream().unwrap().unwrap();
        assert_eq!(head.method, "POST");
        assert!(head.body.is_empty());

        assert_eq!(p.next_stream_chunk(), Ok(StreamChunk::NeedMore));
        p.extend(b"5\r\nline1\r\n");
        assert_eq!(
            p.next_stream_chunk(),
            Ok(StreamChunk::Data(b"line1".to_vec()))
        );
        // Split a chunk across feeds: data arrives as it lands.
        p.extend(b"6\r\n\nli");
        assert_eq!(
            p.next_stream_chunk(),
            Ok(StreamChunk::Data(b"\nli".to_vec()))
        );
        p.extend(b"ne2\r\n0\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!(
            p.next_stream_chunk(),
            Ok(StreamChunk::Data(b"ne2".to_vec()))
        );
        assert_eq!(p.next_stream_chunk(), Ok(StreamChunk::End));
        // Back in normal mode with the pipelined request intact.
        let next = p.try_next().unwrap().unwrap();
        assert_eq!(next.path, "/healthz");
    }

    #[test]
    fn streamed_length_bodies_work_too() {
        let mut p = RequestParser::new(Limits::default());
        p.extend(b"POST /sessions/stream HTTP/1.1\r\nContent-Length: 10\r\n\r\nhello");
        let head = p.begin_stream().unwrap().unwrap();
        assert_eq!(head.path, "/sessions/stream");
        assert_eq!(
            p.next_stream_chunk(),
            Ok(StreamChunk::Data(b"hello".to_vec()))
        );
        assert_eq!(p.next_stream_chunk(), Ok(StreamChunk::NeedMore));
        p.extend(b"world");
        assert_eq!(
            p.next_stream_chunk(),
            Ok(StreamChunk::Data(b"world".to_vec()))
        );
        assert_eq!(p.next_stream_chunk(), Ok(StreamChunk::End));
        assert!(p.is_empty());
    }

    #[test]
    fn request_timeout_maps_to_408() {
        assert_eq!(HttpError::RequestTimeout.status(), 408);
        assert_eq!(reason(408), "Request Timeout");
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let close = parse_one(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!close.keep_alive);
        let old = parse_one(b"GET /x HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!old.keep_alive);
        let old_ka = parse_one(b"GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(old_ka.keep_alive);
    }

    #[test]
    fn extra_headers_and_raw_bodies_serialize() {
        let mut out = Vec::new();
        Response::raw(503, "application/json", b"{}".to_vec())
            .with_header("Retry-After", "2")
            .write_to(&mut out, false)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{s}");
        assert!(s.contains("Retry-After: 2\r\n"), "{s}");
        assert!(s.contains("Content-Type: application/json\r\n"), "{s}");
        assert!(s.ends_with("\r\n\r\n{}"), "{s}");
        assert_eq!(reason(502), "Bad Gateway");
    }

    #[test]
    fn response_serializes_with_framing() {
        let mut out = Vec::new();
        Response::text(200, "ok").write_to(&mut out, true).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
        assert!(s.contains("Content-Length: 2\r\n"), "{s}");
        assert!(s.contains("Connection: keep-alive\r\n"), "{s}");
        assert!(s.ends_with("\r\n\r\nok"), "{s}");
    }
}
