//! Route table and handlers: HTTP verbs/paths → `LightorService` calls
//! via the `wire` DTOs.
//!
//! | Route | Wire type | Service call |
//! |---|---|---|
//! | `GET /healthz` | — | liveness probe |
//! | `GET /video/{id}/dots` | [`DotsResponse`] | `open_video` |
//! | `POST /video/{id}/rescore` | [`RescoreRequest`] → [`DotsResponse`] | `rescore_video` |
//! | `POST /sessions` | [`SessionUpload`] → [`SessionAccepted`] | `refine_batch` |
//! | `POST /sessions/stream` | NDJSON [`StreamBatchDto`] lines → [`StreamAccepted`] | `refine_batch` per line |
//! | `GET /stats` | [`StatsResponse`] | `stats` + HTTP counters |
//! | `POST /admin/compact` | [`CompactResponse`] | `compact_storage` |
//! | `POST /admin/export` | [`ExportRequest`] → [`BundleDto`] | `export_bundle` |
//! | `POST /admin/import` | [`BundleDto`] → [`ImportResponse`] | `import_bundle` |
//! | `POST /admin/ring` | router-only | ring swap (404 on a backend) |
//!
//! Semantic failures answer with the standard error body
//! (`{"error":{"code":…,"message":…}}`): `404` for videos the platform
//! does not know, `422` for well-formed-but-garbage uploads
//! ([`UploadError`]), `400` for unparseable JSON or ids, `500` for
//! storage errors.

use crate::http::{Request, Response};
use crate::metrics::{HttpMetrics, RouteKey};
use crate::server::{BodySource, Handler, StreamBodyError};
use lightor_platform::wire::{
    BundleDto, CompactResponse, DotsResponse, ExportRequest, LineRejectDto, RescoreRequest,
    SessionUpload, StatsResponse, StreamAccepted, StreamBatchDto, StreamRejected, UploadError,
};
use lightor_platform::LightorService;
use lightor_types::VideoId;
use serde::{Deserialize, Serialize};

/// A resolved route, ids parsed out of the path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz`
    Healthz,
    /// `GET /video/{id}/dots`
    Dots(u64),
    /// `POST /video/{id}/rescore`
    Rescore(u64),
    /// `POST /sessions`
    Sessions,
    /// `POST /sessions/stream` (NDJSON, one event batch per line)
    SessionsStream,
    /// `GET /stats`
    Stats,
    /// `POST /admin/compact`
    Compact,
    /// `POST /admin/export`
    Export,
    /// `POST /admin/import`
    Import,
    /// `POST /admin/ring`
    Ring,
}

impl Route {
    /// The metrics bucket this route reports under.
    pub fn key(self) -> RouteKey {
        match self {
            Route::Healthz => RouteKey::Healthz,
            Route::Dots(_) => RouteKey::Dots,
            Route::Rescore(_) => RouteKey::Rescore,
            Route::Sessions => RouteKey::Sessions,
            Route::SessionsStream => RouteKey::SessionsStream,
            Route::Stats => RouteKey::Stats,
            Route::Compact => RouteKey::Compact,
            Route::Export => RouteKey::Export,
            Route::Import => RouteKey::Import,
            Route::Ring => RouteKey::Ring,
        }
    }
}

/// `POST /sessions` success body.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionAccepted {
    /// The video the session was logged against.
    pub video: u64,
    /// Plays buffered against red dots (within the Δ neighbourhood).
    pub plays_buffered: usize,
    /// Dots whose position a refinement round just updated.
    pub dots_refined: usize,
}

/// Why a request did not resolve to a route.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// No route owns this path → 404.
    NotFound,
    /// The path exists but not with this method → 405.
    MethodNotAllowed,
    /// A path id segment is not a u64 → 400.
    BadId,
}

impl RouteError {
    /// The response this routing failure answers with.
    pub fn response(self) -> Response {
        match self {
            RouteError::NotFound => Response::error(404, "not_found", "no such route"),
            RouteError::MethodNotAllowed => Response::error(
                405,
                "method_not_allowed",
                "method not allowed on this route",
            ),
            RouteError::BadId => Response::error(400, "bad_id", "video id must be an integer"),
        }
    }
}

/// Resolve `method` + `path` to a route.
pub fn resolve(method: &str, path: &str) -> Result<Route, RouteError> {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let route = match segments.as_slice() {
        ["healthz"] => (Route::Healthz, "GET"),
        ["stats"] => (Route::Stats, "GET"),
        ["sessions"] => (Route::Sessions, "POST"),
        ["sessions", "stream"] => (Route::SessionsStream, "POST"),
        ["admin", "compact"] => (Route::Compact, "POST"),
        ["admin", "export"] => (Route::Export, "POST"),
        ["admin", "import"] => (Route::Import, "POST"),
        ["admin", "ring"] => (Route::Ring, "POST"),
        ["video", id, "dots"] => (Route::Dots(parse_id(id)?), "GET"),
        ["video", id, "rescore"] => (Route::Rescore(parse_id(id)?), "POST"),
        _ => return Err(RouteError::NotFound),
    };
    if method != route.1 {
        return Err(RouteError::MethodNotAllowed);
    }
    Ok(route.0)
}

fn parse_id(id: &str) -> Result<u64, RouteError> {
    id.parse::<u64>().map_err(|_| RouteError::BadId)
}

/// Dispatch one parsed request. Always returns a response; the
/// [`RouteKey`] says which metrics bucket it belongs to.
pub fn dispatch(
    svc: &LightorService,
    metrics: &HttpMetrics,
    req: &Request,
) -> (RouteKey, Response) {
    let route = match resolve(&req.method, &req.path) {
        Ok(r) => r,
        Err(e) => return (RouteKey::Other, e.response()),
    };
    let response = match route {
        Route::Healthz => Response::text(200, "ok"),
        Route::Dots(id) => handle_dots(svc, id),
        Route::Rescore(id) => gate_write(svc).unwrap_or_else(|| handle_rescore(svc, id, &req.body)),
        Route::Sessions => {
            gate_write(svc).unwrap_or_else(|| handle_sessions(svc, metrics, &req.body))
        }
        // A buffered (Content-Length) POST to the streaming route runs
        // the same per-line machinery over the complete body — small
        // clients need not speak chunked encoding.
        Route::SessionsStream => handle_sessions_stream_buffered(svc, metrics, &req.body),
        Route::Stats => handle_stats(svc, metrics),
        // Compaction stays allowed while degraded: it is the repair
        // path — a successful compaction rewrites storage and clears
        // the degraded flag.
        Route::Compact => handle_compact(svc),
        Route::Export => handle_export(svc, &req.body),
        Route::Import => gate_write(svc).unwrap_or_else(|| handle_import(svc, &req.body)),
        // Ring membership is the router's concern; a backend owns no
        // ring to update.
        Route::Ring => Response::error(
            404,
            "not_found",
            "ring updates apply at the router, not a backend",
        ),
    };
    (route.key(), response)
}

impl Handler for LightorService {
    fn handle(&self, req: &Request, metrics: &HttpMetrics) -> (RouteKey, Response) {
        dispatch(self, metrics, req)
    }

    fn wants_stream(&self, method: &str, path: &str) -> bool {
        matches!(resolve(method, path), Ok(Route::SessionsStream))
    }

    fn handle_stream(
        &self,
        _head: &Request,
        body: &mut dyn BodySource,
        metrics: &HttpMetrics,
    ) -> (RouteKey, Response) {
        metrics.stream.stream_opened();
        let mut ingest = NdjsonIngest::new(self, &metrics.stream);
        let response = loop {
            match body.next_chunk() {
                Ok(Some(data)) => {
                    ingest.feed(&data);
                    if ingest.terminal.is_some() {
                        // Terminal mid-stream failure (budget blown,
                        // freeze, storage): answer now and cut the
                        // stream — everything acknowledged so far is
                        // already durable.
                        break ingest.response();
                    }
                }
                Ok(None) => {
                    ingest.finish();
                    break ingest.response();
                }
                Err(StreamBodyError::Timeout) => {
                    break Response::error(
                        408,
                        "request_timeout",
                        "stream stalled past the progress deadline",
                    )
                }
                Err(StreamBodyError::TooLarge) => {
                    break Response::error(
                        413,
                        "body_too_large",
                        "stream buffer overflowed its bound",
                    )
                }
                Err(StreamBodyError::Malformed(m)) => break Response::error(400, "bad_request", m),
                // The peer is gone; the server will not write this
                // response, but the ingest totals still count.
                Err(StreamBodyError::Disconnected) => break ingest.response(),
            }
        };
        metrics.stream.stream_completed();
        (RouteKey::SessionsStream, response)
    }
}

/// NDJSON lines a stream may reject before it is cut with a terminal
/// 422 (`error_budget_exhausted`).
const STREAM_ERROR_BUDGET: u64 = 16;

/// Longest accepted NDJSON line. Oversized lines are rejected (and
/// skipped to the next newline) without buffering them.
const MAX_LINE_BYTES: usize = 256 * 1024;

/// Incremental NDJSON ingester for `POST /sessions/stream`: fed raw
/// body bytes in arbitrary chunk sizes, it splits lines, validates
/// each as a [`StreamBatchDto`], and folds accepted batches through
/// [`LightorService::refine_batch`]. Malformed lines reject the *line*
/// (typed, with its 1-based number), not the session, up to
/// [`STREAM_ERROR_BUDGET`].
struct NdjsonIngest<'a> {
    svc: &'a LightorService,
    /// Live stream counters: flushed per line, not at stream end, so
    /// `GET /stats` observes a long-lived stream making progress.
    stream_metrics: &'a crate::metrics::StreamMetrics,
    line_no: u64,
    carry: Vec<u8>,
    /// Mid-oversized-line: discard bytes until the next newline.
    skipping: bool,
    lines_accepted: u64,
    lines_rejected: u64,
    batches_folded: u64,
    batches_replayed: u64,
    plays_buffered: u64,
    dots_refined: u64,
    last_seq: u64,
    rejected: Vec<LineRejectDto>,
    /// Set when the stream must be cut: the final response.
    terminal: Option<Response>,
}

impl<'a> NdjsonIngest<'a> {
    fn new(svc: &'a LightorService, stream_metrics: &'a crate::metrics::StreamMetrics) -> Self {
        NdjsonIngest {
            svc,
            stream_metrics,
            line_no: 0,
            carry: Vec::new(),
            skipping: false,
            lines_accepted: 0,
            lines_rejected: 0,
            batches_folded: 0,
            batches_replayed: 0,
            plays_buffered: 0,
            dots_refined: 0,
            last_seq: 0,
            rejected: Vec::new(),
            terminal: None,
        }
    }

    /// Feed one chunk of raw body bytes; processes every complete line.
    fn feed(&mut self, data: &[u8]) {
        if self.terminal.is_some() {
            return;
        }
        self.carry.extend_from_slice(data);
        loop {
            if self.terminal.is_some() {
                self.carry.clear();
                return;
            }
            if self.skipping {
                match self.carry.iter().position(|&b| b == b'\n') {
                    Some(i) => {
                        self.carry.drain(..=i);
                        self.skipping = false;
                        continue;
                    }
                    None => {
                        self.carry.clear();
                        return;
                    }
                }
            }
            match self.carry.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    let line: Vec<u8> = self.carry.drain(..=i).collect();
                    self.line_no += 1;
                    self.process_line(&line[..line.len() - 1]);
                }
                None => {
                    if self.carry.len() > MAX_LINE_BYTES {
                        // Reject without ever buffering the rest: the
                        // line number is consumed, the bytes are not.
                        self.carry.clear();
                        self.skipping = true;
                        self.line_no += 1;
                        self.reject("line_too_long", "NDJSON line exceeds 256 KiB");
                    }
                    return;
                }
            }
        }
    }

    /// End of body: the trailing newline is optional.
    fn finish(&mut self) {
        if self.terminal.is_some() || self.skipping {
            return;
        }
        if !self.carry.is_empty() {
            let line = std::mem::take(&mut self.carry);
            self.line_no += 1;
            self.process_line(&line);
        }
    }

    fn process_line(&mut self, raw: &[u8]) {
        let line = raw.trim_ascii();
        if line.is_empty() {
            return; // blank lines keep their number but are not events
        }
        // Degraded storage refuses writes mid-stream too: folding a
        // batch the service cannot persist would acknowledge data a
        // crash then loses.
        if let Some(resp) = gate_write(self.svc) {
            self.terminal = Some(resp);
            return;
        }
        let batch: StreamBatchDto = match serde_json::from_slice(line) {
            Ok(b) => b,
            Err(_) => return self.reject("bad_json", "line must be a StreamBatchDto"),
        };
        let seq = batch.seq;
        let (video, session) = match batch.as_upload().try_into_session() {
            Ok(pair) => pair,
            Err(e) => return self.reject(e.code(), &e.to_string()),
        };
        // A freeze window opening mid-stream terminates the stream
        // cleanly: acknowledged batches stay durable, the 503 carries
        // the Retry-After, and the client resumes past the cutover
        // from its last acknowledged sequence.
        if let Some(remaining) = self.svc.frozen_for(video) {
            self.terminal = Some(
                Response::error(
                    503,
                    "frozen",
                    "this video is mid-migration; retry after the cutover",
                )
                .with_header("Retry-After", remaining.as_secs().max(1).to_string()),
            );
            return;
        }
        match self.svc.refine_batch(video, seq, &session) {
            Ok(None) => {
                let e = UploadError::UnknownVideo { video: video.0 };
                self.reject(e.code(), &e.to_string());
            }
            Ok(Some(outcome)) => {
                self.lines_accepted += 1;
                if outcome.replayed {
                    self.batches_replayed += 1;
                    self.stream_metrics.add_lines(1, 0, 0, 1);
                } else {
                    self.batches_folded += 1;
                    self.stream_metrics.add_lines(1, 0, 1, 0);
                }
                self.plays_buffered += outcome.plays_buffered as u64;
                self.dots_refined += outcome.dots_refined as u64;
                if let Some(seq) = seq {
                    self.last_seq = self.last_seq.max(seq);
                }
            }
            Err(e) => self.terminal = Some(storage_error(&e)),
        }
    }

    fn reject(&mut self, code: &str, message: &str) {
        self.lines_rejected += 1;
        self.stream_metrics.add_lines(0, 1, 0, 0);
        self.rejected.push(LineRejectDto {
            line: self.line_no,
            code: code.to_string(),
            message: message.to_string(),
        });
        if self.lines_rejected > STREAM_ERROR_BUDGET {
            self.terminal = Some(Response::json(
                422,
                &StreamRejected {
                    error: "error_budget_exhausted".to_string(),
                    line: self.line_no,
                    rejected: std::mem::take(&mut self.rejected),
                },
            ));
        }
    }

    /// The stream's final response: the terminal failure if one was
    /// set, the 200 ack otherwise.
    fn response(&mut self) -> Response {
        if let Some(terminal) = self.terminal.take() {
            return terminal;
        }
        Response::json(
            200,
            &StreamAccepted {
                lines_accepted: self.lines_accepted,
                lines_rejected: self.lines_rejected,
                batches_folded: self.batches_folded,
                batches_replayed: self.batches_replayed,
                plays_buffered: self.plays_buffered,
                dots_refined: self.dots_refined,
                last_seq: self.last_seq,
                rejected: std::mem::take(&mut self.rejected),
            },
        )
    }
}

/// The buffered fallback for `POST /sessions/stream`: same per-line
/// machinery, body already complete.
fn handle_sessions_stream_buffered(
    svc: &LightorService,
    metrics: &HttpMetrics,
    body: &[u8],
) -> Response {
    let mut ingest = NdjsonIngest::new(svc, &metrics.stream);
    ingest.feed(body);
    ingest.finish();
    ingest.response()
}

/// `Some(503)` when the service is degraded (persistence failed) and
/// must refuse writes, `None` when the write may proceed.
fn gate_write(svc: &LightorService) -> Option<Response> {
    svc.is_degraded().then(|| {
        Response::error(
            503,
            "degraded",
            "storage is degraded (read-only); writes refused until compaction succeeds",
        )
        .with_header("Retry-After", "1")
    })
}

fn handle_dots(svc: &LightorService, id: u64) -> Response {
    if svc.is_degraded() {
        // Read-only mode: serve what memory already holds, never touch
        // the failing store. Cold videos would need a crawl + persist,
        // which is exactly what cannot run right now.
        return match svc.cached_dots(VideoId(id)) {
            Some(dots) => Response::json(
                200,
                &DotsResponse {
                    video: id,
                    dots: dots.into_iter().map(Into::into).collect(),
                },
            ),
            None => Response::error(
                503,
                "degraded",
                "storage is degraded; this video is not in memory",
            )
            .with_header("Retry-After", "1"),
        };
    }
    match svc.open_video(VideoId(id)) {
        Ok(Some(dots)) => Response::json(
            200,
            &DotsResponse {
                video: id,
                dots: dots.into_iter().map(Into::into).collect(),
            },
        ),
        Ok(None) => Response::error(
            404,
            "unknown_video",
            "the platform does not know this video",
        ),
        Err(e) => storage_error(&e),
    }
}

fn handle_rescore(svc: &LightorService, id: u64, body: &[u8]) -> Response {
    let k = if body.is_empty() {
        svc.config().top_k
    } else {
        match serde_json::from_slice::<RescoreRequest>(body) {
            Ok(r) => r.k,
            Err(_) => {
                return Response::error(400, "bad_json", "body must be {\"k\": <usize>} or empty")
            }
        }
    };
    if k == 0 {
        return Response::error(422, "bad_k", "k must be at least 1");
    }
    match svc.rescore_video(VideoId(id), k) {
        Ok(Some(dots)) => Response::json(
            200,
            &DotsResponse {
                video: id,
                dots: dots.into_iter().map(Into::into).collect(),
            },
        ),
        Ok(None) => Response::error(404, "unknown_video", "no chat stored for this video"),
        Err(e) => storage_error(&e),
    }
}

fn handle_sessions(svc: &LightorService, metrics: &HttpMetrics, body: &[u8]) -> Response {
    let upload: SessionUpload = match serde_json::from_slice(body) {
        Ok(u) => u,
        Err(_) => return Response::error(400, "bad_json", "body must be a SessionUpload"),
    };
    let (video, session) = match upload.try_into_session() {
        Ok(pair) => pair,
        Err(e) => return Response::error(422, e.code(), &e.to_string()),
    };
    // Migration cutover: while a video is frozen, its refinement
    // writes 503 with a Retry-After covering the rest of the window,
    // so the exporter's final WAL-tail delta is complete.
    if let Some(remaining) = svc.frozen_for(video) {
        return Response::error(
            503,
            "frozen",
            "this video is mid-migration; retry after the cutover",
        )
        .with_header("Retry-After", remaining.as_secs().max(1).to_string());
    }
    // The buffered path folds through the same incremental unit as the
    // streamed one, so both produce bit-identical refinement state.
    match svc.refine_batch(video, None, &session) {
        Ok(None) => {
            let e = UploadError::UnknownVideo { video: video.0 };
            Response::error(422, e.code(), &e.to_string())
        }
        Ok(Some(outcome)) => {
            metrics.stream.add_lines(0, 0, 1, 0);
            Response::json(
                200,
                &SessionAccepted {
                    video: video.0,
                    plays_buffered: outcome.plays_buffered,
                    dots_refined: outcome.dots_refined,
                },
            )
        }
        Err(e) => storage_error(&e),
    }
}

fn handle_stats(svc: &LightorService, metrics: &HttpMetrics) -> Response {
    let mut stats = StatsResponse::from(svc.stats());
    stats.http = metrics.snapshot();
    stats.accept_errors = metrics.accept_errors();
    stats.stream_lines_accepted = metrics.stream.lines_accepted();
    stats.stream_lines_rejected = metrics.stream.lines_rejected();
    stats.stream_batches_folded = metrics.stream.batches_folded();
    stats.stream_batches_replayed = metrics.stream.batches_replayed();
    stats.stream_open = metrics.stream.open_streams();
    Response::json(200, &stats)
}

fn handle_compact(svc: &LightorService) -> Response {
    match svc.compact_storage() {
        Ok(stats) => Response::json(200, &CompactResponse::from(stats)),
        Err(e) => storage_error(&e),
    }
}

fn handle_export(svc: &LightorService, body: &[u8]) -> Response {
    let req: ExportRequest = match serde_json::from_slice(body) {
        Ok(r) => r,
        Err(_) => return Response::error(400, "bad_json", "body must be an ExportRequest"),
    };
    match svc.export_bundle(&req) {
        Ok(bundle) => Response::json(200, &bundle),
        Err(e) => storage_error(&e),
    }
}

fn handle_import(svc: &LightorService, body: &[u8]) -> Response {
    let bundle: BundleDto = match serde_json::from_slice(body) {
        Ok(b) => b,
        Err(_) => return Response::error(400, "bad_json", "body must be a BundleDto"),
    };
    match svc.import_bundle(&bundle) {
        Ok(applied) => Response::json(200, &applied),
        // A CRC mismatch or malformed entry is the sender's problem
        // (the bundle is semantically bad), not a storage failure.
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            Response::error(422, "bad_bundle", &e.to_string())
        }
        Err(e) => storage_error(&e),
    }
}

fn storage_error(e: &std::io::Error) -> Response {
    Response::error(500, "storage_error", &e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_resolve() {
        assert_eq!(resolve("GET", "/healthz"), Ok(Route::Healthz));
        assert_eq!(resolve("GET", "/stats"), Ok(Route::Stats));
        assert_eq!(resolve("POST", "/sessions"), Ok(Route::Sessions));
        assert_eq!(
            resolve("POST", "/sessions/stream"),
            Ok(Route::SessionsStream)
        );
        assert_eq!(
            resolve("GET", "/sessions/stream"),
            Err(RouteError::MethodNotAllowed)
        );
        assert_eq!(resolve("POST", "/admin/compact"), Ok(Route::Compact));
        assert_eq!(resolve("POST", "/admin/export"), Ok(Route::Export));
        assert_eq!(resolve("POST", "/admin/import"), Ok(Route::Import));
        assert_eq!(resolve("POST", "/admin/ring"), Ok(Route::Ring));
        assert_eq!(
            resolve("GET", "/admin/export"),
            Err(RouteError::MethodNotAllowed)
        );
        assert_eq!(resolve("GET", "/video/42/dots"), Ok(Route::Dots(42)));
        assert_eq!(resolve("POST", "/video/7/rescore"), Ok(Route::Rescore(7)));
        // Trailing slash tolerated (empty segments are dropped).
        assert_eq!(resolve("GET", "/healthz/"), Ok(Route::Healthz));
    }

    #[test]
    fn routing_failures_are_typed() {
        assert_eq!(resolve("GET", "/nope"), Err(RouteError::NotFound));
        assert_eq!(resolve("GET", "/video/42"), Err(RouteError::NotFound));
        assert_eq!(
            resolve("POST", "/healthz"),
            Err(RouteError::MethodNotAllowed)
        );
        assert_eq!(
            resolve("GET", "/video/7/rescore"),
            Err(RouteError::MethodNotAllowed)
        );
        assert_eq!(resolve("GET", "/video/abc/dots"), Err(RouteError::BadId));
        assert_eq!(resolve("GET", "/video/-3/dots"), Err(RouteError::BadId));
    }
}
