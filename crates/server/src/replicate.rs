//! Continuous replication primitives: keep one warm standby per
//! primary by shipping migration bundles over the existing
//! `POST /admin/export` → `POST /admin/import` protocol.
//!
//! The supervisor (see [`crate::supervisor`]) decides *when* to sync;
//! this module knows *how*: one bulk copy (`since_seq = 0`, chat +
//! state) to seed a standby, then delta bundles against the last
//! imported watermark (`since_seq = as_of_seq` of the previous
//! bundle, state only — chat is immutable once crawled). Bundles are
//! shipped verbatim: the exported bytes go to the standby untouched,
//! so the CRC the source computed is the CRC the destination
//! verifies.
//!
//! An empty delta is not a wasted round trip — its `as_of_seq` is the
//! primary's current KV watermark, which makes the steady-state delta
//! tick double as the replication-lag probe: `lag_ops` is exactly the
//! distance between the watermark the standby has and the watermark
//! the primary reports.

use crate::client::{ClientError, HttpClient};
use lightor_platform::wire::BundleDto;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One replicated range: a ring member and the warm standby shadowing
/// it.
#[derive(Clone, Debug)]
pub struct ReplicaPair {
    /// The primary — a current ring member whose state is shadowed.
    pub primary: SocketAddr,
    /// The standby — receives bundles, promoted if the primary dies.
    pub standby: SocketAddr,
    /// The primary's data directory, when it is reachable from the
    /// supervisor (co-located deployments). At promotion time this is
    /// the zero-loss path: a SIGKILLed primary cannot answer a final
    /// delta export, but its WAL tail holds every acknowledged write,
    /// and [`lightor_platform::LightorService::bundle_from_dir`]
    /// rebuilds the full bundle from the directory alone.
    pub primary_data_dir: Option<PathBuf>,
}

impl ReplicaPair {
    /// Parse the CLI form `PRIMARY,STANDBY[,DATA_DIR]` (e.g.
    /// `127.0.0.1:7801,127.0.0.1:7901,/var/lib/lightor/shard0`).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut parts = s.splitn(3, ',');
        let primary = parts
            .next()
            .filter(|p| !p.is_empty())
            .ok_or_else(|| format!("--pair {s:?}: missing primary address"))?;
        let standby = parts
            .next()
            .filter(|p| !p.is_empty())
            .ok_or_else(|| format!("--pair {s:?}: missing standby address"))?;
        let primary = primary
            .parse()
            .map_err(|e| format!("--pair {s:?}: bad primary address: {e}"))?;
        let standby = standby
            .parse()
            .map_err(|e| format!("--pair {s:?}: bad standby address: {e}"))?;
        if primary == standby {
            return Err(format!("--pair {s:?}: primary and standby are the same"));
        }
        Ok(ReplicaPair {
            primary,
            standby,
            primary_data_dir: parts.next().map(PathBuf::from),
        })
    }
}

/// Per-standby replication ledger: what the standby has, how far
/// behind it is, and how much work got it there.
#[derive(Clone, Debug, Default)]
pub struct ReplicaTracker {
    /// The primary's watermark as of the last bundle the standby
    /// imported. `None` until the bulk seed lands.
    pub synced_seq: Option<u64>,
    /// When the last bundle was imported.
    pub last_sync: Option<Instant>,
    /// The primary's watermark at the last successful export — the
    /// freshest truth about how far ahead the primary is. Updates
    /// even when the subsequent import fails, so lag grows instead of
    /// flat-lining when the standby is the broken half.
    pub primary_seq: u64,
    /// Delta bundles imported into the standby.
    pub deltas_shipped: u64,
    /// Bulk (full) bundles imported into the standby.
    pub bulk_syncs: u64,
}

impl ReplicaTracker {
    /// KV ops the standby is behind the last-observed primary
    /// watermark.
    pub fn lag_ops(&self) -> u64 {
        self.primary_seq
            .saturating_sub(self.synced_seq.unwrap_or(0))
    }

    /// Milliseconds since the last successful sync at `now`
    /// (`u64::MAX` before the first one — "infinitely stale" orders
    /// correctly against any real lag).
    pub fn lag_ms(&self, now: Instant) -> u64 {
        match self.last_sync {
            Some(t) => now.saturating_duration_since(t).as_millis() as u64,
            None => u64::MAX,
        }
    }
}

/// Connect/request budgets for one sync hop.
#[derive(Clone, Copy, Debug)]
pub struct SyncTimeouts {
    /// TCP connect budget per hop.
    pub connect: Duration,
    /// End-to-end budget per request (export or import).
    pub request: Duration,
}

impl Default for SyncTimeouts {
    fn default() -> Self {
        SyncTimeouts {
            connect: Duration::from_millis(500),
            request: Duration::from_secs(2),
        }
    }
}

/// What one successful sync did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncOutcome {
    /// Full seed: chat + state, `since_seq = 0`.
    Bulk {
        /// Videos in the shipped bundle.
        entries: usize,
    },
    /// Incremental: state changed since the last watermark.
    Delta {
        /// Videos in the shipped bundle.
        entries: usize,
    },
    /// Nothing changed since the last watermark — the export came
    /// back empty and no import was issued. Still advances
    /// `synced_seq` to the reported watermark (there is nothing
    /// between the two) and refreshes `last_sync`.
    Noop,
}

/// POST `path` on `addr` with a JSON body and parse the response
/// body as `T` on 2xx; non-2xx statuses surface as
/// [`ClientError::MalformedHead`]-free I/O errors so callers treat
/// "backend said no" and "backend unreachable" uniformly.
fn post<T: serde::Deserialize>(
    addr: SocketAddr,
    path: &str,
    body: &[u8],
    t: SyncTimeouts,
) -> Result<T, ClientError> {
    let mut conn = HttpClient::connect_with(addr, t.connect, t.request)?;
    let deadline = Instant::now() + t.request;
    let resp = conn.request_deadline("POST", path, Some(body), deadline)?;
    if !(200..300).contains(&resp.status) {
        return Err(ClientError::Io(std::io::Error::other(format!(
            "{path} on {addr} answered {}: {}",
            resp.status,
            resp.body_str()
        ))));
    }
    resp.json()
        .map_err(|e| ClientError::Io(std::io::Error::other(format!("{path} body: {e}"))))
}

/// Export a bundle from `primary` since `since_seq`, returning the
/// parsed DTO *and* the raw body bytes (shipped verbatim on import so
/// the source's CRC is what the destination verifies).
pub fn fetch_bundle(
    primary: SocketAddr,
    since_seq: u64,
    t: SyncTimeouts,
) -> Result<(BundleDto, Vec<u8>), ClientError> {
    let req = format!("{{\"videos\":[],\"since_seq\":{since_seq},\"freeze_ms\":0}}");
    let mut conn = HttpClient::connect_with(primary, t.connect, t.request)?;
    let deadline = Instant::now() + t.request;
    let resp = conn.request_deadline("POST", "/admin/export", Some(req.as_bytes()), deadline)?;
    if resp.status != 200 {
        return Err(ClientError::Io(std::io::Error::other(format!(
            "export on {primary} answered {}: {}",
            resp.status,
            resp.body_str()
        ))));
    }
    let bundle: BundleDto = resp
        .json()
        .map_err(|e| ClientError::Io(std::io::Error::other(format!("export body: {e}"))))?;
    Ok((bundle, resp.body))
}

/// Ship raw bundle bytes to `standby`'s `POST /admin/import`.
pub fn ship_bundle(
    standby: SocketAddr,
    raw: &[u8],
    t: SyncTimeouts,
) -> Result<lightor_platform::wire::ImportResponse, ClientError> {
    post(standby, "/admin/import", raw, t)
}

/// One sync step for `pair`: export from the primary at the
/// tracker's watermark, import into the standby when the bundle
/// carries anything, and advance the ledger. Bulk when the standby
/// was never seeded, delta afterwards. On error the ledger keeps its
/// last good state (except `primary_seq`, which advances whenever
/// the export succeeded) and the caller retries next tick.
pub fn sync_pair(
    pair: &ReplicaPair,
    tracker: &mut ReplicaTracker,
    t: SyncTimeouts,
) -> Result<SyncOutcome, ClientError> {
    let since = tracker.synced_seq.unwrap_or(0);
    let bulk = tracker.synced_seq.is_none();
    let (bundle, raw) = fetch_bundle(pair.primary, since, t)?;
    tracker.primary_seq = bundle.as_of_seq;
    let outcome = if bundle.entries.is_empty() && !bulk {
        // Nothing to ship; the export already told us the watermark.
        SyncOutcome::Noop
    } else {
        ship_bundle(pair.standby, &raw, t)?;
        if bulk {
            tracker.bulk_syncs += 1;
            SyncOutcome::Bulk {
                entries: bundle.entries.len(),
            }
        } else {
            tracker.deltas_shipped += 1;
            SyncOutcome::Delta {
                entries: bundle.entries.len(),
            }
        }
    };
    tracker.synced_seq = Some(bundle.as_of_seq);
    tracker.last_sync = Some(Instant::now());
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_parses_with_and_without_a_data_dir() {
        let p = ReplicaPair::parse("127.0.0.1:7801,127.0.0.1:7901").unwrap();
        assert_eq!(p.primary, "127.0.0.1:7801".parse().unwrap());
        assert_eq!(p.standby, "127.0.0.1:7901".parse().unwrap());
        assert!(p.primary_data_dir.is_none());

        let p = ReplicaPair::parse("127.0.0.1:7801,127.0.0.1:7901,/data/shard0").unwrap();
        assert_eq!(
            p.primary_data_dir.as_deref(),
            Some(std::path::Path::new("/data/shard0"))
        );
    }

    #[test]
    fn pair_rejects_malformed_specs() {
        assert!(ReplicaPair::parse("").is_err());
        assert!(ReplicaPair::parse("127.0.0.1:7801").is_err());
        assert!(ReplicaPair::parse("127.0.0.1:7801,").is_err());
        assert!(ReplicaPair::parse("not-an-addr,127.0.0.1:7901").is_err());
        assert!(ReplicaPair::parse("127.0.0.1:7801,not-an-addr").is_err());
        assert!(
            ReplicaPair::parse("127.0.0.1:7801,127.0.0.1:7801").is_err(),
            "a shard cannot shadow itself"
        );
    }

    #[test]
    fn tracker_lag_counts_ops_and_ms() {
        let mut tr = ReplicaTracker::default();
        assert_eq!(tr.lag_ops(), 0, "no observation yet, nothing to lag");
        assert_eq!(tr.lag_ms(Instant::now()), u64::MAX, "never synced");

        tr.primary_seq = 120;
        tr.synced_seq = Some(100);
        let t0 = Instant::now();
        tr.last_sync = Some(t0);
        assert_eq!(tr.lag_ops(), 20);
        assert_eq!(tr.lag_ms(t0 + Duration::from_millis(340)), 340);

        // Catching up zeroes the op lag.
        tr.synced_seq = Some(120);
        assert_eq!(tr.lag_ops(), 0);
    }
}
