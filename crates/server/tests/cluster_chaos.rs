//! Chaos tests: real `lightor-serve` backend *processes* behind a real
//! `lightor-router` process, with backends SIGKILLed, replaced, and
//! resharded mid-load.
//!
//! Asserts the fault-tolerance contract end to end:
//!
//! * refined red dots acknowledged before the kill survive the
//!   failover (same data dir + WAL replay on restart);
//! * GETs to healthy shards never see a 5xx while the victim is down;
//! * the router's `/healthz` walks the victim down and back to healthy;
//! * a planned live migration (bulk → freeze + delta → ring swap)
//!   bounds its write-freeze window under one second;
//! * a SIGKILLed shard's range comes back on a *fresh* process via
//!   `--restore-from` + a live ring update, with zero acknowledged
//!   loss.

mod harness;

use harness::*;
use lightor_platform::wire::{DotsResponse, ExportRequest};
use lightor_server::cluster::{Cluster, ClusterConfig};
use lightor_server::HttpClient;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn killing_and_restarting_a_backend_mid_load_loses_nothing() {
    const SEED: u64 = 71;
    let dirs: Vec<TempDir> = (0..3).map(|i| TempDir::new(&format!("b{i}"))).collect();

    // Boot 3 real backend processes (same seed → identical catalogs).
    let mut backends: Vec<Option<(Proc, SocketAddr)>> = Vec::new();
    let mut catalog = Vec::new();
    for dir in &dirs {
        let (proc_, addr, cat) = spawn_backend(&dir.0, SEED, 0);
        catalog = cat;
        backends.push(Some((proc_, addr)));
    }
    assert!(!catalog.is_empty(), "backends must publish a catalog");
    let addrs: Vec<SocketAddr> = backends.iter().map(|b| b.as_ref().unwrap().1).collect();
    let (_router_proc, router_addr) = spawn_router(&addrs);

    // The router binary and this in-test replica build the same
    // deterministic ring from the same backend list, so the test knows
    // which shard owns which video without asking the router.
    let ring = Cluster::new(ClusterConfig::new(addrs.clone()));
    let victim = ring.shard_for(catalog[0]);
    let victim_vid = catalog[0];
    let victim_addr = addrs[victim];
    let victim_port = victim_addr.port();
    // Synthetic ids let the load loop exercise every healthy shard even
    // if the catalog happens to hash onto few of them: unknown videos
    // answer 404, which is still a non-5xx from a healthy shard.
    let healthy_probe_ids: Vec<u64> = (0..1000u64)
        .filter(|&v| ring.shard_for(v) != victim)
        .take(8)
        .collect();

    let mut client = HttpClient::connect(router_addr).unwrap();
    assert_eq!(healthz(&mut client).status, "ok");

    // Phase 1 — load: open the victim's video and upload sessions until
    // a refinement round is acknowledged (the state the kill must not
    // lose).
    let acknowledged = refine_and_ack(&mut client, victim_vid);

    // Phase 2 — chaos: background load hammers healthy shards while the
    // victim is killed; healthy shards must never answer 5xx.
    let stop = Arc::new(AtomicBool::new(false));
    let loader = spawn_loader(router_addr, healthy_probe_ids.clone(), stop.clone());

    // SIGKILL the victim mid-load.
    drop(backends[victim].take());
    wait_backend_state(router_addr, victim_addr, "down", Duration::from_secs(20));
    let hz = healthz(&mut client);
    assert_eq!(hz.status, "degraded");

    // The dead shard fast-fails with Retry-After; healthy shards serve.
    let resp = client.get(&format!("/video/{victim_vid}/dots")).unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body_str());
    assert!(resp.header("retry-after").is_some());
    let resp = client
        .post_json("/sessions", &refining_upload(victim_vid, 999, 10.0))
        .unwrap();
    assert_eq!(resp.status, 503, "writes to a down shard fast-fail");

    // Phase 3 — recovery: restart the victim on its old port and data
    // dir; probes must walk it back to healthy.
    let (proc_, addr, _) = spawn_backend(&dirs[victim].0, SEED, victim_port);
    assert_eq!(addr, victim_addr, "restart must reuse the old address");
    backends[victim] = Some((proc_, addr));
    wait_backend_state(
        router_addr,
        victim_addr,
        "healthy",
        Duration::from_secs(120),
    );

    stop.store(true, Ordering::Relaxed);
    let five_xx = loader.join().unwrap();
    assert!(
        five_xx.is_empty(),
        "healthy shards answered 5xx during failover: {five_xx:?}"
    );

    // Zero acknowledged loss: the refined dots the router acknowledged
    // before the SIGKILL came back from the restarted shard's storage.
    let restored: DotsResponse = client
        .get(&format!("/video/{victim_vid}/dots"))
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(
        restored, acknowledged,
        "acknowledged refinement state was lost in the failover"
    );
    assert_eq!(healthz(&mut client).status, "ok");
}

#[test]
fn planned_migration_drains_a_shard_with_a_subsecond_freeze() {
    const SEED: u64 = 72;
    let dirs: Vec<TempDir> = (0..3).map(|i| TempDir::new(&format!("mig{i}"))).collect();

    // Two shards + router; a third backend boots later as the target.
    let (_proc_a, addr_a, catalog) = spawn_backend(&dirs[0].0, SEED, 0);
    let (_proc_b, addr_b, _) = spawn_backend(&dirs[1].0, SEED, 0);
    let addrs = vec![addr_a, addr_b];
    let (_router_proc, router_addr) = spawn_router(&addrs);
    let ring = Cluster::new(ClusterConfig::new(addrs.clone()));

    // Drain the shard that owns the catalog's first video; the other
    // shard stays in the ring.
    let vid = catalog[0];
    let src = ring.shard_for(vid);
    let keep = 1 - src;

    let mut client = HttpClient::connect(router_addr).unwrap();
    let acknowledged = refine_and_ack(&mut client, vid);

    let (_proc_c, addr_c, _) = spawn_backend(&dirs[2].0, SEED, 0);

    // Background GETs against the shard that stays; resharding must
    // never cost a healthy shard's reads a 5xx.
    let keep_ids: Vec<u64> = (0..1000u64)
        .filter(|&v| ring.shard_for(v) == keep)
        .take(8)
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let loader = spawn_loader(router_addr, keep_ids, stop.clone());

    // Phase 1 — bulk copy, no freeze: the drained shard's full range
    // goes to both remaining backends (whichever owns each video after
    // the swap must hold its state).
    let (bulk_body, bulk) = export_bundle(
        addrs[src],
        &ExportRequest {
            videos: vec![],
            since_seq: 0,
            freeze_ms: 0,
        },
    );
    assert!(import_bundle(addrs[keep], &bulk_body).videos >= 1);
    import_bundle(addr_c, &bulk_body);

    // Phase 2 — cutover: freeze the drained shard's writes, ship the
    // delta since the bulk copy, swap the ring. The clock starts at
    // the freeze and stops at the first accepted write.
    let t0 = Instant::now();
    let (delta_body, _) = export_bundle(
        addrs[src],
        &ExportRequest {
            videos: vec![],
            since_seq: bulk.as_of_seq,
            freeze_ms: 900,
        },
    );
    import_bundle(addrs[keep], &delta_body);
    import_bundle(addr_c, &delta_body);

    // Mid-freeze, the old owner rejects writes with a Retry-After.
    let resp = client
        .post_json("/sessions", &refining_upload(vid, 500, 10.0))
        .unwrap();
    assert_eq!(resp.status, 503, "frozen video rejects writes");
    assert!(resp.header("retry-after").is_some());

    let applied = apply_ring(router_addr, &[addrs[keep], addr_c]);
    assert_eq!(applied.version, 2);

    // Writes land again the moment the new ring routes them — the
    // freeze window ends with the cutover, not with its TTL — and the
    // whole window stays under a second.
    let freeze_window = loop {
        let resp = client
            .post_json("/sessions", &refining_upload(vid, 501, 10.0))
            .unwrap();
        if resp.status == 200 {
            break t0.elapsed();
        }
        assert_eq!(resp.status, 503, "{}", resp.body_str());
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "writes never resumed after the ring swap"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        freeze_window < Duration::from_secs(1),
        "cutover froze writes for {freeze_window:?}"
    );

    // The refined dots acknowledged before the migration come back
    // identical through the new ring.
    let resp = client.get(&format!("/video/{vid}/dots")).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let after: DotsResponse = resp.json().unwrap();
    assert_eq!(after, acknowledged, "refined state was lost in the move");

    // The target earns healthy through the ordinary state machine.
    wait_backend_state(router_addr, addr_c, "healthy", Duration::from_secs(120));
    let hz = healthz(&mut client);
    assert_eq!(hz.status, "ok");
    assert_eq!(hz.ring_version, 2);

    stop.store(true, Ordering::Relaxed);
    let five_xx = loader.join().unwrap();
    assert!(
        five_xx.is_empty(),
        "healthy shards answered 5xx during the migration: {five_xx:?}"
    );
}

#[test]
fn crash_replacement_restores_the_dead_range_on_a_fresh_process() {
    const SEED: u64 = 73;
    let dirs: Vec<TempDir> = (0..3).map(|i| TempDir::new(&format!("rep{i}"))).collect();

    let mut backends: Vec<Option<(Proc, SocketAddr)>> = Vec::new();
    let mut catalog = Vec::new();
    for dir in &dirs[..2] {
        let (proc_, addr, cat) = spawn_backend(&dir.0, SEED, 0);
        catalog = cat;
        backends.push(Some((proc_, addr)));
    }
    let addrs: Vec<SocketAddr> = backends.iter().map(|b| b.as_ref().unwrap().1).collect();
    let (_router_proc, router_addr) = spawn_router(&addrs);
    let ring = Cluster::new(ClusterConfig::new(addrs.clone()));

    let vid = catalog[0];
    let victim = ring.shard_for(vid);
    let survivor = 1 - victim;

    let mut client = HttpClient::connect(router_addr).unwrap();
    let acknowledged = refine_and_ack(&mut client, vid);

    let survivor_ids: Vec<u64> = (0..1000u64)
        .filter(|&v| ring.shard_for(v) == survivor)
        .take(8)
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let loader = spawn_loader(router_addr, survivor_ids, stop.clone());

    // SIGKILL the victim; its data dir is all that survives.
    drop(backends[victim].take());
    wait_backend_state(router_addr, addrs[victim], "down", Duration::from_secs(20));

    // A *fresh* process on a new port and a new data dir adopts the
    // dead shard's range: snapshot + WAL tail from the dead dir.
    let (_proc_c, addr_c, _, restored_count) =
        spawn_backend_restoring(&dirs[2].0, SEED, 0, Some(&dirs[victim].0));
    assert!(
        restored_count.expect("replacement prints a restored line") >= 1,
        "the dead dir held the victim's range"
    );

    // Fan the restored range to the survivor too — after the swap,
    // whichever of the two owns each ex-victim video must hold its
    // state.
    let (bundle_body, _) = export_bundle(
        addr_c,
        &ExportRequest {
            videos: vec![],
            since_seq: 0,
            freeze_ms: 0,
        },
    );
    import_bundle(addrs[survivor], &bundle_body);

    // Replace the dead address with the replacement, live.
    let applied = apply_ring(router_addr, &[addrs[survivor], addr_c]);
    assert_eq!(applied.version, 2);

    // Zero acknowledged loss: every refinement round the router
    // acknowledged before the SIGKILL is served by the new ring.
    let resp = client.get(&format!("/video/{vid}/dots")).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let after: DotsResponse = resp.json().unwrap();
    assert_eq!(
        after, acknowledged,
        "acknowledged refinement state was lost in the replacement"
    );

    // Writes flow to the new ring immediately.
    let resp = client
        .post_json("/sessions", &refining_upload(vid, 999, 10.0))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    // The replacement joins through recovering → healthy; the dead
    // address is gone from the ring.
    wait_backend_state(router_addr, addr_c, "healthy", Duration::from_secs(120));
    let hz = healthz(&mut client);
    assert_eq!(hz.status, "ok");
    assert_eq!(hz.ring_version, 2);
    assert_eq!(hz.backends.len(), 2);

    stop.store(true, Ordering::Relaxed);
    let five_xx = loader.join().unwrap();
    assert!(
        five_xx.is_empty(),
        "healthy shards answered 5xx during the replacement: {five_xx:?}"
    );
}
