//! Shared process-chaos harness: boot real `lightor-serve`,
//! `lightor-router`, and `lightor-supervisor` binaries, parse their
//! readiness banners, drive refinement load through the router, and
//! kill processes mid-run. Used by `cluster_chaos.rs` and
//! `supervisor_chaos.rs`.

// Each integration-test binary compiles this module independently and
// uses a different subset of it.
#![allow(dead_code)]

use lightor_platform::wire::{
    BundleDto, DotsResponse, EventDto, ExportRequest, ImportResponse, RingUpdateRequest,
    RingUpdateResponse, RouterHealthzResponse, SessionUpload, StreamBatchDto,
    SupervisorStatsResponse,
};
use lightor_server::router::SessionAccepted;
use lightor_server::HttpClient;
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A unique temp dir removed on drop.
pub struct TempDir(pub PathBuf);
impl TempDir {
    pub fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "lightor-chaos-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A child process killed on drop (tests must never leak servers).
pub struct Proc(pub Child);
impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawn a process and read its stdout until `parse` extracts a value
/// from some line; the rest of the stream is drained in the background.
pub fn spawn_and_parse<T>(
    mut cmd: Command,
    deadline: Duration,
    parse: impl Fn(&str) -> Option<T>,
) -> (Proc, T) {
    cmd.stdout(Stdio::piped()).stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let start = Instant::now();
    let mut parsed = None;
    for line in &mut lines {
        let line = line.expect("read child stdout");
        if let Some(v) = parse(&line) {
            parsed = Some(v);
            break;
        }
        assert!(start.elapsed() < deadline, "child never printed its banner");
    }
    // Keep draining so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (Proc(child), parsed.expect("child exited before its banner"))
}

/// Boot one backend; returns (process, bound addr, catalog video ids).
pub fn spawn_backend(dir: &std::path::Path, seed: u64, port: u16) -> (Proc, SocketAddr, Vec<u64>) {
    let (proc_, addr, catalog, _) = spawn_backend_restoring(dir, seed, port, None);
    (proc_, addr, catalog)
}

/// Boot one backend, optionally restoring a dead backend's range from
/// its data dir first; the fourth return is the restored-video count
/// (`None` when not restoring).
pub fn spawn_backend_restoring(
    dir: &std::path::Path,
    seed: u64,
    port: u16,
    restore_from: Option<&std::path::Path>,
) -> (Proc, SocketAddr, Vec<u64>, Option<usize>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_lightor-serve"));
    cmd.args([
        "--quick",
        "--port",
        &port.to_string(),
        "--seed",
        &seed.to_string(),
        "--data-dir",
    ])
    .arg(dir);
    if let Some(dead) = restore_from {
        cmd.arg("--restore-from").arg(dead);
    }
    // The backend prints `restored: …` (when restoring), then
    // `listening on http://ADDR`, then `catalog: …` — in that order.
    let (proc_, (addr, catalog, restored)) = spawn_and_parse(cmd, Duration::from_secs(120), {
        let addr = std::cell::Cell::new(None::<SocketAddr>);
        let restored = std::cell::Cell::new(None::<usize>);
        move |line| {
            if let Some(rest) = line.strip_prefix("restored: ") {
                let count = rest
                    .split_whitespace()
                    .next()
                    .and_then(|n| n.parse().ok())
                    .expect("restored count");
                restored.set(Some(count));
                return None;
            }
            if let Some(rest) = line.strip_prefix("lightor-serve listening on http://") {
                addr.set(Some(rest.trim().parse().expect("addr")));
                return None;
            }
            let ids = line.strip_prefix("catalog: ")?;
            let catalog: Vec<u64> = ids
                .split_whitespace()
                .map(|s| s.parse().expect("catalog id"))
                .collect();
            Some((
                addr.get().expect("listening line before catalog"),
                catalog,
                restored.get(),
            ))
        }
    });
    (proc_, addr, catalog, restored)
}

/// Boot the router over `backends`; returns (process, bound addr).
pub fn spawn_router(backends: &[SocketAddr]) -> (Proc, SocketAddr) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_lightor-router"));
    cmd.args(["--port", "0", "--request-timeout-ms", "5000"]);
    for b in backends {
        cmd.args(["--backend", &b.to_string()]);
    }
    spawn_and_parse(cmd, Duration::from_secs(60), |line| {
        line.strip_prefix("lightor-router listening on http://")
            .map(|rest| rest.trim().parse().expect("addr"))
    })
}

/// Boot the supervisor binary watching `pairs`
/// (`PRIMARY,STANDBY[,DATA_DIR]` specs) against `router`; returns
/// (process, bound addr).
pub fn spawn_supervisor(router: SocketAddr, pairs: &[String], tick_ms: u64) -> (Proc, SocketAddr) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_lightor-supervisor"));
    cmd.args([
        "--port",
        "0",
        "--router",
        &router.to_string(),
        "--tick-ms",
        &tick_ms.to_string(),
        "--request-timeout-ms",
        "5000",
    ]);
    for p in pairs {
        cmd.args(["--pair", p]);
    }
    spawn_and_parse(cmd, Duration::from_secs(60), |line| {
        line.strip_prefix("lightor-supervisor listening on http://")
            .map(|rest| rest.trim().parse().expect("addr"))
    })
}

/// An upload whose plays cluster around `dot_at`, enough of them
/// (≥ `min_plays_per_round` = 8) to trigger a refinement round.
pub fn refining_upload(video: u64, client: u64, dot_at: f64) -> String {
    let mut events = Vec::new();
    for i in 0..8 {
        let at = (dot_at - 2.0 + 0.3 * i as f64).max(0.0);
        events.push(EventDto::Play { at });
        events.push(EventDto::Pause { at: at + 6.0 });
    }
    events.push(EventDto::Leave { at: dot_at + 20.0 });
    serde_json::to_string(&SessionUpload {
        video,
        client,
        events,
    })
    .unwrap()
}

/// One sequenced NDJSON stream line (newline-terminated) whose plays
/// cluster around `dot_at` — the streaming twin of [`refining_upload`].
pub fn refining_stream_line(video: u64, client: u64, seq: u64, dot_at: f64) -> String {
    let mut events = Vec::new();
    for i in 0..8 {
        let at = (dot_at - 2.0 + 0.3 * i as f64).max(0.0);
        events.push(EventDto::Play { at });
        events.push(EventDto::Pause { at: at + 6.0 });
    }
    stream_line(video, client, seq, events)
}

/// One sequenced NDJSON stream line whose single play lands at
/// `far_ts` — place it outside every dot's neighborhood and the batch
/// folds (advancing the seq watermark) without buffering a play or
/// triggering refinement, so the video's dots stay byte-stable.
pub fn inert_stream_line(video: u64, client: u64, seq: u64, far_ts: f64) -> String {
    stream_line(
        video,
        client,
        seq,
        vec![
            EventDto::Play { at: far_ts },
            EventDto::Pause { at: far_ts + 1.0 },
        ],
    )
}

fn stream_line(video: u64, client: u64, seq: u64, events: Vec<EventDto>) -> String {
    let mut line = serde_json::to_string(&StreamBatchDto {
        video,
        client,
        seq: Some(seq),
        events,
    })
    .unwrap();
    line.push('\n');
    line
}

pub fn healthz(client: &mut HttpClient) -> RouterHealthzResponse {
    client.get("/healthz").unwrap().json().unwrap()
}

/// The supervisor's `GET /stats`.
pub fn supervisor_stats(addr: SocketAddr) -> SupervisorStatsResponse {
    let mut c = HttpClient::connect(addr).unwrap();
    let resp = c.get("/stats").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    resp.json().unwrap()
}

/// `POST /admin/export` on one backend; returns the raw bundle body
/// (shippable verbatim as an import body) and its parsed form.
pub fn export_bundle(addr: SocketAddr, req: &ExportRequest) -> (String, BundleDto) {
    let mut c = HttpClient::connect(addr).unwrap();
    let resp = c
        .post_json("/admin/export", &serde_json::to_string(req).unwrap())
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let bundle = resp.json().unwrap();
    (resp.body_str().to_string(), bundle)
}

/// `POST /admin/import` a bundle body into one backend.
pub fn import_bundle(addr: SocketAddr, body: &str) -> ImportResponse {
    let mut c = HttpClient::connect(addr).unwrap();
    let resp = c.post_json("/admin/import", body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    resp.json().unwrap()
}

/// `POST /admin/ring` on the router: swap in a new backend set, live.
pub fn apply_ring(router: SocketAddr, backends: &[SocketAddr]) -> RingUpdateResponse {
    let req = RingUpdateRequest {
        backends: backends.iter().map(|a| a.to_string()).collect(),
    };
    let mut c = HttpClient::connect(router).unwrap();
    let resp = c
        .post_json("/admin/ring", &serde_json::to_string(&req).unwrap())
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    resp.json().unwrap()
}

/// Open `vid` and drive refining uploads through the router until a
/// refinement round is acknowledged, then return the acknowledged
/// dots. Every ack is durable by contract: refine persists through the
/// WAL-fronted KV store before answering.
pub fn refine_and_ack(client: &mut HttpClient, vid: u64) -> DotsResponse {
    let dots: DotsResponse = client
        .get(&format!("/video/{vid}/dots"))
        .unwrap()
        .json()
        .unwrap();
    assert!(!dots.dots.is_empty());
    let mut refined_acked = 0usize;
    for i in 0..200u64 {
        let dot_at = dots.dots[(i as usize) % dots.dots.len()].at_seconds;
        let resp = client
            .post_json("/sessions", &refining_upload(vid, i, dot_at))
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        let ack: SessionAccepted = resp.json().unwrap();
        refined_acked += ack.dots_refined;
        if refined_acked >= 3 {
            break;
        }
    }
    assert!(
        refined_acked >= 1,
        "load never triggered a refinement round"
    );
    client
        .get(&format!("/video/{vid}/dots"))
        .unwrap()
        .json()
        .unwrap()
}

/// Background GET load over `ids` through the router; joining the
/// handle yields every 5xx observed (the tests assert it stays empty).
pub fn spawn_loader(
    router: SocketAddr,
    ids: Vec<u64>,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<Vec<(u64, u16)>> {
    std::thread::spawn(move || {
        let mut client = HttpClient::connect(router).unwrap();
        let mut five_xx = Vec::new();
        while !stop.load(Ordering::Relaxed) {
            for &v in &ids {
                let resp = client.get(&format!("/video/{v}/dots")).unwrap();
                if resp.status >= 500 {
                    five_xx.push((v, resp.status));
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        five_xx
    })
}

/// Poll the router's `/healthz` until `addr` reports `want`.
pub fn wait_backend_state(router: SocketAddr, addr: SocketAddr, want: &str, within: Duration) {
    let deadline = Instant::now() + within;
    let mut client = HttpClient::connect(router).unwrap();
    loop {
        let hz = healthz(&mut client);
        let state = hz
            .backends
            .iter()
            .find(|b| b.addr == addr.to_string())
            .map(|b| b.health.clone())
            .unwrap_or_default();
        if state == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "backend {addr} never reached {want:?} (stuck at {state:?})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}
