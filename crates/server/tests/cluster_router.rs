//! Cluster-mode integration tests over real loopback sockets: the
//! router in front of in-process backends — proxying, aggregation,
//! failover to `down`, and recovery — all driven through HTTP.

use lightor::{ExtractorConfig, FeatureSet, HighlightExtractor, ModelBundle};
use lightor_chatsim::{dota2_dataset, SimPlatform};
use lightor_crowdsim::Campaign;
use lightor_eval::harness::{train_initializer, train_type_classifier};
use lightor_platform::wire::{
    BundleDto, CompactResponse, DotsResponse, EventDto, ExportRequest, ImportResponse,
    RingUpdateRequest, RingUpdateResponse, RouterHealthzResponse, RouterStatsResponse,
    SessionUpload,
};
use lightor_platform::{LightorService, ServiceConfig};
use lightor_server::cluster::{ClusterConfig, RouterServer};
use lightor_server::{
    HealthPolicy, HealthState, HttpClient, HttpServer, RetryPolicy, ServerConfig,
};
use lightor_types::GameKind;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "lightor-cluster-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Models are expensive to train; every test shares one bundle.
fn models() -> ModelBundle {
    static MODELS: OnceLock<ModelBundle> = OnceLock::new();
    MODELS
        .get_or_init(|| {
            let data = dota2_dataset(2, 5001);
            let train: Vec<_> = data.videos.iter().collect();
            let initializer = train_initializer(&train, FeatureSet::Full);
            let mut campaign = Campaign::new(200, 5002);
            let (classifier, _) = train_type_classifier(&train, &mut campaign, 3, 5003);
            ModelBundle {
                initializer,
                extractor: HighlightExtractor::new(classifier, ExtractorConfig::default()),
                provenance: "cluster tests".into(),
            }
        })
        .clone()
}

/// Every backend simulates the same platform, so any shard can serve
/// any video the catalog knows — sharding decides *ownership* of the
/// refinement state, not visibility.
fn platform() -> SimPlatform {
    SimPlatform::top_channels(GameKind::Dota2, 2, 3, 5004)
}

/// One in-process backend over `dir`, bound to `addr` (port 0 = any).
fn backend(dir: &Path, addr: SocketAddr) -> HttpServer {
    let svc = Arc::new(
        LightorService::open(dir, models(), platform(), ServiceConfig::default()).unwrap(),
    );
    HttpServer::bind(addr, svc, ServerConfig::default()).unwrap()
}

/// A router over `backends` with test-fast probing and retries.
fn router(backends: Vec<SocketAddr>) -> RouterServer {
    let cfg = ClusterConfig {
        connect_timeout: Duration::from_millis(250),
        request_timeout: Duration::from_secs(5),
        probe_timeout: Duration::from_millis(250),
        health: HealthPolicy {
            down_after: 3,
            recover_after: 2,
            probe_interval: Duration::from_millis(50),
            probe_backoff_base: Duration::from_millis(50),
            probe_backoff_max: Duration::from_millis(200),
        },
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(40),
        },
        ..ClusterConfig::new(backends)
    };
    RouterServer::bind(("127.0.0.1", 0), cfg, ServerConfig::default()).unwrap()
}

fn catalog() -> Vec<u64> {
    let p = platform();
    let mut ids: Vec<u64> = p.all_videos().map(|v| v.video.meta.id.0).collect();
    ids.sort_unstable();
    ids
}

fn upload_json(video: u64) -> String {
    serde_json::to_string(&SessionUpload {
        video,
        client: 1,
        events: vec![
            EventDto::Play { at: 10.0 },
            EventDto::Pause { at: 25.0 },
            EventDto::Leave { at: 25.0 },
        ],
    })
    .unwrap()
}

fn wait_for_health(router: &RouterServer, idx: usize, want: HealthState, within: Duration) -> bool {
    let deadline = Instant::now() + within;
    while Instant::now() < deadline {
        if router.cluster().backend_health(idx) == want {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

#[test]
fn router_proxies_routes_and_aggregates_stats() {
    let dirs: Vec<TempDir> = (0..3).map(|i| TempDir::new(&format!("agg{i}"))).collect();
    let backends: Vec<HttpServer> = dirs
        .iter()
        .map(|d| backend(&d.0, "127.0.0.1:0".parse().unwrap()))
        .collect();
    let router = router(backends.iter().map(|b| b.local_addr()).collect());
    let mut client = HttpClient::connect(router.local_addr()).unwrap();

    // Router healthz: its own DTO, all shards healthy.
    let resp = client.get("/healthz").unwrap();
    assert_eq!(resp.status, 200);
    let hz: RouterHealthzResponse = resp.json().unwrap();
    assert_eq!(hz.status, "ok");
    assert_eq!(hz.ring_version, 1, "the boot ring is version 1");
    assert_eq!(hz.backends.len(), 3);
    assert!(hz.backends.iter().all(|b| b.health == "healthy"));

    // Dots through the router match the owning shard's direct answer.
    let vid = catalog()[0];
    let via_router = client.get(&format!("/video/{vid}/dots")).unwrap();
    assert_eq!(via_router.status, 200, "{}", via_router.body_str());
    let routed: DotsResponse = via_router.json().unwrap();
    let shard = router.cluster().shard_for(vid);
    let mut direct = HttpClient::connect(backends[shard].local_addr()).unwrap();
    let direct_dots: DotsResponse = direct
        .get(&format!("/video/{vid}/dots"))
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(routed, direct_dots);

    // Sessions route by the video id inside the body.
    let resp = client.post_json("/sessions", &upload_json(vid)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    // Garbage bodies bounce at the router with 400, not a proxy error.
    let resp = client.post_json("/sessions", "{not json").unwrap();
    assert_eq!(resp.status, 400);
    // Unroutable paths answer 404 from the router itself.
    assert_eq!(client.get("/nope").unwrap().status, 404);

    // Compact broadcasts to every shard and sums the results.
    let resp = client.post_json("/admin/compact", "").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let _: CompactResponse = resp.json().unwrap();

    // Stats aggregate per-shard health, counters, and backend stats.
    let resp = client.get("/stats").unwrap();
    assert_eq!(resp.status, 200);
    let stats: RouterStatsResponse = resp.json().unwrap();
    assert!(stats.requests >= 5);
    assert_eq!(stats.backends.len(), 3);
    assert!(stats.backends.iter().all(|b| b.health == "healthy"));
    assert!(
        stats.backends.iter().all(|b| b.stats.is_some()),
        "live shards answer the stats sweep"
    );
    let owner = &stats.backends[shard];
    assert!(owner.proxied >= 2, "dots + session went to the owner");

    router.shutdown();
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn router_trips_a_dead_shard_and_recovers_it() {
    let dirs: Vec<TempDir> = (0..2).map(|i| TempDir::new(&format!("trip{i}"))).collect();
    let mut backends: Vec<Option<HttpServer>> = dirs
        .iter()
        .map(|d| Some(backend(&d.0, "127.0.0.1:0".parse().unwrap())))
        .collect();
    let addrs: Vec<SocketAddr> = backends
        .iter()
        .map(|b| b.as_ref().unwrap().local_addr())
        .collect();
    let router = router(addrs.clone());
    let mut client = HttpClient::connect(router.local_addr()).unwrap();

    // Find one video per shard (the ring is deterministic; the fixture
    // catalog covers both shards).
    let ids = catalog();
    let victim_vid = ids[0];
    let victim = router.cluster().shard_for(victim_vid);
    let survivor_vid = *ids
        .iter()
        .find(|&&v| router.cluster().shard_for(v) != victim)
        .expect("catalog must span both shards");

    // Warm both shards (initializes + persists the dots).
    let before: DotsResponse = client
        .get(&format!("/video/{victim_vid}/dots"))
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(
        client
            .get(&format!("/video/{survivor_vid}/dots"))
            .unwrap()
            .status,
        200
    );

    // Kill the victim shard and wait for the breaker to trip.
    backends[victim].take().unwrap().shutdown();
    assert!(
        wait_for_health(&router, victim, HealthState::Down, Duration::from_secs(10)),
        "probes must trip the dead shard to down"
    );

    // Router healthz reflects the partial outage.
    let hz: RouterHealthzResponse = client.get("/healthz").unwrap().json().unwrap();
    assert_eq!(hz.status, "degraded");
    assert_eq!(hz.backends[victim].health, "down");

    // Requests to the down shard fast-fail 503 with a Retry-After;
    // the surviving shard keeps answering 200 — never a 5xx.
    for _ in 0..5 {
        let resp = client.get(&format!("/video/{victim_vid}/dots")).unwrap();
        assert_eq!(resp.status, 503, "{}", resp.body_str());
        assert!(
            resp.header("retry-after").is_some(),
            "503 carries Retry-After"
        );
        let resp = client
            .post_json("/sessions", &upload_json(victim_vid))
            .unwrap();
        assert_eq!(resp.status, 503, "writes fast-fail too");
        let resp = client.get(&format!("/video/{survivor_vid}/dots")).unwrap();
        assert_eq!(resp.status, 200, "healthy shard must not see 5xx");
    }
    let stats: RouterStatsResponse = client.get("/stats").unwrap().json().unwrap();
    assert!(stats.backends[victim].breaker_trips >= 1);
    assert!(stats.backends[victim].probe_failures >= 1);
    assert!(
        stats.backends[victim].stats.is_none(),
        "down shard: no stats"
    );
    // The sweep reports partial results rather than failing outright:
    // the dead shard is marked, the rest still carry their stats.
    assert!(stats.backends[victim].unreachable);
    for (i, b) in stats.backends.iter().enumerate() {
        if i != victim {
            assert!(
                !b.unreachable && b.stats.is_some(),
                "live shard {i} aggregated"
            );
        }
    }

    // Restart the shard on its old address and old data dir: probes
    // must walk it down → recovering → healthy, and the refined dots
    // it acknowledged before the kill must still be there.
    backends[victim] = Some(backend(&dirs[victim].0, addrs[victim]));
    assert!(
        wait_for_health(
            &router,
            victim,
            HealthState::Healthy,
            Duration::from_secs(10)
        ),
        "probes must walk the restarted shard back to healthy"
    );
    let resp = client.get(&format!("/video/{victim_vid}/dots")).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let after: DotsResponse = resp.json().unwrap();
    assert_eq!(after, before, "persisted dots survive the restart");

    router.shutdown();
    for b in backends.into_iter().flatten() {
        b.shutdown();
    }
}

/// The full live-resharding protocol over real sockets: bulk export →
/// import → freeze + delta → import → ring swap — and at every step,
/// the requests that must keep working do.
#[test]
fn live_migration_hands_ownership_to_a_new_backend() {
    let dirs: Vec<TempDir> = (0..3).map(|i| TempDir::new(&format!("mig{i}"))).collect();
    let old: Vec<HttpServer> = dirs[..2]
        .iter()
        .map(|d| backend(&d.0, "127.0.0.1:0".parse().unwrap()))
        .collect();
    let router = router(old.iter().map(|b| b.local_addr()).collect());
    let mut client = HttpClient::connect(router.local_addr()).unwrap();

    // Warm + refine one video through the router; its state is what
    // the migration must carry over intact.
    let vid = catalog()[0];
    assert_eq!(
        client.get(&format!("/video/{vid}/dots")).unwrap().status,
        200
    );
    for _ in 0..3 {
        let resp = client.post_json("/sessions", &upload_json(vid)).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
    }
    let refined: DotsResponse = client
        .get(&format!("/video/{vid}/dots"))
        .unwrap()
        .json()
        .unwrap();

    // The migration target: a fresh backend with an empty data dir.
    let target = backend(&dirs[2].0, "127.0.0.1:0".parse().unwrap());
    let mut to_target = HttpClient::connect(target.local_addr()).unwrap();

    // Phase 1 — bulk copy, no freeze: export everything each old shard
    // tracks and import it into the target. Writes keep flowing.
    let mut bulk_seqs = Vec::new();
    for b in &old {
        let mut src = HttpClient::connect(b.local_addr()).unwrap();
        let req = ExportRequest {
            videos: vec![],
            since_seq: 0,
            freeze_ms: 0,
        };
        let resp = src
            .post_json("/admin/export", &serde_json::to_string(&req).unwrap())
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        let bundle: BundleDto = resp.json().unwrap();
        bulk_seqs.push(bundle.as_of_seq);
        // The bundle ships verbatim as the import body.
        let resp = to_target
            .post_json("/admin/import", resp.body_str())
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        let _: ImportResponse = resp.json().unwrap();
    }

    // Phase 2 — cutover: freeze writes on the old owner while shipping
    // the delta of anything refined since the bulk copy.
    let owner = router.cluster().shard_for(vid);
    let mut src = HttpClient::connect(old[owner].local_addr()).unwrap();
    let req = ExportRequest {
        videos: vec![vid],
        since_seq: bulk_seqs[owner],
        freeze_ms: 5_000,
    };
    let resp = src
        .post_json("/admin/export", &serde_json::to_string(&req).unwrap())
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let delta: BundleDto = resp.json().unwrap();
    assert!(
        delta.entries.iter().all(|e| e.chat_hex.is_none()),
        "delta exports ship state only; chat is immutable after crawl"
    );
    let resp = to_target
        .post_json("/admin/import", resp.body_str())
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    // Inside the freeze window the old owner answers writes 503 with a
    // Retry-After (relayed through the router); reads still work.
    let resp = client.post_json("/sessions", &upload_json(vid)).unwrap();
    assert_eq!(resp.status, 503, "frozen video rejects writes");
    assert!(
        resp.header("retry-after").is_some(),
        "503 names a retry time"
    );
    assert_eq!(
        client.get(&format!("/video/{vid}/dots")).unwrap().status,
        200
    );

    // Phase 3 — handoff: swap the ring to the target, live.
    let req = RingUpdateRequest {
        backends: vec![target.local_addr().to_string()],
    };
    let resp = client
        .post_json("/admin/ring", &serde_json::to_string(&req).unwrap())
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let applied: RingUpdateResponse = resp.json().unwrap();
    assert_eq!(applied.version, 2);
    let hz: RouterHealthzResponse = client.get("/healthz").unwrap().json().unwrap();
    assert_eq!(hz.ring_version, 2);
    assert_eq!(hz.backends.len(), 1);

    // The new owner serves the migrated video with its refined state —
    // byte-for-byte the dots the old owner acknowledged.
    let resp = client.get(&format!("/video/{vid}/dots")).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let after: DotsResponse = resp.json().unwrap();
    assert_eq!(after, refined, "refined state survived the migration");

    // Writes land again immediately — the target was never frozen, so
    // the freeze window ended with the cutover, not with its TTL.
    let resp = client.post_json("/sessions", &upload_json(vid)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    // Stats aggregate over the new ring.
    let stats: RouterStatsResponse = client.get("/stats").unwrap().json().unwrap();
    assert_eq!(stats.ring_version, 2);
    assert_eq!(stats.backends.len(), 1);
    assert!(!stats.backends[0].unreachable);

    router.shutdown();
    target.shutdown();
    for b in old {
        b.shutdown();
    }
}
