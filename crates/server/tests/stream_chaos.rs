//! Mid-stream chaos drill: a client is streaming sequenced NDJSON
//! batches through the router when the owning shard is SIGKILLed. Under
//! supervisor watch the standby must take over within the promotion
//! budget with every *acknowledged* batch intact — and the client's
//! resume protocol (replay from the last acknowledged `seq`) must fold
//! nothing twice.
//!
//! The contract under test, end to end over real processes:
//!
//! * a completed stream's `StreamAccepted` ack means those batches are
//!   WAL-durable and delta-replicated — byte-identical dots on the
//!   promoted standby;
//! * a stream cut by the kill is **never** falsely acknowledged;
//! * promotion lands within 5 s of the router marking the shard down;
//! * replaying the whole session (acked prefix + unacked tail) folds
//!   each batch at most once, and a second full replay is a pure no-op.

mod harness;

use harness::*;
use lightor_platform::wire::{StreamAccepted, SupervisorStatsResponse};
use lightor_server::cluster::{Cluster, ClusterConfig};
use lightor_server::HttpClient;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Poll the supervisor's `/stats` until `ok` accepts a snapshot.
fn wait_supervisor(
    sup: SocketAddr,
    what: &str,
    within: Duration,
    ok: impl Fn(&SupervisorStatsResponse) -> bool,
) -> SupervisorStatsResponse {
    let deadline = Instant::now() + within;
    loop {
        let stats = supervisor_stats(sup);
        if ok(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "supervisor never reached {what}: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn mid_stream_shard_kill_loses_no_acked_batch_and_replays_clean() {
    const SEED: u64 = 76;
    const CLIENT: u64 = 4242;
    let dirs: Vec<TempDir> = ["sp0", "sp1", "sstandby"]
        .iter()
        .map(|tag| TempDir::new(tag))
        .collect();

    let (p0, a0, catalog) = spawn_backend(&dirs[0].0, SEED, 0);
    let (p1, a1, _) = spawn_backend(&dirs[1].0, SEED, 0);
    let (_standby_proc, standby_addr, _) = spawn_backend(&dirs[2].0, SEED, 0);
    let addrs = vec![a0, a1];
    let (_router_proc, router_addr) = spawn_router(&addrs);

    let ring = Cluster::new(ClusterConfig::new(addrs.clone()));
    let vid = catalog[0];
    let victim = ring.shard_for(vid);
    let victim_addr = addrs[victim];
    let mut procs = [Some(p0), Some(p1)];

    let pair_spec = format!("{victim_addr},{standby_addr},{}", dirs[victim].0.display());
    let (_sup_proc, sup_addr) = spawn_supervisor(router_addr, &[pair_spec], 100);
    wait_supervisor(sup_addr, "bootstrap", Duration::from_secs(60), |s| {
        let r = &s.ranges[0];
        r.phase == "replicating" && r.bulk_syncs >= 1 && r.lag_ops == 0
    });

    // Phase 1 — a sequenced stream through the router, completed and
    // acknowledged. Keep the exact lines for the replay later.
    let mut reader = HttpClient::connect(router_addr).unwrap();
    let dots: lightor_platform::wire::DotsResponse = reader
        .get(&format!("/video/{vid}/dots"))
        .unwrap()
        .json()
        .unwrap();
    assert!(!dots.dots.is_empty());
    let far_ts = dots.dots.iter().fold(0.0f64, |m, d| m.max(d.at_seconds)) + 1000.0;

    const N_ACKED: u64 = 40;
    let mut lines: Vec<String> = (1..=N_ACKED)
        .map(|seq| {
            let dot_at = dots.dots[(seq as usize) % dots.dots.len()].at_seconds;
            refining_stream_line(vid, CLIENT, seq, dot_at)
        })
        .collect();

    let mut uploader = HttpClient::connect(router_addr).unwrap();
    uploader.start_chunked("POST", "/sessions/stream").unwrap();
    for line in &lines {
        uploader.send_chunk(line.as_bytes()).unwrap();
    }
    let resp = uploader
        .finish_chunked(Instant::now() + Duration::from_secs(60))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let ack: StreamAccepted = resp.json().unwrap();
    assert_eq!(ack.lines_accepted, N_ACKED);
    assert_eq!(ack.batches_folded, N_ACKED);
    assert_eq!(ack.last_seq, N_ACKED);
    assert!(ack.dots_refined > 0, "the acked stream must refine dots");

    // The acknowledged bytes, and the delta loop shipping them.
    let acked_resp = reader.get(&format!("/video/{vid}/dots")).unwrap();
    assert_eq!(acked_resp.status, 200);
    let acked_body = acked_resp.body_str().to_string();
    wait_supervisor(
        sup_addr,
        "delta convergence",
        Duration::from_secs(30),
        |s| {
            let r = &s.ranges[0];
            r.deltas_shipped >= 1 && r.lag_ops == 0 && r.synced_seq > 0
        },
    );

    // Phase 2 — a second stream is mid-flight when the shard dies. Its
    // tail batches are inert (plays outside every dot's neighborhood)
    // so the acknowledged dot bytes stay the ground truth regardless of
    // how far the victim got before the SIGKILL landed.
    const N_TAIL: u64 = 4;
    for seq in N_ACKED + 1..=N_ACKED + N_TAIL {
        lines.push(inert_stream_line(vid, CLIENT, seq, far_ts));
    }
    let mut cut = HttpClient::connect(router_addr).unwrap();
    cut.start_chunked("POST", "/sessions/stream").unwrap();
    for line in &lines[N_ACKED as usize..] {
        cut.send_chunk(line.as_bytes()).unwrap();
    }
    // SIGKILL the owning shard while the stream is open.
    drop(procs[victim].take());
    // Whatever comes back, it must not be a false 200 ack: the router
    // never retries a streamed write, so the client either sees the
    // relay error or a dead connection (an `Err` is equally not an
    // ack).
    if let Ok(resp) = cut.finish_chunked(Instant::now() + Duration::from_secs(15)) {
        assert!(
            resp.status >= 500,
            "a stream cut by the kill must not be acked: {} {}",
            resp.status,
            resp.body_str()
        );
    }

    // Promotion budget: within 5 s of the router marking the shard
    // down, the standby serves the acknowledged bytes.
    wait_backend_state(router_addr, victim_addr, "down", Duration::from_secs(20));
    let marked_down = Instant::now();
    let promoted_in = loop {
        let resp = reader.get(&format!("/video/{vid}/dots")).unwrap();
        if resp.status == 200 {
            assert_eq!(
                resp.body_str(),
                acked_body,
                "promoted standby lost or mutated acknowledged batches; supervisor: {:?}",
                supervisor_stats(sup_addr)
            );
            break marked_down.elapsed();
        }
        assert!(
            marked_down.elapsed() < Duration::from_secs(5),
            "standby not serving within 5s of down (last status {})",
            resp.status
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        promoted_in < Duration::from_secs(5),
        "promotion took {promoted_in:?}"
    );
    let hz = healthz(&mut reader);
    assert_eq!(hz.ring_version, 2);
    assert!(hz
        .backends
        .iter()
        .any(|b| b.addr == standby_addr.to_string()));

    // Phase 3 — the resume protocol: replay the whole session from
    // seq 1. The acknowledged prefix must be recognized by its
    // watermark (replicated with the state); the tail folds at most
    // once; nothing ever folds twice.
    let replay_body: String = lines.concat();
    let resp = reader.post_json("/sessions/stream", &replay_body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let ack: StreamAccepted = resp.json().unwrap();
    let total = N_ACKED + N_TAIL;
    assert_eq!(ack.lines_accepted, total);
    assert_eq!(ack.lines_rejected, 0, "{:?}", ack.rejected);
    assert_eq!(
        ack.batches_folded + ack.batches_replayed,
        total,
        "every batch folds or replays"
    );
    assert!(
        ack.batches_replayed >= N_ACKED,
        "acked batches must replay, not refold: {ack:?}"
    );
    assert_eq!(ack.last_seq, total);
    // Inert tail + replayed prefix: the acknowledged bytes still stand.
    let resp = reader.get(&format!("/video/{vid}/dots")).unwrap();
    assert_eq!(resp.body_str(), acked_body, "replay mutated dot state");

    // A second full replay is a pure no-op — the no-duplicates proof.
    let resp = reader.post_json("/sessions/stream", &replay_body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let ack: StreamAccepted = resp.json().unwrap();
    assert_eq!(ack.batches_replayed, total);
    assert_eq!(ack.batches_folded, 0);
    let resp = reader.get(&format!("/video/{vid}/dots")).unwrap();
    assert_eq!(resp.body_str(), acked_body, "second replay moved state");
}
