//! Supervisor chaos tests: a real `lightor-supervisor` process keeps a
//! warm standby in sync behind a real router and real backends, the
//! primary is SIGKILLed mid-load, and the supervisor promotes the
//! standby with **no operator action** — plus the
//! crash-between-delta-and-swap idempotency drill from the runbook.
//!
//! Asserts the control-plane contract end to end:
//!
//! * the delta loop converges (lag reaches zero) and keeps shipping as
//!   acknowledged writes land on the primary;
//! * after `kill -9` on the primary, the standby serves the range
//!   through a new ring version within 5 s of the router marking the
//!   shard down — with the acknowledged dots byte-identical;
//! * healthy shards never answer 5xx while the failover runs;
//! * exactly one promotion happens even when a supervisor crashes
//!   between the final delta and the ring swap and a fresh one resumes.

mod harness;

use harness::*;
use lightor_platform::wire::{DotsResponse, SupervisorStatsResponse};
use lightor_server::cluster::{Cluster, ClusterConfig};
use lightor_server::replicate::ReplicaPair;
use lightor_server::supervisor::{Phase, Supervisor, SupervisorConfig};
use lightor_server::HttpClient;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll the supervisor's `/stats` until `ok` accepts a snapshot.
fn wait_supervisor(
    sup: SocketAddr,
    what: &str,
    within: Duration,
    ok: impl Fn(&SupervisorStatsResponse) -> bool,
) -> SupervisorStatsResponse {
    let deadline = Instant::now() + within;
    loop {
        let stats = supervisor_stats(sup);
        if ok(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "supervisor never reached {what}: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn supervisor_promotes_a_killed_primary_unattended() {
    const SEED: u64 = 74;
    let dirs: Vec<TempDir> = ["p0", "p1", "standby"]
        .iter()
        .map(|tag| TempDir::new(tag))
        .collect();

    // Two ring backends + one standby (same seed → identical catalogs).
    let (p0, a0, catalog) = spawn_backend(&dirs[0].0, SEED, 0);
    let (p1, a1, _) = spawn_backend(&dirs[1].0, SEED, 0);
    let (_standby_proc, standby_addr, _) = spawn_backend(&dirs[2].0, SEED, 0);
    let addrs = vec![a0, a1];
    let (_router_proc, router_addr) = spawn_router(&addrs);

    // Same deterministic ring as the router: pick the shard owning the
    // catalog's first video as the victim the supervisor must replace.
    let ring = Cluster::new(ClusterConfig::new(addrs.clone()));
    let victim_vid = catalog[0];
    let victim = ring.shard_for(victim_vid);
    let victim_addr = addrs[victim];
    let mut procs = [Some(p0), Some(p1)];

    // The supervisor process watches the victim, replicating to the
    // standby, with the victim's data dir as the zero-loss final-delta
    // path. From here on the test issues NO admin calls — every bundle
    // and the ring swap are the supervisor's.
    let pair_spec = format!("{victim_addr},{standby_addr},{}", dirs[victim].0.display());
    let (_sup_proc, sup_addr) = spawn_supervisor(router_addr, &[pair_spec], 100);

    // Bootstrap: the standby gets its bulk seed and the lag converges.
    wait_supervisor(sup_addr, "bootstrap", Duration::from_secs(60), |s| {
        let r = &s.ranges[0];
        r.phase == "replicating" && r.bulk_syncs >= 1 && r.lag_ops == 0
    });

    // Acknowledged load on the victim's range, then wait for the delta
    // loop to ship it — continuous replication, observed via /stats.
    let mut client = HttpClient::connect(router_addr).unwrap();
    let acknowledged = refine_and_ack(&mut client, victim_vid);
    let acked_resp = client.get(&format!("/video/{victim_vid}/dots")).unwrap();
    assert_eq!(acked_resp.status, 200);
    let acked_body = acked_resp.body_str().to_string();
    wait_supervisor(
        sup_addr,
        "delta convergence",
        Duration::from_secs(30),
        |s| {
            let r = &s.ranges[0];
            r.deltas_shipped >= 1 && r.lag_ops == 0 && r.synced_seq > 0
        },
    );

    // Background load on the surviving shard: the failover must never
    // cost a healthy shard's reads a 5xx.
    let survivor_ids: Vec<u64> = (0..1000u64)
        .filter(|&v| ring.shard_for(v) != victim)
        .take(8)
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let loader = spawn_loader(router_addr, survivor_ids, stop.clone());

    // Chaos: SIGKILL the primary. Nobody touches the cluster now —
    // the supervisor must notice, ship the final delta from the dead
    // shard's data dir, and swap the ring on its own.
    drop(procs[victim].take());
    wait_backend_state(router_addr, victim_addr, "down", Duration::from_secs(20));
    let marked_down = Instant::now();

    // The promotion budget starts when the router marks the shard
    // down: within 5 s the standby must serve the victim's video
    // through a new ring, byte-identical to the acknowledged state.
    let promoted_in = loop {
        let resp = client.get(&format!("/video/{victim_vid}/dots")).unwrap();
        if resp.status == 200 {
            assert_eq!(
                resp.body_str(),
                acked_body,
                "promoted standby serves different bytes than were acknowledged"
            );
            break marked_down.elapsed();
        }
        assert!(
            marked_down.elapsed() < Duration::from_secs(5),
            "standby not serving within 5s of down (last status {})",
            resp.status
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        promoted_in < Duration::from_secs(5),
        "promotion took {promoted_in:?}"
    );
    let after: DotsResponse = serde_json::from_str(&acked_body).unwrap();
    assert_eq!(after, acknowledged);

    // The ring advanced exactly once: standby in, victim out.
    let hz = healthz(&mut client);
    assert_eq!(hz.ring_version, 2);
    assert!(hz
        .backends
        .iter()
        .any(|b| b.addr == standby_addr.to_string()));
    assert!(hz
        .backends
        .iter()
        .all(|b| b.addr != victim_addr.to_string()));

    // The supervisor's own account: one promotion, from the victim to
    // the standby, final delta rebuilt from the dead data dir.
    let stats = wait_supervisor(sup_addr, "promoted", Duration::from_secs(10), |s| {
        s.ranges[0].phase == "promoted"
    });
    assert_eq!(stats.promotions, 1);
    let promo = stats.last_promotion.expect("promotion recorded");
    assert_eq!(promo.from, victim_addr.to_string());
    assert_eq!(promo.to, standby_addr.to_string());
    assert_eq!(promo.ring_version, 2);
    assert_eq!(promo.final_delta_source, "data_dir");

    // Writes flow to the promoted standby immediately.
    let resp = client
        .post_json("/sessions", &refining_upload(victim_vid, 999, 10.0))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    // The standby earns healthy through the ordinary probe machine.
    wait_backend_state(
        router_addr,
        standby_addr,
        "healthy",
        Duration::from_secs(120),
    );

    stop.store(true, Ordering::Relaxed);
    let five_xx = loader.join().unwrap();
    assert!(
        five_xx.is_empty(),
        "healthy shard answered 5xx during the unattended failover: {five_xx:?}"
    );
}

#[test]
fn promotion_survives_a_supervisor_crash_between_delta_and_swap() {
    const SEED: u64 = 75;
    let dirs: Vec<TempDir> = ["ip", "io", "is"]
        .iter()
        .map(|tag| TempDir::new(tag))
        .collect();

    let (p0, a0, catalog) = spawn_backend(&dirs[0].0, SEED, 0);
    let (p1, a1, _) = spawn_backend(&dirs[1].0, SEED, 0);
    let (_standby_proc, standby_addr, _) = spawn_backend(&dirs[2].0, SEED, 0);
    let addrs = vec![a0, a1];
    let (_router_proc, router_addr) = spawn_router(&addrs);

    let ring = Cluster::new(ClusterConfig::new(addrs.clone()));
    let vid = catalog[0];
    let victim = ring.shard_for(vid);
    let victim_addr = addrs[victim];
    let mut procs = [Some(p0), Some(p1)];

    // In-process supervisors (manually ticked) so the test can crash
    // one at the exact worst moment: after the final delta shipped,
    // before the ring swap posted.
    let cfg = SupervisorConfig::new(
        router_addr,
        vec![ReplicaPair {
            primary: victim_addr,
            standby: standby_addr,
            primary_data_dir: Some(dirs[victim].0.clone()),
        }],
    );

    let sup1 = Supervisor::new(cfg.clone());
    let report = sup1.tick();
    assert!(report.observed && report.executed == 1, "{report:?}");
    assert_eq!(sup1.phase(0), Phase::Replicating);
    assert_eq!(sup1.stats().ranges[0].bulk_syncs, 1);

    // Acknowledged writes on the primary, shipped by the delta loop.
    let mut client = HttpClient::connect(router_addr).unwrap();
    let acknowledged = refine_and_ack(&mut client, vid);
    let report = sup1.tick();
    assert_eq!(report.executed, 1, "{report:?}");
    assert!(sup1.stats().ranges[0].deltas_shipped >= 1);

    // Kill the primary; wait for the router to walk it down.
    drop(procs[victim].take());
    wait_backend_state(router_addr, victim_addr, "down", Duration::from_secs(20));

    // sup1 runs ONLY the final delta, then "crashes" (dropped) before
    // it can post the ring swap. The live export fails against the
    // dead process, so the delta comes from the data dir (WAL tail =
    // every acknowledged write).
    assert_eq!(sup1.final_delta(0), "data_dir");
    assert_eq!(sup1.phase(0), Phase::Promoting);
    drop(sup1);

    // Nothing swapped yet: the ring still routes (and 503s) the dead
    // primary.
    let hz = healthz(&mut client);
    assert_eq!(hz.ring_version, 1);
    assert!(hz
        .backends
        .iter()
        .any(|b| b.addr == victim_addr.to_string()));

    // A fresh supervisor — empty ledger, no memory of sup1 — must
    // resume the promotion, not restart replication or double-swap.
    let sup2 = Supervisor::new(cfg);
    let report = sup2.tick();
    assert!(report.observed, "{report:?}");
    assert_eq!(report.executed, 1, "{report:?}");
    assert_eq!(sup2.phase(0), Phase::Promoted);

    // Exactly one promotion: the ring advanced 1 → 2, once.
    let hz = healthz(&mut client);
    assert_eq!(hz.ring_version, 2);
    assert!(hz
        .backends
        .iter()
        .any(|b| b.addr == standby_addr.to_string()));
    let stats = sup2.stats();
    assert_eq!(stats.promotions, 1);
    assert_eq!(
        stats.last_promotion.expect("recorded").final_delta_source,
        "data_dir"
    );

    // Further ticks are pure observation — no second swap, ever.
    for _ in 0..3 {
        let report = sup2.tick();
        assert_eq!(report.executed + report.failed, 0, "{report:?}");
    }
    assert_eq!(healthz(&mut client).ring_version, 2);
    assert_eq!(sup2.stats().promotions, 1);

    // Zero acknowledged loss through the resumed promotion.
    let resp = client.get(&format!("/video/{vid}/dots")).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let after: DotsResponse = resp.json().unwrap();
    assert_eq!(
        after, acknowledged,
        "acknowledged refinement state was lost across the supervisor crash"
    );
}
