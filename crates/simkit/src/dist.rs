//! Sampling helpers on top of `rand_distr`: truncated normals and
//! (optionally time-varying) Poisson event processes.

use rand::Rng;
use rand_distr::{Distribution, Exp, Normal, Poisson};

/// A normal distribution truncated to `[lo, hi]` by rejection sampling.
///
/// Used for viewer reaction delays and play offsets, which are bell-shaped
/// but physically bounded (a reaction delay cannot be negative).
#[derive(Clone, Copy, Debug)]
pub struct TruncNormal {
    normal: Normal<f64>,
    lo: f64,
    hi: f64,
}

impl TruncNormal {
    /// Build a truncated normal. Panics if `std <= 0`, `lo >= hi`, or the
    /// window `[lo, hi]` is more than 8 standard deviations away from the
    /// mean (rejection would practically never terminate).
    pub fn new(mean: f64, std: f64, lo: f64, hi: f64) -> Self {
        assert!(std > 0.0, "std must be positive");
        assert!(lo < hi, "lo must be < hi");
        assert!(
            mean - 8.0 * std <= hi && mean + 8.0 * std >= lo,
            "truncation window [{lo}, {hi}] unreachable from N({mean}, {std})"
        );
        TruncNormal {
            normal: Normal::new(mean, std).expect("validated parameters"),
            lo,
            hi,
        }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Rejection sampling; the assertion in `new` bounds the expected
        // number of iterations. Clamp is the fallback for pathological
        // parameter combinations (window far in one tail).
        for _ in 0..256 {
            let x = self.normal.sample(rng);
            if x >= self.lo && x <= self.hi {
                return x;
            }
        }
        self.normal.sample(rng).clamp(self.lo, self.hi)
    }
}

/// A (piecewise-constant-rate) Poisson event process over `[0, horizon)`.
///
/// Chat arrival in a live stream is bursty: a low background rate plus
/// short high-rate windows after in-game events. We generate arrivals by
/// exponential inter-arrival sampling with the rate in force at the current
/// time, which is exact for piecewise-constant rates when bursts are added
/// as separate processes (how `chatsim` uses this).
#[derive(Clone, Copy, Debug)]
pub struct PoissonProcess {
    /// Events per second.
    pub rate: f64,
}

impl PoissonProcess {
    /// A process with `rate` events per second. Panics if rate is negative
    /// or non-finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "rate must be >= 0");
        PoissonProcess { rate }
    }

    /// Sample all event times in `[start, end)`.
    pub fn sample_times<R: Rng + ?Sized>(&self, start: f64, end: f64, rng: &mut R) -> Vec<f64> {
        let mut out = Vec::new();
        if self.rate <= 0.0 || end <= start {
            return out;
        }
        let exp = Exp::new(self.rate).expect("positive rate");
        let mut t = start + exp.sample(rng);
        while t < end {
            out.push(t);
            t += exp.sample(rng);
        }
        out
    }

    /// Sample all event times in `[start, end)` in **arbitrary order**:
    /// draw the event count `N ~ Poisson(rate · len)` once, then `N`
    /// iid uniform positions — the order-statistics characterization of
    /// a homogeneous Poisson process, so the *set* of times has exactly
    /// the same distribution as [`PoissonProcess::sample_times`].
    ///
    /// This is the bulk-generation fast path: one count draw plus one
    /// cheap uniform per event, instead of one `ln` per inter-arrival
    /// gap. Use it when the consumer does not need the times sorted
    /// (e.g. the chat generator, which globally sorts its bump buffer
    /// once at the end).
    pub fn sample_times_unsorted<R: Rng + ?Sized>(
        &self,
        start: f64,
        end: f64,
        rng: &mut R,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        if self.rate <= 0.0 || end <= start {
            return;
        }
        let mean = self.rate * (end - start);
        let n = Poisson::new(mean).expect("positive mean").sample(rng) as usize;
        out.reserve(n);
        for _ in 0..n {
            out.push(uniform(rng, start, end));
        }
    }

    /// Expected number of events in a window of `len` seconds.
    pub fn expected_count(&self, len: f64) -> f64 {
        self.rate * len
    }
}

/// Sample an integer uniformly from `[lo, hi]` (inclusive).
pub fn uniform_int<R: Rng + ?Sized>(rng: &mut R, lo: i64, hi: i64) -> i64 {
    assert!(lo <= hi);
    rng.gen_range(lo..=hi)
}

/// Sample a uniform index in `[0, n)` from one 64-bit draw via
/// multiply-shift (`⌊x·n / 2⁶⁴⌋`) — branch- and division-free, the
/// draw-stream-defining idiom of the bulk generators (compiled-lexicon
/// picks, chatter selection). Panics if `n == 0`.
#[inline]
pub fn uniform_index<R: Rng + ?Sized>(rng: &mut R, n: usize) -> usize {
    assert!(n > 0, "uniform_index over an empty range");
    let x: u64 = rng.gen();
    (((x as u128) * (n as u128)) >> 64) as usize
}

/// Sample uniformly from `[lo, hi)`.
#[inline]
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo < hi, "uniform range must be non-empty");
    rng.gen_range(lo..hi)
}

/// Bernoulli draw with probability `p` (clamped into `[0, 1]`).
#[inline]
pub fn coin<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.gen_bool(p.clamp(0.0, 1.0))
}

/// Sample a log-uniform value in `[lo, hi]`: uniform in log-space.
///
/// Used for channel popularity, which spans orders of magnitude.
pub fn log_uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo > 0.0 && hi > lo);
    (rng.gen_range(lo.ln()..hi.ln())).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedTree;

    #[test]
    fn trunc_normal_respects_bounds() {
        let d = TruncNormal::new(20.0, 10.0, 0.0, 30.0);
        let mut rng = SeedTree::new(1).rng();
        for _ in 0..2000 {
            let x = d.sample(&mut rng);
            assert!((0.0..=30.0).contains(&x));
        }
    }

    #[test]
    fn trunc_normal_mean_is_close() {
        let d = TruncNormal::new(10.0, 2.0, 0.0, 20.0);
        let mut rng = SeedTree::new(2).rng();
        let n = 4000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "std must be positive")]
    fn trunc_normal_rejects_bad_std() {
        TruncNormal::new(0.0, 0.0, -1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn trunc_normal_rejects_unreachable_window() {
        TruncNormal::new(0.0, 1.0, 100.0, 101.0);
    }

    #[test]
    fn poisson_process_count_matches_rate() {
        let p = PoissonProcess::new(2.0);
        let mut rng = SeedTree::new(3).rng();
        let times = p.sample_times(0.0, 1000.0, &mut rng);
        let n = times.len() as f64;
        // Expect 2000 ± a few sigma (sigma ≈ 45).
        assert!((n - 2000.0).abs() < 200.0, "count {n}");
        // Sorted and in-range.
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|&t| (0.0..1000.0).contains(&t)));
    }

    #[test]
    fn unsorted_sampling_matches_process_statistics() {
        let p = PoissonProcess::new(2.0);
        let mut rng = SeedTree::new(9).rng();
        let mut times = Vec::new();
        p.sample_times_unsorted(0.0, 1000.0, &mut rng, &mut times);
        let n = times.len() as f64;
        assert!((n - 2000.0).abs() < 200.0, "count {n}");
        assert!(times.iter().all(|&t| (0.0..1000.0).contains(&t)));
        // Uniform positions: the mean should sit near the midpoint.
        let mean = times.iter().sum::<f64>() / n;
        assert!((mean - 500.0).abs() < 25.0, "mean position {mean}");
        // Degenerate windows and zero rates clear the buffer.
        p.sample_times_unsorted(10.0, 5.0, &mut rng, &mut times);
        assert!(times.is_empty());
        PoissonProcess::new(0.0).sample_times_unsorted(0.0, 10.0, &mut rng, &mut times);
        assert!(times.is_empty());
    }

    #[test]
    fn poisson_zero_rate_is_empty() {
        let p = PoissonProcess::new(0.0);
        let mut rng = SeedTree::new(4).rng();
        assert!(p.sample_times(0.0, 100.0, &mut rng).is_empty());
        assert_eq!(p.expected_count(50.0), 0.0);
    }

    #[test]
    fn poisson_empty_window() {
        let p = PoissonProcess::new(5.0);
        let mut rng = SeedTree::new(5).rng();
        assert!(p.sample_times(10.0, 10.0, &mut rng).is_empty());
        assert!(p.sample_times(10.0, 5.0, &mut rng).is_empty());
    }

    #[test]
    fn helpers_in_range() {
        let mut rng = SeedTree::new(6).rng();
        for _ in 0..500 {
            let u = uniform(&mut rng, 2.0, 3.0);
            assert!((2.0..3.0).contains(&u));
            let i = uniform_int(&mut rng, -2, 2);
            assert!((-2..=2).contains(&i));
            let l = log_uniform(&mut rng, 10.0, 1000.0);
            assert!((10.0..=1000.0).contains(&l));
        }
    }

    #[test]
    fn coin_probability() {
        let mut rng = SeedTree::new(7).rng();
        let heads = (0..4000).filter(|_| coin(&mut rng, 0.25)).count();
        assert!((heads as f64 - 1000.0).abs() < 150.0, "heads {heads}");
        assert!(!coin(&mut rng, 0.0));
        assert!(coin(&mut rng, 1.0));
    }

    #[test]
    fn log_uniform_covers_orders_of_magnitude() {
        let mut rng = SeedTree::new(8).rng();
        let lo_decade = (0..2000)
            .map(|_| log_uniform(&mut rng, 1.0, 1000.0))
            .filter(|&x| x < 10.0)
            .count();
        // Uniform in log-space: each decade gets ~1/3 of the mass.
        assert!((lo_decade as f64 - 666.0).abs() < 120.0, "{lo_decade}");
    }
}
