//! Hierarchical deterministic randomness.
//!
//! A [`SeedTree`] derives child seeds from a root seed and a label path
//! using an FNV-1a style mix. The derivation is stable across runs and
//! platforms, so experiment results are reproducible bit-for-bit given the
//! root seed, while different labels (e.g. `"chat"/video-17` vs
//! `"crowd"/video-17`) get independent streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG used throughout the workspace.
pub type SimRng = StdRng;

/// A node in the deterministic seed-derivation tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedTree {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn mix_bytes(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Final avalanche (splitmix64) so low-entropy paths still spread over the
/// full 64-bit space before seeding the RNG.
fn finalize(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SeedTree {
    /// Root of a new tree.
    pub fn new(root_seed: u64) -> Self {
        SeedTree {
            state: mix_bytes(FNV_OFFSET, &root_seed.to_le_bytes()),
        }
    }

    /// Child node labelled by a string.
    pub fn child(&self, label: &str) -> SeedTree {
        // 0xFF never occurs in UTF-8, so it unambiguously terminates the
        // label: child("ab") and child("a").child("b") stay distinct.
        let mixed = mix_bytes(self.state, label.as_bytes());
        SeedTree {
            state: mix_bytes(mixed, &[0xFF]),
        }
    }

    /// Child node labelled by an index (e.g. video number, worker number).
    pub fn index(&self, i: u64) -> SeedTree {
        SeedTree {
            state: mix_bytes(self.state ^ 0xa5a5_a5a5_a5a5_a5a5, &i.to_le_bytes()),
        }
    }

    /// The derived 64-bit seed of this node.
    pub fn seed(&self) -> u64 {
        finalize(self.state)
    }

    /// Instantiate the RNG for this node.
    pub fn rng(&self) -> SimRng {
        StdRng::seed_from_u64(self.seed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_path_same_stream() {
        let a = SeedTree::new(42).child("chat").index(3);
        let b = SeedTree::new(42).child("chat").index(3);
        let xs: Vec<u32> = a
            .rng()
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let ys: Vec<u32> = b
            .rng()
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_labels_different_streams() {
        let root = SeedTree::new(42);
        assert_ne!(root.child("chat").seed(), root.child("crowd").seed());
        assert_ne!(root.index(0).seed(), root.index(1).seed());
        assert_ne!(SeedTree::new(1).seed(), SeedTree::new(2).seed());
    }

    #[test]
    fn order_of_derivation_matters() {
        let root = SeedTree::new(7);
        assert_ne!(
            root.child("a").child("b").seed(),
            root.child("b").child("a").seed()
        );
        assert_ne!(root.child("ab").seed(), root.child("a").child("b").seed());
    }

    #[test]
    fn seeds_are_well_spread_for_sequential_indices() {
        // Consecutive indices must not produce correlated seeds.
        let root = SeedTree::new(0);
        let mut seeds: Vec<u64> = (0..64).map(|i| root.index(i).seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64);
        // Top bytes should vary, not just low bits.
        let top: std::collections::HashSet<u8> = seeds.iter().map(|s| (s >> 56) as u8).collect();
        assert!(top.len() > 16, "top bytes too clustered: {}", top.len());
    }
}
