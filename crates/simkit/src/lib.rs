//! Deterministic simulation substrate for the LIGHTOR reproduction.
//!
//! Everything stochastic in this workspace (chat generation, viewer
//! behaviour, model initialization) draws randomness through [`SeedTree`],
//! a hierarchical deterministic seed derivation scheme: the same root seed
//! always reproduces the same experiment, and sibling components get
//! statistically independent streams.
//!
//! The `stats` module provides the numerical machinery the paper's methods
//! and baselines rely on: descriptive statistics, binned histograms,
//! smoothing kernels, peak/turning-point detection and empirical CDFs.

#![warn(missing_docs)]

pub mod dist;
pub mod rng;
pub mod stats;

pub use dist::{PoissonProcess, TruncNormal};
pub use rng::{SeedTree, SimRng};
pub use stats::cdf::Ecdf;
pub use stats::descriptive::{self, mean, median, quantile, std_dev, variance};
pub use stats::histogram::Histogram;
pub use stats::online::OnlineStats;
pub use stats::peaks::{argmax, local_maxima, peaks_min_separation, turning_points};
pub use stats::smoothing::{gaussian_smooth, moving_average};
