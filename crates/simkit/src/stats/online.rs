//! Streaming mean/variance (Welford), used by the platform layer to keep
//! running statistics over interaction streams without buffering them.

use serde::{Deserialize, Serialize};

/// Welford online accumulator for count, mean and variance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Population variance; `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Population standard deviation; `None` when empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::descriptive;
    use proptest::prelude::*;

    #[test]
    fn matches_batch_statistics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), Some(5.0));
        assert!((s.variance().unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_yields_none() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn merge_empty_cases() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.mean(), Some(3.0));
        let empty = OnlineStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    proptest! {
        #[test]
        fn merge_equals_concatenation(
            xs in proptest::collection::vec(-100.0..100.0f64, 1..32),
            ys in proptest::collection::vec(-100.0..100.0f64, 1..32),
        ) {
            let mut a = OnlineStats::new();
            for &x in &xs { a.push(x); }
            let mut b = OnlineStats::new();
            for &y in &ys { b.push(y); }
            a.merge(&b);

            let all: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
            prop_assert!((a.mean().unwrap() - descriptive::mean(&all).unwrap()).abs() < 1e-9);
            prop_assert!((a.variance().unwrap() - descriptive::variance(&all).unwrap()).abs() < 1e-7);
            prop_assert_eq!(a.count(), all.len() as u64);
        }
    }
}
