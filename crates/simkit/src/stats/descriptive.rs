//! Descriptive statistics over `f64` slices.
//!
//! The Highlight Extractor aggregates play boundaries with the *median*
//! because it is robust to outliers (paper Section V-A); the experiment
//! harness reports means and quantiles throughout.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance; `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation; `None` for an empty slice.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Median (average of the two central order statistics for even length);
/// `None` for an empty slice.
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    if n % 2 == 1 {
        Some(v[n / 2])
    } else {
        Some((v[n / 2 - 1] + v[n / 2]) * 0.5)
    }
}

/// Linear-interpolation quantile, `q` in `[0, 1]`; `None` for an empty
/// slice. `q = 0.5` agrees with [`median`].
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(v[lo])
    } else {
        let frac = pos - lo as f64;
        Some(v[lo] * (1.0 - frac) + v[hi] * frac)
    }
}

/// Minimum by total order; `None` for an empty slice.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().min_by(|a, b| a.total_cmp(b))
}

/// Maximum by total order; `None` for an empty slice.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(|a, b| a.total_cmp(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert_eq!(variance(&xs), Some(4.0));
        assert_eq!(std_dev(&xs), Some(2.0));
    }

    #[test]
    fn empty_inputs_yield_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[5.0]), Some(5.0));
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.5), median(&xs));
        assert_eq!(quantile(&xs, 1.5), None);
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        // The design rationale for median aggregation in the Extractor.
        let clean = [10.0, 11.0, 12.0, 13.0, 14.0];
        let dirty = [10.0, 11.0, 12.0, 13.0, 1e6];
        assert_eq!(median(&clean), Some(12.0));
        assert_eq!(median(&dirty), Some(12.0));
        assert!(mean(&dirty).unwrap() > 1000.0);
    }

    proptest! {
        #[test]
        fn median_between_min_and_max(xs in proptest::collection::vec(-1e6..1e6f64, 1..64)) {
            let m = median(&xs).unwrap();
            prop_assert!(m >= min(&xs).unwrap() && m <= max(&xs).unwrap());
        }

        #[test]
        fn quantiles_are_monotone(xs in proptest::collection::vec(-1e6..1e6f64, 1..64)) {
            let q25 = quantile(&xs, 0.25).unwrap();
            let q50 = quantile(&xs, 0.50).unwrap();
            let q75 = quantile(&xs, 0.75).unwrap();
            prop_assert!(q25 <= q50 && q50 <= q75);
        }

        #[test]
        fn mean_shift_invariance(xs in proptest::collection::vec(-1e3..1e3f64, 1..32), c in -100.0..100.0f64) {
            let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
            let lhs = mean(&shifted).unwrap();
            let rhs = mean(&xs).unwrap() + c;
            prop_assert!((lhs - rhs).abs() < 1e-6);
        }
    }
}
