//! Curve smoothing for binned event series.
//!
//! Both baselines (SocialSkip, Moocer) and the paper's own Figure 2a smooth
//! the raw histogram before peak detection; otherwise every chat flurry of
//! two messages becomes a local maximum.

/// Centered moving average with window `2*radius + 1`, edges averaged over
/// the available neighbourhood (no padding bias).
pub fn moving_average(xs: &[f64], radius: usize) -> Vec<f64> {
    if xs.is_empty() || radius == 0 {
        return xs.to_vec();
    }
    let n = xs.len();
    let mut out = Vec::with_capacity(n);
    // Prefix sums give O(n) smoothing regardless of radius.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &x in xs {
        prefix.push(prefix.last().unwrap() + x);
    }
    for i in 0..n {
        let lo = i.saturating_sub(radius);
        let hi = (i + radius + 1).min(n);
        out.push((prefix[hi] - prefix[lo]) / (hi - lo) as f64);
    }
    out
}

/// Gaussian kernel smoothing with standard deviation `sigma` (in bins).
/// The kernel is truncated at 3 sigma and renormalized at the edges so the
/// smoothed series preserves total mass up to numerical error.
pub fn gaussian_smooth(xs: &[f64], sigma: f64) -> Vec<f64> {
    if xs.is_empty() || sigma <= 0.0 {
        return xs.to_vec();
    }
    let radius = (3.0 * sigma).ceil() as usize;
    let kernel: Vec<f64> = (0..=radius)
        .map(|d| (-0.5 * (d as f64 / sigma).powi(2)).exp())
        .collect();
    let n = xs.len();
    let mut out = vec![0.0; n];
    for i in 0..n {
        let mut acc = 0.0;
        let mut norm = 0.0;
        let lo = i.saturating_sub(radius);
        let hi = (i + radius).min(n - 1);
        for j in lo..=hi {
            let w = kernel[i.abs_diff(j)];
            acc += xs[j] * w;
            norm += w;
        }
        out[i] = acc / norm;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn moving_average_flattens_spike() {
        let xs = [0.0, 0.0, 9.0, 0.0, 0.0];
        let sm = moving_average(&xs, 1);
        assert_eq!(sm, vec![0.0, 3.0, 3.0, 3.0, 0.0]);
    }

    #[test]
    fn moving_average_radius_zero_is_identity() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(moving_average(&xs, 0), xs.to_vec());
        assert!(moving_average(&[], 3).is_empty());
    }

    #[test]
    fn moving_average_constant_is_unchanged() {
        let xs = [4.0; 10];
        assert!(moving_average(&xs, 3)
            .iter()
            .all(|&x| (x - 4.0).abs() < 1e-12));
    }

    #[test]
    fn gaussian_preserves_constant() {
        let xs = [2.0; 16];
        let sm = gaussian_smooth(&xs, 2.0);
        assert!(sm.iter().all(|&x| (x - 2.0).abs() < 1e-9));
    }

    #[test]
    fn gaussian_peak_stays_at_peak() {
        let mut xs = vec![0.0; 21];
        xs[10] = 10.0;
        let sm = gaussian_smooth(&xs, 1.5);
        let max_i = sm
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_i, 10);
        assert!(sm[10] < 10.0);
        assert!(sm[8] > 0.0);
    }

    #[test]
    fn gaussian_sigma_zero_is_identity() {
        let xs = [1.0, 5.0, 2.0];
        assert_eq!(gaussian_smooth(&xs, 0.0), xs.to_vec());
    }

    proptest! {
        #[test]
        fn smoothing_stays_within_bounds(
            xs in proptest::collection::vec(0.0..100.0f64, 1..64),
            radius in 0usize..8,
        ) {
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for &y in &moving_average(&xs, radius) {
                prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
            }
            for &y in &gaussian_smooth(&xs, radius as f64) {
                prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
            }
        }

        #[test]
        fn moving_average_equals_naive(
            xs in proptest::collection::vec(-10.0..10.0f64, 1..40),
            radius in 1usize..6,
        ) {
            let fast = moving_average(&xs, radius);
            for (i, f) in fast.iter().enumerate() {
                let lo = i.saturating_sub(radius);
                let hi = (i + radius + 1).min(xs.len());
                let naive: f64 = xs[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
                prop_assert!((f - naive).abs() < 1e-9);
            }
        }
    }
}
