//! Numerical statistics used by the generators, the LIGHTOR core and the
//! baselines: descriptive summaries, binned histograms, smoothing kernels,
//! peak detection and empirical CDFs.

pub mod cdf;
pub mod descriptive;
pub mod histogram;
pub mod online;
pub mod peaks;
pub mod smoothing;
