//! Empirical cumulative distribution functions.
//!
//! Section VII-D of the paper plots the CDF of chat messages per hour and
//! of viewer counts across recorded videos to argue LIGHTOR's
//! applicability; [`Ecdf`] is that plot's data structure.

use serde::{Deserialize, Serialize};

/// An empirical CDF over a finite sample.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample (order irrelevant; NaNs rejected).
    pub fn new(mut xs: Vec<f64>) -> Self {
        assert!(xs.iter().all(|x| !x.is_nan()), "NaN in ECDF sample");
        xs.sort_by(|a, b| a.total_cmp(b));
        Ecdf { sorted: xs }
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`: fraction of the sample at or below `x`.
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let cnt = self.sorted.partition_point(|&v| v <= x);
        cnt as f64 / self.sorted.len() as f64
    }

    /// `P(X >= x)`: fraction of the sample at or above `x`.
    pub fn fraction_ge(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let below = self.sorted.partition_point(|&v| v < x);
        (self.sorted.len() - below) as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile of the sample (nearest-rank). `None` when empty or
    /// `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// The (x, F(x)) step points for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }

    /// Evaluate the CDF at a fixed grid of `x` values (for table output).
    pub fn evaluate_at(&self, grid: &[f64]) -> Vec<(f64, f64)> {
        grid.iter().map(|&x| (x, self.fraction_le(x))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fractions() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.fraction_le(0.5), 0.0);
        assert_eq!(e.fraction_le(2.0), 0.5);
        assert_eq!(e.fraction_le(10.0), 1.0);
        assert_eq!(e.fraction_ge(3.0), 0.5);
        assert_eq!(e.fraction_ge(0.0), 1.0);
        assert_eq!(e.fraction_ge(4.5), 0.0);
    }

    #[test]
    fn empty_sample() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.fraction_le(1.0), 0.0);
        assert_eq!(e.fraction_ge(1.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.quantile(0.0), Some(10.0));
        assert_eq!(e.quantile(0.2), Some(10.0));
        assert_eq!(e.quantile(0.5), Some(30.0));
        assert_eq!(e.quantile(1.0), Some(50.0));
        assert_eq!(e.quantile(1.1), None);
    }

    #[test]
    fn points_step_up_to_one() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]);
        let pts = e.points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (1.0, 1.0 / 3.0));
        assert_eq!(pts[2], (3.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Ecdf::new(vec![1.0, f64::NAN]);
    }

    proptest! {
        #[test]
        fn cdf_is_monotone(xs in proptest::collection::vec(-100.0..100.0f64, 1..64)) {
            let e = Ecdf::new(xs);
            let mut prev = 0.0;
            for x in (-110..=110).map(|i| i as f64) {
                let f = e.fraction_le(x);
                prop_assert!(f >= prev - 1e-12);
                prop_assert!((0.0..=1.0).contains(&f));
                prev = f;
            }
        }

        #[test]
        fn le_and_ge_cover(xs in proptest::collection::vec(-100.0..100.0f64, 1..64), x in -100.0..100.0f64) {
            let e = Ecdf::new(xs.clone());
            let exact = xs.iter().filter(|&&v| v == x).count() as f64 / xs.len() as f64;
            let lhs = e.fraction_le(x) + e.fraction_ge(x);
            prop_assert!((lhs - (1.0 + exact)).abs() < 1e-9);
        }
    }
}
