//! Peak and turning-point detection on smoothed series.
//!
//! The Highlight Initializer finds the message-count peak inside each
//! predicted window; SocialSkip and Moocer find local maxima of their
//! interest curves; Moocer additionally walks outward to *turning points*
//! to decide highlight boundaries.

/// Index of the maximum element (first on ties); `None` when empty.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)
}

/// Indices of strict local maxima; plateaus report their first index.
///
/// An index `i` is a local maximum when `xs[i]` is greater than the nearest
/// differing neighbour on each side (edges count as lower). A constant
/// series has no local maxima.
pub fn local_maxima(xs: &[f64]) -> Vec<usize> {
    let n = xs.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        // Find plateau [i, j).
        let mut j = i + 1;
        while j < n && xs[j] == xs[i] {
            j += 1;
        }
        let left_lower = i == 0 || xs[i - 1] < xs[i];
        let right_lower = j == n || xs[j] < xs[i];
        // Edge plateaus only count when they strictly dominate the one
        // existing side; an all-constant series has no maxima.
        let is_peak = match (i == 0, j == n) {
            (true, true) => false,
            (true, false) => right_lower,
            (false, true) => left_lower,
            (false, false) => left_lower && right_lower,
        };
        if is_peak {
            out.push(i);
        }
        i = j;
    }
    out
}

/// Local maxima, greedily filtered so that selected peaks are at least
/// `min_sep` indices apart, preferring higher peaks.
///
/// This is the same separation rule the Initializer applies to red dots
/// (paper Section IV-A: no two dots within δ).
pub fn peaks_min_separation(xs: &[f64], min_sep: usize) -> Vec<usize> {
    let mut candidates = local_maxima(xs);
    // Highest first; stable on ties by index.
    candidates.sort_by(|&a, &b| xs[b].total_cmp(&xs[a]).then(a.cmp(&b)));
    let mut chosen: Vec<usize> = Vec::new();
    for c in candidates {
        if chosen.iter().all(|&p| c.abs_diff(p) >= min_sep) {
            chosen.push(c);
        }
    }
    chosen.sort_unstable();
    chosen
}

/// The nearest indices left and right of `peak` where the series stops
/// falling (first derivative changes sign), i.e. Moocer's turning points.
/// Returns `(left, right)`; either side defaults to the series edge.
pub fn turning_points(xs: &[f64], peak: usize) -> (usize, usize) {
    assert!(peak < xs.len(), "peak index out of bounds");
    let mut left = peak;
    while left > 0 && xs[left - 1] < xs[left] {
        left -= 1;
    }
    let mut right = peak;
    while right + 1 < xs.len() && xs[right + 1] < xs[right] {
        right += 1;
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn argmax_basic() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
    }

    #[test]
    fn local_maxima_simple() {
        //                0    1    2    3    4    5    6
        let xs = [0.0, 2.0, 1.0, 3.0, 0.0, 1.0, 0.5];
        assert_eq!(local_maxima(&xs), vec![1, 3, 5]);
    }

    #[test]
    fn local_maxima_plateau() {
        let xs = [0.0, 2.0, 2.0, 2.0, 1.0];
        assert_eq!(local_maxima(&xs), vec![1]);
    }

    #[test]
    fn local_maxima_edges() {
        assert_eq!(local_maxima(&[3.0, 1.0, 2.0]), vec![0, 2]);
        assert_eq!(local_maxima(&[1.0, 1.0, 1.0]), Vec::<usize>::new());
        assert_eq!(local_maxima(&[1.0]), Vec::<usize>::new());
        assert_eq!(local_maxima(&[]), Vec::<usize>::new());
    }

    #[test]
    fn separation_prefers_higher_peaks() {
        //            0    1    2    3    4    5    6    7    8
        let xs = [0.0, 5.0, 0.0, 4.0, 0.0, 0.0, 0.0, 3.0, 0.0];
        // peaks at 1 (5.0), 3 (4.0), 7 (3.0); min_sep 3 drops index 3.
        assert_eq!(peaks_min_separation(&xs, 3), vec![1, 7]);
        // min_sep 1 keeps everything.
        assert_eq!(peaks_min_separation(&xs, 1), vec![1, 3, 7]);
    }

    #[test]
    fn turning_points_walk_to_valleys() {
        //            0    1    2    3    4    5    6
        let xs = [5.0, 1.0, 2.0, 6.0, 3.0, 2.0, 4.0];
        assert_eq!(turning_points(&xs, 3), (1, 5));
    }

    #[test]
    fn turning_points_at_edges() {
        let xs = [3.0, 2.0, 1.0];
        assert_eq!(turning_points(&xs, 0), (0, 2));
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(turning_points(&ys, 2), (0, 2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn turning_points_bounds_check() {
        turning_points(&[1.0], 1);
    }

    proptest! {
        #[test]
        fn maxima_are_at_least_neighbour_high(xs in proptest::collection::vec(0.0..10.0f64, 2..64)) {
            for &i in &local_maxima(&xs) {
                if i > 0 {
                    prop_assert!(xs[i - 1] <= xs[i]);
                }
                if i + 1 < xs.len() {
                    prop_assert!(xs[i + 1] <= xs[i]);
                }
            }
        }

        #[test]
        fn separated_peaks_respect_min_sep(
            xs in proptest::collection::vec(0.0..10.0f64, 2..64),
            sep in 1usize..10,
        ) {
            let peaks = peaks_min_separation(&xs, sep);
            for w in peaks.windows(2) {
                prop_assert!(w[1] - w[0] >= sep);
            }
        }

        #[test]
        fn turning_points_bracket_peak(xs in proptest::collection::vec(0.0..10.0f64, 1..64)) {
            if let Some(p) = argmax(&xs) {
                let (l, r) = turning_points(&xs, p);
                prop_assert!(l <= p && p <= r);
            }
        }
    }
}
