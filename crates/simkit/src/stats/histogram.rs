//! Uniform-bin histograms over a fixed interval.
//!
//! The naive highlight detector (paper Figure 2a), SocialSkip and Moocer
//! all operate on binned time-series of events; this type is their shared
//! representation.

use serde::{Deserialize, Serialize};

/// A histogram with `bins` equal-width bins covering `[lo, hi)`.
///
/// Values are `f64` weights, so the same type serves message counts
/// (weight 1 per message) and SocialSkip's signed ±1 interest votes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<f64>,
}

impl Histogram {
    /// An all-zero histogram. Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "empty histogram domain");
        Histogram {
            lo,
            hi,
            counts: vec![0.0; bins],
        }
    }

    /// Build with a fixed bin width; the last bin may extend past `hi`.
    pub fn with_bin_width(lo: f64, hi: f64, width: f64) -> Self {
        assert!(width > 0.0);
        let bins = (((hi - lo) / width).ceil() as usize).max(1);
        Histogram::new(lo, lo + bins as f64 * width, bins)
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Lower bound of the domain.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the domain.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Index of the bin containing `x`, if in range. The upper edge `hi`
    /// is folded into the last bin so closed domains are convenient.
    pub fn bin_index(&self, x: f64) -> Option<usize> {
        if !x.is_finite() || x < self.lo || x > self.hi {
            return None;
        }
        let idx = ((x - self.lo) / self.bin_width()) as usize;
        Some(idx.min(self.counts.len() - 1))
    }

    /// Add weight 1 at `x` (ignored when out of range).
    pub fn add(&mut self, x: f64) {
        self.add_weighted(x, 1.0);
    }

    /// Add `w` at `x` (ignored when out of range).
    pub fn add_weighted(&mut self, x: f64, w: f64) {
        if let Some(i) = self.bin_index(x) {
            self.counts[i] += w;
        }
    }

    /// Add `w` spread uniformly across the bins overlapped by `[a, b]`,
    /// proportional to overlap. Used by Moocer to credit play ranges.
    pub fn add_range(&mut self, a: f64, b: f64, w_per_sec: f64) {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let width = self.bin_width();
        for (i, c) in self.counts.iter_mut().enumerate() {
            let bin_lo = self.lo + i as f64 * width;
            let bin_hi = bin_lo + width;
            let ov = (b.min(bin_hi) - a.max(bin_lo)).max(0.0);
            *c += ov * w_per_sec;
        }
    }

    /// The raw bin weights.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Center position of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Bin weights normalized to a probability density (integrates to 1).
    /// Returns zeros when the histogram is empty.
    pub fn density(&self) -> Vec<f64> {
        let total = self.total();
        if total <= 0.0 {
            return vec![0.0; self.counts.len()];
        }
        let norm = total * self.bin_width();
        self.counts.iter().map(|c| c / norm).collect()
    }

    /// Index of the highest bin; `None` if all zero. Ties resolve to the
    /// **last** tied bin (`Iterator::max_by` keeps the latest maximum) —
    /// relied upon by the incremental peak pass in `lightor::corpus`.
    pub fn peak_bin(&self) -> Option<usize> {
        let (idx, &val) = self
            .counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))?;
        (val > 0.0).then_some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_places_in_correct_bin() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.0);
        h.add(0.5);
        h.add(9.99);
        h.add(10.0); // upper edge folds into last bin
        h.add(-0.1); // ignored
        h.add(10.1); // ignored
        assert_eq!(h.counts()[0], 2.0);
        assert_eq!(h.counts()[9], 2.0);
        assert_eq!(h.total(), 4.0);
    }

    #[test]
    fn bin_width_and_centers() {
        let h = Histogram::new(0.0, 100.0, 10);
        assert_eq!(h.bin_width(), 10.0);
        assert_eq!(h.bin_center(0), 5.0);
        assert_eq!(h.bin_center(9), 95.0);
    }

    #[test]
    fn with_bin_width_covers_domain() {
        let h = Histogram::with_bin_width(0.0, 95.0, 10.0);
        assert_eq!(h.bins(), 10);
        assert_eq!(h.hi(), 100.0);
    }

    #[test]
    fn add_range_distributes_proportionally() {
        let mut h = Histogram::new(0.0, 30.0, 3);
        h.add_range(5.0, 25.0, 1.0);
        assert_eq!(h.counts()[0], 5.0);
        assert_eq!(h.counts()[1], 10.0);
        assert_eq!(h.counts()[2], 5.0);
    }

    #[test]
    fn add_range_swapped_endpoints() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.add_range(8.0, 2.0, 1.0);
        assert_eq!(h.counts()[0], 3.0);
        assert_eq!(h.counts()[1], 3.0);
    }

    #[test]
    fn density_integrates_to_one() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for i in 0..20 {
            h.add(i as f64 * 0.5);
        }
        let sum: f64 = h.density().iter().map(|d| d * h.bin_width()).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn density_of_empty_histogram_is_zero() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.density().iter().all(|&d| d == 0.0));
        assert_eq!(h.peak_bin(), None);
    }

    #[test]
    fn peak_bin_finds_max() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.add_weighted(0.5, 1.0);
        h.add_weighted(2.5, 5.0);
        assert_eq!(h.peak_bin(), Some(2));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    proptest! {
        #[test]
        fn mass_is_conserved(points in proptest::collection::vec(0.0..100.0f64, 0..200)) {
            let mut h = Histogram::new(0.0, 100.0, 17);
            for &p in &points {
                h.add(p);
            }
            prop_assert!((h.total() - points.len() as f64).abs() < 1e-9);
        }

        #[test]
        fn bin_index_round_trips(x in 0.0..100.0f64) {
            let h = Histogram::new(0.0, 100.0, 23);
            let i = h.bin_index(x).unwrap();
            let c = h.bin_center(i);
            prop_assert!((x - c).abs() <= h.bin_width() / 2.0 + 1e-9);
        }

        #[test]
        fn add_range_mass_equals_length(a in 0.0..100.0f64, b in 0.0..100.0f64) {
            let mut h = Histogram::new(0.0, 100.0, 20);
            h.add_range(a, b, 1.0);
            prop_assert!((h.total() - (a - b).abs()).abs() < 1e-6);
        }
    }
}
