//! Viewer interaction data: raw player events, sessions, and the derived
//! play records that the Highlight Extractor consumes.

use crate::chat::UserId;
use crate::time::{Sec, TimeRange};
use serde::{Deserialize, Serialize};

/// A raw event emitted by the video player while a viewer watches.
///
/// `video_ts` is always a position in *video* time; the wall-clock ordering
/// of events within a session is their vector order.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Interaction {
    /// Playback started (or resumed) at this video position.
    Play {
        /// Position where playback started.
        video_ts: Sec,
    },
    /// Playback paused at this video position.
    Pause {
        /// Position where playback stopped.
        video_ts: Sec,
    },
    /// The viewer dragged the progress bar forward.
    SeekForward {
        /// Playhead position before the drag.
        from: Sec,
        /// Playhead position after the drag.
        to: Sec,
    },
    /// The viewer dragged the progress bar backward.
    SeekBackward {
        /// Playhead position before the drag.
        from: Sec,
        /// Playhead position after the drag.
        to: Sec,
    },
    /// The viewer closed the player at this position.
    Leave {
        /// Position when the tab closed.
        video_ts: Sec,
    },
}

impl Interaction {
    /// The video position after this event takes effect.
    pub fn position_after(&self) -> Sec {
        match *self {
            Interaction::Play { video_ts }
            | Interaction::Pause { video_ts }
            | Interaction::Leave { video_ts } => video_ts,
            Interaction::SeekForward { to, .. } | Interaction::SeekBackward { to, .. } => to,
        }
    }
}

/// One viewer's interaction trace for one video (ordered events).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Session {
    /// The viewer.
    pub user: UserId,
    /// Player events in wall-clock order.
    pub events: Vec<Interaction>,
}

impl Session {
    /// Create a session for `user` from ordered events.
    pub fn new(user: UserId, events: Vec<Interaction>) -> Self {
        Session { user, events }
    }

    /// Derive play records: maximal contiguous watched stretches.
    ///
    /// A play starts at a `Play` event (or at the landing point of a seek
    /// while playing) and ends at the next `Pause`, seek, or `Leave`.
    /// Zero-length or backwards stretches are dropped — they carry no
    /// information about what the viewer actually watched.
    pub fn plays(&self) -> Vec<Play> {
        let mut plays = Vec::new();
        let mut playing_from: Option<Sec> = None;
        for ev in &self.events {
            match *ev {
                Interaction::Play { video_ts } => {
                    // A second Play while playing restarts the stretch.
                    playing_from = Some(video_ts);
                }
                Interaction::Pause { video_ts } | Interaction::Leave { video_ts } => {
                    if let Some(s) = playing_from.take() {
                        if video_ts.0 > s.0 {
                            plays.push(Play::new(self.user, s, video_ts));
                        }
                    }
                }
                Interaction::SeekForward { from, to } | Interaction::SeekBackward { from, to } => {
                    if let Some(s) = playing_from.take() {
                        if from.0 > s.0 {
                            plays.push(Play::new(self.user, s, from));
                        }
                        // Seeking while playing continues playback at `to`.
                        playing_from = Some(to);
                    }
                }
            }
        }
        // An unterminated trailing stretch is ignored: we never observed its end.
        plays
    }
}

/// A play record `⟨user, play(s, e)⟩`: the viewer watched `[s, e]`
/// contiguously (paper Section V-A).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Play {
    /// Who watched.
    pub user: UserId,
    /// The contiguously watched interval.
    pub range: TimeRange,
}

impl Play {
    /// Construct a play record; endpoints are normalized to `start <= end`.
    pub fn new(user: UserId, start: Sec, end: Sec) -> Self {
        Play {
            user,
            range: TimeRange::new(start, end),
        }
    }

    /// Construct from raw seconds with an anonymous user.
    pub fn from_secs(start: f64, end: f64) -> Self {
        Play::new(UserId(0), Sec(start), Sec(end))
    }

    /// Watched duration.
    pub fn duration(&self) -> Sec {
        self.range.duration()
    }

    /// Start position.
    pub fn start(&self) -> Sec {
        self.range.start
    }

    /// End position.
    pub fn end(&self) -> Sec {
        self.range.end
    }
}

/// A set of play records collected around one red dot.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PlaySet {
    /// The records, in no particular order.
    pub plays: Vec<Play>,
}

impl PlaySet {
    /// Wrap a vector of plays.
    pub fn new(plays: Vec<Play>) -> Self {
        PlaySet { plays }
    }

    /// Number of plays.
    pub fn len(&self) -> usize {
        self.plays.len()
    }

    /// True if there are no plays.
    pub fn is_empty(&self) -> bool {
        self.plays.is_empty()
    }

    /// Merge another set into this one.
    pub fn extend(&mut self, other: PlaySet) {
        self.plays.extend(other.plays);
    }

    /// Iterate over the records.
    pub fn iter(&self) -> impl Iterator<Item = &Play> {
        self.plays.iter()
    }
}

impl FromIterator<Play> for PlaySet {
    fn from_iter<T: IntoIterator<Item = Play>>(iter: T) -> Self {
        PlaySet::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(events: Vec<Interaction>) -> Session {
        Session::new(UserId(7), events)
    }

    #[test]
    fn simple_play_pause() {
        let s = session(vec![
            Interaction::Play {
                video_ts: Sec(100.0),
            },
            Interaction::Pause {
                video_ts: Sec(120.0),
            },
        ]);
        let plays = s.plays();
        assert_eq!(plays.len(), 1);
        assert_eq!(plays[0].range, TimeRange::from_secs(100.0, 120.0));
        assert_eq!(plays[0].user, UserId(7));
    }

    #[test]
    fn seek_splits_plays() {
        let s = session(vec![
            Interaction::Play {
                video_ts: Sec(100.0),
            },
            Interaction::SeekForward {
                from: Sec(110.0),
                to: Sec(200.0),
            },
            Interaction::Leave {
                video_ts: Sec(230.0),
            },
        ]);
        let plays = s.plays();
        assert_eq!(plays.len(), 2);
        assert_eq!(plays[0].range, TimeRange::from_secs(100.0, 110.0));
        assert_eq!(plays[1].range, TimeRange::from_secs(200.0, 230.0));
    }

    #[test]
    fn seek_backward_splits_plays() {
        let s = session(vec![
            Interaction::Play {
                video_ts: Sec(100.0),
            },
            Interaction::SeekBackward {
                from: Sec(130.0),
                to: Sec(90.0),
            },
            Interaction::Pause {
                video_ts: Sec(125.0),
            },
        ]);
        let plays = s.plays();
        assert_eq!(plays.len(), 2);
        assert_eq!(plays[0].range, TimeRange::from_secs(100.0, 130.0));
        assert_eq!(plays[1].range, TimeRange::from_secs(90.0, 125.0));
    }

    #[test]
    fn unterminated_play_is_dropped() {
        let s = session(vec![Interaction::Play {
            video_ts: Sec(50.0),
        }]);
        assert!(s.plays().is_empty());
    }

    #[test]
    fn zero_length_play_is_dropped() {
        let s = session(vec![
            Interaction::Play {
                video_ts: Sec(50.0),
            },
            Interaction::Pause {
                video_ts: Sec(50.0),
            },
        ]);
        assert!(s.plays().is_empty());
    }

    #[test]
    fn pause_without_play_is_ignored() {
        let s = session(vec![
            Interaction::Pause {
                video_ts: Sec(10.0),
            },
            Interaction::Play {
                video_ts: Sec(20.0),
            },
            Interaction::Pause {
                video_ts: Sec(30.0),
            },
        ]);
        let plays = s.plays();
        assert_eq!(plays.len(), 1);
        assert_eq!(plays[0].range, TimeRange::from_secs(20.0, 30.0));
    }

    #[test]
    fn seek_while_paused_does_not_create_play() {
        let s = session(vec![
            Interaction::SeekForward {
                from: Sec(0.0),
                to: Sec(100.0),
            },
            Interaction::Play {
                video_ts: Sec(100.0),
            },
            Interaction::Pause {
                video_ts: Sec(110.0),
            },
        ]);
        let plays = s.plays();
        assert_eq!(plays.len(), 1);
        assert_eq!(plays[0].range, TimeRange::from_secs(100.0, 110.0));
    }

    #[test]
    fn position_after() {
        assert_eq!(
            Interaction::Play { video_ts: Sec(5.0) }.position_after().0,
            5.0
        );
        assert_eq!(
            Interaction::SeekForward {
                from: Sec(1.0),
                to: Sec(9.0)
            }
            .position_after()
            .0,
            9.0
        );
    }

    #[test]
    fn playset_collects() {
        let ps: PlaySet = vec![Play::from_secs(0.0, 5.0), Play::from_secs(5.0, 9.0)]
            .into_iter()
            .collect();
        assert_eq!(ps.len(), 2);
        assert!(!ps.is_empty());
        let mut a = PlaySet::default();
        a.extend(ps);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn play_normalizes_endpoints() {
        let p = Play::new(UserId(0), Sec(10.0), Sec(5.0));
        assert_eq!(p.start().0, 5.0);
        assert_eq!(p.end().0, 10.0);
        assert_eq!(p.duration().0, 5.0);
    }
}
