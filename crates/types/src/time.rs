//! Video time: seconds since the start of a recorded video, and closed
//! intervals over it.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point in video time, in seconds since the start of the recording.
///
/// The paper works in whole seconds ("a one-hour video `V = [0, 3600]`") but
/// simulated event times are continuous, so `Sec` wraps an `f64`. Ordering
/// helpers use [`f64::total_cmp`] so collections of times can be sorted
/// without panicking on NaN (which no constructor produces, but arithmetic
/// on user input could).
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Sec(pub f64);

impl Sec {
    /// Zero seconds — the start of any video.
    pub const ZERO: Sec = Sec(0.0);

    /// Construct from a floating-point number of seconds.
    #[inline]
    pub fn new(s: f64) -> Self {
        Sec(s)
    }

    /// Construct from whole minutes.
    #[inline]
    pub fn from_minutes(m: f64) -> Self {
        Sec(m * 60.0)
    }

    /// Construct from whole hours.
    #[inline]
    pub fn from_hours(h: f64) -> Self {
        Sec(h * 3600.0)
    }

    /// The raw number of seconds.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Absolute distance between two time points.
    #[inline]
    pub fn distance(self, other: Sec) -> Sec {
        Sec((self.0 - other.0).abs())
    }

    /// Total-order comparison (safe for sorting).
    #[inline]
    pub fn total_cmp(&self, other: &Sec) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// The earlier of two time points.
    #[inline]
    pub fn min(self, other: Sec) -> Sec {
        if self.total_cmp(&other).is_le() {
            self
        } else {
            other
        }
    }

    /// The later of two time points.
    #[inline]
    pub fn max(self, other: Sec) -> Sec {
        if self.total_cmp(&other).is_ge() {
            self
        } else {
            other
        }
    }

    /// Clamp into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Sec, hi: Sec) -> Sec {
        self.max(lo).min(hi)
    }

    /// True if this time is non-negative and finite.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl fmt::Display for Sec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}s", self.0)
    }
}

impl From<f64> for Sec {
    fn from(s: f64) -> Self {
        Sec(s)
    }
}

impl Add for Sec {
    type Output = Sec;
    fn add(self, rhs: Sec) -> Sec {
        Sec(self.0 + rhs.0)
    }
}

impl AddAssign for Sec {
    fn add_assign(&mut self, rhs: Sec) {
        self.0 += rhs.0;
    }
}

impl Sub for Sec {
    type Output = Sec;
    fn sub(self, rhs: Sec) -> Sec {
        Sec(self.0 - rhs.0)
    }
}

impl SubAssign for Sec {
    fn sub_assign(&mut self, rhs: Sec) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Sec {
    type Output = Sec;
    fn mul(self, rhs: f64) -> Sec {
        Sec(self.0 * rhs)
    }
}

impl Div<f64> for Sec {
    type Output = Sec;
    fn div(self, rhs: f64) -> Sec {
        Sec(self.0 / rhs)
    }
}

impl Neg for Sec {
    type Output = Sec;
    fn neg(self) -> Sec {
        Sec(-self.0)
    }
}

/// A closed interval `[start, end]` of video time.
///
/// Invariant maintained by the constructors: `start <= end`. A range with
/// `start == end` is a zero-length instant and is allowed (a degenerate
/// play record, for example).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeRange {
    /// Inclusive start of the interval.
    pub start: Sec,
    /// Inclusive end of the interval.
    pub end: Sec,
}

impl TimeRange {
    /// Construct a range, swapping the endpoints if given out of order.
    #[inline]
    pub fn new(start: Sec, end: Sec) -> Self {
        if start.total_cmp(&end).is_le() {
            TimeRange { start, end }
        } else {
            TimeRange {
                start: end,
                end: start,
            }
        }
    }

    /// Construct from raw second values.
    #[inline]
    pub fn from_secs(start: f64, end: f64) -> Self {
        TimeRange::new(Sec(start), Sec(end))
    }

    /// Length of the interval.
    #[inline]
    pub fn duration(&self) -> Sec {
        self.end - self.start
    }

    /// Midpoint of the interval.
    #[inline]
    pub fn midpoint(&self) -> Sec {
        Sec((self.start.0 + self.end.0) * 0.5)
    }

    /// True if `t` lies inside the closed interval.
    #[inline]
    pub fn contains(&self, t: Sec) -> bool {
        self.start.0 <= t.0 && t.0 <= self.end.0
    }

    /// True if the two closed intervals share at least one point.
    #[inline]
    pub fn overlaps(&self, other: &TimeRange) -> bool {
        self.start.0 <= other.end.0 && other.start.0 <= self.end.0
    }

    /// Length of the overlap between two intervals (zero when disjoint).
    #[inline]
    pub fn overlap_len(&self, other: &TimeRange) -> Sec {
        let lo = self.start.max(other.start);
        let hi = self.end.min(other.end);
        if lo.0 <= hi.0 {
            hi - lo
        } else {
            Sec::ZERO
        }
    }

    /// The intersection interval, if any.
    pub fn intersect(&self, other: &TimeRange) -> Option<TimeRange> {
        let lo = self.start.max(other.start);
        let hi = self.end.min(other.end);
        (lo.0 <= hi.0).then_some(TimeRange { start: lo, end: hi })
    }

    /// Translate both endpoints by `delta` (negative moves earlier).
    #[inline]
    pub fn shift(&self, delta: Sec) -> TimeRange {
        TimeRange {
            start: self.start + delta,
            end: self.end + delta,
        }
    }

    /// Clamp the interval into `[lo, hi]`, preserving `start <= end`.
    pub fn clamp_to(&self, lo: Sec, hi: Sec) -> TimeRange {
        let s = self.start.clamp(lo, hi);
        let e = self.end.clamp(lo, hi);
        TimeRange::new(s, e)
    }

    /// Distance from a point to the interval (zero if contained).
    pub fn distance_to(&self, t: Sec) -> Sec {
        if t.0 < self.start.0 {
            self.start - t
        } else if t.0 > self.end.0 {
            t - self.end
        } else {
            Sec::ZERO
        }
    }
}

impl fmt::Display for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.1}, {:.1}]", self.start.0, self.end.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sec_arithmetic() {
        let a = Sec(10.0);
        let b = Sec(4.0);
        assert_eq!((a + b).0, 14.0);
        assert_eq!((a - b).0, 6.0);
        assert_eq!((a * 2.0).0, 20.0);
        assert_eq!((a / 2.0).0, 5.0);
        assert_eq!((-b).0, -4.0);
    }

    #[test]
    fn sec_constructors() {
        assert_eq!(Sec::from_minutes(2.0).0, 120.0);
        assert_eq!(Sec::from_hours(1.5).0, 5400.0);
        assert_eq!(Sec::from(7.0).0, 7.0);
    }

    #[test]
    fn sec_distance_is_symmetric() {
        assert_eq!(Sec(3.0).distance(Sec(8.0)).0, 5.0);
        assert_eq!(Sec(8.0).distance(Sec(3.0)).0, 5.0);
    }

    #[test]
    fn sec_min_max_clamp() {
        assert_eq!(Sec(3.0).min(Sec(5.0)).0, 3.0);
        assert_eq!(Sec(3.0).max(Sec(5.0)).0, 5.0);
        assert_eq!(Sec(9.0).clamp(Sec(0.0), Sec(5.0)).0, 5.0);
        assert_eq!(Sec(-1.0).clamp(Sec(0.0), Sec(5.0)).0, 0.0);
    }

    #[test]
    fn sec_validity() {
        assert!(Sec(0.0).is_valid());
        assert!(!Sec(-1.0).is_valid());
        assert!(!Sec(f64::NAN).is_valid());
        assert!(!Sec(f64::INFINITY).is_valid());
    }

    #[test]
    fn range_normalizes_order() {
        let r = TimeRange::from_secs(10.0, 4.0);
        assert_eq!(r.start.0, 4.0);
        assert_eq!(r.end.0, 10.0);
        assert_eq!(r.duration().0, 6.0);
    }

    #[test]
    fn range_contains_and_overlap() {
        let r = TimeRange::from_secs(100.0, 120.0);
        assert!(r.contains(Sec(100.0)));
        assert!(r.contains(Sec(120.0)));
        assert!(!r.contains(Sec(120.1)));

        let s = TimeRange::from_secs(119.0, 130.0);
        assert!(r.overlaps(&s));
        assert_eq!(r.overlap_len(&s).0, 1.0);

        let t = TimeRange::from_secs(121.0, 130.0);
        assert!(!r.overlaps(&t));
        assert_eq!(r.overlap_len(&t).0, 0.0);
    }

    #[test]
    fn range_touching_endpoints_overlap() {
        let r = TimeRange::from_secs(0.0, 10.0);
        let s = TimeRange::from_secs(10.0, 20.0);
        assert!(r.overlaps(&s));
        assert_eq!(r.overlap_len(&s).0, 0.0);
    }

    #[test]
    fn range_intersect() {
        let r = TimeRange::from_secs(0.0, 10.0);
        let s = TimeRange::from_secs(5.0, 15.0);
        let i = r.intersect(&s).unwrap();
        assert_eq!((i.start.0, i.end.0), (5.0, 10.0));
        assert!(r.intersect(&TimeRange::from_secs(11.0, 12.0)).is_none());
    }

    #[test]
    fn range_shift_and_clamp() {
        let r = TimeRange::from_secs(10.0, 20.0).shift(Sec(-15.0));
        assert_eq!((r.start.0, r.end.0), (-5.0, 5.0));
        let c = r.clamp_to(Sec::ZERO, Sec(100.0));
        assert_eq!((c.start.0, c.end.0), (0.0, 5.0));
    }

    #[test]
    fn range_distance_to_point() {
        let r = TimeRange::from_secs(10.0, 20.0);
        assert_eq!(r.distance_to(Sec(5.0)).0, 5.0);
        assert_eq!(r.distance_to(Sec(15.0)).0, 0.0);
        assert_eq!(r.distance_to(Sec(26.0)).0, 6.0);
    }

    #[test]
    fn serde_round_trip() {
        let r = TimeRange::from_secs(1.5, 2.5);
        let js = serde_json::to_string(&r).unwrap();
        let back: TimeRange = serde_json::from_str(&js).unwrap();
        assert_eq!(r, back);
    }
}
