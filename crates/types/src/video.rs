//! Videos, channels, ground-truth highlights and red-dot markers.

use crate::chat_view::ChatLogView;
use crate::time::{Sec, TimeRange};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque identifier of a recorded video.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct VideoId(pub u64);

impl fmt::Display for VideoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Opaque identifier of a broadcaster channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ChannelId(pub u64);

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// The game being streamed. The paper evaluates on two titles whose chat
/// behaves differently (personal channels vs championship broadcasts).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GameKind {
    /// Dota 2, crawled from Twitch personal channels.
    Dota2,
    /// League of Legends, from the NALCS championship series.
    Lol,
}

impl GameKind {
    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            GameKind::Dota2 => "Dota2",
            GameKind::Lol => "LoL",
        }
    }
}

impl fmt::Display for GameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Descriptive metadata of a recorded live video.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VideoMeta {
    /// The video's identifier.
    pub id: VideoId,
    /// The channel that broadcast it.
    pub channel: ChannelId,
    /// Which game was played.
    pub game: GameKind,
    /// Total length of the recording.
    pub duration: Sec,
    /// Number of unique viewers of the recording (Section VII-D statistic).
    pub viewers: u32,
}

/// A ground-truth highlight: a labelled `[start, end]` clip.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Highlight {
    /// The labelled clip boundary.
    pub range: TimeRange,
}

impl Highlight {
    /// Construct from raw seconds.
    pub fn from_secs(start: f64, end: f64) -> Self {
        Highlight {
            range: TimeRange::from_secs(start, end),
        }
    }

    /// Start of the highlight.
    pub fn start(&self) -> Sec {
        self.range.start
    }

    /// End of the highlight.
    pub fn end(&self) -> Sec {
        self.range.end
    }

    /// The paper's "good red dot" rule (Section IV-A): a dot `r` is good for
    /// this highlight when `s - tol <= r <= e`, i.e. it is not after the end
    /// and at most `tol` (10 s by default) before the start.
    pub fn accepts_dot(&self, dot: Sec, tol: Sec) -> bool {
        self.range.start.0 - tol.0 <= dot.0 && dot.0 <= self.range.end.0
    }

    /// The matching rule for an extracted *end* position (Section VII-A,
    /// Video Precision@K (end)): `s <= y <= e + tol`.
    pub fn accepts_end(&self, end: Sec, tol: Sec) -> bool {
        self.range.start.0 <= end.0 && end.0 <= self.range.end.0 + tol.0
    }
}

/// A red dot: LIGHTOR's approximate highlight marker shown on the progress
/// bar. Produced by the Highlight Initializer, refined by the Extractor.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RedDot {
    /// Position of the dot on the progress bar.
    pub at: Sec,
    /// The model's confidence that a highlight is nearby (the logistic
    /// regression probability of the originating chat window).
    pub score: f64,
}

impl RedDot {
    /// Construct a dot at `at` with prediction confidence `score`.
    pub fn new(at: impl Into<Sec>, score: f64) -> Self {
        RedDot {
            at: at.into(),
            score,
        }
    }
}

/// One labelled dataset unit: a video, its chat replay and its ground-truth
/// highlight annotations.
///
/// The chat is a zero-copy [`ChatLogView`]: generators and the storage
/// layer both produce the columnar form directly, so the training path
/// never materializes per-message `String`s. Callers needing an owned
/// log (rare; mostly legacy codecs and tests) use
/// [`ChatLogView::to_chat_log`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LabeledVideo {
    /// Video metadata.
    pub meta: VideoMeta,
    /// Full chat replay (zero-copy columnar view).
    pub chat: ChatLogView,
    /// Ground-truth highlights, sorted by start time, pairwise disjoint.
    pub highlights: Vec<Highlight>,
}

impl LabeledVideo {
    /// The highlight containing or closest to `t`, with its distance.
    pub fn nearest_highlight(&self, t: Sec) -> Option<(&Highlight, Sec)> {
        self.highlights
            .iter()
            .map(|h| (h, h.range.distance_to(t)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// True if any ground-truth highlight accepts `dot` as a good red dot.
    pub fn is_good_dot(&self, dot: Sec, tol: Sec) -> bool {
        self.highlights.iter().any(|h| h.accepts_dot(dot, tol))
    }

    /// Chat messages per hour for this video.
    pub fn chat_rate(&self) -> f64 {
        self.chat.rate_per_hour(self.meta.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chat::{ChatMessage, UserId};

    fn video_with_highlights(hs: Vec<Highlight>) -> LabeledVideo {
        LabeledVideo {
            meta: VideoMeta {
                id: VideoId(1),
                channel: ChannelId(1),
                game: GameKind::Dota2,
                duration: Sec::from_hours(1.0),
                viewers: 1000,
            },
            chat: ChatLogView::from_messages(vec![ChatMessage::new(10.0, UserId(1), "hi")]),
            highlights: hs,
        }
    }

    #[test]
    fn good_dot_rule_matches_paper_example() {
        // Paper Section III: highlight h = [1990, 2005]; 2000 is good, 2100 bad.
        let h = Highlight::from_secs(1990.0, 2005.0);
        let tol = Sec(10.0);
        assert!(h.accepts_dot(Sec(2000.0), tol));
        assert!(!h.accepts_dot(Sec(2100.0), tol));
        // Boundaries: r = s - 10 is good, r = e is good, r = e + eps is not.
        assert!(h.accepts_dot(Sec(1980.0), tol));
        assert!(h.accepts_dot(Sec(2005.0), tol));
        assert!(!h.accepts_dot(Sec(2005.1), tol));
        assert!(!h.accepts_dot(Sec(1979.9), tol));
    }

    #[test]
    fn end_rule() {
        let h = Highlight::from_secs(100.0, 120.0);
        let tol = Sec(10.0);
        assert!(h.accepts_end(Sec(100.0), tol));
        assert!(h.accepts_end(Sec(130.0), tol));
        assert!(!h.accepts_end(Sec(130.1), tol));
        assert!(!h.accepts_end(Sec(99.9), tol));
    }

    #[test]
    fn nearest_highlight_picks_closest() {
        let v = video_with_highlights(vec![
            Highlight::from_secs(100.0, 120.0),
            Highlight::from_secs(500.0, 520.0),
        ]);
        let (h, d) = v.nearest_highlight(Sec(480.0)).unwrap();
        assert_eq!(h.start().0, 500.0);
        assert_eq!(d.0, 20.0);
        let (h2, d2) = v.nearest_highlight(Sec(110.0)).unwrap();
        assert_eq!(h2.start().0, 100.0);
        assert_eq!(d2.0, 0.0);
    }

    #[test]
    fn is_good_dot_over_all_highlights() {
        let v = video_with_highlights(vec![
            Highlight::from_secs(100.0, 120.0),
            Highlight::from_secs(500.0, 520.0),
        ]);
        assert!(v.is_good_dot(Sec(95.0), Sec(10.0)));
        assert!(v.is_good_dot(Sec(510.0), Sec(10.0)));
        assert!(!v.is_good_dot(Sec(300.0), Sec(10.0)));
    }

    #[test]
    fn game_names() {
        assert_eq!(GameKind::Dota2.name(), "Dota2");
        assert_eq!(GameKind::Lol.to_string(), "LoL");
    }

    #[test]
    fn display_ids() {
        assert_eq!(VideoId(3).to_string(), "v3");
        assert_eq!(ChannelId(9).to_string(), "ch9");
    }
}
