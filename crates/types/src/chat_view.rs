//! Zero-copy columnar views over chat replays.
//!
//! A [`ChatLogView`] is the read side of the platform's columnar record
//! format: one shared byte buffer (`Arc<[u8]>`) holding parallel
//! timestamp / user / text-offset arrays plus a single contiguous UTF-8
//! text blob, described by a [`ColumnarLayout`]. Decoding a stored chat
//! into a view costs O(1) allocations — the view *borrows* the payload
//! via the `Arc` instead of materializing one owned `String` per
//! message — while still exposing per-message access, iteration, and
//! on-demand materialization into an owned [`ChatLog`].
//!
//! Invariants are checked once at construction ([`ChatLogView::new`]):
//! every section lies inside the buffer, text end-offsets are monotone,
//! and the last end-offset equals the blob length. After that, all
//! accessors are infallible and allocation-free (text access returns
//! `Cow::Borrowed` for valid UTF-8, falling back to a lossy owned copy
//! for corrupt bytes, mirroring the v1 decode behaviour).

use crate::chat::{ChatLog, ChatMessage, UserId};
use crate::time::Sec;
use std::borrow::Cow;
use std::sync::Arc;

/// Section placement of one columnar chat record inside its buffer.
///
/// All offsets are byte offsets into the shared buffer; the arrays are
/// little-endian and index-aligned (entry `i` of each array describes
/// message `i`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColumnarLayout {
    /// Number of messages.
    pub n: usize,
    /// Offset of the `f64` timestamp array (8·n bytes).
    pub ts_off: usize,
    /// Offset of the `u64` user-id array (8·n bytes).
    pub user_off: usize,
    /// Offset of the `u32` cumulative text end-offset array (4·n bytes).
    /// Entry `i` is the end of message `i`'s text inside the blob; its
    /// start is entry `i-1` (or 0 for the first message).
    pub ends_off: usize,
    /// Offset of the UTF-8 text blob.
    pub text_off: usize,
    /// Byte length of the text blob.
    pub text_len: usize,
}

/// A zero-copy view of one video's chat replay.
///
/// Cheap to clone (an `Arc` bump plus a few words), `Send + Sync`, and
/// safe to cache — the underlying buffer is immutable.
#[derive(Clone, Debug)]
pub struct ChatLogView {
    buf: Arc<[u8]>,
    layout: ColumnarLayout,
}

/// One message as seen through a [`ChatLogView`] — text borrows the
/// view's buffer when it is valid UTF-8.
#[derive(Clone, Debug, PartialEq)]
pub struct ChatMessageRef<'a> {
    /// When the message was posted, in video time.
    pub ts: Sec,
    /// Author of the message.
    pub user: UserId,
    /// Message text.
    pub text: Cow<'a, str>,
}

fn read_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("bounds checked"))
}

fn read_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().expect("bounds checked"))
}

impl ChatLogView {
    /// Wrap a buffer, validating the layout. Returns `None` when any
    /// section falls outside the buffer, the end-offset array is not
    /// monotone, or the final end-offset disagrees with `text_len`.
    pub fn new(buf: Arc<[u8]>, layout: ColumnarLayout) -> Option<Self> {
        let n = layout.n;
        let sect = |off: usize, len: usize| {
            off.checked_add(len)
                .is_some_and(|end| end <= buf.len())
                .then_some(())
        };
        sect(layout.ts_off, n.checked_mul(8)?)?;
        sect(layout.user_off, n.checked_mul(8)?)?;
        sect(layout.ends_off, n.checked_mul(4)?)?;
        sect(layout.text_off, layout.text_len)?;
        let mut prev = 0u32;
        for i in 0..n {
            let end = read_u32(&buf, layout.ends_off + 4 * i);
            if end < prev {
                return None;
            }
            prev = end;
        }
        if prev as usize != layout.text_len {
            return None;
        }
        Some(ChatLogView { buf, layout })
    }

    /// Build an owned columnar view from a [`ChatLog`] (used for the v1
    /// migration path and for tests; O(total text) one-time cost).
    pub fn from_chat_log(chat: &ChatLog) -> Self {
        let n = chat.len();
        let text_len: usize = chat.messages().iter().map(|m| m.text.len()).sum();
        let ts_off = 0;
        let user_off = ts_off + 8 * n;
        let ends_off = user_off + 8 * n;
        let text_off = ends_off + 4 * n;
        let mut buf = Vec::with_capacity(text_off + text_len);
        for m in chat.messages() {
            buf.extend_from_slice(&m.ts.0.to_le_bytes());
        }
        for m in chat.messages() {
            buf.extend_from_slice(&m.user.0.to_le_bytes());
        }
        let mut end = 0u32;
        for m in chat.messages() {
            end += m.text.len() as u32;
            buf.extend_from_slice(&end.to_le_bytes());
        }
        for m in chat.messages() {
            buf.extend_from_slice(m.text.as_bytes());
        }
        let layout = ColumnarLayout {
            n,
            ts_off,
            user_off,
            ends_off,
            text_off,
            text_len,
        };
        ChatLogView::new(buf.into(), layout).expect("self-built layout is valid")
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.layout.n
    }

    /// True when the view holds no messages.
    pub fn is_empty(&self) -> bool {
        self.layout.n == 0
    }

    /// Timestamp of message `i`.
    pub fn ts(&self, i: usize) -> Sec {
        assert!(i < self.layout.n, "message index out of range");
        Sec(f64::from_le_bytes(
            self.buf[self.layout.ts_off + 8 * i..self.layout.ts_off + 8 * i + 8]
                .try_into()
                .expect("bounds checked"),
        ))
    }

    /// Author of message `i`.
    pub fn user(&self, i: usize) -> UserId {
        assert!(i < self.layout.n, "message index out of range");
        UserId(read_u64(&self.buf, self.layout.user_off + 8 * i))
    }

    /// Text of message `i` — borrowed when valid UTF-8.
    pub fn text(&self, i: usize) -> Cow<'_, str> {
        assert!(i < self.layout.n, "message index out of range");
        let start = if i == 0 {
            0
        } else {
            read_u32(&self.buf, self.layout.ends_off + 4 * (i - 1)) as usize
        };
        let end = read_u32(&self.buf, self.layout.ends_off + 4 * i) as usize;
        String::from_utf8_lossy(&self.buf[self.layout.text_off + start..self.layout.text_off + end])
    }

    /// Message `i` as a borrowing reference.
    pub fn get(&self, i: usize) -> ChatMessageRef<'_> {
        ChatMessageRef {
            ts: self.ts(i),
            user: self.user(i),
            text: self.text(i),
        }
    }

    /// Iterate messages in stored (timestamp) order.
    pub fn iter(&self) -> impl Iterator<Item = ChatMessageRef<'_>> + '_ {
        (0..self.layout.n).map(move |i| self.get(i))
    }

    /// Timestamp of the last message, if any.
    pub fn last_ts(&self) -> Option<Sec> {
        self.layout.n.checked_sub(1).map(|i| self.ts(i))
    }

    /// Materialize into an owned [`ChatLog`] (allocates per message).
    pub fn to_chat_log(&self) -> ChatLog {
        ChatLog::new(
            self.iter()
                .map(|m| ChatMessage::new(m.ts, m.user, m.text.into_owned()))
                .collect(),
        )
    }

    /// The shared payload buffer the view borrows.
    pub fn buffer(&self) -> &Arc<[u8]> {
        &self.buf
    }
}

impl PartialEq<ChatLog> for ChatLogView {
    fn eq(&self, other: &ChatLog) -> bool {
        self.len() == other.len()
            && self.iter().zip(other.messages()).all(|(a, b)| {
                a.ts.0.to_bits() == b.ts.0.to_bits() && a.user == b.user && a.text == b.text
            })
    }
}

impl PartialEq<ChatLogView> for ChatLog {
    fn eq(&self, other: &ChatLogView) -> bool {
        other == self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChatLog {
        ChatLog::new(vec![
            ChatMessage::new(1.5, UserId(7), "first"),
            ChatMessage::new(3.25, UserId(8), "第二 unicode ✓"),
            ChatMessage::new(3.25, UserId(9), ""),
            ChatMessage::new(9.0, UserId::BOT, "spam spam"),
        ])
    }

    #[test]
    fn from_chat_log_round_trip() {
        let chat = sample();
        let view = ChatLogView::from_chat_log(&chat);
        assert_eq!(view.len(), 4);
        assert_eq!(view, chat);
        assert_eq!(view.to_chat_log(), chat);
        assert_eq!(view.last_ts(), chat.last_ts());
        assert_eq!(view.text(1), "第二 unicode ✓");
        assert_eq!(view.text(2), "");
        assert!(matches!(view.text(0), Cow::Borrowed("first")));
    }

    #[test]
    fn empty_view() {
        let chat = ChatLog::empty();
        let view = ChatLogView::from_chat_log(&chat);
        assert!(view.is_empty());
        assert_eq!(view.last_ts(), None);
        assert_eq!(view.to_chat_log(), chat);
    }

    #[test]
    fn bad_layouts_are_rejected() {
        let view = ChatLogView::from_chat_log(&sample());
        let buf = view.buffer().clone();
        let good = view.layout;
        // Section out of bounds.
        assert!(ChatLogView::new(
            buf.clone(),
            ColumnarLayout {
                text_len: good.text_len + 1,
                ..good
            }
        )
        .is_none());
        assert!(ChatLogView::new(
            buf.clone(),
            ColumnarLayout {
                n: good.n + 1000,
                ..good
            }
        )
        .is_none());
        // Non-monotone ends: swap two end entries.
        let mut raw = buf.to_vec();
        let a = good.ends_off;
        let b = good.ends_off + 4;
        for k in 0..4 {
            raw.swap(a + k, b + k);
        }
        assert!(ChatLogView::new(raw.into(), good).is_none());
    }

    #[test]
    fn invalid_utf8_is_lossy_not_fatal() {
        let view = ChatLogView::from_chat_log(&sample());
        let mut raw = view.buffer().to_vec();
        // Corrupt the first text byte.
        raw[view.layout.text_off] = 0xFF;
        let corrupt = ChatLogView::new(raw.into(), view.layout).unwrap();
        let text = corrupt.text(0);
        assert!(text.contains('\u{FFFD}'), "lossy replacement expected");
    }

    #[test]
    fn clone_shares_buffer() {
        let view = ChatLogView::from_chat_log(&sample());
        let clone = view.clone();
        assert!(Arc::ptr_eq(view.buffer(), clone.buffer()));
        assert_eq!(clone, sample());
    }
}
