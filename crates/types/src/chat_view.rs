//! Zero-copy columnar views over chat replays.
//!
//! A [`ChatLogView`] is the read side of the platform's columnar record
//! format: one shared byte buffer (`Arc<[u8]>`) holding parallel
//! timestamp / user / text-offset arrays plus a single contiguous UTF-8
//! text blob, described by a [`ColumnarLayout`]. Decoding a stored chat
//! into a view costs O(1) allocations — the view *borrows* the payload
//! via the `Arc` instead of materializing one owned `String` per
//! message — while still exposing per-message access, iteration, range
//! queries, and on-demand materialization into an owned [`ChatLog`].
//!
//! Views are also the *write* side of dataset construction:
//! [`ChatLogBuilder`] accumulates messages into column vectors plus one
//! growing text blob (generators append text fragments straight into
//! the blob — no per-message `String`), then
//! [`ChatLogBuilder::finish_sorted`] lays the columns out
//! timestamp-sorted in a single contiguous buffer. The whole replay
//! costs O(1) allocations amortized instead of O(messages).
//!
//! Invariants are checked once at construction ([`ChatLogView::new`]):
//! every section lies inside the buffer, text end-offsets are monotone,
//! and the last end-offset equals the blob length. After that, all
//! accessors are infallible and allocation-free (text access returns
//! `Cow::Borrowed` for valid UTF-8, falling back to a lossy owned copy
//! for corrupt bytes, mirroring the v1 decode behaviour).

use crate::chat::{ChatLog, ChatMessage, UserId};
use crate::time::{Sec, TimeRange};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::sync::Arc;

/// Section placement of one columnar chat record inside its buffer.
///
/// All offsets are byte offsets into the shared buffer; the arrays are
/// little-endian and index-aligned (entry `i` of each array describes
/// message `i`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColumnarLayout {
    /// Number of messages.
    pub n: usize,
    /// Offset of the `f64` timestamp array (8·n bytes).
    pub ts_off: usize,
    /// Offset of the `u64` user-id array (8·n bytes).
    pub user_off: usize,
    /// Offset of the `u32` cumulative text end-offset array (4·n bytes).
    /// Entry `i` is the end of message `i`'s text inside the blob; its
    /// start is entry `i-1` (or 0 for the first message).
    pub ends_off: usize,
    /// Offset of the UTF-8 text blob.
    pub text_off: usize,
    /// Byte length of the text blob.
    pub text_len: usize,
}

/// A zero-copy view of one video's chat replay.
///
/// Cheap to clone (an `Arc` bump plus a few words), `Send + Sync`, and
/// safe to cache — the underlying buffer is immutable.
#[derive(Clone, Debug)]
pub struct ChatLogView {
    buf: Arc<[u8]>,
    layout: ColumnarLayout,
}

/// One message as seen through a [`ChatLogView`] — text borrows the
/// view's buffer when it is valid UTF-8.
#[derive(Clone, Debug, PartialEq)]
pub struct ChatMessageRef<'a> {
    /// When the message was posted, in video time.
    pub ts: Sec,
    /// Author of the message.
    pub user: UserId,
    /// Message text.
    pub text: Cow<'a, str>,
}

impl ChatMessageRef<'_> {
    /// Number of whitespace-separated words — the paper's message
    /// length (mirrors [`ChatMessage::word_count`]).
    pub fn word_count(&self) -> usize {
        self.text.split_whitespace().count()
    }
}

/// Map a timestamp to a `u64` whose unsigned order is exactly
/// `f64::total_cmp` order — the integer sort key shared by
/// [`ChatLogBuilder::finish_sorted`] and the chat generator's event
/// layout (the two must order identically or generated logs would
/// disagree with re-sorted ones).
#[inline]
pub fn ts_order_key(t: f64) -> u64 {
    let b = t.to_bits();
    b ^ ((((b as i64) >> 63) as u64) | (1 << 63))
}

fn read_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("bounds checked"))
}

fn read_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().expect("bounds checked"))
}

/// Per-message fragment-id runs, parallel to a [`ChatLogView`]'s
/// message order.
///
/// A *fragment id* is an opaque `u32` whose meaning belongs to the
/// producer (e.g. a compiled-lexicon span id in `lightor-chatsim`):
/// message `i` was written as the concatenation of `run(i)`'s
/// fragments, in order. Consumers that can map a fragment id to its
/// token ids (a table lookup) can tokenize a whole generated corpus
/// without ever re-splitting the message text into words.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FragRuns {
    /// Flat fragment ids, message-major.
    ids: Vec<u32>,
    /// Cumulative end offset of each message's run inside `ids`
    /// (length = number of messages).
    ends: Vec<u32>,
}

impl FragRuns {
    /// Number of messages covered.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// True when no message has a recorded run.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// The fragment ids message `i` was written from, in write order.
    pub fn run(&self, i: usize) -> &[u32] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        &self.ids[start..self.ends[i] as usize]
    }

    /// Iterate every message's run, in message order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.len()).map(move |i| self.run(i))
    }
}

/// An append-only chat accumulator that finishes into a [`ChatLogView`].
///
/// Message text is written *incrementally* into one shared blob:
/// callers append fragments through [`ChatLogBuilder::text_buf`] (or
/// [`ChatLogBuilder::push_str`]) and then seal the message with
/// [`ChatLogBuilder::commit`]. Messages may arrive in any timestamp
/// order; [`ChatLogBuilder::finish_sorted`] applies a stable
/// timestamp sort (ties keep insertion order — the same contract as
/// [`ChatLog::new`]) while laying out the final columnar buffer.
///
/// Builders created with [`ChatLogBuilder::recording_frags`] also
/// accumulate a [`FragRuns`] — producers push the fragment ids each
/// message was composed from ([`ChatLogBuilder::push_frag`]) and
/// [`ChatLogBuilder::finish_sorted_with_runs`] returns the runs in the
/// same final (sorted) message order as the view.
#[derive(Clone, Debug, Default)]
pub struct ChatLogBuilder {
    ts: Vec<f64>,
    users: Vec<u64>,
    /// Cumulative end offset of each committed message inside `text`.
    ends: Vec<u32>,
    text: String,
    /// Fragment-run accumulator, present only when recording.
    frags: Option<FragRuns>,
}

impl ChatLogBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ChatLogBuilder::default()
    }

    /// An empty builder with pre-sized columns (`messages` entries,
    /// `text_bytes` blob bytes).
    pub fn with_capacity(messages: usize, text_bytes: usize) -> Self {
        ChatLogBuilder {
            ts: Vec::with_capacity(messages),
            users: Vec::with_capacity(messages),
            ends: Vec::with_capacity(messages),
            text: String::with_capacity(text_bytes),
            frags: None,
        }
    }

    /// Like [`ChatLogBuilder::with_capacity`], but also records the
    /// fragment-id run of every message (see [`FragRuns`]). Producers
    /// push ids through [`ChatLogBuilder::push_frag`] or the vector
    /// handed out by [`ChatLogBuilder::text_and_frags`]; runs are
    /// sealed by the same [`ChatLogBuilder::commit`] as the text.
    pub fn recording_frags(messages: usize, text_bytes: usize) -> Self {
        let mut b = ChatLogBuilder::with_capacity(messages, text_bytes);
        b.frags = Some(FragRuns {
            ids: Vec::with_capacity(messages * 2),
            ends: Vec::with_capacity(messages),
        });
        b
    }

    /// True when this builder records fragment runs.
    pub fn records_frags(&self) -> bool {
        self.frags.is_some()
    }

    /// Append one fragment id to the in-progress message's run.
    /// No-op on builders that are not recording.
    pub fn push_frag(&mut self, id: u32) {
        if let Some(f) = &mut self.frags {
            f.ids.push(id);
        }
    }

    /// Borrow-split accessor: the text blob tail plus (when recording)
    /// the flat fragment-id accumulator, so writers can append to both
    /// without fighting the borrow checker.
    pub fn text_and_frags(&mut self) -> (&mut String, Option<&mut Vec<u32>>) {
        (&mut self.text, self.frags.as_mut().map(|f| &mut f.ids))
    }

    /// The blob tail for the message currently being written. Append
    /// fragments freely; nothing is a message until [`commit`] seals it.
    ///
    /// [`commit`]: ChatLogBuilder::commit
    pub fn text_buf(&mut self) -> &mut String {
        &mut self.text
    }

    /// Append one text fragment of the in-progress message.
    pub fn push_str(&mut self, s: &str) {
        self.text.push_str(s);
    }

    /// Seal everything appended since the last commit as one message.
    ///
    /// Panics when the accumulated blob exceeds the columnar format's
    /// `u32` offset space — a wrapped end-offset would corrupt every
    /// later message, so this is a hard limit, not a debug check.
    pub fn commit(&mut self, ts: f64, user: UserId) {
        assert!(self.text.len() <= u32::MAX as usize, "text blob overflow");
        self.ts.push(ts);
        self.users.push(user.0);
        self.ends.push(self.text.len() as u32);
        if let Some(f) = &mut self.frags {
            f.ends.push(f.ids.len() as u32);
        }
    }

    /// Convenience: append a whole message at once.
    pub fn push_message(&mut self, ts: f64, user: UserId, text: &str) {
        self.text.push_str(text);
        self.commit(ts, user);
    }

    /// Number of committed messages.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// True when no message has been committed.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Finish into a view, stably sorting messages by timestamp (ties
    /// keep insertion order, matching [`ChatLog::new`]). One pass lays
    /// the ts/user/end columns and the reordered blob into a single
    /// contiguous buffer.
    pub fn finish_sorted(mut self) -> ChatLogView {
        // Committed-in-order logs (the chat generator sorts its event
        // layout before writing text) skip the permutation entirely:
        // the columns and blob are already final, so finishing is one
        // sequential serialization pass.
        if self.ts.windows(2).all(|w| w[0] <= w[1]) {
            self.frags = None;
            return self.finish_ordered();
        }
        let order = self.sort_order();
        self.finish_permuted(&order)
    }

    /// Like [`ChatLogBuilder::finish_sorted`], but also returns the
    /// recorded [`FragRuns`] permuted into the same final message
    /// order as the view. Runs are empty when the builder was not
    /// created with [`ChatLogBuilder::recording_frags`].
    pub fn finish_sorted_with_runs(mut self) -> (ChatLogView, FragRuns) {
        let frags = self.frags.take().unwrap_or_default();
        if self.ts.windows(2).all(|w| w[0] <= w[1]) {
            return (self.finish_ordered(), frags);
        }
        let order = self.sort_order();
        if frags.is_empty() {
            return (self.finish_permuted(&order), frags);
        }
        let mut permuted = FragRuns {
            ids: Vec::with_capacity(frags.ids.len()),
            ends: Vec::with_capacity(frags.ends.len()),
        };
        for &i in &order {
            permuted.ids.extend_from_slice(frags.run(i as usize));
            permuted.ends.push(permuted.ids.len() as u32);
        }
        (self.finish_permuted(&order), permuted)
    }

    /// Stable timestamp sort order over the committed messages.
    ///
    /// Packs each message as (total-order key, insertion index) and
    /// sorts the pairs unstably: the key mapping reproduces
    /// `f64::total_cmp` exactly, indices are distinct so ties break
    /// by insertion order (= a stable sort), and integer compares on
    /// contiguous pairs are several times cheaper than indirect
    /// `total_cmp` through an index permutation.
    fn sort_order(&self) -> Vec<u32> {
        let mut order: Vec<(u64, u32)> = self
            .ts
            .iter()
            .enumerate()
            .map(|(i, &t)| (ts_order_key(t), i as u32))
            .collect();
        order.sort_unstable();
        order.into_iter().map(|(_, i)| i).collect()
    }

    /// Serialize the columns and blob in `order`'s message order.
    fn finish_permuted(self, order: &[u32]) -> ChatLogView {
        let n = self.ts.len();
        let text_len = self.text.len();
        let ts_off = 0;
        let user_off = ts_off + 8 * n;
        let ends_off = user_off + 8 * n;
        let text_off = ends_off + 4 * n;
        let mut buf = Vec::with_capacity(text_off + text_len);
        for &i in order {
            buf.extend_from_slice(&self.ts[i as usize].to_le_bytes());
        }
        for &i in order {
            buf.extend_from_slice(&self.users[i as usize].to_le_bytes());
        }
        let mut end = 0u32;
        for &i in order {
            let i = i as usize;
            let start = if i == 0 { 0 } else { self.ends[i - 1] };
            end += self.ends[i] - start;
            buf.extend_from_slice(&end.to_le_bytes());
        }
        for &i in order {
            let i = i as usize;
            let start = if i == 0 { 0 } else { self.ends[i - 1] } as usize;
            buf.extend_from_slice(&self.text.as_bytes()[start..self.ends[i] as usize]);
        }
        let layout = ColumnarLayout {
            n,
            ts_off,
            user_off,
            ends_off,
            text_off,
            text_len,
        };
        ChatLogView::new(buf.into(), layout).expect("self-built layout is valid")
    }

    /// Serialize columns already committed in timestamp order.
    fn finish_ordered(self) -> ChatLogView {
        let n = self.ts.len();
        let text_len = self.text.len();
        let ts_off = 0;
        let user_off = ts_off + 8 * n;
        let ends_off = user_off + 8 * n;
        let text_off = ends_off + 4 * n;
        let mut buf = Vec::with_capacity(text_off + text_len);
        for &t in &self.ts {
            buf.extend_from_slice(&t.to_le_bytes());
        }
        for &u in &self.users {
            buf.extend_from_slice(&u.to_le_bytes());
        }
        for &e in &self.ends {
            buf.extend_from_slice(&e.to_le_bytes());
        }
        buf.extend_from_slice(self.text.as_bytes());
        let layout = ColumnarLayout {
            n,
            ts_off,
            user_off,
            ends_off,
            text_off,
            text_len,
        };
        ChatLogView::new(buf.into(), layout).expect("self-built layout is valid")
    }
}

impl ChatLogView {
    /// Wrap a buffer, validating the layout. Returns `None` when any
    /// section falls outside the buffer, the end-offset array is not
    /// monotone, or the final end-offset disagrees with `text_len`.
    pub fn new(buf: Arc<[u8]>, layout: ColumnarLayout) -> Option<Self> {
        let n = layout.n;
        let sect = |off: usize, len: usize| {
            off.checked_add(len)
                .is_some_and(|end| end <= buf.len())
                .then_some(())
        };
        sect(layout.ts_off, n.checked_mul(8)?)?;
        sect(layout.user_off, n.checked_mul(8)?)?;
        sect(layout.ends_off, n.checked_mul(4)?)?;
        sect(layout.text_off, layout.text_len)?;
        let mut prev = 0u32;
        for c in buf[layout.ends_off..layout.ends_off + 4 * n].chunks_exact(4) {
            let end = u32::from_le_bytes(c.try_into().expect("chunks_exact(4)"));
            if end < prev {
                return None;
            }
            prev = end;
        }
        if prev as usize != layout.text_len {
            return None;
        }
        // Timestamps must be non-decreasing (and not NaN): the range
        // queries binary-search this column, so sortedness is as
        // load-bearing as the offset invariants above.
        let mut prev_ts = f64::NEG_INFINITY;
        for c in buf[layout.ts_off..layout.ts_off + 8 * n].chunks_exact(8) {
            let t = f64::from_le_bytes(c.try_into().expect("chunks_exact(8)"));
            if t.is_nan() || t < prev_ts {
                return None;
            }
            prev_ts = t;
        }
        Some(ChatLogView { buf, layout })
    }

    /// Build an owned columnar view from a [`ChatLog`] (used for the v1
    /// migration path and for tests; O(total text) one-time cost).
    pub fn from_chat_log(chat: &ChatLog) -> Self {
        let n = chat.len();
        let text_len: usize = chat.messages().iter().map(|m| m.text.len()).sum();
        let ts_off = 0;
        let user_off = ts_off + 8 * n;
        let ends_off = user_off + 8 * n;
        let text_off = ends_off + 4 * n;
        let mut buf = Vec::with_capacity(text_off + text_len);
        for m in chat.messages() {
            buf.extend_from_slice(&m.ts.0.to_le_bytes());
        }
        for m in chat.messages() {
            buf.extend_from_slice(&m.user.0.to_le_bytes());
        }
        let mut end = 0u32;
        for m in chat.messages() {
            end += m.text.len() as u32;
            buf.extend_from_slice(&end.to_le_bytes());
        }
        for m in chat.messages() {
            buf.extend_from_slice(m.text.as_bytes());
        }
        let layout = ColumnarLayout {
            n,
            ts_off,
            user_off,
            ends_off,
            text_off,
            text_len,
        };
        ChatLogView::new(buf.into(), layout).expect("self-built layout is valid")
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.layout.n
    }

    /// True when the view holds no messages.
    pub fn is_empty(&self) -> bool {
        self.layout.n == 0
    }

    /// Timestamp of message `i`.
    pub fn ts(&self, i: usize) -> Sec {
        assert!(i < self.layout.n, "message index out of range");
        Sec(f64::from_le_bytes(
            self.buf[self.layout.ts_off + 8 * i..self.layout.ts_off + 8 * i + 8]
                .try_into()
                .expect("bounds checked"),
        ))
    }

    /// Author of message `i`.
    pub fn user(&self, i: usize) -> UserId {
        assert!(i < self.layout.n, "message index out of range");
        UserId(read_u64(&self.buf, self.layout.user_off + 8 * i))
    }

    /// Text of message `i` — borrowed when valid UTF-8.
    pub fn text(&self, i: usize) -> Cow<'_, str> {
        assert!(i < self.layout.n, "message index out of range");
        let start = if i == 0 {
            0
        } else {
            read_u32(&self.buf, self.layout.ends_off + 4 * (i - 1)) as usize
        };
        let end = read_u32(&self.buf, self.layout.ends_off + 4 * i) as usize;
        String::from_utf8_lossy(&self.buf[self.layout.text_off + start..self.layout.text_off + end])
    }

    /// Message `i` as a borrowing reference.
    pub fn get(&self, i: usize) -> ChatMessageRef<'_> {
        ChatMessageRef {
            ts: self.ts(i),
            user: self.user(i),
            text: self.text(i),
        }
    }

    /// Iterate messages in stored (timestamp) order.
    pub fn iter(&self) -> impl Iterator<Item = ChatMessageRef<'_>> + '_ {
        (0..self.layout.n).map(move |i| self.get(i))
    }

    /// Message index range `[lo, hi)` covered by a closed time range
    /// (the same inclusive-endpoints semantics as [`ChatLog::slice`]).
    pub fn msg_range(&self, range: TimeRange) -> (usize, usize) {
        let lo = self.partition_point(|t| t < range.start.0);
        let hi = self.partition_point(|t| t <= range.end.0);
        (lo, hi)
    }

    /// First index whose timestamp does NOT satisfy `pred`, assuming
    /// timestamps are sorted (store-written and builder-built views
    /// guarantee this).
    fn partition_point(&self, pred: impl Fn(f64) -> bool) -> usize {
        let (mut lo, mut hi) = (0usize, self.layout.n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if pred(self.ts(mid).0) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Iterate the messages inside a closed time range.
    pub fn iter_range(&self, range: TimeRange) -> impl Iterator<Item = ChatMessageRef<'_>> + '_ {
        let (lo, hi) = self.msg_range(range);
        (lo..hi).map(move |i| self.get(i))
    }

    /// Number of messages inside `range`.
    pub fn count_in(&self, range: TimeRange) -> usize {
        let (lo, hi) = self.msg_range(range);
        hi - lo
    }

    /// Average messages per hour over `video_len` (the Section VII-D
    /// applicability statistic; LIGHTOR wants ≥ 500 messages/hour).
    pub fn rate_per_hour(&self, video_len: Sec) -> f64 {
        if video_len.0 <= 0.0 {
            return 0.0;
        }
        self.layout.n as f64 / (video_len.0 / 3600.0)
    }

    /// Copy the timestamp column into a `Vec` (for callers that need a
    /// contiguous `&[f64]`, e.g. window layout).
    pub fn timestamps_vec(&self) -> Vec<f64> {
        (0..self.layout.n).map(|i| self.ts(i).0).collect()
    }

    /// Timestamp of the last message, if any.
    pub fn last_ts(&self) -> Option<Sec> {
        self.layout.n.checked_sub(1).map(|i| self.ts(i))
    }

    /// Materialize into an owned [`ChatLog`] (allocates per message).
    pub fn to_chat_log(&self) -> ChatLog {
        ChatLog::new(
            self.iter()
                .map(|m| ChatMessage::new(m.ts, m.user, m.text.into_owned()))
                .collect(),
        )
    }

    /// The shared payload buffer the view borrows.
    pub fn buffer(&self) -> &Arc<[u8]> {
        &self.buf
    }

    /// The raw timestamp column (little-endian `f64 × n`).
    pub fn ts_section(&self) -> &[u8] {
        &self.buf[self.layout.ts_off..self.layout.ts_off + 8 * self.layout.n]
    }

    /// The raw user-id column (little-endian `u64 × n`).
    pub fn user_section(&self) -> &[u8] {
        &self.buf[self.layout.user_off..self.layout.user_off + 8 * self.layout.n]
    }

    /// The raw cumulative text end-offset column (little-endian
    /// `u32 × n`).
    pub fn ends_section(&self) -> &[u8] {
        &self.buf[self.layout.ends_off..self.layout.ends_off + 4 * self.layout.n]
    }

    /// The raw UTF-8 text blob (all message texts, concatenated).
    pub fn text_section(&self) -> &[u8] {
        &self.buf[self.layout.text_off..self.layout.text_off + self.layout.text_len]
    }
}

impl PartialEq<ChatLog> for ChatLogView {
    fn eq(&self, other: &ChatLog) -> bool {
        self.len() == other.len()
            && self.iter().zip(other.messages()).all(|(a, b)| {
                a.ts.0.to_bits() == b.ts.0.to_bits() && a.user == b.user && a.text == b.text
            })
    }
}

impl PartialEq<ChatLogView> for ChatLog {
    fn eq(&self, other: &ChatLogView) -> bool {
        other == self
    }
}

impl PartialEq for ChatLogView {
    /// Bit-exact message equality (timestamp bits, user, text) —
    /// buffer layout details (e.g. section offsets) do not matter.
    fn eq(&self, other: &ChatLogView) -> bool {
        self.len() == other.len()
            && self.iter().zip(other.iter()).all(|(a, b)| {
                a.ts.0.to_bits() == b.ts.0.to_bits() && a.user == b.user && a.text == b.text
            })
    }
}

impl Default for ChatLogView {
    fn default() -> Self {
        ChatLogBuilder::new().finish_sorted()
    }
}

impl ChatLogView {
    /// A view holding no messages.
    pub fn empty() -> Self {
        ChatLogView::default()
    }

    /// Build a view from owned messages (sorts by timestamp, stable).
    pub fn from_messages(messages: Vec<ChatMessage>) -> Self {
        let mut b = ChatLogBuilder::with_capacity(
            messages.len(),
            messages.iter().map(|m| m.text.len()).sum(),
        );
        for m in &messages {
            b.push_message(m.ts.0, m.user, &m.text);
        }
        b.finish_sorted()
    }
}

impl FromIterator<ChatMessage> for ChatLogView {
    fn from_iter<T: IntoIterator<Item = ChatMessage>>(iter: T) -> Self {
        ChatLogView::from_messages(iter.into_iter().collect())
    }
}

// Serialized exactly like [`ChatLog`] (an object with a `messages`
// array), so persisted labelled videos keep their JSON shape across
// the owned→view migration.
impl Serialize for ChatLogView {
    fn to_value(&self) -> serde::Value {
        self.to_chat_log().to_value()
    }
}

impl Deserialize for ChatLogView {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        ChatLog::from_value(v).map(|log| ChatLogView::from_chat_log(&log))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChatLog {
        ChatLog::new(vec![
            ChatMessage::new(1.5, UserId(7), "first"),
            ChatMessage::new(3.25, UserId(8), "第二 unicode ✓"),
            ChatMessage::new(3.25, UserId(9), ""),
            ChatMessage::new(9.0, UserId::BOT, "spam spam"),
        ])
    }

    #[test]
    fn from_chat_log_round_trip() {
        let chat = sample();
        let view = ChatLogView::from_chat_log(&chat);
        assert_eq!(view.len(), 4);
        assert_eq!(view, chat);
        assert_eq!(view.to_chat_log(), chat);
        assert_eq!(view.last_ts(), chat.last_ts());
        assert_eq!(view.text(1), "第二 unicode ✓");
        assert_eq!(view.text(2), "");
        assert!(matches!(view.text(0), Cow::Borrowed("first")));
    }

    #[test]
    fn empty_view() {
        let chat = ChatLog::empty();
        let view = ChatLogView::from_chat_log(&chat);
        assert!(view.is_empty());
        assert_eq!(view.last_ts(), None);
        assert_eq!(view.to_chat_log(), chat);
    }

    #[test]
    fn bad_layouts_are_rejected() {
        let view = ChatLogView::from_chat_log(&sample());
        let buf = view.buffer().clone();
        let good = view.layout;
        // Section out of bounds.
        assert!(ChatLogView::new(
            buf.clone(),
            ColumnarLayout {
                text_len: good.text_len + 1,
                ..good
            }
        )
        .is_none());
        assert!(ChatLogView::new(
            buf.clone(),
            ColumnarLayout {
                n: good.n + 1000,
                ..good
            }
        )
        .is_none());
        // Non-monotone ends: swap two end entries.
        let mut raw = buf.to_vec();
        let a = good.ends_off;
        let b = good.ends_off + 4;
        for k in 0..4 {
            raw.swap(a + k, b + k);
        }
        assert!(ChatLogView::new(raw.into(), good).is_none());
    }

    #[test]
    fn invalid_utf8_is_lossy_not_fatal() {
        let view = ChatLogView::from_chat_log(&sample());
        let mut raw = view.buffer().to_vec();
        // Corrupt the first text byte.
        raw[view.layout.text_off] = 0xFF;
        let corrupt = ChatLogView::new(raw.into(), view.layout).unwrap();
        let text = corrupt.text(0);
        assert!(text.contains('\u{FFFD}'), "lossy replacement expected");
    }

    #[test]
    fn clone_shares_buffer() {
        let view = ChatLogView::from_chat_log(&sample());
        let clone = view.clone();
        assert!(Arc::ptr_eq(view.buffer(), clone.buffer()));
        assert_eq!(clone, sample());
    }

    #[test]
    fn builder_matches_from_chat_log_and_sorts_stably() {
        // Insert out of order with a timestamp tie: finish_sorted must
        // reproduce ChatLog::new's stable ordering exactly.
        let mut b = ChatLogBuilder::with_capacity(4, 32);
        b.push_message(9.0, UserId::BOT, "spam spam");
        b.push_str("fir");
        b.push_str("st");
        b.commit(1.5, UserId(7));
        b.push_message(3.25, UserId(8), "第二 unicode ✓");
        b.push_message(3.25, UserId(9), "");
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        let view = b.finish_sorted();
        let expected = ChatLog::new(vec![
            ChatMessage::new(9.0, UserId::BOT, "spam spam"),
            ChatMessage::new(1.5, UserId(7), "first"),
            ChatMessage::new(3.25, UserId(8), "第二 unicode ✓"),
            ChatMessage::new(3.25, UserId(9), ""),
        ]);
        assert_eq!(view, expected);
        // Tie order: user 8 (inserted before user 9) stays first.
        assert_eq!(view.user(1), UserId(8));
        assert_eq!(view.user(2), UserId(9));
    }

    #[test]
    fn range_queries_match_chat_log_slice() {
        let chat = sample();
        let view = ChatLogView::from_chat_log(&chat);
        for range in [
            TimeRange::from_secs(0.0, 100.0),
            TimeRange::from_secs(1.5, 3.25),
            TimeRange::from_secs(3.25, 3.25),
            TimeRange::from_secs(50.0, 60.0),
        ] {
            assert_eq!(view.count_in(range), chat.count_in(range), "{range}");
            let texts: Vec<String> = view
                .iter_range(range)
                .map(|m| m.text.into_owned())
                .collect();
            let expected: Vec<&str> = chat.slice(range).iter().map(|m| m.text.as_str()).collect();
            assert_eq!(texts, expected, "{range}");
        }
        assert_eq!(
            view.rate_per_hour(Sec::from_hours(0.5)),
            chat.rate_per_hour(Sec::from_hours(0.5))
        );
        assert_eq!(view.timestamps_vec(), vec![1.5, 3.25, 3.25, 9.0]);
        assert_eq!(view.get(0).word_count(), 1);
    }

    #[test]
    fn empty_and_from_messages() {
        assert!(ChatLogView::empty().is_empty());
        assert_eq!(
            ChatLogView::empty().rate_per_hour(Sec::from_hours(1.0)),
            0.0
        );
        let v = ChatLogView::from_messages(vec![
            ChatMessage::new(2.0, UserId(1), "b"),
            ChatMessage::new(1.0, UserId(2), "a"),
        ]);
        assert_eq!(v.text(0), "a");
        let collected: ChatLogView = vec![ChatMessage::new(0.5, UserId(3), "c")]
            .into_iter()
            .collect();
        assert_eq!(collected.len(), 1);
    }

    #[test]
    fn serde_round_trips_in_chat_log_shape() {
        let view = ChatLogView::from_chat_log(&sample());
        let js = serde_json::to_string(&view).unwrap();
        // Same wire shape as the owned log.
        assert_eq!(js, serde_json::to_string(&sample()).unwrap());
        let back: ChatLogView = serde_json::from_str(&js).unwrap();
        assert_eq!(back, view);
    }
}
