//! Time-stamped live-chat messages and ordered chat logs.

use crate::time::{Sec, TimeRange};
use serde::{Deserialize, Serialize};

/// An opaque identifier for a platform user (chat author or viewer).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct UserId(pub u64);

impl UserId {
    /// Identifier used for synthetic bot accounts.
    pub const BOT: UserId = UserId(u64::MAX);
}

/// One chat message posted while the live stream was running.
///
/// The timestamp is relative to the start of the recorded video, which is
/// how live-streaming platforms archive chat replays.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChatMessage {
    /// When the message was posted, in video time.
    pub ts: Sec,
    /// Author of the message.
    pub user: UserId,
    /// Message text (words and emote tokens separated by spaces).
    pub text: String,
}

impl ChatMessage {
    /// Construct a message.
    pub fn new(ts: impl Into<Sec>, user: UserId, text: impl Into<String>) -> Self {
        ChatMessage {
            ts: ts.into(),
            user,
            text: text.into(),
        }
    }

    /// Number of whitespace-separated words — the paper's message length.
    pub fn word_count(&self) -> usize {
        self.text.split_whitespace().count()
    }
}

/// A chronologically ordered log of chat messages for one video.
///
/// The log is the Highlight Initializer's only input. It maintains the
/// ordering invariant on construction so window slicing can use binary
/// search.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ChatLog {
    messages: Vec<ChatMessage>,
}

impl ChatLog {
    /// Build a log from messages, sorting them by timestamp.
    pub fn new(mut messages: Vec<ChatMessage>) -> Self {
        messages.sort_by(|a, b| a.ts.total_cmp(&b.ts));
        ChatLog { messages }
    }

    /// An empty log.
    pub fn empty() -> Self {
        ChatLog {
            messages: Vec::new(),
        }
    }

    /// Append one message, keeping the log sorted.
    pub fn push(&mut self, msg: ChatMessage) {
        let pos = self
            .messages
            .partition_point(|m| m.ts.total_cmp(&msg.ts).is_le());
        self.messages.insert(pos, msg);
    }

    /// All messages in timestamp order.
    pub fn messages(&self) -> &[ChatMessage] {
        &self.messages
    }

    /// Number of messages in the log.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True if the log holds no messages.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Messages with `range.start <= ts <= range.end`.
    pub fn slice(&self, range: TimeRange) -> &[ChatMessage] {
        let lo = self.messages.partition_point(|m| m.ts.0 < range.start.0);
        let hi = self.messages.partition_point(|m| m.ts.0 <= range.end.0);
        &self.messages[lo..hi]
    }

    /// Number of messages inside `range`.
    pub fn count_in(&self, range: TimeRange) -> usize {
        self.slice(range).len()
    }

    /// Timestamp of the last message, if any.
    pub fn last_ts(&self) -> Option<Sec> {
        self.messages.last().map(|m| m.ts)
    }

    /// Average messages per hour over `video_len`.
    ///
    /// This is the applicability statistic from Section VII-D: LIGHTOR wants
    /// at least 500 chat messages per hour.
    pub fn rate_per_hour(&self, video_len: Sec) -> f64 {
        if video_len.0 <= 0.0 {
            return 0.0;
        }
        self.messages.len() as f64 / (video_len.0 / 3600.0)
    }

    /// Consume the log, returning the underlying messages.
    pub fn into_messages(self) -> Vec<ChatMessage> {
        self.messages
    }
}

impl FromIterator<ChatMessage> for ChatLog {
    fn from_iter<T: IntoIterator<Item = ChatMessage>>(iter: T) -> Self {
        ChatLog::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(ts: f64, text: &str) -> ChatMessage {
        ChatMessage::new(ts, UserId(1), text)
    }

    #[test]
    fn log_sorts_on_construction() {
        let log = ChatLog::new(vec![msg(5.0, "b"), msg(1.0, "a"), msg(3.0, "c")]);
        let ts: Vec<f64> = log.messages().iter().map(|m| m.ts.0).collect();
        assert_eq!(ts, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn push_keeps_order() {
        let mut log = ChatLog::new(vec![msg(1.0, "a"), msg(5.0, "c")]);
        log.push(msg(3.0, "b"));
        let ts: Vec<f64> = log.messages().iter().map(|m| m.ts.0).collect();
        assert_eq!(ts, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn slice_is_inclusive_on_both_ends() {
        let log = ChatLog::new((0..10).map(|i| msg(i as f64, "x")).collect());
        let s = log.slice(TimeRange::from_secs(2.0, 5.0));
        assert_eq!(s.len(), 4);
        assert_eq!(s.first().unwrap().ts.0, 2.0);
        assert_eq!(s.last().unwrap().ts.0, 5.0);
    }

    #[test]
    fn slice_outside_is_empty() {
        let log = ChatLog::new(vec![msg(1.0, "a")]);
        assert!(log.slice(TimeRange::from_secs(2.0, 3.0)).is_empty());
        assert_eq!(log.count_in(TimeRange::from_secs(0.0, 10.0)), 1);
    }

    #[test]
    fn word_count_counts_tokens() {
        assert_eq!(msg(0.0, "what a play").word_count(), 3);
        assert_eq!(msg(0.0, "  Kappa   PogChamp ").word_count(), 2);
        assert_eq!(msg(0.0, "").word_count(), 0);
    }

    #[test]
    fn rate_per_hour() {
        let log = ChatLog::new((0..600).map(|i| msg(i as f64, "x")).collect());
        let rate = log.rate_per_hour(Sec::from_hours(0.5));
        assert!((rate - 1200.0).abs() < 1e-9);
        assert_eq!(ChatLog::empty().rate_per_hour(Sec::ZERO), 0.0);
    }

    #[test]
    fn from_iterator_collects_sorted() {
        let log: ChatLog = vec![msg(2.0, "b"), msg(1.0, "a")].into_iter().collect();
        assert_eq!(log.messages()[0].ts.0, 1.0);
        assert_eq!(log.len(), 2);
        assert_eq!(log.last_ts().unwrap().0, 2.0);
    }
}
