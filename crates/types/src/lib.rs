//! Shared domain model for the LIGHTOR reproduction.
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`Sec`] / [`TimeRange`] — video time in seconds and closed intervals,
//! * [`ChatMessage`] / [`ChatLog`] — time-stamped live-chat messages,
//! * [`ChatLogView`] — zero-copy columnar view over a stored chat replay,
//! * [`Highlight`] / [`RedDot`] — ground-truth clips and approximate markers,
//! * [`Play`] / [`Interaction`] / [`Session`] — viewer interaction data,
//! * [`VideoMeta`] / [`LabeledVideo`] — videos and labelled dataset units.
//!
//! The types are deliberately plain (no behaviour beyond geometry and
//! bookkeeping) so that simulators, the LIGHTOR core, the baselines and the
//! platform layer can exchange data without depending on each other.

#![warn(missing_docs)]

mod chat;
mod chat_view;
mod interaction;
mod time;
mod video;

pub use chat::{ChatLog, ChatMessage, UserId};
pub use chat_view::{
    ts_order_key, ChatLogBuilder, ChatLogView, ChatMessageRef, ColumnarLayout, FragRuns,
};
pub use interaction::{Interaction, Play, PlaySet, Session};
pub use time::{Sec, TimeRange};
pub use video::{ChannelId, GameKind, Highlight, LabeledVideo, RedDot, VideoId, VideoMeta};
