//! Chat-LSTM: the character-level chat baseline (Fu et al. 2017, as
//! described in paper Section VII-E).
//!
//! "Chat-LSTM is a character-level 3-layer LSTM-RNN model. For each
//! labeled frame, it treats all chat messages that occur in the next
//! 7-second sliding window as input." The model classifies frames as
//! highlight / non-highlight; prediction takes the top-k frames with the
//! same 120 s separation rule LIGHTOR uses.
//!
//! The two properties the paper measures — data appetite (Figure 10) and
//! cross-game generalization (Figure 11b) — emerge here for the same
//! structural reasons as in the original: thousands of character-level
//! parameters need many labelled windows, and the learned character
//! patterns are game-vocabulary-specific ("pentakill" teaches nothing
//! about "rampage").

use crate::adam::Adam;
use crate::lstm::{bce, BinaryHead, LstmStack};
use crate::tensor::Matrix;
use lightor_simkit::SeedTree;
use lightor_types::{ChatLogView, Highlight, Sec, TimeRange};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Character vocabulary: `a-z`, `0-9`, space, other.
pub const CHAR_VOCAB: usize = 38;

fn char_index(c: char) -> usize {
    match c {
        'a'..='z' => c as usize - 'a' as usize,
        '0'..='9' => 26 + (c as usize - '0' as usize),
        ' ' => 36,
        _ => 37,
    }
}

/// Hyper-parameters. The defaults are the *experiment-scale* settings;
/// tests use smaller ones via struct update.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChatLstmConfig {
    /// Character embedding width.
    pub emb_dim: usize,
    /// LSTM hidden width.
    pub hidden: usize,
    /// Number of stacked LSTM layers (paper: 3).
    pub layers: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Input truncation (characters).
    pub max_chars: usize,
    /// Chat lookahead window per frame (paper: 7 s).
    pub window: f64,
    /// Stride between scored frames.
    pub frame_stride: f64,
    /// Negative:positive sampling ratio during training.
    pub neg_per_pos: f64,
    /// Hard cap on training samples (CPU budget guard).
    pub max_samples: usize,
}

impl Default for ChatLstmConfig {
    fn default() -> Self {
        ChatLstmConfig {
            emb_dim: 12,
            hidden: 32,
            layers: 3,
            epochs: 3,
            lr: 0.01,
            max_chars: 120,
            window: 7.0,
            frame_stride: 5.0,
            neg_per_pos: 1.5,
            max_samples: 4000,
        }
    }
}

/// A labelled video from the baseline's perspective: chat plus
/// frame-level highlight labels.
#[derive(Clone, Copy, Debug)]
pub struct LabeledChatVideo<'a> {
    /// Chat replay (zero-copy columnar view).
    pub chat: &'a ChatLogView,
    /// Video length.
    pub duration: Sec,
    /// Ground-truth highlight clips (frame labels derive from these).
    pub highlights: &'a [Highlight],
}

/// The trained character-level model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChatLstm {
    emb: Matrix,
    stack: LstmStack,
    head: BinaryHead,
    cfg: ChatLstmConfig,
}

/// Character indices of the chat text in `[frame, frame + window]`.
fn window_chars(chat: &ChatLogView, frame: f64, cfg: &ChatLstmConfig) -> Vec<usize> {
    let range = TimeRange::from_secs(frame, frame + cfg.window);
    let mut chars = Vec::with_capacity(cfg.max_chars);
    'outer: for m in chat.iter_range(range) {
        for c in m.text.chars().flat_map(char::to_lowercase) {
            chars.push(char_index(c));
            if chars.len() >= cfg.max_chars {
                break 'outer;
            }
        }
        chars.push(char_index(' '));
        if chars.len() >= cfg.max_chars {
            break;
        }
    }
    chars
}

fn frame_is_highlight(highlights: &[Highlight], frame: f64) -> bool {
    highlights.iter().any(|h| h.range.contains(Sec(frame)))
}

impl ChatLstm {
    /// Train on labelled videos; returns the model and the wall-clock
    /// training time (the Table I column).
    pub fn train(
        videos: &[LabeledChatVideo<'_>],
        cfg: ChatLstmConfig,
        seed: u64,
    ) -> (Self, Duration) {
        let start = Instant::now();
        let root = SeedTree::new(seed).child("chat-lstm");
        let mut rng = root.child("init").rng();

        let mut dims = vec![cfg.emb_dim];
        dims.extend(std::iter::repeat_n(cfg.hidden, cfg.layers.max(1)));
        let mut model = ChatLstm {
            emb: Matrix::xavier(CHAR_VOCAB, cfg.emb_dim, &mut rng),
            stack: LstmStack::new(&dims, &mut rng),
            head: BinaryHead::new(cfg.hidden, &mut rng),
            cfg,
        };

        // Assemble the training frames: all positives, subsampled
        // negatives.
        let mut pos: Vec<(usize, f64)> = Vec::new();
        let mut neg: Vec<(usize, f64)> = Vec::new();
        for (vi, v) in videos.iter().enumerate() {
            let mut t = 0.0;
            while t + cfg.window <= v.duration.0 {
                if frame_is_highlight(v.highlights, t) {
                    pos.push((vi, t));
                } else {
                    neg.push((vi, t));
                }
                t += cfg.frame_stride;
            }
        }
        let mut sample_rng = root.child("sample").rng();
        neg.shuffle(&mut sample_rng);
        neg.truncate(((pos.len() as f64) * cfg.neg_per_pos).ceil() as usize);
        let mut samples: Vec<(usize, f64, f32)> = pos
            .into_iter()
            .map(|(v, t)| (v, t, 1.0))
            .chain(neg.into_iter().map(|(v, t)| (v, t, 0.0)))
            .collect();
        samples.shuffle(&mut sample_rng);
        samples.truncate(cfg.max_samples);

        // One Adam state per parameter tensor.
        let mut opt_emb = Adam::new(model.emb.as_slice().len(), cfg.lr);
        let mut opt_layers: Vec<(Adam, Adam, Adam)> = model
            .stack
            .layers
            .iter()
            .map(|l| {
                (
                    Adam::new(l.w.as_slice().len(), cfg.lr),
                    Adam::new(l.u.as_slice().len(), cfg.lr),
                    Adam::new(l.b.len(), cfg.lr),
                )
            })
            .collect();
        let mut opt_head_w = Adam::new(model.head.w.len(), cfg.lr);
        let mut opt_head_b = Adam::new(1, cfg.lr);

        let mut order: Vec<usize> = (0..samples.len()).collect();
        for epoch in 0..cfg.epochs {
            let mut epoch_rng = root.child("epoch").index(epoch as u64).rng();
            order.shuffle(&mut epoch_rng);
            for &si in &order {
                let (vi, t, y) = samples[si];
                let chars = window_chars(videos[vi].chat, t, &model.cfg);
                if chars.is_empty() {
                    continue;
                }
                model.train_step(
                    &chars,
                    y,
                    &mut opt_emb,
                    &mut opt_layers,
                    &mut opt_head_w,
                    &mut opt_head_b,
                );
            }
        }
        (model, start.elapsed())
    }

    fn train_step(
        &mut self,
        chars: &[usize],
        y: f32,
        opt_emb: &mut Adam,
        opt_layers: &mut [(Adam, Adam, Adam)],
        opt_head_w: &mut Adam,
        opt_head_b: &mut Adam,
    ) {
        // Forward.
        let xs: Vec<Vec<f32>> = chars.iter().map(|&c| self.emb.row(c).to_vec()).collect();
        let (hs, caches) = self.stack.forward(&xs);
        let h_last = hs.last().expect("non-empty sequence");
        let p = self.head.forward(h_last);

        // Backward.
        let mut gw_head = vec![0.0f32; self.head.w.len()];
        let (gb_head, dh_last) = self.head.backward(h_last, p, y, &mut gw_head);
        let mut dh = vec![vec![0.0f32; self.stack.out_dim()]; xs.len()];
        *dh.last_mut().expect("non-empty") = dh_last;
        let mut grads = self.stack.zero_grads();
        let dxs = self.stack.backward(&caches, &dh, &mut grads);

        // Embedding gradients: scatter dx back to the character rows.
        let mut gemb = Matrix::zeros(CHAR_VOCAB, self.cfg.emb_dim);
        for (&c, dx) in chars.iter().zip(&dxs) {
            for (j, &d) in dx.iter().enumerate() {
                *gemb.get_mut(c, j) += d;
            }
        }

        // Updates.
        opt_emb.step(self.emb.as_mut_slice(), gemb.as_slice());
        for ((layer, grad), (ow, ou, ob)) in self
            .stack
            .layers
            .iter_mut()
            .zip(&grads)
            .zip(opt_layers.iter_mut())
        {
            ow.step(layer.w.as_mut_slice(), grad.w.as_slice());
            ou.step(layer.u.as_mut_slice(), grad.u.as_slice());
            ob.step(&mut layer.b, &grad.b);
        }
        opt_head_w.step(&mut self.head.w, &gw_head);
        let mut b = [self.head.b];
        opt_head_b.step(&mut b, &[gb_head]);
        self.head.b = b[0];
    }

    /// P(frame is a highlight) from the next-window chat.
    pub fn score_frame(&self, chat: &ChatLogView, frame: Sec) -> f64 {
        let chars = window_chars(chat, frame.0, &self.cfg);
        if chars.is_empty() {
            return 0.0;
        }
        let xs: Vec<Vec<f32>> = chars.iter().map(|&c| self.emb.row(c).to_vec()).collect();
        let (hs, _) = self.stack.forward(&xs);
        self.head.forward(hs.last().expect("non-empty")) as f64
    }

    /// Average training BCE over a probe set — used by tests to verify
    /// learning actually happened.
    pub fn loss_on(&self, video: &LabeledChatVideo<'_>, frames: &[f64]) -> f64 {
        let mut total = 0.0;
        for &t in frames {
            let y = if frame_is_highlight(video.highlights, t) {
                1.0
            } else {
                0.0
            };
            let p = self.score_frame(video.chat, Sec(t)) as f32;
            total += bce(p, y) as f64;
        }
        total / frames.len().max(1) as f64
    }

    /// Top-k frame detections with the paper's 120 s separation rule.
    pub fn detect(&self, chat: &ChatLogView, duration: Sec, k: usize, min_sep: f64) -> Vec<Sec> {
        let mut scored: Vec<(f64, f64)> = Vec::new();
        let mut t = 0.0;
        while t + self.cfg.window <= duration.0 {
            scored.push((self.score_frame(chat, Sec(t)), t));
            t += self.cfg.frame_stride;
        }
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.total_cmp(&b.1)));
        let mut chosen: Vec<Sec> = Vec::with_capacity(k);
        for (_, pos) in scored {
            if chosen.iter().all(|c| (c.0 - pos).abs() > min_sep) {
                chosen.push(Sec(pos));
                if chosen.len() == k {
                    break;
                }
            }
        }
        chosen
    }

    /// The configuration this model was trained with.
    pub fn config(&self) -> &ChatLstmConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_types::{ChatMessage, UserId};

    /// Tiny config so debug-mode tests stay fast.
    fn tiny() -> ChatLstmConfig {
        ChatLstmConfig {
            emb_dim: 6,
            hidden: 10,
            layers: 1,
            epochs: 6,
            lr: 0.02,
            max_chars: 40,
            window: 7.0,
            frame_stride: 5.0,
            neg_per_pos: 1.0,
            max_samples: 400,
        }
    }

    /// A toy video: hype chat inside highlights, chatter outside.
    fn toy_video(n_highlights: usize, seed_off: u64) -> (ChatLogView, Vec<Highlight>, Sec) {
        let duration = 200.0 * (n_highlights as f64 + 1.0);
        let mut msgs = Vec::new();
        let mut highlights = Vec::new();
        for i in 0..n_highlights {
            let s = 150.0 + 200.0 * i as f64;
            highlights.push(Highlight::from_secs(s, s + 20.0));
            // Dense short hype during the highlight.
            let mut t = s;
            while t < s + 20.0 {
                msgs.push(ChatMessage::new(
                    t,
                    UserId(t as u64 + seed_off),
                    "gg wow kill",
                ));
                t += 1.0;
            }
        }
        // Sparse long chatter elsewhere.
        let mut t = 0.0;
        while t < duration {
            msgs.push(ChatMessage::new(
                t,
                UserId(9000 + t as u64),
                "anyone know what song this is today",
            ));
            t += 12.0;
        }
        (ChatLogView::from_messages(msgs), highlights, Sec(duration))
    }

    #[test]
    fn char_vocab_maps_all_chars() {
        assert_eq!(char_index('a'), 0);
        assert_eq!(char_index('z'), 25);
        assert_eq!(char_index('0'), 26);
        assert_eq!(char_index('9'), 35);
        assert_eq!(char_index(' '), 36);
        assert_eq!(char_index('!'), 37);
        assert_eq!(char_index('字'), 37);
    }

    #[test]
    fn window_chars_truncates() {
        let (chat, _, _) = toy_video(1, 0);
        let cfg = tiny();
        let chars = window_chars(&chat, 150.0, &cfg);
        assert!(!chars.is_empty());
        assert!(chars.len() <= cfg.max_chars);
        let empty = window_chars(&ChatLogView::empty(), 0.0, &cfg);
        assert!(empty.is_empty());
    }

    #[test]
    fn learns_to_separate_hype_from_chatter() {
        let (chat, highlights, duration) = toy_video(3, 0);
        let video = LabeledChatVideo {
            chat: &chat,
            duration,
            highlights: &highlights,
        };
        let (model, elapsed) = ChatLstm::train(&[video], tiny(), 11);
        assert!(elapsed.as_nanos() > 0);

        let p_high = model.score_frame(&chat, Sec(155.0));
        let p_low = model.score_frame(&chat, Sec(50.0));
        assert!(
            p_high > p_low + 0.2,
            "highlight frame {p_high} vs background {p_low}"
        );
    }

    #[test]
    fn detect_finds_highlights_with_separation() {
        let (chat, highlights, duration) = toy_video(3, 7);
        let video = LabeledChatVideo {
            chat: &chat,
            duration,
            highlights: &highlights,
        };
        let (model, _) = ChatLstm::train(&[video], tiny(), 12);
        let dots = model.detect(&chat, duration, 3, 120.0);
        assert_eq!(dots.len(), 3);
        for i in 0..dots.len() {
            for j in (i + 1)..dots.len() {
                assert!((dots[i].0 - dots[j].0).abs() > 120.0);
            }
        }
        // At least 2 of 3 dots near a real highlight (chat is undelayed in
        // this toy, so the LSTM can hit them).
        let hits = dots
            .iter()
            .filter(|d| highlights.iter().any(|h| h.accepts_dot(**d, Sec(10.0))))
            .count();
        assert!(hits >= 2, "{hits}/3 hits");
    }

    #[test]
    fn empty_chat_scores_zero() {
        let (chat, highlights, duration) = toy_video(1, 0);
        let video = LabeledChatVideo {
            chat: &chat,
            duration,
            highlights: &highlights,
        };
        let (model, _) = ChatLstm::train(&[video], tiny(), 13);
        assert_eq!(model.score_frame(&ChatLogView::empty(), Sec(0.0)), 0.0);
    }

    #[test]
    fn training_is_deterministic() {
        let (chat, highlights, duration) = toy_video(2, 0);
        let video = LabeledChatVideo {
            chat: &chat,
            duration,
            highlights: &highlights,
        };
        let cfg = ChatLstmConfig {
            epochs: 1,
            ..tiny()
        };
        let (a, _) = ChatLstm::train(&[video], cfg, 14);
        let (b, _) = ChatLstm::train(&[video], cfg, 14);
        assert_eq!(
            a.score_frame(&chat, Sec(155.0)),
            b.score_frame(&chat, Sec(155.0))
        );
    }
}
