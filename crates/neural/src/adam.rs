//! The Adam optimizer (Kingma & Ba 2015) over flat parameter buffers.

use serde::{Deserialize, Serialize};

/// Adam state for one parameter tensor.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Adam {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
}

impl Adam {
    /// Optimizer for a tensor of `n` parameters with learning rate `lr`.
    pub fn new(n: usize, lr: f32) -> Self {
        Adam {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Apply one update step: `params -= lr * m̂ / (sqrt(v̂) + eps)`.
    /// Panics if the buffer sizes disagree with construction.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "param size mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad size mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mh = self.m[i] / b1t;
            let vh = self.v[i] / b2t;
            params[i] -= self.lr * mh / (vh.sqrt() + self.eps);
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_quadratic() {
        // f(x) = (x - 3)^2, gradient 2(x - 3).
        let mut x = vec![0.0f32];
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x = {}", x[0]);
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn handles_multidimensional_params() {
        // f(x, y) = x^2 + 10 y^2.
        let mut p = vec![5.0f32, -4.0];
        let mut opt = Adam::new(2, 0.2);
        for _ in 0..600 {
            let g = vec![2.0 * p[0], 20.0 * p[1]];
            opt.step(&mut p, &g);
        }
        assert!(p[0].abs() < 0.05 && p[1].abs() < 0.05, "p = {p:?}");
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        let mut opt = Adam::new(2, 0.1);
        opt.step(&mut [0.0], &[0.0]);
    }

    #[test]
    fn zero_gradient_is_stationary() {
        let mut p = vec![1.0f32];
        let mut opt = Adam::new(1, 0.1);
        opt.step(&mut p, &[0.0]);
        assert_eq!(p[0], 1.0);
    }
}
