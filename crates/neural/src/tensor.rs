//! A minimal row-major `f32` matrix — just enough linear algebra for LSTM
//! training on CPU.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Dense row-major matrix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Xavier/Glorot-uniform initialization.
    pub fn xavier<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        Matrix {
            rows,
            cols,
            data: (0..rows * cols)
                .map(|_| rng.gen_range(-bound..bound))
                .collect(),
        }
    }

    /// Build from an explicit row-major buffer. Panics on size mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat parameter buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The flat parameter buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `y += self · x` (matrix-vector). Panics on dimension mismatch.
    pub fn matvec_acc(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec input dim");
        assert_eq!(y.len(), self.rows, "matvec output dim");
        for (r, yr) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0f32;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yr += acc;
        }
    }

    /// `y += selfᵀ · x` (transposed matrix-vector) — used for gradient
    /// flow back to layer inputs.
    pub fn t_matvec_acc(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.rows, "t_matvec input dim");
        assert_eq!(y.len(), self.cols, "t_matvec output dim");
        for (r, &xr) in x.iter().enumerate() {
            let row = self.row(r);
            for (yc, a) in y.iter_mut().zip(row) {
                *yc += a * xr;
            }
        }
    }

    /// `self += alpha · (a ⊗ b)` (rank-1 accumulate) — weight gradients.
    pub fn outer_acc(&mut self, a: &[f32], b: &[f32], alpha: f32) {
        assert_eq!(a.len(), self.rows, "outer rows");
        assert_eq!(b.len(), self.cols, "outer cols");
        for (r, &av) in a.iter().enumerate() {
            let ar = av * alpha;
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (w, bc) in row.iter_mut().zip(b) {
                *w += ar * bc;
            }
        }
    }

    /// Set every element to zero (gradient reset between steps).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut y = vec![0.0; 2];
        m.matvec_acc(&[1.0, 0.0, -1.0], &mut y);
        assert_eq!(y, vec![-2.0, -2.0]);
        // Accumulates rather than overwrites.
        m.matvec_acc(&[1.0, 0.0, -1.0], &mut y);
        assert_eq!(y, vec![-4.0, -4.0]);
    }

    #[test]
    fn t_matvec_matches_manual() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut y = vec![0.0; 3];
        m.t_matvec_acc(&[1.0, -1.0], &mut y);
        assert_eq!(y, vec![-3.0, -3.0, -3.0]);
    }

    #[test]
    fn outer_acc_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.outer_acc(&[1.0, 2.0], &[3.0, 4.0], 0.5);
        assert_eq!(m.as_slice(), &[1.5, 2.0, 3.0, 4.0]);
        m.fill_zero();
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn xavier_is_bounded_and_seeded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let m = Matrix::xavier(8, 8, &mut rng);
        let bound = (6.0 / 16.0f32).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(7);
        assert_eq!(m, Matrix::xavier(8, 8, &mut rng2));
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn from_vec_validates() {
        Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn accessors() {
        let mut m = Matrix::zeros(2, 3);
        *m.get_mut(1, 2) = 5.0;
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!((m.rows(), m.cols()), (2, 3));
    }
}
