//! From-scratch neural substrate for the paper's deep-learning baselines
//! (Fu et al., EMNLP 2017: Chat-LSTM and Joint-LSTM).
//!
//! The paper compares LIGHTOR against a character-level 3-layer LSTM over
//! chat (Chat-LSTM) and a joint video+chat model (Joint-LSTM) trained on
//! 4×V100 GPUs in PyTorch. Neither PyTorch nor GPUs are available to this
//! reproduction, so this crate implements the training stack directly:
//!
//! * [`tensor`] — a minimal row-major `f32` matrix,
//! * [`lstm`] — an LSTM layer with full backpropagation-through-time,
//!   verified against numerical gradients,
//! * [`adam`] — the Adam optimizer,
//! * [`chat_lstm`] — the character-level chat baseline,
//! * [`visual`] — *synthetic* per-frame visual features standing in for
//!   CNN image embeddings (see DESIGN.md for the substitution argument),
//! * [`joint_lstm`] — the joint video+chat baseline.
//!
//! Scale is reduced (hidden ≈ 32 vs hundreds) but the comparison the
//! paper makes — training-data appetite, training time, and cross-game
//! generalization — is preserved because those are properties of the
//! model *class*, not its width.

#![warn(missing_docs)]

pub mod adam;
pub mod chat_lstm;
pub mod joint_lstm;
pub mod lstm;
pub mod tensor;
pub mod visual;

pub use adam::Adam;
pub use chat_lstm::{ChatLstm, ChatLstmConfig, LabeledChatVideo};
pub use joint_lstm::{JointLstm, JointLstmConfig};
pub use lstm::{BinaryHead, Lstm, LstmStack};
pub use tensor::Matrix;
pub use visual::{synthetic_frame_features, VisualConfig, VISUAL_DIM};
