//! Synthetic per-frame visual features.
//!
//! **Substitution note (see DESIGN.md).** The paper's Joint-LSTM consumes
//! image features from a pre-trained CNN. No video frames exist in this
//! reproduction, so we synthesize a low-dimensional feature stream with
//! the properties that matter to the comparison:
//!
//! * frames inside/around ground-truth highlights carry an elevated
//!   "excitement" signal (fights have particles, kills have banners);
//! * the signal is *game-dependent*: which feature dimensions express
//!   excitement differs between Dota2 and LoL (different UI, different
//!   effects), which is precisely why the paper finds the video model
//!   does not transfer across games (Figure 11b);
//! * everything is overlaid with temporally autocorrelated noise (camera
//!   motion, scene changes).

use lightor_simkit::SeedTree;
use lightor_types::{GameKind, LabeledVideo};
use rand::Rng;

/// Width of the synthetic visual feature vector.
pub const VISUAL_DIM: usize = 4;

/// Generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct VisualConfig {
    /// Frames per second (the paper's models run near 1 Hz on features).
    pub hz: f64,
    /// Std-dev of the white-noise component.
    pub noise: f32,
    /// AR(1) coefficient of the autocorrelated noise.
    pub rho: f32,
    /// Seconds of post-highlight signal decay (replay banners linger).
    pub decay: f64,
}

impl Default for VisualConfig {
    fn default() -> Self {
        VisualConfig {
            hz: 1.0,
            noise: 0.25,
            rho: 0.8,
            decay: 8.0,
        }
    }
}

/// How strongly each game's excitement loads on feature dims 0 and 1.
/// The rotation between games is what breaks cross-game transfer.
fn game_loading(game: GameKind) -> (f32, f32) {
    match game {
        GameKind::Dota2 => (0.9, 0.1),
        GameKind::Lol => (0.1, 0.9),
    }
}

/// Ground-truth excitement level at time `t`, with per-highlight
/// amplitudes (some plays are visually subtle — a CNN would not score a
/// stealthy backdoor like a five-man wombo).
fn excitement(video: &LabeledVideo, amps: &[f32], t: f64, decay: f64) -> f32 {
    let mut e: f64 = 0.0;
    for (h, &amp) in video.highlights.iter().zip(amps) {
        let s = h.start().0;
        let end = h.end().0;
        let v = if t < s - 2.0 || t > end + decay {
            0.0
        } else if t < s + 2.0 {
            (t - (s - 2.0)) / 4.0
        } else if t <= end {
            1.0
        } else {
            1.0 - (t - end) / decay
        };
        e = e.max(v * amp as f64);
    }
    e as f32
}

/// Generate the frame-feature stream for one video.
pub fn synthetic_frame_features(
    video: &LabeledVideo,
    cfg: &VisualConfig,
    seed: u64,
) -> Vec<[f32; VISUAL_DIM]> {
    let n = (video.meta.duration.0 * cfg.hz).floor() as usize;
    let mut rng = SeedTree::new(seed)
        .child("visual")
        .index(video.meta.id.0)
        .rng();
    let (l0, l1) = game_loading(video.meta.game);

    // Per-highlight visual prominence.
    let amps: Vec<f32> = video
        .highlights
        .iter()
        .map(|_| rng.gen_range(0.55..1.0f32))
        .collect();

    // AR(1) noise normalized to unit stationary variance, so `cfg.noise`
    // IS the noise std-dev (innovation scaled by sqrt(1 - rho^2); the
    // 1.732 factor makes the uniform innovation unit-variance).
    let innov = (1.0 - cfg.rho * cfg.rho).sqrt() * 1.732;
    let mut ar = [0.0f32; VISUAL_DIM];
    let mut out = Vec::with_capacity(n);
    for f in 0..n {
        let t = f as f64 / cfg.hz;
        let e = excitement(video, &amps, t, cfg.decay);
        for a in &mut ar {
            *a = cfg.rho * *a + innov * rng.gen_range(-1.0..1.0f32);
        }
        // Dim 2 is a weak *shared* excitement proxy (generic motion): it
        // keeps cross-game transfer above chance without making the
        // game-specific dims redundant — matching the partial (not total)
        // degradation the paper reports in Figure 11b.
        out.push([
            l0 * e + cfg.noise * ar[0],
            l1 * e + cfg.noise * ar[1],
            0.1 * e + cfg.noise * ar[2],
            cfg.noise * ar[3],
        ]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_types::{ChannelId, ChatLogView, Highlight, Sec, VideoId, VideoMeta};

    fn video(game: GameKind) -> LabeledVideo {
        LabeledVideo {
            meta: VideoMeta {
                id: VideoId(1),
                channel: ChannelId(0),
                game,
                duration: Sec(600.0),
                viewers: 100,
            },
            chat: ChatLogView::empty(),
            highlights: vec![Highlight::from_secs(100.0, 120.0)],
        }
    }

    #[test]
    fn frame_count_matches_duration() {
        let v = video(GameKind::Dota2);
        let frames = synthetic_frame_features(&v, &VisualConfig::default(), 1);
        assert_eq!(frames.len(), 600);
    }

    #[test]
    fn highlight_frames_are_hotter() {
        let v = video(GameKind::Dota2);
        let frames = synthetic_frame_features(&v, &VisualConfig::default(), 2);
        let inside: f32 = (102..118).map(|t| frames[t][0]).sum::<f32>() / 16.0;
        let outside: f32 = (300..316).map(|t| frames[t][0]).sum::<f32>() / 16.0;
        assert!(
            inside > outside + 0.4,
            "inside {inside} vs outside {outside}"
        );
    }

    #[test]
    fn games_load_different_dimensions() {
        let d = video(GameKind::Dota2);
        let l = {
            let mut v = video(GameKind::Lol);
            v.meta.id = VideoId(1);
            v
        };
        let fd = synthetic_frame_features(&d, &VisualConfig::default(), 3);
        let fl = synthetic_frame_features(&l, &VisualConfig::default(), 3);
        // Dota2 expresses excitement in dim 0, LoL in dim 1.
        let d_dim0: f32 = (102..118).map(|t| fd[t][0]).sum();
        let d_dim1: f32 = (102..118).map(|t| fd[t][1]).sum();
        let l_dim0: f32 = (102..118).map(|t| fl[t][0]).sum();
        let l_dim1: f32 = (102..118).map(|t| fl[t][1]).sum();
        assert!(d_dim0 > d_dim1, "dota2 {d_dim0} vs {d_dim1}");
        assert!(l_dim1 > l_dim0, "lol {l_dim0} vs {l_dim1}");
    }

    #[test]
    fn excitement_kernel_shape() {
        let v = video(GameKind::Dota2);
        let amps = vec![1.0f32];
        assert_eq!(excitement(&v, &amps, 50.0, 8.0), 0.0);
        assert!((excitement(&v, &amps, 110.0, 8.0) - 1.0).abs() < 1e-6);
        let mid_decay = excitement(&v, &amps, 124.0, 8.0);
        assert!(mid_decay > 0.0 && mid_decay < 1.0);
        assert_eq!(excitement(&v, &amps, 200.0, 8.0), 0.0);
        // Amplitude scales the plateau.
        assert!((excitement(&v, &[0.5], 110.0, 8.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let v = video(GameKind::Lol);
        let a = synthetic_frame_features(&v, &VisualConfig::default(), 9);
        let b = synthetic_frame_features(&v, &VisualConfig::default(), 9);
        assert_eq!(a, b);
    }
}
