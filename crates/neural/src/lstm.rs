//! LSTM layer, stacked LSTM, token embedding and sigmoid head, with full
//! backpropagation-through-time. Gradients are verified against central
//! finite differences in the test module.

use crate::tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

#[inline]
fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// One LSTM layer. Gate order in the stacked weight matrices is
/// `[input, forget, cell, output]`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Lstm {
    n_in: usize,
    n_h: usize,
    /// Input weights, `4h × n_in`.
    pub w: Matrix,
    /// Recurrent weights, `4h × n_h`.
    pub u: Matrix,
    /// Gate biases, `4h` (forget-gate slice initialized to 1).
    pub b: Vec<f32>,
}

/// Everything the backward pass needs about one timestep.
#[derive(Clone, Debug)]
pub struct StepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    tc: Vec<f32>,
}

/// Gradient accumulators mirroring [`Lstm`]'s parameters.
#[derive(Clone, Debug)]
pub struct LstmGrads {
    /// d/dW.
    pub w: Matrix,
    /// d/dU.
    pub u: Matrix,
    /// d/db.
    pub b: Vec<f32>,
}

impl Lstm {
    /// Xavier-initialized layer; forget-gate bias starts at 1 so early
    /// training does not forget everything.
    pub fn new<R: Rng + ?Sized>(n_in: usize, n_h: usize, rng: &mut R) -> Self {
        let mut b = vec![0.0; 4 * n_h];
        b[n_h..2 * n_h].iter_mut().for_each(|v| *v = 1.0);
        Lstm {
            n_in,
            n_h,
            w: Matrix::xavier(4 * n_h, n_in, rng),
            u: Matrix::xavier(4 * n_h, n_h, rng),
            b,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.n_h
    }

    /// Input width.
    pub fn input(&self) -> usize {
        self.n_in
    }

    /// Zeroed gradient accumulators for this layer.
    pub fn zero_grads(&self) -> LstmGrads {
        LstmGrads {
            w: Matrix::zeros(4 * self.n_h, self.n_in),
            u: Matrix::zeros(4 * self.n_h, self.n_h),
            b: vec![0.0; 4 * self.n_h],
        }
    }

    /// Run the layer over a sequence, returning the hidden states and the
    /// caches for BPTT.
    pub fn forward(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, Vec<StepCache>) {
        let h = self.n_h;
        let mut h_prev = vec![0.0f32; h];
        let mut c_prev = vec![0.0f32; h];
        let mut hs = Vec::with_capacity(xs.len());
        let mut caches = Vec::with_capacity(xs.len());

        for x in xs {
            assert_eq!(x.len(), self.n_in, "input width mismatch");
            let mut z = self.b.clone();
            self.w.matvec_acc(x, &mut z);
            self.u.matvec_acc(&h_prev, &mut z);

            let mut i = vec![0.0f32; h];
            let mut f = vec![0.0f32; h];
            let mut g = vec![0.0f32; h];
            let mut o = vec![0.0f32; h];
            let mut c = vec![0.0f32; h];
            let mut tc = vec![0.0f32; h];
            let mut h_t = vec![0.0f32; h];
            for j in 0..h {
                i[j] = sigmoid(z[j]);
                f[j] = sigmoid(z[h + j]);
                g[j] = z[2 * h + j].tanh();
                o[j] = sigmoid(z[3 * h + j]);
                c[j] = f[j] * c_prev[j] + i[j] * g[j];
                tc[j] = c[j].tanh();
                h_t[j] = o[j] * tc[j];
            }
            caches.push(StepCache {
                x: x.clone(),
                h_prev: h_prev.clone(),
                c_prev: c_prev.clone(),
                i,
                f,
                g,
                o,
                tc,
            });
            c_prev = c;
            h_prev = h_t.clone();
            hs.push(h_t);
        }
        (hs, caches)
    }

    /// BPTT. `dh[t]` holds dL/dh_t contributions from above (the head
    /// and/or the next layer); returns dL/dx_t per step and accumulates
    /// parameter gradients into `grads`.
    pub fn backward(
        &self,
        caches: &[StepCache],
        dh: &[Vec<f32>],
        grads: &mut LstmGrads,
    ) -> Vec<Vec<f32>> {
        let h = self.n_h;
        let t_len = caches.len();
        assert_eq!(dh.len(), t_len, "dh length mismatch");
        let mut dxs = vec![vec![0.0f32; self.n_in]; t_len];
        let mut dh_next = vec![0.0f32; h];
        let mut dc_next = vec![0.0f32; h];

        for t in (0..t_len).rev() {
            let cache = &caches[t];
            let mut dz = vec![0.0f32; 4 * h];
            for j in 0..h {
                let dht = dh[t][j] + dh_next[j];
                let tc = cache.tc[j];
                let o = cache.o[j];
                let dc = dht * o * (1.0 - tc * tc) + dc_next[j];
                let i = cache.i[j];
                let f = cache.f[j];
                let g = cache.g[j];
                let do_ = dht * tc;
                let di = dc * g;
                let df = dc * cache.c_prev[j];
                let dg = dc * i;
                dz[j] = di * i * (1.0 - i);
                dz[h + j] = df * f * (1.0 - f);
                dz[2 * h + j] = dg * (1.0 - g * g);
                dz[3 * h + j] = do_ * o * (1.0 - o);
                dc_next[j] = dc * f;
            }
            grads.w.outer_acc(&dz, &cache.x, 1.0);
            grads.u.outer_acc(&dz, &cache.h_prev, 1.0);
            for (gb, d) in grads.b.iter_mut().zip(&dz) {
                *gb += d;
            }
            self.w.t_matvec_acc(&dz, &mut dxs[t]);
            dh_next.iter_mut().for_each(|v| *v = 0.0);
            self.u.t_matvec_acc(&dz, &mut dh_next);
        }
        dxs
    }
}

/// A stack of LSTM layers (the paper's Chat-LSTM uses 3).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LstmStack {
    /// The layers, bottom first.
    pub layers: Vec<Lstm>,
}

impl LstmStack {
    /// Build a stack: `dims = [input, h1, h2, ...]`.
    pub fn new<R: Rng + ?Sized>(dims: &[usize], rng: &mut R) -> Self {
        assert!(dims.len() >= 2, "need at least one layer");
        let layers = dims
            .windows(2)
            .map(|w| Lstm::new(w[0], w[1], rng))
            .collect();
        LstmStack { layers }
    }

    /// Hidden width of the top layer.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").hidden()
    }

    /// Forward through all layers; returns the top layer's hidden
    /// sequence and per-layer caches.
    pub fn forward(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, Vec<Vec<StepCache>>) {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut seq: Vec<Vec<f32>> = xs.to_vec();
        for layer in &self.layers {
            let (hs, cache) = layer.forward(&seq);
            caches.push(cache);
            seq = hs;
        }
        (seq, caches)
    }

    /// Backward through all layers; `dh_top[t]` is dL/dh of the top layer.
    /// Accumulates into `grads` (one per layer) and returns dL/dx.
    pub fn backward(
        &self,
        caches: &[Vec<StepCache>],
        dh_top: &[Vec<f32>],
        grads: &mut [LstmGrads],
    ) -> Vec<Vec<f32>> {
        assert_eq!(grads.len(), self.layers.len());
        let mut dh: Vec<Vec<f32>> = dh_top.to_vec();
        for (layer, (cache, grad)) in self
            .layers
            .iter()
            .zip(caches.iter().zip(grads.iter_mut()))
            .rev()
        {
            dh = layer.backward(cache, &dh, grad);
        }
        dh
    }

    /// Zeroed per-layer gradient accumulators.
    pub fn zero_grads(&self) -> Vec<LstmGrads> {
        self.layers.iter().map(Lstm::zero_grads).collect()
    }
}

/// Sigmoid readout over the final hidden state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BinaryHead {
    /// Readout weights.
    pub w: Vec<f32>,
    /// Readout bias.
    pub b: f32,
}

impl BinaryHead {
    /// Xavier-ish initialization.
    pub fn new<R: Rng + ?Sized>(n_in: usize, rng: &mut R) -> Self {
        let bound = (6.0 / (n_in + 1) as f32).sqrt();
        BinaryHead {
            w: (0..n_in).map(|_| rng.gen_range(-bound..bound)).collect(),
            b: 0.0,
        }
    }

    /// P(positive | h).
    pub fn forward(&self, h: &[f32]) -> f32 {
        assert_eq!(h.len(), self.w.len());
        let z: f32 = self.b + self.w.iter().zip(h).map(|(w, x)| w * x).sum::<f32>();
        sigmoid(z)
    }

    /// BCE gradient at `(p, y)`: accumulates dL/dw into `gw`, returns
    /// `(dL/db, dL/dh)`.
    pub fn backward(&self, h: &[f32], p: f32, y: f32, gw: &mut [f32]) -> (f32, Vec<f32>) {
        let dlogit = p - y;
        for (g, x) in gw.iter_mut().zip(h) {
            *g += dlogit * x;
        }
        let dh = self.w.iter().map(|w| dlogit * w).collect();
        (dlogit, dh)
    }
}

/// Binary cross-entropy, clamped for numerical safety.
pub fn bce(p: f32, y: f32) -> f32 {
    let p = p.clamp(1e-7, 1.0 - 1e-7);
    -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    type Rng64 = rand::rngs::StdRng;

    fn loss_of(lstm: &Lstm, head: &BinaryHead, xs: &[Vec<f32>], y: f32) -> f32 {
        let (hs, _) = lstm.forward(xs);
        bce(head.forward(hs.last().unwrap()), y)
    }

    #[test]
    fn forward_shapes() {
        let mut rng = Rng64::seed_from_u64(1);
        let lstm = Lstm::new(3, 4, &mut rng);
        let xs: Vec<Vec<f32>> = (0..5).map(|i| vec![i as f32 * 0.1; 3]).collect();
        let (hs, caches) = lstm.forward(&xs);
        assert_eq!(hs.len(), 5);
        assert_eq!(hs[0].len(), 4);
        assert_eq!(caches.len(), 5);
        // Hidden values bounded by tanh×sigmoid.
        assert!(hs.iter().flatten().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn gradient_check_lstm_weights() {
        let mut rng = Rng64::seed_from_u64(2);
        let mut lstm = Lstm::new(3, 4, &mut rng);
        let head = BinaryHead::new(4, &mut rng);
        let xs: Vec<Vec<f32>> = (0..6)
            .map(|i| vec![(i as f32 * 0.37).sin(), 0.2, -0.4 + i as f32 * 0.1])
            .collect();
        let y = 1.0;

        // Analytic gradients.
        let (hs, caches) = lstm.forward(&xs);
        let p = head.forward(hs.last().unwrap());
        let mut gw_head = vec![0.0f32; 4];
        let (_, dh_last) = head.backward(hs.last().unwrap(), p, y, &mut gw_head);
        let mut dh = vec![vec![0.0f32; 4]; xs.len()];
        *dh.last_mut().unwrap() = dh_last;
        let mut grads = lstm.zero_grads();
        lstm.backward(&caches, &dh, &mut grads);

        // Numerical check on a sample of W, U, b entries.
        let eps = 1e-3f32;
        let probes: Vec<(usize, usize)> = vec![(0, 0), (3, 2), (7, 1), (12, 0), (15, 2)];
        for &(r, c) in &probes {
            let orig = lstm.w.get(r, c);
            *lstm.w.get_mut(r, c) = orig + eps;
            let lp = loss_of(&lstm, &head, &xs, y);
            *lstm.w.get_mut(r, c) = orig - eps;
            let lm = loss_of(&lstm, &head, &xs, y);
            *lstm.w.get_mut(r, c) = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.w.get(r, c);
            assert!(
                (num - ana).abs() < 2e-2 * num.abs().max(ana.abs()).max(1e-2),
                "W[{r},{c}]: numeric {num} vs analytic {ana}"
            );
        }
        for &(r, c) in &[(1usize, 1usize), (9, 3), (14, 0)] {
            let orig = lstm.u.get(r, c);
            *lstm.u.get_mut(r, c) = orig + eps;
            let lp = loss_of(&lstm, &head, &xs, y);
            *lstm.u.get_mut(r, c) = orig - eps;
            let lm = loss_of(&lstm, &head, &xs, y);
            *lstm.u.get_mut(r, c) = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.u.get(r, c);
            assert!(
                (num - ana).abs() < 2e-2 * num.abs().max(ana.abs()).max(1e-2),
                "U[{r},{c}]: numeric {num} vs analytic {ana}"
            );
        }
        for &j in &[0usize, 5, 10, 15] {
            let orig = lstm.b[j];
            lstm.b[j] = orig + eps;
            let lp = loss_of(&lstm, &head, &xs, y);
            lstm.b[j] = orig - eps;
            let lm = loss_of(&lstm, &head, &xs, y);
            lstm.b[j] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.b[j];
            assert!(
                (num - ana).abs() < 2e-2 * num.abs().max(ana.abs()).max(1e-2),
                "b[{j}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn gradient_check_stack_input() {
        // dL/dx through a 2-layer stack must match finite differences.
        let mut rng = Rng64::seed_from_u64(3);
        let stack = LstmStack::new(&[2, 3, 3], &mut rng);
        let head = BinaryHead::new(3, &mut rng);
        let mut xs: Vec<Vec<f32>> = (0..4).map(|i| vec![0.3 - i as f32 * 0.1, 0.5]).collect();
        let y = 0.0;

        let loss = |stack: &LstmStack, xs: &[Vec<f32>]| {
            let (hs, _) = stack.forward(xs);
            bce(head.forward(hs.last().unwrap()), y)
        };

        let (hs, caches) = stack.forward(&xs);
        let p = head.forward(hs.last().unwrap());
        let mut gw = vec![0.0f32; 3];
        let (_, dh_last) = head.backward(hs.last().unwrap(), p, y, &mut gw);
        let mut dh = vec![vec![0.0f32; 3]; xs.len()];
        *dh.last_mut().unwrap() = dh_last;
        let mut grads = stack.zero_grads();
        let dxs = stack.backward(&caches, &dh, &mut grads);

        let eps = 1e-3f32;
        for t in 0..xs.len() {
            for d in 0..2 {
                let orig = xs[t][d];
                xs[t][d] = orig + eps;
                let lp = loss(&stack, &xs);
                xs[t][d] = orig - eps;
                let lm = loss(&stack, &xs);
                xs[t][d] = orig;
                let num = (lp - lm) / (2.0 * eps);
                let ana = dxs[t][d];
                assert!(
                    (num - ana).abs() < 2e-2 * num.abs().max(ana.abs()).max(1e-2),
                    "dx[{t}][{d}]: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn stack_learns_a_toy_sequence_task() {
        // Label = does the sequence sum exceed 0? Trainable in a few
        // hundred Adam steps.
        let mut rng = Rng64::seed_from_u64(4);
        let mut stack = LstmStack::new(&[1, 6], &mut rng);
        let mut head = BinaryHead::new(6, &mut rng);
        let mut opts: Vec<crate::adam::Adam> = vec![
            crate::adam::Adam::new(stack.layers[0].w.as_slice().len(), 0.02),
            crate::adam::Adam::new(stack.layers[0].u.as_slice().len(), 0.02),
            crate::adam::Adam::new(stack.layers[0].b.len(), 0.02),
            crate::adam::Adam::new(head.w.len(), 0.02),
            crate::adam::Adam::new(1, 0.02),
        ];

        let make_seq = |seed: u64| -> (Vec<Vec<f32>>, f32) {
            let mut r = Rng64::seed_from_u64(seed);
            let xs: Vec<Vec<f32>> = (0..6)
                .map(|_| vec![rand::Rng::gen_range(&mut r, -1.0..1.0f32)])
                .collect();
            let sum: f32 = xs.iter().map(|v| v[0]).sum();
            (xs, if sum > 0.0 { 1.0 } else { 0.0 })
        };

        for epoch in 0..60 {
            for s in 0..40u64 {
                let (xs, y) = make_seq(epoch * 1000 + s);
                let (hs, caches) = stack.forward(&xs);
                let p = head.forward(hs.last().unwrap());
                let mut gw_head = vec![0.0f32; 6];
                let (gb_head, dh_last) = head.backward(hs.last().unwrap(), p, y, &mut gw_head);
                let mut dh = vec![vec![0.0f32; 6]; xs.len()];
                *dh.last_mut().unwrap() = dh_last;
                let mut grads = stack.zero_grads();
                stack.backward(&caches, &dh, &mut grads);

                opts[0].step(stack.layers[0].w.as_mut_slice(), grads[0].w.as_slice());
                opts[1].step(stack.layers[0].u.as_mut_slice(), grads[0].u.as_slice());
                opts[2].step(&mut stack.layers[0].b, &grads[0].b);
                opts[3].step(&mut head.w, &gw_head);
                let mut b = [head.b];
                opts[4].step(&mut b, &[gb_head]);
                head.b = b[0];
            }
        }

        let mut correct = 0;
        for s in 0..100u64 {
            let (xs, y) = make_seq(999_000 + s);
            let (hs, _) = stack.forward(&xs);
            let p = head.forward(hs.last().unwrap());
            if (p > 0.5) == (y > 0.5) {
                correct += 1;
            }
        }
        assert!(correct >= 85, "accuracy {correct}/100");
    }

    #[test]
    fn bce_is_safe_at_extremes() {
        assert!(bce(0.0, 1.0).is_finite());
        assert!(bce(1.0, 0.0).is_finite());
        assert!(bce(0.5, 1.0) > 0.0);
    }
}
