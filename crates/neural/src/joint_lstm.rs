//! Joint-LSTM: the video+chat baseline (Fu et al. 2017, paper
//! Section VII-E, Table I).
//!
//! "Joint-LSTM is built on top of a video model and Chat-LSTM. The video
//! model uses a memory-based LSTM-RNN on top of image features extracted
//! from pre-trained image models." Here the image features are the
//! synthetic streams from [`crate::visual`] (see the substitution note
//! there), and the chat side contributes per-frame summary features. Each
//! training sample is a short sequence of consecutive frames ending at
//! the labelled frame.

use crate::adam::Adam;
use crate::lstm::{BinaryHead, LstmStack};
use crate::visual::VISUAL_DIM;
use lightor_simkit::SeedTree;
use lightor_types::{ChatLogView, Highlight, Sec, TimeRange};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Chat summary features appended to each visual frame.
const CHAT_FEATS: usize = 2;

/// Input width per frame.
pub const JOINT_DIM: usize = VISUAL_DIM + CHAT_FEATS;

/// Hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct JointLstmConfig {
    /// LSTM hidden width.
    pub hidden: usize,
    /// Stacked layers.
    pub layers: usize,
    /// Frames per training sequence (1 Hz frames).
    pub seq_len: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Stride between labelled frames, seconds.
    pub frame_stride: f64,
    /// Chat lookahead for the summary features, seconds.
    pub chat_window: f64,
    /// Negative:positive sampling ratio.
    pub neg_per_pos: f64,
    /// Hard cap on training samples.
    pub max_samples: usize,
}

impl Default for JointLstmConfig {
    fn default() -> Self {
        JointLstmConfig {
            hidden: 24,
            layers: 2,
            seq_len: 12,
            epochs: 4,
            lr: 0.01,
            frame_stride: 5.0,
            chat_window: 7.0,
            neg_per_pos: 1.5,
            max_samples: 4000,
        }
    }
}

/// One video as the joint model sees it: frame features + chat + labels.
#[derive(Clone, Debug)]
pub struct JointVideo<'a> {
    /// Synthetic visual features at 1 Hz.
    pub frames: &'a [[f32; VISUAL_DIM]],
    /// Chat replay (for the chat summary features; zero-copy view).
    pub chat: &'a ChatLogView,
    /// Video length.
    pub duration: Sec,
    /// Ground-truth highlights (frame labels).
    pub highlights: &'a [Highlight],
}

/// The trained joint model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JointLstm {
    stack: LstmStack,
    head: BinaryHead,
    cfg: JointLstmConfig,
}

fn chat_feats(chat: &ChatLogView, t: f64, window: f64) -> [f32; CHAT_FEATS] {
    let range = TimeRange::from_secs(t, t + window);
    let (lo, hi) = chat.msg_range(range);
    let n = (hi - lo) as f32;
    let mean_len = if lo == hi {
        0.0
    } else {
        (lo..hi)
            .map(|i| chat.get(i).word_count() as f32)
            .sum::<f32>()
            / n
    };
    // Fixed soft scaling keeps inputs O(1); the LSTM learns the rest.
    [n / 10.0, mean_len / 10.0]
}

/// The input sequence of `seq_len` frames ending at frame `t` (seconds,
/// 1 Hz). Sequences touching the video start are front-padded with the
/// first frame.
fn input_sequence(v: &JointVideo<'_>, t: f64, cfg: &JointLstmConfig) -> Vec<Vec<f32>> {
    let end = (t.floor() as i64).clamp(0, v.frames.len() as i64 - 1);
    (0..cfg.seq_len as i64)
        .map(|j| {
            let f = (end - (cfg.seq_len as i64 - 1) + j).max(0) as usize;
            let mut row = Vec::with_capacity(JOINT_DIM);
            row.extend_from_slice(&v.frames[f]);
            row.extend_from_slice(&chat_feats(v.chat, f as f64, cfg.chat_window));
            row
        })
        .collect()
}

fn frame_is_highlight(highlights: &[Highlight], t: f64) -> bool {
    highlights.iter().any(|h| h.range.contains(Sec(t)))
}

impl JointLstm {
    /// Train on labelled videos; returns the model and wall-clock
    /// training time (the Table I column).
    pub fn train(videos: &[JointVideo<'_>], cfg: JointLstmConfig, seed: u64) -> (Self, Duration) {
        let start = Instant::now();
        let root = SeedTree::new(seed).child("joint-lstm");
        let mut rng = root.child("init").rng();

        let mut dims = vec![JOINT_DIM];
        dims.extend(std::iter::repeat_n(cfg.hidden, cfg.layers.max(1)));
        let mut model = JointLstm {
            stack: LstmStack::new(&dims, &mut rng),
            head: BinaryHead::new(cfg.hidden, &mut rng),
            cfg,
        };

        let mut pos: Vec<(usize, f64)> = Vec::new();
        let mut neg: Vec<(usize, f64)> = Vec::new();
        for (vi, v) in videos.iter().enumerate() {
            let mut t = cfg.seq_len as f64;
            while t < v.duration.0 - 1.0 {
                if frame_is_highlight(v.highlights, t) {
                    pos.push((vi, t));
                } else {
                    neg.push((vi, t));
                }
                t += cfg.frame_stride;
            }
        }
        let mut sample_rng = root.child("sample").rng();
        neg.shuffle(&mut sample_rng);
        neg.truncate(((pos.len() as f64) * cfg.neg_per_pos).ceil() as usize);
        let mut samples: Vec<(usize, f64, f32)> = pos
            .into_iter()
            .map(|(v, t)| (v, t, 1.0))
            .chain(neg.into_iter().map(|(v, t)| (v, t, 0.0)))
            .collect();
        samples.shuffle(&mut sample_rng);
        samples.truncate(cfg.max_samples);

        let mut opt_layers: Vec<(Adam, Adam, Adam)> = model
            .stack
            .layers
            .iter()
            .map(|l| {
                (
                    Adam::new(l.w.as_slice().len(), cfg.lr),
                    Adam::new(l.u.as_slice().len(), cfg.lr),
                    Adam::new(l.b.len(), cfg.lr),
                )
            })
            .collect();
        let mut opt_head_w = Adam::new(model.head.w.len(), cfg.lr);
        let mut opt_head_b = Adam::new(1, cfg.lr);

        let mut order: Vec<usize> = (0..samples.len()).collect();
        for epoch in 0..cfg.epochs {
            let mut epoch_rng = root.child("epoch").index(epoch as u64).rng();
            order.shuffle(&mut epoch_rng);
            for &si in &order {
                let (vi, t, y) = samples[si];
                let xs = input_sequence(&videos[vi], t, &model.cfg);
                model.train_step(&xs, y, &mut opt_layers, &mut opt_head_w, &mut opt_head_b);
            }
        }
        (model, start.elapsed())
    }

    fn train_step(
        &mut self,
        xs: &[Vec<f32>],
        y: f32,
        opt_layers: &mut [(Adam, Adam, Adam)],
        opt_head_w: &mut Adam,
        opt_head_b: &mut Adam,
    ) {
        let (hs, caches) = self.stack.forward(xs);
        let h_last = hs.last().expect("non-empty");
        let p = self.head.forward(h_last);
        let mut gw_head = vec![0.0f32; self.head.w.len()];
        let (gb_head, dh_last) = self.head.backward(h_last, p, y, &mut gw_head);
        let mut dh = vec![vec![0.0f32; self.stack.out_dim()]; xs.len()];
        *dh.last_mut().expect("non-empty") = dh_last;
        let mut grads = self.stack.zero_grads();
        self.stack.backward(&caches, &dh, &mut grads);

        for ((layer, grad), (ow, ou, ob)) in self
            .stack
            .layers
            .iter_mut()
            .zip(&grads)
            .zip(opt_layers.iter_mut())
        {
            ow.step(layer.w.as_mut_slice(), grad.w.as_slice());
            ou.step(layer.u.as_mut_slice(), grad.u.as_slice());
            ob.step(&mut layer.b, &grad.b);
        }
        opt_head_w.step(&mut self.head.w, &gw_head);
        let mut b = [self.head.b];
        opt_head_b.step(&mut b, &[gb_head]);
        self.head.b = b[0];
    }

    /// P(frame at `t` seconds is a highlight).
    pub fn score_frame(&self, v: &JointVideo<'_>, t: f64) -> f64 {
        let xs = input_sequence(v, t, &self.cfg);
        let (hs, _) = self.stack.forward(&xs);
        self.head.forward(hs.last().expect("non-empty")) as f64
    }

    /// Top-k frame detections with `min_sep` separation.
    pub fn detect(&self, v: &JointVideo<'_>, k: usize, min_sep: f64) -> Vec<Sec> {
        let mut scored: Vec<(f64, f64)> = Vec::new();
        let mut t = self.cfg.seq_len as f64;
        while t < v.duration.0 - 1.0 {
            scored.push((self.score_frame(v, t), t));
            t += self.cfg.frame_stride;
        }
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.total_cmp(&b.1)));
        let mut chosen: Vec<Sec> = Vec::with_capacity(k);
        for (_, pos) in scored {
            if chosen.iter().all(|c| (c.0 - pos).abs() > min_sep) {
                chosen.push(Sec(pos));
                if chosen.len() == k {
                    break;
                }
            }
        }
        chosen
    }

    /// The configuration this model was trained with.
    pub fn config(&self) -> &JointLstmConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visual::{synthetic_frame_features, VisualConfig};
    use lightor_types::{ChannelId, GameKind, LabeledVideo, VideoId, VideoMeta};

    fn tiny() -> JointLstmConfig {
        JointLstmConfig {
            hidden: 8,
            layers: 1,
            seq_len: 6,
            epochs: 8,
            lr: 0.02,
            frame_stride: 5.0,
            chat_window: 7.0,
            neg_per_pos: 1.0,
            max_samples: 300,
        }
    }

    fn toy_labeled(game: GameKind) -> LabeledVideo {
        LabeledVideo {
            meta: VideoMeta {
                id: VideoId(0),
                channel: ChannelId(0),
                game,
                duration: Sec(600.0),
                viewers: 100,
            },
            chat: ChatLogView::empty(),
            highlights: vec![
                Highlight::from_secs(150.0, 170.0),
                Highlight::from_secs(400.0, 425.0),
            ],
        }
    }

    #[test]
    fn learns_visual_excitement() {
        let labeled = toy_labeled(GameKind::Dota2);
        let frames = synthetic_frame_features(&labeled, &VisualConfig::default(), 5);
        let jv = JointVideo {
            frames: &frames,
            chat: &labeled.chat,
            duration: labeled.meta.duration,
            highlights: &labeled.highlights,
        };
        let (model, elapsed) = JointLstm::train(std::slice::from_ref(&jv), tiny(), 21);
        assert!(elapsed.as_nanos() > 0);

        let p_in = model.score_frame(&jv, 160.0);
        let p_out = model.score_frame(&jv, 300.0);
        assert!(p_in > p_out + 0.2, "in {p_in} vs out {p_out}");
    }

    #[test]
    fn detect_respects_separation_and_finds_highlights() {
        let labeled = toy_labeled(GameKind::Dota2);
        let frames = synthetic_frame_features(&labeled, &VisualConfig::default(), 6);
        let jv = JointVideo {
            frames: &frames,
            chat: &labeled.chat,
            duration: labeled.meta.duration,
            highlights: &labeled.highlights,
        };
        let (model, _) = JointLstm::train(std::slice::from_ref(&jv), tiny(), 22);
        let dots = model.detect(&jv, 2, 120.0);
        assert_eq!(dots.len(), 2);
        assert!((dots[0].0 - dots[1].0).abs() > 120.0);
        let hits = dots
            .iter()
            .filter(|d| {
                labeled
                    .highlights
                    .iter()
                    .any(|h| h.range.distance_to(**d).0 <= 15.0)
            })
            .count();
        assert!(hits >= 1, "{hits}/2 near highlights");
    }

    #[test]
    fn cross_game_transfer_degrades() {
        // Train on LoL-loaded features, evaluate margin on Dota2-loaded
        // features: the excitement dimension rotates, so the score margin
        // between highlight and background frames must shrink.
        let lol = toy_labeled(GameKind::Lol);
        let lol_frames = synthetic_frame_features(&lol, &VisualConfig::default(), 7);
        let jv_lol = JointVideo {
            frames: &lol_frames,
            chat: &lol.chat,
            duration: lol.meta.duration,
            highlights: &lol.highlights,
        };
        let (model, _) = JointLstm::train(std::slice::from_ref(&jv_lol), tiny(), 23);

        let dota = toy_labeled(GameKind::Dota2);
        let dota_frames = synthetic_frame_features(&dota, &VisualConfig::default(), 8);
        let jv_dota = JointVideo {
            frames: &dota_frames,
            chat: &dota.chat,
            duration: dota.meta.duration,
            highlights: &dota.highlights,
        };

        let margin_lol = model.score_frame(&jv_lol, 160.0) - model.score_frame(&jv_lol, 300.0);
        let margin_dota = model.score_frame(&jv_dota, 160.0) - model.score_frame(&jv_dota, 300.0);
        assert!(
            margin_dota < margin_lol,
            "transfer margin {margin_dota} should shrink vs in-game {margin_lol}"
        );
    }

    #[test]
    fn input_sequence_pads_at_video_start() {
        let labeled = toy_labeled(GameKind::Dota2);
        let frames = synthetic_frame_features(&labeled, &VisualConfig::default(), 9);
        let jv = JointVideo {
            frames: &frames,
            chat: &labeled.chat,
            duration: labeled.meta.duration,
            highlights: &labeled.highlights,
        };
        let cfg = tiny();
        let xs = input_sequence(&jv, 2.0, &cfg);
        assert_eq!(xs.len(), cfg.seq_len);
        assert_eq!(xs[0].len(), JOINT_DIM);
        // Front frames repeat frame 0.
        assert_eq!(xs[0], xs[1]);
    }
}
