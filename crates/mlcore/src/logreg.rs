//! Binary logistic regression trained by full-batch gradient descent.
//!
//! Two models in the paper use this: the Highlight Initializer's window
//! scorer over (message number, length, similarity) and the Highlight
//! Extractor's Type I/II classifier over (plays before, after, across the
//! red dot). Both are tiny (3 features), so batch gradient descent with an
//! L2 penalty converges in milliseconds — which is exactly the paper's
//! "1.06 sec training" headline in Table I.

use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Learning rate for gradient descent.
    pub learning_rate: f64,
    /// Maximum number of epochs.
    pub max_epochs: usize,
    /// L2 regularization strength (applied to weights, not the bias).
    pub l2: f64,
    /// Stop when the gradient's max-norm falls below this.
    pub tol: f64,
    /// Reweight classes inversely to frequency. The window-labelling task
    /// is imbalanced (~13 highlight vs ~96 other windows per video in the
    /// paper's Figure 2b), so this defaults to on.
    pub balanced: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 0.5,
            max_epochs: 2000,
            l2: 1e-3,
            tol: 1e-6,
            balanced: true,
        }
    }
}

/// A trained binary logistic regression model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Fit on `rows` (each of equal width) with boolean labels.
    ///
    /// Panics on empty input, inconsistent widths, or a single-class label
    /// set (the decision boundary would be undefined; callers upstream
    /// guarantee both classes exist — e.g. every training video has at
    /// least one highlight window).
    pub fn fit(rows: &[Vec<f64>], labels: &[bool], cfg: &TrainConfig) -> Self {
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        assert!(!rows.is_empty(), "cannot fit on empty data");
        let dim = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == dim),
            "inconsistent row width"
        );
        let n_pos = labels.iter().filter(|&&l| l).count();
        let n_neg = labels.len() - n_pos;
        assert!(n_pos > 0 && n_neg > 0, "need both classes to fit");

        // Inverse-frequency class weights normalized to mean 1.
        let (w_pos, w_neg) = if cfg.balanced {
            let n = labels.len() as f64;
            (n / (2.0 * n_pos as f64), n / (2.0 * n_neg as f64))
        } else {
            (1.0, 1.0)
        };

        let mut weights = vec![0.0; dim];
        let mut bias = 0.0;
        let n = rows.len() as f64;

        for _ in 0..cfg.max_epochs {
            let mut grad_w = vec![0.0; dim];
            let mut grad_b = 0.0;
            for (row, &label) in rows.iter().zip(labels) {
                let z = bias + row.iter().zip(&weights).map(|(x, w)| x * w).sum::<f64>();
                let p = sigmoid(z);
                let y = if label { 1.0 } else { 0.0 };
                let sample_w = if label { w_pos } else { w_neg };
                let err = sample_w * (p - y);
                for (g, x) in grad_w.iter_mut().zip(row) {
                    *g += err * x;
                }
                grad_b += err;
            }
            let mut max_g: f64 = grad_b.abs() / n;
            for (g, w) in grad_w.iter_mut().zip(&weights) {
                *g = *g / n + cfg.l2 * w;
                max_g = max_g.max(g.abs());
            }
            grad_b /= n;
            for (w, g) in weights.iter_mut().zip(&grad_w) {
                *w -= cfg.learning_rate * g;
            }
            bias -= cfg.learning_rate * grad_b;
            if max_g < cfg.tol {
                break;
            }
        }
        LogisticRegression { weights, bias }
    }

    /// Construct directly from parameters (deserialization, tests).
    pub fn from_parameters(weights: Vec<f64>, bias: f64) -> Self {
        LogisticRegression { weights, bias }
    }

    /// P(label = true | row).
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.weights.len(), "row width mismatch");
        let z = self.bias
            + row
                .iter()
                .zip(&self.weights)
                .map(|(x, w)| x * w)
                .sum::<f64>();
        sigmoid(z)
    }

    /// Hard decision at threshold 0.5.
    pub fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// Learned feature weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Learned intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn linearly_separable() -> (Vec<Vec<f64>>, Vec<bool>) {
        // y = x0 > 0.5
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64 / 40.0, ((i * 7) % 13) as f64 / 13.0])
            .collect();
        let labels: Vec<bool> = rows.iter().map(|r| r[0] > 0.5).collect();
        (rows, labels)
    }

    #[test]
    fn learns_separable_data() {
        let (rows, labels) = linearly_separable();
        let m = LogisticRegression::fit(&rows, &labels, &TrainConfig::default());
        let acc = rows
            .iter()
            .zip(&labels)
            .filter(|(r, &l)| m.predict(r) == l)
            .count() as f64
            / rows.len() as f64;
        assert!(acc >= 0.95, "accuracy {acc}");
        // Feature 0 is predictive, feature 1 is noise.
        assert!(m.weights()[0].abs() > m.weights()[1].abs());
    }

    #[test]
    fn probabilities_are_monotone_in_predictive_feature() {
        let (rows, labels) = linearly_separable();
        let m = LogisticRegression::fit(&rows, &labels, &TrainConfig::default());
        let p_lo = m.predict_proba(&[0.0, 0.5]);
        let p_mid = m.predict_proba(&[0.5, 0.5]);
        let p_hi = m.predict_proba(&[1.0, 0.5]);
        assert!(p_lo < p_mid && p_mid < p_hi);
    }

    #[test]
    fn balanced_training_handles_imbalance() {
        // 90% negative; positives live at x > 0.9.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..90 {
            rows.push(vec![i as f64 / 100.0]);
            labels.push(false);
        }
        for i in 0..10 {
            rows.push(vec![0.92 + i as f64 / 100.0]);
            labels.push(true);
        }
        let m = LogisticRegression::fit(&rows, &labels, &TrainConfig::default());
        // A balanced model must still fire on the positive region.
        assert!(m.predict(&[0.97]));
        assert!(!m.predict(&[0.2]));
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_panics() {
        LogisticRegression::fit(&[vec![1.0]], &[true], &TrainConfig::default());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        LogisticRegression::fit(&[vec![1.0]], &[true, false], &TrainConfig::default());
    }

    #[test]
    fn serde_round_trip() {
        let m = LogisticRegression::from_parameters(vec![1.0, -2.0], 0.5);
        let js = serde_json::to_string(&m).unwrap();
        let back: LogisticRegression = serde_json::from_str(&js).unwrap();
        assert_eq!(m, back);
        assert_eq!(back.bias(), 0.5);
    }

    proptest! {
        #[test]
        fn probabilities_in_unit_interval(
            w in proptest::collection::vec(-10.0..10.0f64, 3),
            b in -10.0..10.0f64,
            x in proptest::collection::vec(-10.0..10.0f64, 3),
        ) {
            let m = LogisticRegression::from_parameters(w, b);
            let p = m.predict_proba(&x);
            prop_assert!((0.0..=1.0).contains(&p));
        }

        #[test]
        fn fit_is_deterministic(seed_rows in proptest::collection::vec(0.0..1.0f64, 8..24)) {
            let rows: Vec<Vec<f64>> = seed_rows.iter().map(|&x| vec![x]).collect();
            let labels: Vec<bool> = seed_rows.iter().enumerate().map(|(i, &x)| x > 0.5 || i == 0).collect();
            if labels.iter().any(|&l| l) && labels.iter().any(|&l| !l) {
                let cfg = TrainConfig { max_epochs: 50, ..TrainConfig::default() };
                let a = LogisticRegression::fit(&rows, &labels, &cfg);
                let b = LogisticRegression::fit(&rows, &labels, &cfg);
                prop_assert_eq!(a, b);
            }
        }
    }
}
