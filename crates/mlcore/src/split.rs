//! Deterministic dataset splitting.
//!
//! The experiments repeatedly carve "10 training videos / 50 test videos"
//! style splits (Section VII-B) and sweep the training size (Figures 6b,
//! 7b, 10). Splits are seeded so every experiment is reproducible.

use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A deterministic shuffled permutation of `0..n` under `seed`.
pub fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    idx
}

/// Split `0..n` into (train, test) index sets with `n_train` training
/// items, shuffled under `seed`. Panics when `n_train > n`.
pub fn train_test_split(n: usize, n_train: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(n_train <= n, "n_train {n_train} exceeds dataset size {n}");
    let idx = permutation(n, seed);
    let train = idx[..n_train].to_vec();
    let test = idx[n_train..].to_vec();
    (train, test)
}

/// K-fold cross-validation index sets: returns `k` (train, validation)
/// pairs covering `0..n`. Panics when `k == 0` or `k > n`.
pub fn k_fold(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k > 0 && k <= n, "invalid fold count {k} for {n} items");
    let idx = permutation(n, seed);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let lo = f * n / k;
        let hi = (f + 1) * n / k;
        let val: Vec<usize> = idx[lo..hi].to_vec();
        let train: Vec<usize> = idx[..lo].iter().chain(&idx[hi..]).copied().collect();
        folds.push((train, val));
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn split_sizes() {
        let (train, test) = train_test_split(60, 10, 7);
        assert_eq!(train.len(), 10);
        assert_eq!(test.len(), 50);
        let all: HashSet<usize> = train.iter().chain(&test).copied().collect();
        assert_eq!(all.len(), 60);
    }

    #[test]
    fn split_is_deterministic() {
        assert_eq!(train_test_split(20, 5, 42), train_test_split(20, 5, 42));
        assert_ne!(train_test_split(20, 5, 42).0, train_test_split(20, 5, 43).0);
    }

    #[test]
    fn k_fold_covers_everything_once() {
        let folds = k_fold(10, 3, 1);
        assert_eq!(folds.len(), 3);
        let mut seen = Vec::new();
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 10);
            seen.extend(val.iter().copied());
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "exceeds dataset size")]
    fn oversized_train_panics() {
        train_test_split(5, 6, 0);
    }

    #[test]
    #[should_panic(expected = "invalid fold count")]
    fn zero_folds_panics() {
        k_fold(5, 0, 0);
    }

    proptest! {
        #[test]
        fn permutation_is_a_bijection(n in 1usize..128, seed in any::<u64>()) {
            let mut p = permutation(n, seed);
            p.sort_unstable();
            prop_assert_eq!(p, (0..n).collect::<Vec<_>>());
        }

        #[test]
        fn folds_are_disjoint(n in 4usize..64, seed in any::<u64>()) {
            let k = 4;
            for (train, val) in k_fold(n, k, seed) {
                let t: HashSet<usize> = train.into_iter().collect();
                for v in val {
                    prop_assert!(!t.contains(&v));
                }
            }
        }
    }
}
