//! Text vectorization for chat messages: tokenizer, vocabulary and binary
//! bag-of-words vectors (paper Section IV-C2, the message-similarity
//! feature: "We use Bag of Words to represent each message as a binary
//! vector").

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Lowercasing, punctuation-stripping whitespace tokenizer.
///
/// Emote tokens like `PogChamp` or `<3` survive as-is (minus the angle
/// brackets); empty tokens are dropped.
#[derive(Clone, Copy, Debug, Default)]
pub struct Tokenizer;

impl Tokenizer {
    /// Split `text` into normalized tokens.
    pub fn tokenize(self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.for_each_token(text, |tok| out.push(tok.to_owned()));
        out
    }

    /// Visit each normalized token without allocating per token: a
    /// single scratch buffer is reused across the whole text. This is
    /// the hot-path entry used by [`Vocab`] so corpus construction
    /// tokenizes each message exactly once with no `Vec<String>`.
    pub fn for_each_token(self, text: &str, mut f: impl FnMut(&str)) {
        let mut buf = String::new();
        for raw in text.split_whitespace() {
            buf.clear();
            for c in raw.chars().filter(|c| c.is_alphanumeric()) {
                buf.extend(c.to_lowercase());
            }
            if !buf.is_empty() {
                f(&buf);
            }
        }
    }
}

/// A token → dense-index vocabulary built over a corpus.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Vocab {
    index: HashMap<String, u32>,
}

impl Vocab {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Vocab::default()
    }

    /// Build from an iterator of texts using [`Tokenizer`].
    pub fn build<'a>(texts: impl IntoIterator<Item = &'a str>) -> Self {
        let mut v = Vocab::new();
        let tk = Tokenizer;
        for text in texts {
            tk.for_each_token(text, |tok| {
                v.intern(tok);
            });
        }
        v
    }

    /// Get or assign the index of `token`.
    pub fn intern(&mut self, token: &str) -> u32 {
        let next = self.index.len() as u32;
        *self.index.entry(token.to_owned()).or_insert(next)
    }

    /// Look up a token without inserting.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.index.get(token).copied()
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no tokens are interned.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Encode a text into a binary bag-of-words vector over this
    /// vocabulary (unknown tokens are ignored).
    pub fn encode(&self, text: &str) -> BowVector {
        let mut idx: Vec<u32> = Vec::new();
        Tokenizer.for_each_token(text, |t| {
            if let Some(i) = self.get(t) {
                idx.push(i);
            }
        });
        idx.sort_unstable();
        idx.dedup();
        BowVector { indices: idx }
    }

    /// Intern every token of `text` and encode it in the same pass —
    /// the tokenize-once entry point for corpus construction. Unlike
    /// [`Vocab::encode`], unknown tokens extend the vocabulary instead
    /// of being dropped.
    pub fn intern_text(&mut self, text: &str) -> BowVector {
        let mut idx: Vec<u32> = Vec::new();
        Tokenizer.for_each_token(text, |t| idx.push(self.intern(t)));
        idx.sort_unstable();
        idx.dedup();
        BowVector { indices: idx }
    }
}

/// A binary bag-of-words vector, stored sparsely as sorted unique indices.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BowVector {
    indices: Vec<u32>,
}

impl BowVector {
    /// Construct from raw indices (sorted + deduplicated internally).
    pub fn from_indices(mut indices: Vec<u32>) -> Self {
        indices.sort_unstable();
        indices.dedup();
        BowVector { indices }
    }

    /// The sorted unique token indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Number of distinct tokens present.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// True when the vector is all-zero (no known tokens).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Euclidean norm of a binary vector = sqrt(nnz).
    pub fn norm(&self) -> f64 {
        (self.indices.len() as f64).sqrt()
    }

    /// Dot product with a dense vector.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        self.indices
            .iter()
            .map(|&i| dense.get(i as usize).copied().unwrap_or(0.0))
            .sum()
    }

    /// Dot product with another binary vector (= intersection size).
    pub fn dot(&self, other: &BowVector) -> f64 {
        let (mut i, mut j) = (0, 0);
        let mut acc = 0.0;
        while i < self.indices.len() && j < other.indices.len() {
            match self.indices[i].cmp(&other.indices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += 1.0;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tokenizer_normalizes() {
        let tk = Tokenizer;
        assert_eq!(tk.tokenize("What a PLAY!!"), vec!["what", "a", "play"]);
        assert_eq!(tk.tokenize("PogChamp <3 :-)"), vec!["pogchamp", "3"]);
        assert!(tk.tokenize("!!! ???").is_empty());
        assert!(tk.tokenize("").is_empty());
    }

    #[test]
    fn vocab_interning_is_stable() {
        let mut v = Vocab::new();
        let a = v.intern("kill");
        let b = v.intern("gg");
        assert_ne!(a, b);
        assert_eq!(v.intern("kill"), a);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get("kill"), Some(a));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn encode_ignores_unknown_and_dedups() {
        let v = Vocab::build(["kill kill gg"]);
        let enc = v.encode("KILL gg wow");
        assert_eq!(enc.nnz(), 2); // "wow" unknown, "kill" deduped
    }

    #[test]
    fn bow_dot_counts_shared_tokens() {
        let v = Vocab::build(["a b c d"]);
        let x = v.encode("a b c");
        let y = v.encode("b c d");
        assert_eq!(x.dot(&y), 2.0);
        assert_eq!(x.dot(&x), 3.0);
        assert_eq!(x.norm(), 3.0f64.sqrt());
    }

    #[test]
    fn bow_dot_dense() {
        let x = BowVector::from_indices(vec![0, 2]);
        assert_eq!(x.dot_dense(&[0.5, 9.0, 0.25]), 0.75);
        // Out-of-range indices contribute zero.
        let y = BowVector::from_indices(vec![10]);
        assert_eq!(y.dot_dense(&[1.0]), 0.0);
    }

    #[test]
    fn from_indices_normalizes() {
        let x = BowVector::from_indices(vec![3, 1, 3, 2]);
        assert_eq!(x.indices(), &[1, 2, 3]);
    }

    proptest! {
        #[test]
        fn dot_is_symmetric(
            a in proptest::collection::vec(0u32..64, 0..16),
            b in proptest::collection::vec(0u32..64, 0..16),
        ) {
            let x = BowVector::from_indices(a);
            let y = BowVector::from_indices(b);
            prop_assert_eq!(x.dot(&y), y.dot(&x));
        }

        #[test]
        fn dot_bounded_by_nnz(
            a in proptest::collection::vec(0u32..64, 0..16),
            b in proptest::collection::vec(0u32..64, 0..16),
        ) {
            let x = BowVector::from_indices(a);
            let y = BowVector::from_indices(b);
            let d = x.dot(&y);
            prop_assert!(d <= x.nnz().min(y.nnz()) as f64);
            prop_assert!(d >= 0.0);
        }

        #[test]
        fn tokenize_encode_never_panics(s in "\\PC{0,64}") {
            let v = Vocab::build([s.as_str()]);
            let enc = v.encode(&s);
            prop_assert!(enc.nnz() <= v.len());
        }
    }
}
