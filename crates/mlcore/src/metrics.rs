//! Binary classification metrics.

use serde::{Deserialize, Serialize};

/// A 2×2 confusion matrix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// Predicted positive, actually positive.
    pub tp: usize,
    /// Predicted positive, actually negative.
    pub fp: usize,
    /// Predicted negative, actually positive.
    pub fn_: usize,
    /// Predicted negative, actually negative.
    pub tn: usize,
}

impl Confusion {
    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Fraction of correct predictions; 0 for empty input.
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / t as f64
        }
    }

    /// TP / (TP + FP); 0 when no positive predictions.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// TP / (TP + FN); 0 when no positive labels.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Build a confusion matrix from paired predictions and labels.
/// Panics on length mismatch.
pub fn confusion(predicted: &[bool], actual: &[bool]) -> Confusion {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    let mut c = Confusion::default();
    for (&p, &a) in predicted.iter().zip(actual) {
        match (p, a) {
            (true, true) => c.tp += 1,
            (true, false) => c.fp += 1,
            (false, true) => c.fn_ += 1,
            (false, false) => c.tn += 1,
        }
    }
    c
}

/// Accuracy over paired predictions and labels.
pub fn accuracy(predicted: &[bool], actual: &[bool]) -> f64 {
    confusion(predicted, actual).accuracy()
}

/// Precision over paired predictions and labels.
pub fn precision(predicted: &[bool], actual: &[bool]) -> f64 {
    confusion(predicted, actual).precision()
}

/// Recall over paired predictions and labels.
pub fn recall(predicted: &[bool], actual: &[bool]) -> f64 {
    confusion(predicted, actual).recall()
}

/// F1 over paired predictions and labels.
pub fn f1_score(predicted: &[bool], actual: &[bool]) -> f64 {
    confusion(predicted, actual).f1()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn confusion_counts() {
        let pred = [true, true, false, false, true];
        let act = [true, false, true, false, true];
        let c = confusion(&pred, &act);
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 1,
                fn_: 1,
                tn: 1
            }
        );
        assert_eq!(c.total(), 5);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let c = Confusion::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        // All negative predictions on all-negative labels: accuracy 1.
        assert_eq!(accuracy(&[false, false], &[false, false]), 1.0);
        assert_eq!(precision(&[false, false], &[false, false]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatch_panics() {
        confusion(&[true], &[]);
    }

    proptest! {
        #[test]
        fn metrics_in_unit_interval(
            pairs in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..64),
        ) {
            let (pred, act): (Vec<bool>, Vec<bool>) = pairs.into_iter().unzip();
            let c = confusion(&pred, &act);
            for m in [c.accuracy(), c.precision(), c.recall(), c.f1()] {
                prop_assert!((0.0..=1.0).contains(&m));
            }
            prop_assert_eq!(c.total(), pred.len());
        }

        #[test]
        fn perfect_prediction_is_perfect(labels in proptest::collection::vec(any::<bool>(), 1..64)) {
            prop_assert_eq!(accuracy(&labels, &labels), 1.0);
            let c = confusion(&labels, &labels);
            prop_assert_eq!(c.fp, 0);
            prop_assert_eq!(c.fn_, 0);
        }
    }
}
