//! Machine-learning substrate for the LIGHTOR reproduction.
//!
//! The paper's design philosophy is "a small number of highly effective
//! features combined with a simple model" (Section VII-B), so this crate is
//! deliberately compact:
//!
//! * [`MinMaxScaler`] — per-feature `[0, 1]` normalization (Section IV-C2),
//! * [`LogisticRegression`] — the window classifier and the Type I/II play
//!   classifier,
//! * `text` — tokenizer, vocabulary and binary bag-of-words vectors,
//! * [`one_cluster_kmeans`] — the message-similarity feature's center
//!   computation,
//! * `metrics` — accuracy/precision/recall and confusion matrices,
//! * `split` — deterministic train/test and k-fold splitting.
//!
//! Nothing here depends on the domain types; it works on `&[f64]` rows and
//! plain strings so the neural crate and the evaluation harness can reuse it.

#![warn(missing_docs)]

pub mod kmeans;
pub mod logreg;
pub mod metrics;
pub mod scale;
pub mod split;
pub mod text;

pub use kmeans::{cosine_similarity, mean_loo_similarity, one_cluster_kmeans, LooWindow};
pub use logreg::{LogisticRegression, TrainConfig};
pub use metrics::{accuracy, confusion, f1_score, precision, recall, Confusion};
pub use scale::MinMaxScaler;
pub use text::{BowVector, Tokenizer, Vocab};
