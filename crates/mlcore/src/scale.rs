//! Per-feature min-max scaling into `[0, 1]`.
//!
//! The paper normalizes the three window features "to make these features
//! generalize well" (Section IV-C2). The scaler is fit on training windows
//! and applied unchanged to test windows, so values outside the training
//! range are clamped rather than extrapolated — a window with twice the
//! largest training message count is "fully bursty", not "200% bursty".

use serde::{Deserialize, Serialize};

/// A fitted min-max scaler over fixed-width feature rows.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxScaler {
    /// Fit over `rows`, each of width `dim`. Panics on empty input or
    /// inconsistent widths.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit scaler on empty data");
        let dim = rows[0].len();
        assert!(dim > 0, "zero-width rows");
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for row in rows {
            assert_eq!(row.len(), dim, "inconsistent row width");
            for (j, &v) in row.iter().enumerate() {
                assert!(v.is_finite(), "non-finite feature value");
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        MinMaxScaler { mins, maxs }
    }

    /// Number of features this scaler was fit on.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// Scale one row into `[0, 1]` (clamped outside the fitted range).
    /// A constant feature (min == max) maps to 0.5.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.dim(), "row width mismatch");
        row.iter()
            .enumerate()
            .map(|(j, &v)| {
                let range = self.maxs[j] - self.mins[j];
                if range <= 0.0 {
                    0.5
                } else {
                    ((v - self.mins[j]) / range).clamp(0.0, 1.0)
                }
            })
            .collect()
    }

    /// Scale a batch of rows.
    pub fn transform_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }

    /// Fitted per-feature minima.
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Fitted per-feature maxima.
    pub fn maxs(&self) -> &[f64] {
        &self.maxs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fit_transform_basic() {
        let rows = vec![vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 30.0]];
        let s = MinMaxScaler::fit(&rows);
        assert_eq!(s.transform(&[0.0, 10.0]), vec![0.0, 0.0]);
        assert_eq!(s.transform(&[10.0, 30.0]), vec![1.0, 1.0]);
        assert_eq!(s.transform(&[5.0, 20.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn out_of_range_is_clamped() {
        let s = MinMaxScaler::fit(&[vec![0.0], vec![10.0]]);
        assert_eq!(s.transform(&[-5.0]), vec![0.0]);
        assert_eq!(s.transform(&[100.0]), vec![1.0]);
    }

    #[test]
    fn constant_feature_maps_to_half() {
        let s = MinMaxScaler::fit(&[vec![7.0], vec![7.0]]);
        assert_eq!(s.transform(&[7.0]), vec![0.5]);
        assert_eq!(s.transform(&[123.0]), vec![0.5]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_fit_panics() {
        MinMaxScaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let s = MinMaxScaler::fit(&[vec![1.0, 2.0]]);
        s.transform(&[1.0]);
    }

    proptest! {
        #[test]
        fn outputs_always_in_unit_interval(
            rows in proptest::collection::vec(
                proptest::collection::vec(-1e3..1e3f64, 3), 1..32),
            probe in proptest::collection::vec(-2e3..2e3f64, 3),
        ) {
            let s = MinMaxScaler::fit(&rows);
            for v in s.transform(&probe) {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }

        #[test]
        fn training_extremes_hit_bounds(
            rows in proptest::collection::vec(
                proptest::collection::vec(-1e3..1e3f64, 2), 2..32),
        ) {
            let s = MinMaxScaler::fit(&rows);
            let scaled = s.transform_all(&rows);
            for j in 0..2 {
                let col: Vec<f64> = scaled.iter().map(|r| r[j]).collect();
                let lo = col.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = col.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                // Either the feature is constant (all 0.5) or spans [0,1].
                if (s.maxs()[j] - s.mins()[j]) > 0.0 {
                    prop_assert!(lo.abs() < 1e-12 && (hi - 1.0).abs() < 1e-12);
                } else {
                    prop_assert!(col.iter().all(|&v| v == 0.5));
                }
            }
        }
    }
}
