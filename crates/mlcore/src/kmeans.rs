//! One-cluster k-means over binary bag-of-words vectors.
//!
//! The message-similarity feature (paper Section IV-C2) "applies
//! one-cluster K-means to find the center of messages" and reports the
//! average similarity of each message to that center. With a single
//! cluster, k-means converges in one step: the center is the arithmetic
//! mean of the vectors. We keep the explicit function anyway so the
//! feature code reads like the paper.

use crate::text::BowVector;

/// The dense mean vector of a set of binary vectors over a vocabulary of
/// size `dim`. Returns a zero vector when `vectors` is empty.
pub fn one_cluster_kmeans(vectors: &[BowVector], dim: usize) -> Vec<f64> {
    let mut center = vec![0.0; dim];
    if vectors.is_empty() {
        return center;
    }
    for v in vectors {
        for &i in v.indices() {
            if let Some(c) = center.get_mut(i as usize) {
                *c += 1.0;
            }
        }
    }
    let n = vectors.len() as f64;
    for c in &mut center {
        *c /= n;
    }
    center
}

/// Cosine similarity between a binary vector and a dense center.
/// Zero when either side has zero norm.
pub fn cosine_similarity(v: &BowVector, center: &[f64]) -> f64 {
    let dot = v.dot_dense(center);
    let nv = v.norm();
    let nc = center.iter().map(|c| c * c).sum::<f64>().sqrt();
    if nv == 0.0 || nc == 0.0 {
        0.0
    } else {
        dot / (nv * nc)
    }
}

/// Average cosine similarity of each vector to the one-cluster center —
/// the paper's message-similarity feature for one sliding window.
pub fn mean_similarity_to_center(vectors: &[BowVector], dim: usize) -> f64 {
    if vectors.is_empty() {
        return 0.0;
    }
    let center = one_cluster_kmeans(vectors, dim);
    vectors
        .iter()
        .map(|v| cosine_similarity(v, &center))
        .sum::<f64>()
        / vectors.len() as f64
}

/// Leave-one-out variant: each message is compared against the center of
/// the *other* messages.
///
/// The plain center includes the message itself, which puts a `1/sqrt(n)`
/// floor under every window's similarity — a window of `n` pairwise
/// disjoint messages scores `1/sqrt(n)` instead of 0, confounding the
/// similarity feature with the count feature. Excluding self makes the
/// statistic a pure agreement measure: 0 for disjoint messages, 1 for
/// identical ones. Returns 0 when fewer than two vectors exist.
pub fn mean_loo_similarity(vectors: &[BowVector], dim: usize) -> f64 {
    let n = vectors.len();
    if n < 2 {
        return 0.0;
    }
    // Total token counts over all vectors. All aggregates are kept as
    // integers so the result is independent of summation order — this is
    // what lets the incremental [`LooWindow`] reproduce this function
    // bit-for-bit while iterating tokens in a different order.
    let mut total = vec![0u32; dim];
    for v in vectors {
        for &i in v.indices() {
            if let Some(t) = total.get_mut(i as usize) {
                *t += 1;
            }
        }
    }
    let total_sq: u64 = total.iter().map(|&t| u64::from(t) * u64::from(t)).sum();
    let mut acc = 0.0;
    for v in vectors {
        acc += loo_term(&total, total_sq, n, v);
    }
    acc / n as f64
}

/// One message's leave-one-out cosine similarity against the center of
/// the other `n - 1` messages, given the window's total token counts.
///
/// `center_i[w] = (total[w] - x_i[w]) / (n - 1)`, and
/// `|total - x_i|^2 = |total|^2 - 2 * <total, x_i> + |x_i|^2` (binary
/// `x_i`). Every aggregate is an exact integer; floats appear only in
/// the final division and square roots, so any code path that feeds the
/// same `total`/`total_sq` produces the identical `f64`.
fn loo_term(total: &[u32], total_sq: u64, n: usize, v: &BowVector) -> f64 {
    loo_term_ids(total, total_sq, n, v.indices())
}

/// [`loo_term`] over a raw sorted-unique id slice — the zero-wrapper
/// form flat-stored corpora (CSR token layouts) feed directly.
fn loo_term_ids(total: &[u32], total_sq: u64, n: usize, ids: &[u32]) -> f64 {
    let m = (n - 1) as f64;
    let mut dot_num: u64 = 0; // Σ (total[w] - 1) over v's tokens
    let mut total_dot_x: u64 = 0; // Σ total[w] over v's tokens
    for &i in ids {
        let t = u64::from(total.get(i as usize).copied().unwrap_or(0));
        dot_num += t.saturating_sub(1);
        total_dot_x += t;
    }
    let nnz = ids.len() as u64;
    // total_sq + nnz >= 2 * total_dot_x because it equals |total - x_i|^2
    // plus non-negative cross terms; the subtraction cannot underflow.
    let center_norm_num = (total_sq + nnz) - 2 * total_dot_x;
    let center_norm_sq = center_norm_num as f64 / (m * m);
    let denom = (nnz as f64).sqrt() * center_norm_sq.sqrt();
    if denom > 0.0 {
        (dot_num as f64 / m) / denom
    } else {
        0.0
    }
}

/// Incrementally-maintained leave-one-out similarity state for a sliding
/// window over a fixed corpus vocabulary.
///
/// Keeps the per-token membership counts and `Σ counts²` up to date as
/// messages enter and leave the window, so evaluating a window costs
/// O(Σ nnz of its messages) with **zero** allocations — no per-window
/// dense center vector, no re-tokenization. [`LooWindow::mean_loo`]
/// reproduces [`mean_loo_similarity`] bit-for-bit (see the integer
/// accumulation note there).
#[derive(Clone, Debug)]
pub struct LooWindow {
    counts: Vec<u32>,
    total_sq: u64,
    n: usize,
}

impl LooWindow {
    /// Empty window state over a vocabulary of `dim` tokens.
    pub fn new(dim: usize) -> Self {
        LooWindow {
            counts: vec![0; dim],
            total_sq: 0,
            n: 0,
        }
    }

    /// Number of vectors currently in the window.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no vectors are in the window.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Add one message's vector to the window.
    pub fn add(&mut self, v: &BowVector) {
        self.add_ids(v.indices());
    }

    /// [`LooWindow::add`] over a raw sorted-unique id slice (the form
    /// CSR-stored corpora hold natively — no `BowVector` needed).
    pub fn add_ids(&mut self, ids: &[u32]) {
        for &i in ids {
            if let Some(c) = self.counts.get_mut(i as usize) {
                // (c+1)² - c² = 2c + 1
                self.total_sq += 2 * u64::from(*c) + 1;
                *c += 1;
            }
        }
        self.n += 1;
    }

    /// Remove one message's vector from the window (it must have been
    /// added earlier).
    pub fn remove(&mut self, v: &BowVector) {
        self.remove_ids(v.indices());
    }

    /// [`LooWindow::remove`] over a raw sorted-unique id slice.
    pub fn remove_ids(&mut self, ids: &[u32]) {
        for &i in ids {
            if let Some(c) = self.counts.get_mut(i as usize) {
                // A hard assert: a zero count here means the caller is
                // removing a vector that was never added, and wrapping
                // total_sq would silently poison every later mean_loo.
                assert!(*c > 0, "removing a vector that was never added");
                // c² - (c-1)² = 2c - 1
                self.total_sq -= 2 * u64::from(*c) - 1;
                *c -= 1;
            }
        }
        self.n -= 1;
    }

    /// Mean leave-one-out similarity of the window's current members.
    ///
    /// `members` must yield exactly the vectors previously added (in
    /// window order, to match the accumulation order of the batch
    /// function). Returns 0 with fewer than two members.
    pub fn mean_loo<'a>(&self, members: impl Iterator<Item = &'a BowVector>) -> f64 {
        self.mean_loo_ids(members.map(|v| v.indices()))
    }

    /// [`LooWindow::mean_loo`] over raw sorted-unique id slices.
    pub fn mean_loo_ids<'a>(&self, members: impl Iterator<Item = &'a [u32]>) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        for ids in members {
            acc += loo_term_ids(&self.counts, self.total_sq, self.n, ids);
        }
        acc / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::Vocab;
    use proptest::prelude::*;

    fn encode_all(texts: &[&str]) -> (Vec<BowVector>, usize) {
        let v = Vocab::build(texts.iter().copied());
        let encoded = texts.iter().map(|t| v.encode(t)).collect();
        (encoded, v.len())
    }

    #[test]
    fn center_is_mean_of_binary_vectors() {
        let (vecs, dim) = encode_all(&["a b", "a c"]);
        let center = one_cluster_kmeans(&vecs, dim);
        // "a" appears in both messages, "b"/"c" in one each.
        let mut sorted = center.clone();
        sorted.sort_by(|x, y| y.total_cmp(x));
        assert_eq!(sorted, vec![1.0, 0.5, 0.5]);
    }

    #[test]
    fn empty_input_gives_zero_center() {
        let center = one_cluster_kmeans(&[], 4);
        assert_eq!(center, vec![0.0; 4]);
        assert_eq!(mean_similarity_to_center(&[], 4), 0.0);
    }

    #[test]
    fn identical_messages_have_similarity_one() {
        let (vecs, dim) = encode_all(&["gg wp", "gg wp", "gg wp"]);
        let sim = mean_similarity_to_center(&vecs, dim);
        assert!((sim - 1.0).abs() < 1e-12, "sim {sim}");
    }

    #[test]
    fn disjoint_messages_have_low_similarity() {
        let (vecs, dim) = encode_all(&["a b", "c d", "e f"]);
        let sim_disjoint = mean_similarity_to_center(&vecs, dim);
        let (vecs2, dim2) = encode_all(&["kill kill", "kill wow", "kill gg"]);
        let sim_overlap = mean_similarity_to_center(&vecs2, dim2);
        assert!(
            sim_overlap > sim_disjoint,
            "overlap {sim_overlap} vs disjoint {sim_disjoint}"
        );
    }

    #[test]
    fn cosine_zero_for_empty_vector() {
        let v = BowVector::from_indices(vec![]);
        assert_eq!(cosine_similarity(&v, &[1.0, 1.0]), 0.0);
        let w = BowVector::from_indices(vec![0]);
        assert_eq!(cosine_similarity(&w, &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn loo_similarity_extremes() {
        // Identical messages: every LOO center equals the message itself.
        let (vecs, dim) = encode_all(&["gg wp", "gg wp", "gg wp"]);
        assert!((mean_loo_similarity(&vecs, dim) - 1.0).abs() < 1e-9);
        // Pairwise disjoint messages: zero agreement, no 1/sqrt(n) floor.
        let (vecs2, dim2) = encode_all(&["a b", "c d", "e f"]);
        assert!(mean_loo_similarity(&vecs2, dim2).abs() < 1e-9);
        assert!(
            mean_similarity_to_center(&vecs2, dim2) > 0.3,
            "plain center has the floor"
        );
        // Degenerate sizes.
        assert_eq!(mean_loo_similarity(&[], 4), 0.0);
        let (single, dim3) = encode_all(&["solo msg"]);
        assert_eq!(mean_loo_similarity(&single, dim3), 0.0);
    }

    #[test]
    fn loo_matches_naive_computation() {
        let (vecs, dim) = encode_all(&["kill kill gg", "kill wow", "gg wow kill", "pizza time"]);
        let fast = mean_loo_similarity(&vecs, dim);
        // Naive: explicit centers.
        let mut naive = 0.0;
        for (i, v) in vecs.iter().enumerate() {
            let others: Vec<_> = vecs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, u)| u.clone())
                .collect();
            let center = one_cluster_kmeans(&others, dim);
            naive += cosine_similarity(v, &center);
        }
        naive /= vecs.len() as f64;
        assert!((fast - naive).abs() < 1e-9, "fast {fast} vs naive {naive}");
    }

    proptest! {
        #[test]
        fn loo_similarity_in_unit_interval(
            idx_sets in proptest::collection::vec(
                proptest::collection::vec(0u32..32, 1..8), 2..12),
        ) {
            let vecs: Vec<BowVector> = idx_sets
                .into_iter()
                .map(BowVector::from_indices)
                .collect();
            let sim = mean_loo_similarity(&vecs, 32);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&sim));
        }

        #[test]
        fn similarity_in_unit_interval(
            idx_sets in proptest::collection::vec(
                proptest::collection::vec(0u32..32, 1..8), 1..12),
        ) {
            let vecs: Vec<BowVector> = idx_sets
                .into_iter()
                .map(BowVector::from_indices)
                .collect();
            let sim = mean_similarity_to_center(&vecs, 32);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&sim));
        }

        #[test]
        fn center_entries_are_frequencies(
            idx_sets in proptest::collection::vec(
                proptest::collection::vec(0u32..16, 0..6), 1..10),
        ) {
            let vecs: Vec<BowVector> = idx_sets
                .into_iter()
                .map(BowVector::from_indices)
                .collect();
            for c in one_cluster_kmeans(&vecs, 16) {
                prop_assert!((0.0..=1.0).contains(&c));
            }
        }
    }
}
