//! Per-game generation parameters.
//!
//! The two profiles reproduce the dataset statistics from Section VII-A:
//!
//! | statistic | Dota2 (personal channels) | LoL (NALCS broadcasts) |
//! |---|---|---|
//! | videos | 60 | 173 |
//! | video length | 0.5–2 h | 0.5–1 h |
//! | highlights/video | ≈10 | ≈14 |
//! | highlight length | 5–50 s | 2–81 s |
//! | chat messages/video | 800–4300 | 800–4300 |
//!
//! The reaction delay (how long after a highlight *starts* the chat burst
//! ramps up) is the quantity the adjustment stage learns; its mean is set
//! so the learned constant lands in the paper's 23–27 s band (Figure 7b).

use lightor_types::GameKind;
use serde::{Deserialize, Serialize};

/// All knobs the generators need for one game title.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GameProfile {
    /// Which game this profile models.
    pub game: GameKind,
    /// Video length range in hours (uniform).
    pub video_len_hours: (f64, f64),
    /// Mean highlights per video (Poisson, clamped to `min_highlights`).
    pub highlights_per_video: f64,
    /// Lower clamp on the sampled highlight count.
    pub min_highlights: usize,
    /// Highlight duration bounds in seconds (truncation of the
    /// mean/std distribution below).
    pub highlight_len: (f64, f64),
    /// Mean highlight duration. Real highlight collections skew short —
    /// a kill takes seconds, long team fights are rare — which is why the
    /// *unadjusted* chat peak usually lands past the highlight's end
    /// (the failure Figure 7a punishes in Toretter).
    pub highlight_len_mean: f64,
    /// Std-dev of the highlight duration.
    pub highlight_len_std: f64,
    /// Minimum separation between highlight starts, in seconds. Must stay
    /// above the red-dot separation δ = 120 s so ground truth itself does
    /// not violate the top-k separation rule.
    pub highlight_min_gap: f64,
    /// Background chat rate range in messages/second (log-uniform per
    /// video — channel popularity varies over orders of magnitude).
    pub background_rate: (f64, f64),
    /// Reaction-burst rate as a multiple of the video's background rate.
    pub burst_multiplier: (f64, f64),
    /// Reaction-burst duration range in seconds (uniform).
    pub burst_len: (f64, f64),
    /// Reaction delay mean/std in seconds (truncated normal, bounds below).
    pub reaction_delay_mean: f64,
    /// Standard deviation of the reaction delay.
    pub reaction_delay_std: f64,
    /// Truncation bounds for the reaction delay.
    pub reaction_delay_bounds: (f64, f64),
    /// Advertisement-bot bursts per hour of video.
    pub bot_bursts_per_hour: f64,
    /// Off-topic conversation bursts per hour of video.
    pub offtopic_bursts_per_hour: f64,
    /// Unique-viewer count range (log-uniform).
    pub viewers: (f64, f64),
    /// Size of the chatting-user pool per video.
    pub chatter_pool: u64,
}

impl GameProfile {
    /// Dota 2 on personal channels (paper dataset 1).
    pub fn dota2() -> Self {
        GameProfile {
            game: GameKind::Dota2,
            video_len_hours: (0.5, 2.0),
            highlights_per_video: 10.0,
            min_highlights: 5,
            highlight_len: (5.0, 50.0),
            highlight_len_mean: 16.0,
            highlight_len_std: 10.0,
            highlight_min_gap: 200.0,
            background_rate: (0.20, 0.45),
            burst_multiplier: (3.5, 7.0),
            burst_len: (15.0, 26.0),
            reaction_delay_mean: 16.0,
            reaction_delay_std: 2.5,
            reaction_delay_bounds: (8.0, 28.0),
            bot_bursts_per_hour: 1.6,
            offtopic_bursts_per_hour: 2.8,
            viewers: (300.0, 24000.0),
            chatter_pool: 400,
        }
    }

    /// League of Legends championship broadcasts (paper dataset 2).
    ///
    /// Championship chat is denser, highlights are more frequent and more
    /// variable in length, and the crowd reacts slightly faster (the
    /// broadcast itself directs attention at the play).
    pub fn lol() -> Self {
        GameProfile {
            game: GameKind::Lol,
            video_len_hours: (0.5, 1.0),
            highlights_per_video: 14.0,
            min_highlights: 8,
            highlight_len: (2.0, 81.0),
            highlight_len_mean: 30.0,
            highlight_len_std: 18.0,
            highlight_min_gap: 160.0,
            background_rate: (0.30, 0.95),
            burst_multiplier: (3.0, 6.0),
            burst_len: (14.0, 24.0),
            reaction_delay_mean: 15.0,
            reaction_delay_std: 2.2,
            reaction_delay_bounds: (7.0, 26.0),
            bot_bursts_per_hour: 1.0,
            offtopic_bursts_per_hour: 2.2,
            viewers: (2000.0, 120000.0),
            chatter_pool: 1500,
        }
    }

    /// Profile lookup by game.
    pub fn for_game(game: GameKind) -> Self {
        match game {
            GameKind::Dota2 => GameProfile::dota2(),
            GameKind::Lol => GameProfile::lol(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_dataset_stats() {
        let d = GameProfile::dota2();
        assert_eq!(d.video_len_hours, (0.5, 2.0));
        assert_eq!(d.highlight_len, (5.0, 50.0));
        let l = GameProfile::lol();
        assert_eq!(l.video_len_hours, (0.5, 1.0));
        assert_eq!(l.highlight_len, (2.0, 81.0));
        assert!(l.highlights_per_video > d.highlights_per_video);
    }

    #[test]
    fn highlight_gap_respects_red_dot_separation() {
        // δ = 120 s in the paper; ground truth must be separable.
        assert!(GameProfile::dota2().highlight_min_gap > 120.0);
        assert!(GameProfile::lol().highlight_min_gap > 120.0);
    }

    #[test]
    fn reaction_delay_band_supports_learned_c() {
        // The learned c ≈ delay + burst_len/2 must land in 23–27 s.
        for p in [GameProfile::dota2(), GameProfile::lol()] {
            let c_estimate = p.reaction_delay_mean + (p.burst_len.0 + p.burst_len.1) / 4.0;
            assert!(
                (20.0..=30.0).contains(&c_estimate),
                "{}: c estimate {c_estimate}",
                p.game
            );
        }
    }

    #[test]
    fn for_game_round_trips() {
        assert_eq!(GameProfile::for_game(GameKind::Dota2).game, GameKind::Dota2);
        assert_eq!(GameProfile::for_game(GameKind::Lol).game, GameKind::Lol);
    }
}
