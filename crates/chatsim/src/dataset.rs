//! Assembled labelled datasets mirroring the paper's two corpora.
//!
//! Corpus construction fans out over videos with rayon: every video owns
//! an independent [`SeedTree`] node (`seed/dataset/game/index`), so the
//! parallel build is **bit-identical** to the serial one for any thread
//! count (`tests/dataset_determinism.rs` sweeps `RAYON_NUM_THREADS`),
//! and sub-sampling stays prefix-stable.

use crate::chat::{ChatGenerator, SimVideo};
use crate::game::GameProfile;
use crate::video::VideoGenerator;
use lightor_simkit::SeedTree;
use lightor_types::{ChannelId, GameKind, VideoId};
use rayon::prelude::*;
use std::sync::Arc;

/// A labelled video corpus for one game.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The game all videos belong to.
    pub game: GameKind,
    /// The labelled videos.
    pub videos: Vec<SimVideo>,
}

impl Dataset {
    /// Generate a dataset of `n` videos for `game` under `seed`,
    /// fanning video generation out across worker threads.
    ///
    /// Each video gets an independent RNG stream derived from
    /// `seed/game/index`, so sub-sampling a dataset (e.g. 10 of 60 videos)
    /// yields the same videos as generating the smaller dataset directly,
    /// and output is identical to [`Dataset::generate_serial`] for any
    /// thread count.
    pub fn generate(game: GameKind, n: usize, seed: u64) -> Self {
        let (vg, cg, root) = Self::generators(game, seed);
        let indices: Vec<u64> = (0..n as u64).collect();
        let videos = indices
            .par_iter()
            .map(|&i| Self::generate_one(&vg, &cg, &root, i))
            .collect();
        Dataset { game, videos }
    }

    /// [`Dataset::generate`] without the thread fan-out — the reference
    /// path the parallel build is asserted against.
    pub fn generate_serial(game: GameKind, n: usize, seed: u64) -> Self {
        let (vg, cg, root) = Self::generators(game, seed);
        let videos = (0..n as u64)
            .map(|i| Self::generate_one(&vg, &cg, &root, i))
            .collect();
        Dataset { game, videos }
    }

    fn generators(game: GameKind, seed: u64) -> (VideoGenerator, ChatGenerator, SeedTree) {
        let profile = Arc::new(GameProfile::for_game(game));
        let vg = VideoGenerator::new(profile.clone());
        let cg = ChatGenerator::new(profile);
        let root = SeedTree::new(seed).child("dataset").child(game.name());
        (vg, cg, root)
    }

    fn generate_one(vg: &VideoGenerator, cg: &ChatGenerator, root: &SeedTree, i: u64) -> SimVideo {
        let node = root.index(i);
        let mut vrng = node.child("spec").rng();
        let spec = vg.generate(VideoId(i), ChannelId(1000 + i % 10), &mut vrng);
        let mut crng = node.child("chat").rng();
        cg.generate(spec, &mut crng)
    }

    /// Number of videos.
    pub fn len(&self) -> usize {
        self.videos.len()
    }

    /// True when the dataset has no videos.
    pub fn is_empty(&self) -> bool {
        self.videos.is_empty()
    }

    /// Borrow the videos at `indices` (for train/test splits).
    pub fn select(&self, indices: &[usize]) -> Vec<&SimVideo> {
        indices.iter().map(|&i| &self.videos[i]).collect()
    }

    /// Mean number of labelled highlights per video.
    pub fn mean_highlights(&self) -> f64 {
        if self.videos.is_empty() {
            return 0.0;
        }
        self.videos
            .iter()
            .map(|v| v.video.highlights.len() as f64)
            .sum::<f64>()
            / self.videos.len() as f64
    }
}

/// The paper's Dota2 corpus: 60 videos from personal channels.
pub fn dota2_dataset(n: usize, seed: u64) -> Dataset {
    Dataset::generate(GameKind::Dota2, n, seed)
}

/// The paper's LoL corpus: 173 NALCS championship videos.
pub fn lol_dataset(n: usize, seed: u64) -> Dataset {
    Dataset::generate(GameKind::Lol, n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_stability() {
        // Generating 5 videos then 3 videos yields the same first 3.
        let big = dota2_dataset(5, 99);
        let small = dota2_dataset(3, 99);
        for i in 0..3 {
            assert_eq!(big.videos[i].video.chat, small.videos[i].video.chat);
        }
    }

    #[test]
    fn games_are_independent_streams() {
        let d = dota2_dataset(2, 5);
        let l = lol_dataset(2, 5);
        assert_ne!(
            d.videos[0].video.chat.len(),
            l.videos[0].video.chat.len(),
            "distinct games should not share chat streams"
        );
        assert_eq!(d.game, GameKind::Dota2);
        assert_eq!(l.game, GameKind::Lol);
    }

    #[test]
    fn parallel_build_matches_serial_build() {
        let par = Dataset::generate(GameKind::Dota2, 4, 77);
        let ser = Dataset::generate_serial(GameKind::Dota2, 4, 77);
        assert_eq!(par.len(), ser.len());
        for (a, b) in par.videos.iter().zip(&ser.videos) {
            assert_eq!(a.video.chat, b.video.chat);
            assert_eq!(a.video.highlights, b.video.highlights);
            assert_eq!(a.response_ranges, b.response_ranges);
        }
    }

    #[test]
    fn mean_highlights_matches_profiles() {
        let d = dota2_dataset(12, 31);
        assert!(
            (6.0..=14.0).contains(&d.mean_highlights()),
            "dota2 mean {}",
            d.mean_highlights()
        );
        let l = lol_dataset(12, 31);
        assert!(
            l.mean_highlights() > d.mean_highlights(),
            "LoL should average more highlights ({} vs {})",
            l.mean_highlights(),
            d.mean_highlights()
        );
    }

    #[test]
    fn select_borrows_by_index() {
        let d = dota2_dataset(4, 8);
        let picked = d.select(&[2, 0]);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].video.meta.id, VideoId(2));
        assert_eq!(picked[1].video.meta.id, VideoId(0));
        assert!(!d.is_empty());
        assert_eq!(d.len(), 4);
    }
}
