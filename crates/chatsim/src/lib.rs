//! A generative model of a Twitch-like live-streaming platform.
//!
//! The paper evaluates on 60 crawled Dota2 videos and 173 LoL championship
//! videos with human highlight labels, plus a crawl of top-channel videos
//! for the applicability study. None of that data can ship with this
//! reproduction, so this crate *generates* it from explicit mechanisms:
//!
//! * [`GameProfile`] — per-game parameters (video length, highlight
//!   density/duration, chat rates, reaction delay) calibrated to the
//!   statistics the paper reports in Section VII-A;
//! * [`lexicon`] — vocabularies for background chatter, highlight hype
//!   (short, repetitive, emote-heavy), advertisement bots (long,
//!   near-identical) and off-topic bursts (short but lexically diverse),
//!   compiled once into a [`lexicon::CompiledLexicon`]: one interned
//!   fragment blob plus per-class sampling tables (cumulative-weight for
//!   the hype mix), with writer methods that append message text into a
//!   caller-owned buffer — zero per-message allocations;
//! * [`VideoGenerator`] / [`ChatGenerator`] — sample a video's ground-truth
//!   highlights, then synthesize its chat replay: background Poisson
//!   chatter plus a delayed *reaction burst* after each highlight, plus the
//!   two noise-burst families the paper's features must defeat. The chat
//!   generator emits the columnar
//!   [`ChatLogView`](lightor_types::ChatLogView) directly through a
//!   per-video bump buffer;
//! * [`catalog`] — channels, popularity and recent-video listings for the
//!   Section VII-D applicability study and the platform crawler;
//! * [`dataset`] — the assembled Dota2/LoL labelled datasets, built in
//!   parallel across videos.
//!
//! # Determinism contract
//!
//! Everything is deterministic given a
//! [`SeedTree`](lightor_simkit::SeedTree): every video derives an
//! independent RNG stream from its own seed node, so parallel corpus
//! construction is bit-identical to a serial build for any thread count
//! (`RAYON_NUM_THREADS` swept in `tests/dataset_determinism.rs`), and
//! the allocation-free fast path is pinned bit-for-bit against the
//! retained owned-`String` materialization of the same sampler
//! ([`ChatGenerator::generate_reference`]) — the zero-copy rewrite
//! changes cost, never content.
//!
//! **Seed-compat note (PR 5):** the *draw sequence* changed relative to
//! earlier PRs — direct gap-constrained highlight placement,
//! count-then-uniform Poisson arrivals, multiply-mapped lexicon picks,
//! and precomposed message pools — so corpora for a fixed seed differ
//! from PR ≤ 4 (same distributions throughout, exactly so for highlight
//! placement, arrivals and bot texts; the sampled text pools are a
//! large finite table documented in [`lexicon`]). See CHANGES.md.

#![warn(missing_docs)]

pub mod catalog;
pub mod chat;
pub mod dataset;
pub mod game;
pub mod lexicon;
pub mod video;

pub use catalog::{Channel, SimPlatform};
pub use chat::{ChatGenerator, SimVideo};
pub use dataset::{dota2_dataset, lol_dataset, Dataset};
pub use game::GameProfile;
pub use lexicon::{CompiledLexicon, MessageKind};
pub use video::{VideoGenerator, VideoSpec};
