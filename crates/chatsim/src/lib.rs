//! A generative model of a Twitch-like live-streaming platform.
//!
//! The paper evaluates on 60 crawled Dota2 videos and 173 LoL championship
//! videos with human highlight labels, plus a crawl of top-channel videos
//! for the applicability study. None of that data can ship with this
//! reproduction, so this crate *generates* it from explicit mechanisms:
//!
//! * [`GameProfile`] — per-game parameters (video length, highlight
//!   density/duration, chat rates, reaction delay) calibrated to the
//!   statistics the paper reports in Section VII-A;
//! * [`lexicon`] — vocabularies for background chatter, highlight hype
//!   (short, repetitive, emote-heavy), advertisement bots (long,
//!   near-identical) and off-topic bursts (short but lexically diverse);
//! * [`VideoGenerator`] / [`ChatGenerator`] — sample a video's ground-truth
//!   highlights, then synthesize its chat replay: background Poisson
//!   chatter plus a delayed *reaction burst* after each highlight, plus the
//!   two noise-burst families the paper's features must defeat;
//! * [`catalog`] — channels, popularity and recent-video listings for the
//!   Section VII-D applicability study and the platform crawler;
//! * [`dataset`] — the assembled Dota2/LoL labelled datasets.
//!
//! Everything is deterministic given a [`SeedTree`](lightor_simkit::SeedTree).

#![warn(missing_docs)]

pub mod catalog;
pub mod chat;
pub mod dataset;
pub mod game;
pub mod lexicon;
pub mod video;

pub use catalog::{Channel, SimPlatform};
pub use chat::{ChatGenerator, SimVideo};
pub use dataset::{dota2_dataset, lol_dataset, Dataset};
pub use game::GameProfile;
pub use video::{VideoGenerator, VideoSpec};
