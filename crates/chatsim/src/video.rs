//! Video sampling: length, viewer count, and ground-truth highlight
//! placement.

use crate::game::GameProfile;
use lightor_simkit::dist::{log_uniform, uniform};
use lightor_simkit::SimRng;
use lightor_types::{ChannelId, Highlight, Sec, VideoId, VideoMeta};
use rand_distr::{Distribution, Poisson};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A sampled video skeleton: metadata, ground-truth highlights and the
/// video's base chat intensity. The chat replay itself is produced by
/// [`ChatGenerator`](crate::chat::ChatGenerator).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VideoSpec {
    /// Metadata (id, channel, game, duration, viewers).
    pub meta: VideoMeta,
    /// Ground-truth highlights, sorted by start, pairwise ≥ `min_gap` apart.
    pub highlights: Vec<Highlight>,
    /// This video's background chat rate (messages/second).
    pub background_rate: f64,
}

/// Samples [`VideoSpec`]s from a [`GameProfile`].
#[derive(Clone, Debug)]
pub struct VideoGenerator {
    profile: Arc<GameProfile>,
}

/// Margin kept free of highlights at both ends of the video, so reaction
/// bursts and red-dot neighbourhoods never get truncated by the edges.
const EDGE_MARGIN: f64 = 90.0;

impl VideoGenerator {
    /// A generator for the given game profile (`GameProfile` or
    /// `Arc<GameProfile>`; sharing the `Arc` with the chat generator
    /// avoids per-corpus profile copies).
    pub fn new(profile: impl Into<Arc<GameProfile>>) -> Self {
        VideoGenerator {
            profile: profile.into(),
        }
    }

    /// The profile in use.
    pub fn profile(&self) -> &GameProfile {
        &self.profile
    }

    /// Sample one video. `id`/`channel` are assigned by the caller so
    /// datasets and catalogs control their own numbering.
    pub fn generate(&self, id: VideoId, channel: ChannelId, rng: &mut SimRng) -> VideoSpec {
        let p = &self.profile;
        let duration_s = uniform(rng, p.video_len_hours.0, p.video_len_hours.1) * 3600.0;
        let viewers = log_uniform(rng, p.viewers.0, p.viewers.1) as u32;
        let background_rate = log_uniform(rng, p.background_rate.0, p.background_rate.1);

        let highlights = self.place_highlights(duration_s, rng);

        VideoSpec {
            meta: VideoMeta {
                id,
                channel,
                game: p.game,
                duration: Sec(duration_s),
                viewers,
            },
            highlights,
            background_rate,
        }
    }

    /// Sample highlight count and place non-overlapping highlights with the
    /// profile's minimum start gap, away from the video edges.
    ///
    /// Placement samples the gap-constrained configuration *directly*:
    /// draw `want` iid uniforms in the interval shrunk by the total gap
    /// budget, sort them, and re-expand by `i · gap`. The result is
    /// exactly uniform over valid (pairwise ≥ gap) start configurations
    /// — the distribution rejection sampling targets — in O(want log
    /// want) draws. The rejection loop this replaces burned up to
    /// 10 000 candidate draws per tight video (want ≈ capacity) and
    /// could silently place *fewer* than `want` highlights when the
    /// attempt budget ran out; the direct sampler always places all of
    /// them.
    fn place_highlights(&self, duration_s: f64, rng: &mut SimRng) -> Vec<Highlight> {
        let p = &*self.profile;
        let poisson = Poisson::new(p.highlights_per_video).expect("positive mean");
        let mut want = (poisson.sample(rng) as usize).max(p.min_highlights);

        // Cap by what physically fits.
        let usable = duration_s - 2.0 * EDGE_MARGIN;
        let capacity = (usable / p.highlight_min_gap).floor() as usize;
        want = want.min(capacity.max(1));

        // Shrink: placing `want` points pairwise ≥ gap apart inside
        // `usable` is a bijection with placing them freely inside
        // `usable - (want-1)·gap` (subtract i·gap from the i-th sorted
        // point). `want ≤ capacity` guarantees the shrunk span > 0.
        let gap = p.highlight_min_gap;
        let span = usable - (want - 1) as f64 * gap;
        let mut starts: Vec<f64> = (0..want)
            .map(|_| uniform(rng, 0.0, span.max(1e-9)))
            .collect();
        starts.sort_by(|a, b| a.total_cmp(b));
        for (i, s) in starts.iter_mut().enumerate() {
            *s += EDGE_MARGIN + i as f64 * gap;
        }

        let len_dist = lightor_simkit::TruncNormal::new(
            p.highlight_len_mean,
            p.highlight_len_std,
            p.highlight_len.0,
            p.highlight_len.1,
        );
        starts
            .into_iter()
            .map(|s| {
                let len = len_dist.sample(rng);
                // Keep the clip inside the video.
                let end = (s + len).min(duration_s - 5.0);
                Highlight::from_secs(s, end.max(s + 1.0))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_simkit::SeedTree;
    use lightor_types::GameKind;

    fn gen_videos(profile: GameProfile, n: usize, seed: u64) -> Vec<VideoSpec> {
        let g = VideoGenerator::new(profile);
        let root = SeedTree::new(seed);
        (0..n)
            .map(|i| {
                let mut rng = root.index(i as u64).rng();
                g.generate(VideoId(i as u64), ChannelId(0), &mut rng)
            })
            .collect()
    }

    #[test]
    fn durations_in_profile_range() {
        for v in gen_videos(GameProfile::dota2(), 20, 1) {
            let h = v.meta.duration.0 / 3600.0;
            assert!((0.5..=2.0).contains(&h), "duration {h}h");
            assert_eq!(v.meta.game, GameKind::Dota2);
        }
    }

    #[test]
    fn highlights_are_sorted_disjoint_and_gapped() {
        for v in gen_videos(GameProfile::dota2(), 20, 2) {
            let gap = GameProfile::dota2().highlight_min_gap;
            for w in v.highlights.windows(2) {
                assert!(w[0].start().0 < w[1].start().0, "unsorted");
                assert!(
                    w[1].start().0 - w[0].start().0 >= gap - 1e-9,
                    "gap violated: {} then {}",
                    w[0].range,
                    w[1].range
                );
                assert!(!w[0].range.overlaps(&w[1].range));
            }
        }
    }

    #[test]
    fn highlight_lengths_in_range() {
        for v in gen_videos(GameProfile::lol(), 20, 3) {
            for h in &v.highlights {
                let len = h.range.duration().0;
                assert!(
                    (1.0..=81.0).contains(&len),
                    "length {len} outside LoL range"
                );
            }
        }
    }

    #[test]
    fn highlights_keep_edge_margin() {
        for v in gen_videos(GameProfile::dota2(), 20, 4) {
            for h in &v.highlights {
                assert!(h.start().0 >= EDGE_MARGIN);
                assert!(h.end().0 <= v.meta.duration.0);
            }
        }
    }

    #[test]
    fn highlight_counts_are_plausible() {
        let videos = gen_videos(GameProfile::dota2(), 40, 5);
        let mean = videos
            .iter()
            .map(|v| v.highlights.len() as f64)
            .sum::<f64>()
            / videos.len() as f64;
        // Poisson(10) clamped ≥5, capped by capacity: mean should be near 10.
        assert!((7.0..=13.0).contains(&mean), "mean highlights {mean}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen_videos(GameProfile::lol(), 3, 9);
        let b = gen_videos(GameProfile::lol(), 3, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn short_videos_still_get_highlights() {
        // Even a 0.5 h video must produce at least min_highlights (capacity
        // allows ~8 at 200 s gap).
        let videos = gen_videos(GameProfile::dota2(), 30, 6);
        for v in videos {
            assert!(
                v.highlights.len() >= 5,
                "only {} highlights in {}s video",
                v.highlights.len(),
                v.meta.duration.0
            );
        }
    }
}
