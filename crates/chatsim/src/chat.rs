//! Chat replay synthesis.
//!
//! A video's chat is the superposition of four event processes:
//!
//! 1. **Background chatter** — homogeneous Poisson at the video's base
//!    rate, mostly medium-length messages with occasional stray reactions.
//! 2. **Reaction bursts** — one per ground-truth highlight. Viewers can
//!    only comment on a highlight *after* seeing it (Section IV-C1), so
//!    the burst window opens a reaction delay after the highlight starts
//!    and its rate follows a triangular profile (ramp up, peak, decay):
//!    the message-count peak the adjustment stage anchors on.
//! 3. **Bot bursts** — advertisement spam: many long, near-identical
//!    messages in a few seconds (the false-positive family that defeats
//!    the count-only detector, Section IV-C1).
//! 4. **Off-topic bursts** — conversation flare-ups: many short but
//!    lexically diverse messages (the family the similarity feature
//!    defeats, Section VII-B).

use crate::game::GameProfile;
use crate::lexicon::{self, MessageKind};
use crate::video::VideoSpec;
use lightor_simkit::dist::{coin, uniform, PoissonProcess, TruncNormal};
use lightor_simkit::SimRng;
use lightor_types::{ChatLog, ChatMessage, LabeledVideo, TimeRange, UserId};
use rand::Rng;
use rand_distr::{Distribution, Poisson};
use serde::{Deserialize, Serialize};

/// A fully generated video: the labelled dataset unit plus the generator's
/// ground truth about *chat* (which the paper's human labellers produced by
/// watching: "is this window talking about a highlight?").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimVideo {
    /// Metadata, chat replay and highlight labels.
    pub video: LabeledVideo,
    /// Reaction-burst window per highlight (index-aligned with
    /// `video.highlights`) — the analog of human window labels.
    pub response_ranges: Vec<TimeRange>,
    /// True reaction delay per highlight, in seconds.
    pub reaction_delays: Vec<f64>,
}

impl SimVideo {
    /// True if `range` overlaps any highlight's reaction burst — the
    /// window-labelling rule used to train and score the prediction stage.
    pub fn window_is_highlight(&self, range: TimeRange) -> bool {
        self.response_ranges.iter().any(|r| r.overlaps(&range))
    }
}

/// Synthesizes chat replays for [`VideoSpec`]s.
#[derive(Clone, Debug)]
pub struct ChatGenerator {
    profile: GameProfile,
}

/// Fraction of the reaction-burst window at which the message rate peaks.
const BURST_PEAK_FRAC: f64 = 0.35;

impl ChatGenerator {
    /// A generator for the given game profile.
    pub fn new(profile: GameProfile) -> Self {
        ChatGenerator { profile }
    }

    /// Generate the chat replay for `spec`.
    pub fn generate(&self, spec: &VideoSpec, rng: &mut SimRng) -> SimVideo {
        let mut messages: Vec<ChatMessage> = Vec::new();
        let dur = spec.meta.duration.0;

        self.background(spec, &mut messages, rng);
        let (response_ranges, reaction_delays) = self.reaction_bursts(spec, &mut messages, rng);
        self.bot_bursts(spec, &mut messages, rng);
        self.offtopic_bursts(spec, &mut messages, rng);

        debug_assert!(messages.iter().all(|m| m.ts.0 >= 0.0 && m.ts.0 <= dur));

        SimVideo {
            video: LabeledVideo {
                meta: spec.meta.clone(),
                chat: ChatLog::new(messages),
                highlights: spec.highlights.clone(),
            },
            response_ranges,
            reaction_delays,
        }
    }

    fn random_user(&self, rng: &mut SimRng) -> UserId {
        UserId(rng.gen_range(0..self.profile.chatter_pool))
    }

    fn background(&self, spec: &VideoSpec, out: &mut Vec<ChatMessage>, rng: &mut SimRng) {
        let proc = PoissonProcess::new(spec.background_rate);
        for t in proc.sample_times(0.0, spec.meta.duration.0, rng) {
            // Mostly chatter; a sprinkle of stray reactions and questions
            // keeps single hype tokens from being a perfect highlight tell.
            let kind = if coin(rng, 0.08) {
                MessageKind::Hype
            } else if coin(rng, 0.05) {
                MessageKind::OffTopic
            } else {
                MessageKind::Background
            };
            let user = self.random_user(rng);
            out.push(ChatMessage::new(
                t,
                user,
                lexicon::generate(rng, kind, self.profile.game),
            ));
        }
    }

    /// One triangular-rate burst per highlight; returns the burst windows
    /// and the sampled delays.
    fn reaction_bursts(
        &self,
        spec: &VideoSpec,
        out: &mut Vec<ChatMessage>,
        rng: &mut SimRng,
    ) -> (Vec<TimeRange>, Vec<f64>) {
        let p = &self.profile;
        let delay_dist = TruncNormal::new(
            p.reaction_delay_mean,
            p.reaction_delay_std,
            p.reaction_delay_bounds.0,
            p.reaction_delay_bounds.1,
        );
        let dur = spec.meta.duration.0;
        let mut windows = Vec::with_capacity(spec.highlights.len());
        let mut delays = Vec::with_capacity(spec.highlights.len());

        for h in &spec.highlights {
            let delay = delay_dist.sample(rng);
            let burst_len = uniform(rng, p.burst_len.0, p.burst_len.1);
            let start = (h.start().0 + delay).min(dur - 1.0);
            let end = (start + burst_len).min(dur);
            let window = TimeRange::from_secs(start, end);

            // Everyone reacts to the same moment: the burst concentrates
            // on a few focus tokens (the similarity feature's signal).
            let focus = lexicon::hype_focus(rng, p.game);
            let mult = uniform(rng, p.burst_multiplier.0, p.burst_multiplier.1);
            // Thinning against the triangular envelope: expected message
            // count = background_rate * mult * burst_len.
            let max_rate = spec.background_rate * mult * 2.0;
            let candidates = PoissonProcess::new(max_rate).sample_times(start, end, rng);
            for t in candidates {
                let x = (t - start) / (end - start).max(1e-9);
                let envelope = if x < BURST_PEAK_FRAC {
                    x / BURST_PEAK_FRAC
                } else {
                    (1.0 - x) / (1.0 - BURST_PEAK_FRAC)
                };
                if coin(rng, envelope) {
                    let user = self.random_user(rng);
                    let text = if coin(rng, 0.88) {
                        lexicon::hype_with_focus(rng, &focus, p.game)
                    } else {
                        lexicon::generate(rng, MessageKind::Background, p.game)
                    };
                    out.push(ChatMessage::new(t, user, text));
                }
            }
            windows.push(window);
            delays.push(delay);
        }
        (windows, delays)
    }

    fn bot_bursts(&self, spec: &VideoSpec, out: &mut Vec<ChatMessage>, rng: &mut SimRng) {
        let dur = spec.meta.duration.0;
        let hours = dur / 3600.0;
        let n = sample_count(self.profile.bot_bursts_per_hour * hours, rng);
        for _ in 0..n {
            let start = uniform(rng, 0.0, (dur - 30.0).max(1.0));
            let len = uniform(rng, 8.0, 18.0);
            let rate = uniform(rng, 0.9, 2.2);
            for t in PoissonProcess::new(rate).sample_times(start, (start + len).min(dur), rng) {
                out.push(ChatMessage::new(
                    t,
                    UserId::BOT,
                    lexicon::generate(rng, MessageKind::Bot, self.profile.game),
                ));
            }
        }
    }

    fn offtopic_bursts(&self, spec: &VideoSpec, out: &mut Vec<ChatMessage>, rng: &mut SimRng) {
        let dur = spec.meta.duration.0;
        let hours = dur / 3600.0;
        let n = sample_count(self.profile.offtopic_bursts_per_hour * hours, rng);
        for _ in 0..n {
            let start = uniform(rng, 0.0, (dur - 40.0).max(1.0));
            let len = uniform(rng, 15.0, 30.0);
            let rate = spec.background_rate * uniform(rng, 2.5, 5.0);
            for t in PoissonProcess::new(rate).sample_times(start, (start + len).min(dur), rng) {
                let user = self.random_user(rng);
                out.push(ChatMessage::new(
                    t,
                    user,
                    lexicon::generate(rng, MessageKind::OffTopic, self.profile.game),
                ));
            }
        }
    }
}

fn sample_count(mean: f64, rng: &mut SimRng) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    Poisson::new(mean).expect("positive mean").sample(rng) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::VideoGenerator;
    use lightor_simkit::SeedTree;
    use lightor_types::{ChannelId, VideoId};

    fn gen_sim(profile: GameProfile, idx: u64, seed: u64) -> SimVideo {
        let vg = VideoGenerator::new(profile.clone());
        let cg = ChatGenerator::new(profile);
        let root = SeedTree::new(seed);
        let mut vrng = root.child("video").index(idx).rng();
        let spec = vg.generate(VideoId(idx), ChannelId(0), &mut vrng);
        let mut crng = root.child("chat").index(idx).rng();
        cg.generate(&spec, &mut crng)
    }

    #[test]
    fn message_counts_match_paper_band() {
        // Paper Section VII-A: 800-4300 messages per video. Allow modest
        // slack since our counts are random draws.
        for i in 0..12 {
            let sv = gen_sim(GameProfile::dota2(), i, 11);
            let n = sv.video.chat.len();
            assert!(
                (550..=5200).contains(&n),
                "video {i}: {n} messages, duration {}",
                sv.video.meta.duration
            );
        }
    }

    #[test]
    fn chat_is_sorted_and_in_range() {
        let sv = gen_sim(GameProfile::lol(), 0, 12);
        let msgs = sv.video.chat.messages();
        assert!(msgs.windows(2).all(|w| w[0].ts.0 <= w[1].ts.0));
        let dur = sv.video.meta.duration.0;
        assert!(msgs.iter().all(|m| (0.0..=dur).contains(&m.ts.0)));
    }

    #[test]
    fn bursts_follow_highlights_with_delay() {
        let sv = gen_sim(GameProfile::dota2(), 1, 13);
        for (h, (w, d)) in sv
            .video
            .highlights
            .iter()
            .zip(sv.response_ranges.iter().zip(&sv.reaction_delays))
        {
            assert!(
                (6.0..=26.0).contains(d),
                "delay {d} outside truncation bounds"
            );
            assert!((w.start.0 - (h.start().0 + d)).abs() < 1.5);
            assert!(w.end.0 > w.start.0);
        }
    }

    #[test]
    fn burst_windows_have_elevated_rate() {
        let sv = gen_sim(GameProfile::dota2(), 2, 14);
        let chat = &sv.video.chat;
        let dur = sv.video.meta.duration.0;
        // Compare burst-window rate against the whole-video average rate.
        let avg_rate = chat.len() as f64 / dur;
        let mut elevated = 0;
        for w in &sv.response_ranges {
            let n = chat.count_in(*w) as f64;
            let rate = n / w.duration().0.max(1e-9);
            if rate > 1.5 * avg_rate {
                elevated += 1;
            }
        }
        // The vast majority of bursts must be visibly elevated.
        assert!(
            elevated * 10 >= sv.response_ranges.len() * 7,
            "{elevated}/{} bursts elevated",
            sv.response_ranges.len()
        );
    }

    #[test]
    fn hype_messages_are_shorter_in_bursts() {
        let sv = gen_sim(GameProfile::dota2(), 3, 15);
        let chat = &sv.video.chat;
        let mut burst_len = Vec::new();
        let mut other_len = Vec::new();
        for m in chat.messages() {
            let in_burst = sv.response_ranges.iter().any(|w| w.contains(m.ts));
            if in_burst {
                burst_len.push(m.word_count() as f64);
            } else {
                other_len.push(m.word_count() as f64);
            }
        }
        let bm = lightor_simkit::mean(&burst_len).unwrap();
        let om = lightor_simkit::mean(&other_len).unwrap();
        assert!(bm < om, "burst mean len {bm} vs other {om}");
    }

    #[test]
    fn window_is_highlight_matches_ranges() {
        let sv = gen_sim(GameProfile::lol(), 4, 16);
        let w = sv.response_ranges[0];
        assert!(sv.window_is_highlight(w));
        assert!(sv.window_is_highlight(TimeRange::from_secs(w.start.0 - 5.0, w.start.0 + 1.0)));
        // A window long before the first highlight cannot be labelled.
        assert!(!sv.window_is_highlight(TimeRange::from_secs(0.0, 10.0)));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen_sim(GameProfile::dota2(), 5, 17);
        let b = gen_sim(GameProfile::dota2(), 5, 17);
        assert_eq!(a.video.chat, b.video.chat);
        assert_eq!(a.response_ranges, b.response_ranges);
    }

    #[test]
    fn bot_messages_present_and_long() {
        // Across several videos, bots must appear (they are the noise the
        // prediction stage exists to reject).
        let mut bot_msgs = 0usize;
        let mut total = 0usize;
        for i in 0..6 {
            let sv = gen_sim(GameProfile::dota2(), i, 18);
            for m in sv.video.chat.messages() {
                total += 1;
                if m.user == UserId::BOT {
                    bot_msgs += 1;
                    assert!(m.word_count() >= 14, "bot msg too short: {:?}", m.text);
                }
            }
        }
        assert!(bot_msgs > 20, "only {bot_msgs} bot messages in {total}");
    }
}
