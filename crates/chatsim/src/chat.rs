//! Chat replay synthesis.
//!
//! A video's chat is the superposition of four event processes:
//!
//! 1. **Background chatter** — homogeneous Poisson at the video's base
//!    rate, mostly medium-length messages with occasional stray reactions.
//! 2. **Reaction bursts** — one per ground-truth highlight. Viewers can
//!    only comment on a highlight *after* seeing it (Section IV-C1), so
//!    the burst window opens a reaction delay after the highlight starts
//!    and its rate follows a triangular profile (ramp up, peak, decay):
//!    the message-count peak the adjustment stage anchors on.
//! 3. **Bot bursts** — advertisement spam: many long, near-identical
//!    messages in a few seconds (the false-positive family that defeats
//!    the count-only detector, Section IV-C1).
//! 4. **Off-topic bursts** — conversation flare-ups: many short but
//!    lexically diverse messages (the family the similarity feature
//!    defeats, Section VII-B).
//!
//! # Allocation-free generation, pinned determinism
//!
//! The event-process walk is written once ([`ChatGenerator::synthesize`])
//! against a small sink trait, and instantiated twice:
//!
//! * the **fast path** ([`ChatGenerator::generate`]) appends message
//!   text through the [`CompiledLexicon`] writers into a per-video
//!   [`ChatLogBuilder`] bump buffer and finishes straight into a
//!   [`ChatLogView`] — no per-message `String`, no intermediate owned
//!   `ChatLog`;
//! * the **reference path** ([`ChatGenerator::generate_reference`])
//!   materializes one owned `String` per message and an owned
//!   [`ChatLog`] — the pre-refactor *cost model*, kept as the bench
//!   baseline and as the oracle proving the bump buffer is lossless.
//!
//! Both sinks consume the RNG in the identical sequence, so their
//! output is **bit-identical** for any seed (pinned here and in
//! `tests/dataset_determinism.rs`). Event times come from the
//! count-then-uniform Poisson sampler
//! ([`PoissonProcess::sample_times_unsorted`]) since the global
//! timestamp sort happens once at the end anyway.
//!
//! **Seed-compat:** PR 5 changed the generator's draw sequence (direct
//! gap-constrained highlight placement, count-then-uniform arrivals,
//! multiply-mapped lexicon picks, one-roll kind mixing). Corpora for a
//! fixed seed therefore differ from PR ≤ 4 — same distributions, new
//! stream; see CHANGES.md.

use crate::game::GameProfile;
use crate::lexicon::{CompiledLexicon, FocusSet, MessageKind};
use crate::video::VideoSpec;
use lightor_simkit::dist::{coin, uniform, uniform_index, PoissonProcess, TruncNormal};
use lightor_simkit::SimRng;
use lightor_types::{
    ts_order_key, ChatLog, ChatLogBuilder, ChatLogView, ChatMessage, FragRuns, GameKind,
    LabeledVideo, TimeRange, UserId,
};
use rand::Rng;
use rand_distr::{Distribution, Poisson};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A fully generated video: the labelled dataset unit plus the generator's
/// ground truth about *chat* (which the paper's human labellers produced by
/// watching: "is this window talking about a highlight?").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimVideo {
    /// Metadata, chat replay and highlight labels.
    pub video: LabeledVideo,
    /// Reaction-burst window per highlight (index-aligned with
    /// `video.highlights`) — the analog of human window labels.
    pub response_ranges: Vec<TimeRange>,
    /// True reaction delay per highlight, in seconds.
    pub reaction_delays: Vec<f64>,
}

impl SimVideo {
    /// True if `range` overlaps any highlight's reaction burst — the
    /// window-labelling rule used to train and score the prediction stage.
    pub fn window_is_highlight(&self, range: TimeRange) -> bool {
        self.response_ranges.iter().any(|r| r.overlaps(&range))
    }
}

/// Synthesizes chat replays for [`VideoSpec`]s.
///
/// Cheap to clone and `Sync`: the game profile is `Arc`-shared and the
/// lexicon is the process-wide compiled table, so corpus-scale fan-out
/// never deep-copies either.
#[derive(Clone, Debug)]
pub struct ChatGenerator {
    profile: Arc<GameProfile>,
    lexicon: &'static CompiledLexicon,
}

/// Fraction of the reaction-burst window at which the message rate peaks.
const BURST_PEAK_FRAC: f64 = 0.35;

/// Where one event-walk message lands: the fast path writes fragments
/// into a bump buffer, the reference path materializes `String`s. Both
/// must consume the RNG identically (the whole point of the trait).
trait ChatSink {
    /// A burst's sampled focus tokens.
    type Focus;

    /// Sample the focus set of one reaction burst.
    fn sample_focus(&mut self, rng: &mut SimRng, game: GameKind) -> Self::Focus;

    /// Emit one message of `kind`.
    fn message(
        &mut self,
        ts: f64,
        user: UserId,
        kind: MessageKind,
        game: GameKind,
        rng: &mut SimRng,
    );

    /// Emit one focused reaction-burst message.
    fn hype_focused(&mut self, ts: f64, user: UserId, focus: &Self::Focus, rng: &mut SimRng);
}

/// The allocation-free sink: compiled-lexicon writers over a bump
/// buffer. When the builder was created with
/// [`ChatLogBuilder::recording_frags`], every message's fragment
/// decomposition is recorded through the `*_with_frags` writer
/// variants — identical draws, identical bytes (pinned in tests), so
/// recording never perturbs determinism.
struct FastSink {
    builder: ChatLogBuilder,
    lexicon: &'static CompiledLexicon,
}

impl ChatSink for FastSink {
    type Focus = FocusSet;

    fn sample_focus(&mut self, rng: &mut SimRng, game: GameKind) -> FocusSet {
        self.lexicon.sample_focus(rng, game)
    }

    fn message(
        &mut self,
        ts: f64,
        user: UserId,
        kind: MessageKind,
        game: GameKind,
        rng: &mut SimRng,
    ) {
        let (text, frags) = self.builder.text_and_frags();
        match frags {
            Some(f) => self
                .lexicon
                .write_message_with_frags(rng, kind, game, text, f),
            None => self.lexicon.write_message(rng, kind, game, text),
        }
        self.builder.commit(ts, user);
    }

    fn hype_focused(&mut self, ts: f64, user: UserId, focus: &FocusSet, rng: &mut SimRng) {
        let (text, frags) = self.builder.text_and_frags();
        match frags {
            Some(f) => self
                .lexicon
                .write_hype_focused_with_frags(rng, focus, text, f),
            None => self.lexicon.write_hype_focused(rng, focus, text),
        }
        self.builder.commit(ts, user);
    }
}

/// The owned-materialization sink: one `String` per message collected
/// into a `Vec<ChatMessage>` — the pre-refactor cost model (kept as
/// the pinning oracle and the benchmark baseline). Identical draws to
/// [`FastSink`], so identical bytes.
struct ReferenceSink {
    messages: Vec<ChatMessage>,
    lexicon: &'static CompiledLexicon,
}

impl ChatSink for ReferenceSink {
    type Focus = FocusSet;

    fn sample_focus(&mut self, rng: &mut SimRng, game: GameKind) -> FocusSet {
        self.lexicon.sample_focus(rng, game)
    }

    fn message(
        &mut self,
        ts: f64,
        user: UserId,
        kind: MessageKind,
        game: GameKind,
        rng: &mut SimRng,
    ) {
        let mut text = String::new();
        self.lexicon.write_message(rng, kind, game, &mut text);
        self.messages.push(ChatMessage::new(ts, user, text));
    }

    fn hype_focused(&mut self, ts: f64, user: UserId, focus: &FocusSet, rng: &mut SimRng) {
        let mut text = String::new();
        self.lexicon.write_hype_focused(rng, focus, &mut text);
        self.messages.push(ChatMessage::new(ts, user, text));
    }
}

impl ChatGenerator {
    /// A generator for the given game profile (`GameProfile` or
    /// `Arc<GameProfile>` — sharing the `Arc` keeps corpus-scale
    /// generation from copying the profile per video).
    pub fn new(profile: impl Into<Arc<GameProfile>>) -> Self {
        ChatGenerator {
            profile: profile.into(),
            lexicon: CompiledLexicon::shared(),
        }
    }

    /// Generate the chat replay for `spec`, emitting the columnar
    /// [`ChatLogView`] directly. Consumes the spec: its metadata and
    /// highlights move into the result instead of being cloned.
    pub fn generate(&self, spec: VideoSpec, rng: &mut SimRng) -> SimVideo {
        let dur = spec.meta.duration.0;
        // Expected messages ≈ background·dur plus the burst families;
        // 1.6× covers the bursts for both profiles without waste.
        let est_msgs = (spec.background_rate * dur * 1.6) as usize + 64;
        let mut sink = FastSink {
            builder: ChatLogBuilder::with_capacity(est_msgs, est_msgs * 32),
            lexicon: self.lexicon,
        };
        let (response_ranges, reaction_delays) = self.synthesize(&spec, &mut sink, rng);
        let chat = sink.builder.finish_sorted();
        debug_assert!(chat.iter().all(|m| m.ts.0 >= 0.0 && m.ts.0 <= dur));
        Self::assemble(spec, chat, response_ranges, reaction_delays)
    }

    /// [`ChatGenerator::generate`] plus the per-message fragment-id
    /// runs (see [`FragRuns`]): the same draw stream and bit-identical
    /// chat (pinned in tests), with each message's compiled-lexicon
    /// decomposition recorded so downstream corpus construction can
    /// tokenize by fragment-table lookup instead of word-splitting.
    pub fn generate_tokenized(&self, spec: VideoSpec, rng: &mut SimRng) -> (SimVideo, FragRuns) {
        let dur = spec.meta.duration.0;
        let est_msgs = (spec.background_rate * dur * 1.6) as usize + 64;
        let mut sink = FastSink {
            builder: ChatLogBuilder::recording_frags(est_msgs, est_msgs * 32),
            lexicon: self.lexicon,
        };
        let (response_ranges, reaction_delays) = self.synthesize(&spec, &mut sink, rng);
        let (chat, runs) = sink.builder.finish_sorted_with_runs();
        debug_assert!(chat.iter().all(|m| m.ts.0 >= 0.0 && m.ts.0 <= dur));
        debug_assert_eq!(runs.len(), chat.len());
        (
            Self::assemble(spec, chat, response_ranges, reaction_delays),
            runs,
        )
    }

    /// The owned-materialization generator: per-message `String`s
    /// collected into an owned [`ChatLog`], then columnarized — the
    /// pre-refactor cost model over the same draw stream. Retained as
    /// the pinning oracle (bump buffer is lossless) and the bench
    /// baseline.
    pub fn generate_reference(&self, spec: VideoSpec, rng: &mut SimRng) -> SimVideo {
        let mut sink = ReferenceSink {
            messages: Vec::new(),
            lexicon: self.lexicon,
        };
        let (response_ranges, reaction_delays) = self.synthesize(&spec, &mut sink, rng);
        let chat = ChatLogView::from_chat_log(&ChatLog::new(sink.messages));
        Self::assemble(spec, chat, response_ranges, reaction_delays)
    }

    fn assemble(
        spec: VideoSpec,
        chat: ChatLogView,
        response_ranges: Vec<TimeRange>,
        reaction_delays: Vec<f64>,
    ) -> SimVideo {
        let VideoSpec {
            meta, highlights, ..
        } = spec;
        SimVideo {
            video: LabeledVideo {
                meta,
                chat,
                highlights,
            },
            response_ranges,
            reaction_delays,
        }
    }

    /// Run the four event processes into `sink`, in two phases:
    ///
    /// 1. **Event layout** — sample every process's event times (and
    ///    per-candidate burst thinning) into one tagged event list,
    ///    then sort it by `(timestamp, insertion order)`.
    /// 2. **Message writing** — walk the sorted events, drawing each
    ///    message's author and text in final timestamp order.
    ///
    /// Writing in sorted order means the sink's bump buffer is already
    /// laid out — finishing is a sequential serialization instead of a
    /// permuted gather over the text blob. The RNG draw sequence here
    /// is the determinism contract — any change breaks seed
    /// compatibility and must be called out in CHANGES.md.
    fn synthesize<S: ChatSink>(
        &self,
        spec: &VideoSpec,
        sink: &mut S,
        rng: &mut SimRng,
    ) -> (Vec<TimeRange>, Vec<f64>) {
        const TAG_BACKGROUND: u32 = 0;
        const TAG_BOT: u32 = 1;
        const TAG_OFFTOPIC: u32 = 2;
        const TAG_BURST0: u32 = 3;

        let p = &*self.profile;
        let game = p.game;
        let dur = spec.meta.duration.0;

        // ---- Phase 1: event layout -------------------------------------
        // (total-order key, insertion seq, tag, timestamp); sorting the
        // tuple lexicographically is a stable timestamp sort.
        let mut events: Vec<(u64, u32, u32, f64)> = Vec::new();
        let mut times: Vec<f64> = Vec::new();
        let push_events = |events: &mut Vec<(u64, u32, u32, f64)>, times: &[f64], tag: u32| {
            events.reserve(times.len());
            for &t in times {
                events.push((ts_order_key(t), events.len() as u32, tag, t));
            }
        };

        // Background chatter.
        PoissonProcess::new(spec.background_rate).sample_times_unsorted(0.0, dur, rng, &mut times);
        push_events(&mut events, &times, TAG_BACKGROUND);

        // Reaction bursts: one per highlight, thinned against the
        // triangular envelope; the focus set is sampled per burst.
        let delay_dist = TruncNormal::new(
            p.reaction_delay_mean,
            p.reaction_delay_std,
            p.reaction_delay_bounds.0,
            p.reaction_delay_bounds.1,
        );
        let mut windows = Vec::with_capacity(spec.highlights.len());
        let mut delays = Vec::with_capacity(spec.highlights.len());
        let mut focuses = Vec::with_capacity(spec.highlights.len());
        for (b, h) in spec.highlights.iter().enumerate() {
            let delay = delay_dist.sample(rng);
            let burst_len = uniform(rng, p.burst_len.0, p.burst_len.1);
            let start = (h.start().0 + delay).min(dur - 1.0);
            let end = (start + burst_len).min(dur);
            windows.push(TimeRange::from_secs(start, end));
            delays.push(delay);

            // Everyone reacts to the same moment: the burst concentrates
            // on a few focus tokens (the similarity feature's signal).
            focuses.push(sink.sample_focus(rng, game));
            let mult = uniform(rng, p.burst_multiplier.0, p.burst_multiplier.1);
            // Thinning against the triangular envelope: expected message
            // count = background_rate * mult * burst_len.
            let max_rate = spec.background_rate * mult * 2.0;
            PoissonProcess::new(max_rate).sample_times_unsorted(start, end, rng, &mut times);
            let span = (end - start).max(1e-9);
            events.reserve(times.len());
            for &t in &*times {
                let x = (t - start) / span;
                let envelope = if x < BURST_PEAK_FRAC {
                    x / BURST_PEAK_FRAC
                } else {
                    (1.0 - x) / (1.0 - BURST_PEAK_FRAC)
                };
                if coin(rng, envelope) {
                    events.push((
                        ts_order_key(t),
                        events.len() as u32,
                        TAG_BURST0 + b as u32,
                        t,
                    ));
                }
            }
        }

        // Advertisement-bot bursts.
        let hours = dur / 3600.0;
        let n_bot = sample_count(p.bot_bursts_per_hour * hours, rng);
        for _ in 0..n_bot {
            let start = uniform(rng, 0.0, (dur - 30.0).max(1.0));
            let len = uniform(rng, 8.0, 18.0);
            let rate = uniform(rng, 0.9, 2.2);
            PoissonProcess::new(rate).sample_times_unsorted(
                start,
                (start + len).min(dur),
                rng,
                &mut times,
            );
            push_events(&mut events, &times, TAG_BOT);
        }

        // Off-topic conversation flare-ups.
        let n_off = sample_count(p.offtopic_bursts_per_hour * hours, rng);
        for _ in 0..n_off {
            let start = uniform(rng, 0.0, (dur - 40.0).max(1.0));
            let len = uniform(rng, 15.0, 30.0);
            let rate = spec.background_rate * uniform(rng, 2.5, 5.0);
            PoissonProcess::new(rate).sample_times_unsorted(
                start,
                (start + len).min(dur),
                rng,
                &mut times,
            );
            push_events(&mut events, &times, TAG_OFFTOPIC);
        }

        events.sort_unstable_by_key(|e| (e.0, e.1));

        // ---- Phase 2: write messages in timestamp order ----------------
        for &(_, _, tag, t) in &events {
            match tag {
                TAG_BACKGROUND => {
                    // Mostly chatter; a sprinkle of stray reactions and
                    // questions keeps single hype tokens from being a
                    // perfect highlight tell. One roll against the
                    // cumulative mix (8% hype, 5% off-topic).
                    let roll: f64 = rng.gen();
                    let kind = if roll < 0.08 {
                        MessageKind::Hype
                    } else if roll < 0.13 {
                        MessageKind::OffTopic
                    } else {
                        MessageKind::Background
                    };
                    let user = self.random_user(rng);
                    sink.message(t, user, kind, game, rng);
                }
                TAG_BOT => sink.message(t, UserId::BOT, MessageKind::Bot, game, rng),
                TAG_OFFTOPIC => {
                    let user = self.random_user(rng);
                    sink.message(t, user, MessageKind::OffTopic, game, rng);
                }
                burst => {
                    let user = self.random_user(rng);
                    if coin(rng, 0.88) {
                        let focus = &focuses[(burst - TAG_BURST0) as usize];
                        sink.hype_focused(t, user, focus, rng);
                    } else {
                        sink.message(t, user, MessageKind::Background, game, rng);
                    }
                }
            }
        }

        (windows, delays)
    }

    /// A uniformly random chatter: one 64-bit draw multiply-mapped onto
    /// the pool (no divide).
    fn random_user(&self, rng: &mut SimRng) -> UserId {
        UserId(uniform_index(rng, self.profile.chatter_pool as usize) as u64)
    }
}

fn sample_count(mean: f64, rng: &mut SimRng) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    Poisson::new(mean).expect("positive mean").sample(rng) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::VideoGenerator;
    use lightor_simkit::SeedTree;
    use lightor_types::{ChannelId, VideoId};

    fn gen_sim(profile: GameProfile, idx: u64, seed: u64) -> SimVideo {
        let profile = Arc::new(profile);
        let vg = VideoGenerator::new(profile.clone());
        let cg = ChatGenerator::new(profile);
        let root = SeedTree::new(seed);
        let mut vrng = root.child("video").index(idx).rng();
        let spec = vg.generate(VideoId(idx), ChannelId(0), &mut vrng);
        let mut crng = root.child("chat").index(idx).rng();
        cg.generate(spec, &mut crng)
    }

    #[test]
    fn message_counts_match_paper_band() {
        // Paper Section VII-A: 800-4300 messages per video. Allow modest
        // slack since our counts are random draws.
        for i in 0..12 {
            let sv = gen_sim(GameProfile::dota2(), i, 11);
            let n = sv.video.chat.len();
            assert!(
                (550..=5200).contains(&n),
                "video {i}: {n} messages, duration {}",
                sv.video.meta.duration
            );
        }
    }

    #[test]
    fn chat_is_sorted_and_in_range() {
        let sv = gen_sim(GameProfile::lol(), 0, 12);
        let chat = &sv.video.chat;
        assert!((1..chat.len()).all(|i| chat.ts(i - 1).0 <= chat.ts(i).0));
        let dur = sv.video.meta.duration.0;
        assert!(chat.iter().all(|m| (0.0..=dur).contains(&m.ts.0)));
    }

    #[test]
    fn bursts_follow_highlights_with_delay() {
        let sv = gen_sim(GameProfile::dota2(), 1, 13);
        for (h, (w, d)) in sv
            .video
            .highlights
            .iter()
            .zip(sv.response_ranges.iter().zip(&sv.reaction_delays))
        {
            assert!(
                (6.0..=26.0).contains(d),
                "delay {d} outside truncation bounds"
            );
            assert!((w.start.0 - (h.start().0 + d)).abs() < 1.5);
            assert!(w.end.0 > w.start.0);
        }
    }

    #[test]
    fn burst_windows_have_elevated_rate() {
        let sv = gen_sim(GameProfile::dota2(), 2, 14);
        let chat = &sv.video.chat;
        let dur = sv.video.meta.duration.0;
        // Compare burst-window rate against the whole-video average rate.
        let avg_rate = chat.len() as f64 / dur;
        let mut elevated = 0;
        for w in &sv.response_ranges {
            let n = chat.count_in(*w) as f64;
            let rate = n / w.duration().0.max(1e-9);
            if rate > 1.5 * avg_rate {
                elevated += 1;
            }
        }
        // The vast majority of bursts must be visibly elevated.
        assert!(
            elevated * 10 >= sv.response_ranges.len() * 7,
            "{elevated}/{} bursts elevated",
            sv.response_ranges.len()
        );
    }

    #[test]
    fn hype_messages_are_shorter_in_bursts() {
        let sv = gen_sim(GameProfile::dota2(), 3, 15);
        let mut burst_len = Vec::new();
        let mut other_len = Vec::new();
        for m in sv.video.chat.iter() {
            let in_burst = sv.response_ranges.iter().any(|w| w.contains(m.ts));
            if in_burst {
                burst_len.push(m.word_count() as f64);
            } else {
                other_len.push(m.word_count() as f64);
            }
        }
        let bm = lightor_simkit::mean(&burst_len).unwrap();
        let om = lightor_simkit::mean(&other_len).unwrap();
        assert!(bm < om, "burst mean len {bm} vs other {om}");
    }

    #[test]
    fn window_is_highlight_matches_ranges() {
        let sv = gen_sim(GameProfile::lol(), 4, 16);
        let w = sv.response_ranges[0];
        assert!(sv.window_is_highlight(w));
        assert!(sv.window_is_highlight(TimeRange::from_secs(w.start.0 - 5.0, w.start.0 + 1.0)));
        // A window long before the first highlight cannot be labelled.
        assert!(!sv.window_is_highlight(TimeRange::from_secs(0.0, 10.0)));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen_sim(GameProfile::dota2(), 5, 17);
        let b = gen_sim(GameProfile::dota2(), 5, 17);
        assert_eq!(a.video.chat, b.video.chat);
        assert_eq!(a.response_ranges, b.response_ranges);
    }

    #[test]
    fn fast_path_pins_to_owned_reference() {
        // The bump-buffer path must be bit-identical to the retained
        // owned-String materialization of the same sampler: same
        // messages, same timestamp bits, same ground truth — proving
        // the zero-copy rewrite changes cost, not content.
        for (profile, seed) in [(GameProfile::dota2(), 20), (GameProfile::lol(), 21)] {
            let profile = Arc::new(profile);
            let vg = VideoGenerator::new(profile.clone());
            let cg = ChatGenerator::new(profile);
            let root = SeedTree::new(seed);
            let spec = {
                let mut vrng = root.child("video").rng();
                vg.generate(VideoId(0), ChannelId(0), &mut vrng)
            };
            let fast = cg.generate(spec.clone(), &mut root.child("chat").rng());
            let reference = cg.generate_reference(spec, &mut root.child("chat").rng());
            assert_eq!(fast.video.chat, reference.video.chat);
            assert_eq!(fast.response_ranges, reference.response_ranges);
            assert_eq!(fast.reaction_delays, reference.reaction_delays);
        }
    }

    #[test]
    fn tokenized_path_pins_to_plain_generation() {
        // Fragment recording must not perturb the draw stream: the
        // tokenized generator's chat is bit-identical to `generate`,
        // and every message's recorded run rebuilds its exact text.
        let lex = CompiledLexicon::shared();
        for (profile, seed) in [(GameProfile::dota2(), 30), (GameProfile::lol(), 31)] {
            let profile = Arc::new(profile);
            let vg = VideoGenerator::new(profile.clone());
            let cg = ChatGenerator::new(profile);
            let root = SeedTree::new(seed);
            let spec = {
                let mut vrng = root.child("video").rng();
                vg.generate(VideoId(0), ChannelId(0), &mut vrng)
            };
            let plain = cg.generate(spec.clone(), &mut root.child("chat").rng());
            let (tok, runs) = cg.generate_tokenized(spec, &mut root.child("chat").rng());
            assert_eq!(plain.video.chat, tok.video.chat);
            assert_eq!(plain.response_ranges, tok.response_ranges);
            assert_eq!(runs.len(), tok.video.chat.len());
            for (i, m) in tok.video.chat.iter().enumerate() {
                let joined = runs
                    .run(i)
                    .iter()
                    .map(|&id| lex.fragment_text(id))
                    .collect::<Vec<_>>()
                    .join(" ");
                assert_eq!(joined, m.text, "message {i}");
            }
        }
    }

    #[test]
    fn bot_messages_present_and_long() {
        // Across several videos, bots must appear (they are the noise the
        // prediction stage exists to reject).
        let mut bot_msgs = 0usize;
        let mut total = 0usize;
        for i in 0..6 {
            let sv = gen_sim(GameProfile::dota2(), i, 18);
            for m in sv.video.chat.iter() {
                total += 1;
                if m.user == UserId::BOT {
                    bot_msgs += 1;
                    assert!(m.word_count() >= 14, "bot msg too short: {:?}", m.text);
                }
            }
        }
        assert!(bot_msgs > 20, "only {bot_msgs} bot messages in {total}");
    }
}
