//! Message text generation.
//!
//! Four message families, engineered so each of the paper's three window
//! features has discriminative work to do (Section IV-C2, Figure 2b):
//!
//! * **Hype** — what viewers type right after a highlight: 1–4 tokens,
//!   heavy repetition, emotes. Short length, high mutual similarity.
//! * **Background** — ordinary chatter: 4–14 words over a broad
//!   vocabulary. Medium length, low similarity.
//! * **Bot** — advertisement spam: 14–24 words from a tiny template pool.
//!   High message *count* and high similarity, but long — the
//!   message-length feature is what defeats these (the paper's first
//!   false-positive family).
//! * **Off-topic** — a conversation flare-up (someone asked a question,
//!   the chat piles on): short messages over a broad vocabulary. High
//!   count, short length, but low similarity — the similarity feature is
//!   what defeats these.

use lightor_types::GameKind;
use rand::seq::SliceRandom;
use rand::Rng;

/// Emotes shared by every stream.
const EMOTES: &[&str] = &[
    "PogChamp",
    "Kreygasm",
    "LUL",
    "OMEGALUL",
    "monkaS",
    "EZ",
    "Clap",
    "KEKW",
    "Pog",
    "PepeHands",
    "5Head",
    "Jebaited",
    "GIGACHAD",
];

/// Short hype exclamations shared by every game.
const HYPE_COMMON: &[&str] = &[
    "wow",
    "omg",
    "gg",
    "wtf",
    "insane",
    "clutch",
    "lol",
    "no way",
    "sick",
    "what a play",
    "unreal",
    "holy",
];

/// Dota2-specific hype tokens.
const HYPE_DOTA2: &[&str] = &[
    "rampage",
    "ultrakill",
    "black hole",
    "echo slam",
    "divine rapier",
    "aegis",
    "roshan",
    "buyback",
    "megacreeps",
    "chrono",
    "ravage",
];

/// LoL-specific hype tokens.
const HYPE_LOL: &[&str] = &[
    "pentakill",
    "quadra",
    "baron steal",
    "ace",
    "backdoor",
    "elder steal",
    "flash ult",
    "outplayed",
    "1v5",
    "nexus race",
];

/// Broad background vocabulary (game talk, small talk). Wide on purpose:
/// ordinary chatter must be lexically scattered so the similarity
/// feature separates it from focused reaction bursts.
const BACKGROUND: &[&str] = &[
    "the",
    "a",
    "this",
    "that",
    "stream",
    "game",
    "team",
    "player",
    "build",
    "item",
    "why",
    "how",
    "when",
    "today",
    "tomorrow",
    "really",
    "think",
    "draft",
    "pick",
    "ban",
    "mid",
    "lane",
    "jungle",
    "support",
    "carry",
    "farm",
    "gold",
    "level",
    "early",
    "late",
    "push",
    "fight",
    "objective",
    "map",
    "vision",
    "ward",
    "chat",
    "anyone",
    "watching",
    "from",
    "where",
    "what",
    "again",
    "still",
    "music",
    "song",
    "food",
    "pizza",
    "coffee",
    "work",
    "school",
    "weekend",
    "favorite",
    "best",
    "worst",
    "ever",
    "never",
    "always",
    "maybe",
    "probably",
    "definitely",
    "guys",
    "hello",
    "everyone",
    "good",
    "bad",
    "nice",
    "fine",
    "yesterday",
    "tonight",
    "morning",
    "evening",
    "minute",
    "hour",
    "second",
    "match",
    "series",
    "finals",
    "group",
    "stage",
    "bracket",
    "winner",
    "loser",
    "score",
    "point",
    "damage",
    "heal",
    "tank",
    "range",
    "melee",
    "spell",
    "cooldown",
    "mana",
    "health",
    "buff",
    "nerf",
    "patch",
    "meta",
    "version",
    "update",
    "server",
    "lag",
    "ping",
    "fps",
    "camera",
    "replay",
    "clip",
    "channel",
    "subscribe",
    "follow",
    "prime",
    "emote",
    "keyboard",
    "mouse",
    "headset",
    "chair",
    "desk",
    "setup",
    "monitor",
    "screen",
    "brother",
    "sister",
    "friend",
    "roommate",
    "dog",
    "cat",
    "homework",
    "exam",
    "class",
    "job",
    "boss",
    "meeting",
    "vacation",
    "holiday",
    "birthday",
    "party",
    "movie",
    "series2",
    "episode",
    "season",
    "book",
    "story",
    "news",
    "weather",
    "rain",
    "snow",
    "summer",
    "winter",
    "spring",
    "autumn",
    "city",
    "country",
    "travel",
    "flight",
    "train",
    "bus",
    "car",
    "bike",
    "walk",
    "run",
    "gym",
    "sleep",
    "tired",
    "awake",
    "hungry",
    "thirsty",
    "water",
    "tea",
    "juice",
    "soda",
    "burger",
    "pasta",
    "salad",
    "chicken",
    "noodles",
    "rice",
    "bread",
    "cheese",
    "sauce",
    "spicy",
    "sweet",
    "sour",
];

/// Advertisement templates bots cycle through (near-identical, long).
const BOT_TEMPLATES: &[&str] = &[
    "follow my channel for free skins giveaway every day click the link in my profile to win big prizes now",
    "best cheap game keys and skins at our store visit the link in bio use code WIN for ten percent off today",
    "join our discord server for daily giveaways free coaching and exclusive drops link in the description below right now",
];

/// The four message families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// Ordinary chatter.
    Background,
    /// Highlight reaction.
    Hype,
    /// Advertisement bot spam.
    Bot,
    /// Conversation flare-up unrelated to gameplay.
    OffTopic,
}

/// Generate one message of the given kind.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, kind: MessageKind, game: GameKind) -> String {
    match kind {
        MessageKind::Background => background(rng),
        MessageKind::Hype => hype(rng, game),
        MessageKind::Bot => bot(rng),
        MessageKind::OffTopic => offtopic(rng),
    }
}

fn hype<R: Rng + ?Sized>(rng: &mut R, game: GameKind) -> String {
    let specific = match game {
        GameKind::Dota2 => HYPE_DOTA2,
        GameKind::Lol => HYPE_LOL,
    };
    // Hype messages are 1-4 tokens; tokens repeat ("Kill! Kill!").
    // Game-specific memes dominate real highlight chat — this is what
    // makes a character-level model game-bound (paper Figure 11b).
    let mut parts: Vec<&str> = Vec::new();
    let n = rng.gen_range(1..=3);
    for _ in 0..n {
        let roll: f64 = rng.gen();
        let token = if roll < 0.20 {
            *EMOTES.choose(rng).expect("non-empty")
        } else if roll < 0.45 {
            *HYPE_COMMON.choose(rng).expect("non-empty")
        } else {
            *specific.choose(rng).expect("non-empty")
        };
        parts.push(token);
        // Repetition: sometimes double the token.
        if rng.gen_bool(0.3) {
            parts.push(token);
        }
    }
    parts.join(" ")
}

/// Sample the *focus tokens* of one highlight's reaction burst: everyone
/// is reacting to the same moment, so a burst concentrates on a handful
/// of tokens ("RAMPAGE", one emote, one exclamation). This concentration
/// is the message-similarity feature's signal.
pub fn hype_focus<R: Rng + ?Sized>(rng: &mut R, game: GameKind) -> Vec<&'static str> {
    let specific = match game {
        GameKind::Dota2 => HYPE_DOTA2,
        GameKind::Lol => HYPE_LOL,
    };
    vec![
        *specific.choose(rng).expect("non-empty"),
        *specific.choose(rng).expect("non-empty"),
        *specific.choose(rng).expect("non-empty"),
        *EMOTES.choose(rng).expect("non-empty"),
    ]
}

/// One message of a focused reaction burst: 1-3 tokens drawn mostly from
/// the burst's focus set, with heavy repetition.
pub fn hype_with_focus<R: Rng + ?Sized>(
    rng: &mut R,
    focus: &[&'static str],
    game: GameKind,
) -> String {
    if focus.is_empty() {
        return hype(rng, game);
    }
    let mut parts: Vec<&str> = Vec::new();
    let n = rng.gen_range(1..=3);
    for _ in 0..n {
        let token = if rng.gen_bool(0.85) {
            *focus.choose(rng).expect("non-empty")
        } else {
            // A stray generic exclamation.
            *HYPE_COMMON.choose(rng).expect("non-empty")
        };
        parts.push(token);
        if rng.gen_bool(0.35) {
            parts.push(token);
        }
    }
    parts.join(" ")
}

fn background<R: Rng + ?Sized>(rng: &mut R) -> String {
    let n = rng.gen_range(4..=14);
    let words: Vec<&str> = (0..n)
        .map(|_| *BACKGROUND.choose(rng).expect("non-empty"))
        .collect();
    words.join(" ")
}

fn bot<R: Rng + ?Sized>(rng: &mut R) -> String {
    // Bots repeat one of a few long templates with a random suffix token,
    // so the messages are long AND nearly identical to each other.
    let template = *BOT_TEMPLATES.choose(rng).expect("non-empty");
    let tag = rng.gen_range(0..3u32);
    format!("{template} code{tag}")
}

fn offtopic<R: Rng + ?Sized>(rng: &mut R) -> String {
    // Short but lexically scattered: 2-6 words from the broad vocabulary.
    let n = rng.gen_range(2..=6);
    let words: Vec<&str> = (0..n)
        .map(|_| *BACKGROUND.choose(rng).expect("non-empty"))
        .collect();
    words.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_simkit::SeedTree;

    fn word_count(s: &str) -> usize {
        s.split_whitespace().count()
    }

    #[test]
    fn hype_is_short() {
        let mut rng = SeedTree::new(1).rng();
        let lens: Vec<f64> = (0..300)
            .map(|_| word_count(&hype(&mut rng, GameKind::Dota2)) as f64)
            .collect();
        // Individual messages can reach ~9 words (3 multi-word phrases,
        // doubled), but the *mean* must sit well below background's mean
        // of 9 — that contrast is the message-length feature.
        assert!(lens.iter().all(|&n| n <= 12.0));
        let mean = lens.iter().sum::<f64>() / lens.len() as f64;
        assert!(mean < 5.5, "hype mean length {mean}");
    }

    #[test]
    fn bot_is_long() {
        let mut rng = SeedTree::new(2).rng();
        for _ in 0..50 {
            let m = bot(&mut rng);
            assert!(word_count(&m) >= 14, "bot too short: {m:?}");
        }
    }

    #[test]
    fn background_is_medium() {
        let mut rng = SeedTree::new(3).rng();
        for _ in 0..100 {
            let n = word_count(&background(&mut rng));
            assert!((4..=14).contains(&n));
        }
    }

    #[test]
    fn offtopic_is_short_but_diverse() {
        let mut rng = SeedTree::new(4).rng();
        let msgs: Vec<String> = (0..100).map(|_| offtopic(&mut rng)).collect();
        assert!(msgs.iter().all(|m| word_count(m) <= 6));
        // Diversity: many distinct messages.
        let distinct: std::collections::HashSet<&String> = msgs.iter().collect();
        assert!(distinct.len() > 60, "only {} distinct", distinct.len());
    }

    #[test]
    fn bots_are_mutually_similar() {
        let mut rng = SeedTree::new(5).rng();
        let msgs: Vec<String> = (0..30).map(|_| bot(&mut rng)).collect();
        // At most 3 templates × 3 tags = 9 distinct strings.
        let distinct: std::collections::HashSet<&String> = msgs.iter().collect();
        assert!(distinct.len() <= 9);
    }

    #[test]
    fn game_specific_hype_differs() {
        let mut rng = SeedTree::new(6).rng();
        let dota: String = (0..300)
            .map(|_| hype(&mut rng, GameKind::Dota2))
            .collect::<Vec<_>>()
            .join(" ");
        assert!(dota.contains("rampage") || dota.contains("roshan") || dota.contains("aegis"));
        let lol: String = (0..300)
            .map(|_| hype(&mut rng, GameKind::Lol))
            .collect::<Vec<_>>()
            .join(" ");
        assert!(lol.contains("pentakill") || lol.contains("baron") || lol.contains("ace"));
    }

    #[test]
    fn generate_dispatches() {
        let mut rng = SeedTree::new(7).rng();
        for kind in [
            MessageKind::Background,
            MessageKind::Hype,
            MessageKind::Bot,
            MessageKind::OffTopic,
        ] {
            let m = generate(&mut rng, kind, GameKind::Lol);
            assert!(!m.is_empty());
        }
    }
}
