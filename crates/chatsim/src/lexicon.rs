//! Message text generation.
//!
//! Four message families, engineered so each of the paper's three window
//! features has discriminative work to do (Section IV-C2, Figure 2b):
//!
//! * **Hype** — what viewers type right after a highlight: 1–4 tokens,
//!   heavy repetition, emotes. Short length, high mutual similarity.
//! * **Background** — ordinary chatter: 4–14 words over a broad
//!   vocabulary. Medium length, low similarity.
//! * **Bot** — advertisement spam: 14–24 words from a tiny template pool.
//!   High message *count* and high similarity, but long — the
//!   message-length feature is what defeats these (the paper's first
//!   false-positive family).
//! * **Off-topic** — a conversation flare-up (someone asked a question,
//!   the chat piles on): short messages over a broad vocabulary. High
//!   count, short length, but low similarity — the similarity feature is
//!   what defeats these.
//!
//! # Compiled sampling tables
//!
//! All text flows through [`CompiledLexicon`]: the phrase pools above
//! compiled once into a single interned fragment blob with per-class
//! index tables (the hype-class mix is a cumulative-weight table walked
//! with one uniform roll — the build-once/sample-many trick of weighted
//! text generators), and *writer* methods that append a message's
//! fragments straight into a caller-supplied buffer. No `format!`, no
//! per-message `String`, no `Vec<&str>` join; fragment picks map one
//! 64-bit draw by multiply-shift instead of a hardware divide.
//!
//! [`generate`] is the owned-`String` convenience wrapper over the same
//! writers (identical draws, identical bytes) — what the pre-refactor
//! per-message-allocating generator has collapsed into.

use lightor_simkit::dist::uniform_index;
use lightor_types::GameKind;
use rand::Rng;
use std::ops::Range;
use std::sync::OnceLock;

/// Emotes shared by every stream.
const EMOTES: &[&str] = &[
    "PogChamp",
    "Kreygasm",
    "LUL",
    "OMEGALUL",
    "monkaS",
    "EZ",
    "Clap",
    "KEKW",
    "Pog",
    "PepeHands",
    "5Head",
    "Jebaited",
    "GIGACHAD",
];

/// Short hype exclamations shared by every game.
const HYPE_COMMON: &[&str] = &[
    "wow",
    "omg",
    "gg",
    "wtf",
    "insane",
    "clutch",
    "lol",
    "no way",
    "sick",
    "what a play",
    "unreal",
    "holy",
];

/// Dota2-specific hype tokens.
const HYPE_DOTA2: &[&str] = &[
    "rampage",
    "ultrakill",
    "black hole",
    "echo slam",
    "divine rapier",
    "aegis",
    "roshan",
    "buyback",
    "megacreeps",
    "chrono",
    "ravage",
];

/// LoL-specific hype tokens.
const HYPE_LOL: &[&str] = &[
    "pentakill",
    "quadra",
    "baron steal",
    "ace",
    "backdoor",
    "elder steal",
    "flash ult",
    "outplayed",
    "1v5",
    "nexus race",
];

/// Broad background vocabulary (game talk, small talk). Wide on purpose:
/// ordinary chatter must be lexically scattered so the similarity
/// feature separates it from focused reaction bursts.
const BACKGROUND: &[&str] = &[
    "the",
    "a",
    "this",
    "that",
    "stream",
    "game",
    "team",
    "player",
    "build",
    "item",
    "why",
    "how",
    "when",
    "today",
    "tomorrow",
    "really",
    "think",
    "draft",
    "pick",
    "ban",
    "mid",
    "lane",
    "jungle",
    "support",
    "carry",
    "farm",
    "gold",
    "level",
    "early",
    "late",
    "push",
    "fight",
    "objective",
    "map",
    "vision",
    "ward",
    "chat",
    "anyone",
    "watching",
    "from",
    "where",
    "what",
    "again",
    "still",
    "music",
    "song",
    "food",
    "pizza",
    "coffee",
    "work",
    "school",
    "weekend",
    "favorite",
    "best",
    "worst",
    "ever",
    "never",
    "always",
    "maybe",
    "probably",
    "definitely",
    "guys",
    "hello",
    "everyone",
    "good",
    "bad",
    "nice",
    "fine",
    "yesterday",
    "tonight",
    "morning",
    "evening",
    "minute",
    "hour",
    "second",
    "match",
    "series",
    "finals",
    "group",
    "stage",
    "bracket",
    "winner",
    "loser",
    "score",
    "point",
    "damage",
    "heal",
    "tank",
    "range",
    "melee",
    "spell",
    "cooldown",
    "mana",
    "health",
    "buff",
    "nerf",
    "patch",
    "meta",
    "version",
    "update",
    "server",
    "lag",
    "ping",
    "fps",
    "camera",
    "replay",
    "clip",
    "channel",
    "subscribe",
    "follow",
    "prime",
    "emote",
    "keyboard",
    "mouse",
    "headset",
    "chair",
    "desk",
    "setup",
    "monitor",
    "screen",
    "brother",
    "sister",
    "friend",
    "roommate",
    "dog",
    "cat",
    "homework",
    "exam",
    "class",
    "job",
    "boss",
    "meeting",
    "vacation",
    "holiday",
    "birthday",
    "party",
    "movie",
    "series2",
    "episode",
    "season",
    "book",
    "story",
    "news",
    "weather",
    "rain",
    "snow",
    "summer",
    "winter",
    "spring",
    "autumn",
    "city",
    "country",
    "travel",
    "flight",
    "train",
    "bus",
    "car",
    "bike",
    "walk",
    "run",
    "gym",
    "sleep",
    "tired",
    "awake",
    "hungry",
    "thirsty",
    "water",
    "tea",
    "juice",
    "soda",
    "burger",
    "pasta",
    "salad",
    "chicken",
    "noodles",
    "rice",
    "bread",
    "cheese",
    "sauce",
    "spicy",
    "sweet",
    "sour",
];

/// Advertisement templates bots cycle through (near-identical, long).
const BOT_TEMPLATES: &[&str] = &[
    "follow my channel for free skins giveaway every day click the link in my profile to win big prizes now",
    "best cheap game keys and skins at our store visit the link in bio use code WIN for ten percent off today",
    "join our discord server for daily giveaways free coaching and exclusive drops link in the description below right now",
];

/// The four message families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// Ordinary chatter.
    Background,
    /// Highlight reaction.
    Hype,
    /// Advertisement bot spam.
    Bot,
    /// Conversation flare-up unrelated to gameplay.
    OffTopic,
}

/// The focus tokens of one reaction burst, as compiled fragment ids
/// (never materialized as strings on the hot path; see
/// [`focus_tokens`] for the diagnostic view).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FocusSet([u32; 4]);

/// The phrase pools compiled into one contiguous blob with per-class
/// sampling tables.
///
/// * `blob`/`spans` — every fragment of every pool interned once into a
///   single `String`; a fragment is a `(start, end)` byte span.
/// * class ranges — each message class samples uniformly from its span
///   range with one multiply-mapped 64-bit draw.
/// * `hype_mix` — the hype token-source mix as a cumulative-weight
///   table: one uniform roll walks `(cum_weight, class)` entries.
///
/// Writer methods append into a caller-owned buffer, so a generated
/// corpus performs zero text allocations after the buffer warms up.
#[derive(Debug)]
pub struct CompiledLexicon {
    blob: String,
    /// `(start, end)` byte spans into `blob`; every fragment is
    /// interned with one trailing space (`"word "`), so a message is
    /// written as N space-suffixed appends plus ONE final truncate —
    /// no per-word separator branch. `end` includes the space.
    spans: Vec<(u32, u32)>,
    emotes: Range<usize>,
    hype_common: Range<usize>,
    hype_dota2: Range<usize>,
    hype_lol: Range<usize>,
    background: Range<usize>,
    bot_templates: Range<usize>,
    /// Cumulative-weight rows for the hype token-source mix; the class
    /// range is resolved per game at sample time.
    hype_mix: [(f64, HypeSource); 3],
    /// Precomposed message pools (see [`MessagePool`]): sampled classes
    /// collapse to one draw + one copy. Bots are *exact* (all 9
    /// template×tag combinations, still uniform); the other pools are a
    /// large finite approximation of their fragment-product spaces.
    background_pool: MessagePool,
    offtopic_pool: MessagePool,
    hype_pool_dota2: MessagePool,
    hype_pool_lol: MessagePool,
    bot_pool: MessagePool,
}

/// Width of the fixed-size fragment copy in
/// [`CompiledLexicon::write_frag`]; covers every word/emote fragment
/// (longest: "divine rapier " at 14 bytes) with room to spare.
const FIXED_COPY: usize = 16;

/// Precomposed messages per sampled pool (background / off-topic /
/// hype). Large enough that two identical texts landing in one sliding
/// window is rare (<1% of windows at realistic chat rates), small
/// enough to stay cache-resident.
const POOL_SIZE: usize = 8192;

/// Synthetic fragment texts for the bot "codeN" cache-buster suffix:
/// the bot message body is a template fragment plus one of these, so
/// fragment-id decompositions can name the suffix without it living in
/// the interned span table. Their ids are `spans.len() + index`.
const CODE_TAGS: [&str; 3] = ["code0", "code1", "code2"];

/// A pool of fully precomposed messages: sampling one message is a
/// single 64-bit draw plus one contiguous copy — the alias-table
/// endgame of build-once/sample-many text generation.
///
/// Each precomposed message also stores its *fragment decomposition*
/// (which lexicon fragment ids were concatenated to write it), so
/// tokenize-by-lookup consumers can replay the composition without
/// re-splitting the text.
#[derive(Debug, Default)]
struct MessagePool {
    blob: String,
    spans: Vec<(u32, u32)>,
    /// Flat fragment ids, message-major (see [`CompiledLexicon::fragment_text`]).
    frag_ids: Vec<u32>,
    /// Cumulative end of each message's decomposition in `frag_ids`.
    frag_ends: Vec<u32>,
}

impl MessagePool {
    fn push(&mut self, write: impl FnOnce(&mut String, &mut Vec<u32>)) {
        let s = self.blob.len() as u32;
        write(&mut self.blob, &mut self.frag_ids);
        self.spans.push((s, self.blob.len() as u32));
        self.frag_ends.push(self.frag_ids.len() as u32);
    }

    #[inline]
    fn write_one<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut String) {
        let (s, e) = self.spans[uniform_index(rng, self.spans.len())];
        out.push_str(&self.blob[s as usize..e as usize]);
    }

    /// Same single draw as [`MessagePool::write_one`], additionally
    /// appending the sampled message's fragment decomposition.
    #[inline]
    fn write_one_with_frags<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut String,
        frags: &mut Vec<u32>,
    ) {
        let i = uniform_index(rng, self.spans.len());
        let (s, e) = self.spans[i];
        out.push_str(&self.blob[s as usize..e as usize]);
        let fs = if i == 0 {
            0
        } else {
            self.frag_ends[i - 1] as usize
        };
        frags.extend_from_slice(&self.frag_ids[fs..self.frag_ends[i] as usize]);
    }
}

/// Where one hype token is drawn from.
#[derive(Clone, Copy, Debug)]
enum HypeSource {
    Emote,
    Common,
    GameSpecific,
}

impl CompiledLexicon {
    /// The process-wide compiled lexicon (compiled once, shared by
    /// every generator).
    pub fn shared() -> &'static CompiledLexicon {
        static SHARED: OnceLock<CompiledLexicon> = OnceLock::new();
        SHARED.get_or_init(CompiledLexicon::compile)
    }

    fn compile() -> Self {
        let mut blob = String::new();
        let mut spans = Vec::new();
        let mut intern = |pool: &[&str]| -> Range<usize> {
            let start = spans.len();
            for frag in pool {
                let s = blob.len() as u32;
                blob.push_str(frag);
                blob.push(' ');
                spans.push((s, blob.len() as u32));
            }
            start..spans.len()
        };
        let emotes = intern(EMOTES);
        let hype_common = intern(HYPE_COMMON);
        let hype_dota2 = intern(HYPE_DOTA2);
        let hype_lol = intern(HYPE_LOL);
        let background = intern(BACKGROUND);
        let bot_templates = intern(BOT_TEMPLATES);
        // Tail padding so the fixed-width over-copy in `write_frag`
        // can always read `FIXED_COPY` bytes from a fragment start.
        for _ in 0..FIXED_COPY {
            blob.push(' ');
        }
        let mut lex = CompiledLexicon {
            blob,
            spans,
            emotes,
            hype_common,
            hype_dota2,
            hype_lol,
            background,
            bot_templates,
            // Mirrors the reference `hype`: roll < 0.20 → emote,
            // < 0.45 → common exclamation, else game-specific meme.
            hype_mix: [
                (0.20, HypeSource::Emote),
                (0.45, HypeSource::Common),
                (1.0, HypeSource::GameSpecific),
            ],
            background_pool: MessagePool::default(),
            offtopic_pool: MessagePool::default(),
            hype_pool_dota2: MessagePool::default(),
            hype_pool_lol: MessagePool::default(),
            bot_pool: MessagePool::default(),
        };

        // Precompose the sampled pools from the fragment writers with a
        // fixed internal seed: compiled once per process, every message
        // afterwards is one draw + one copy. Bots enumerate all nine
        // template×tag combinations — a uniform pick over them is
        // *exactly* the uniform-template × uniform-tag distribution.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut pool_rng = StdRng::seed_from_u64(0x1EC5_1C0A_u64);
        let mut bg = MessagePool::default();
        let mut off = MessagePool::default();
        for _ in 0..POOL_SIZE {
            bg.push(|out, frags| {
                lex.write_pool_words(&mut pool_rng, lex.background.clone(), 4..=14, out, frags)
            });
            off.push(|out, frags| {
                lex.write_pool_words(&mut pool_rng, lex.background.clone(), 2..=6, out, frags)
            });
        }
        let mut hype_d = MessagePool::default();
        let mut hype_l = MessagePool::default();
        for _ in 0..POOL_SIZE / 2 {
            hype_d.push(|out, frags| lex.write_hype(&mut pool_rng, GameKind::Dota2, out, frags));
            hype_l.push(|out, frags| lex.write_hype(&mut pool_rng, GameKind::Lol, out, frags));
        }
        let mut bots = MessagePool::default();
        for template in lex.bot_templates.clone() {
            for tag in 0..3u8 {
                bots.push(|out, frags| {
                    out.push_str(lex.frag(template));
                    out.push_str(" code");
                    out.push((b'0' + tag) as char);
                    frags.push(template as u32);
                    frags.push((lex.spans.len() + tag as usize) as u32);
                });
            }
        }
        lex.background_pool = bg;
        lex.offtopic_pool = off;
        lex.hype_pool_dota2 = hype_d;
        lex.hype_pool_lol = hype_l;
        lex.bot_pool = bots;
        lex
    }

    /// Fragment text *without* the interned trailing space.
    fn frag(&self, id: usize) -> &str {
        let (s, e) = self.spans[id];
        &self.blob[s as usize..e as usize - 1]
    }

    fn specific(&self, game: GameKind) -> Range<usize> {
        match game {
            GameKind::Dota2 => self.hype_dota2.clone(),
            GameKind::Lol => self.hype_lol.clone(),
        }
    }

    /// One uniform fragment pick from a class range: one 64-bit draw
    /// mapped by multiply-shift (`⌊x·len / 2⁶⁴⌋`) — the branch- and
    /// division-free uniform index map. `gen_range`'s modulo costs a
    /// hardware divide per pick, and picks are the single hottest op in
    /// corpus generation (~10 per background message).
    fn pick<R: Rng + ?Sized>(&self, rng: &mut R, class: Range<usize>) -> usize {
        class.start + uniform_index(rng, class.len())
    }

    /// Append the space-suffixed fragment. Callers write a message as a
    /// run of these and then [`CompiledLexicon::trim_last_space`] once.
    ///
    /// Short fragments (every word/emote; bot templates excepted) are
    /// appended as one *fixed-width* copy then truncated to the real
    /// length: a compile-time-sized copy inlines to a couple of moves,
    /// where a variable-length `push_str` of a handful of bytes is a
    /// `memcpy` call. The over-read stays inside the padded blob and
    /// every pool byte is ASCII, so both the slice and the truncate
    /// stay on char boundaries.
    #[inline]
    fn write_frag(&self, id: usize, out: &mut String) {
        let (s, e) = self.spans[id];
        let (s, e) = (s as usize, e as usize);
        if e - s <= FIXED_COPY {
            let keep = out.len() + (e - s);
            out.push_str(&self.blob[s..s + FIXED_COPY]);
            out.truncate(keep);
        } else {
            out.push_str(&self.blob[s..e]);
        }
    }

    /// Drop the trailing separator the last [`write_frag`] appended.
    /// Safe unconditionally: every writer appends at least one
    /// fragment, and the separator is 1-byte ASCII.
    ///
    /// [`write_frag`]: CompiledLexicon::write_frag
    #[inline]
    fn trim_last_space(out: &mut String) {
        let n = out.len() - 1;
        debug_assert_eq!(out.as_bytes()[n], b' ');
        out.truncate(n);
    }

    /// Append one message of the given kind to `out` (the writer analog
    /// of [`generate`]; identical text for an identical RNG state).
    ///
    /// One 64-bit draw mapped onto the class's precomposed pool, one
    /// contiguous copy. The bot pool is exact; the sampled pools are
    /// the finite-table approximation documented on [`MessagePool`].
    #[inline]
    pub fn write_message<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        kind: MessageKind,
        game: GameKind,
        out: &mut String,
    ) {
        let pool = match (kind, game) {
            (MessageKind::Background, _) => &self.background_pool,
            (MessageKind::OffTopic, _) => &self.offtopic_pool,
            (MessageKind::Bot, _) => &self.bot_pool,
            (MessageKind::Hype, GameKind::Dota2) => &self.hype_pool_dota2,
            (MessageKind::Hype, GameKind::Lol) => &self.hype_pool_lol,
        };
        pool.write_one(rng, out);
    }

    /// [`CompiledLexicon::write_message`] plus the message's fragment
    /// decomposition (same single draw, same bytes — pinned in tests).
    #[inline]
    pub fn write_message_with_frags<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        kind: MessageKind,
        game: GameKind,
        out: &mut String,
        frags: &mut Vec<u32>,
    ) {
        let pool = match (kind, game) {
            (MessageKind::Background, _) => &self.background_pool,
            (MessageKind::OffTopic, _) => &self.offtopic_pool,
            (MessageKind::Bot, _) => &self.bot_pool,
            (MessageKind::Hype, GameKind::Dota2) => &self.hype_pool_dota2,
            (MessageKind::Hype, GameKind::Lol) => &self.hype_pool_lol,
        };
        pool.write_one_with_frags(rng, out, frags);
    }

    /// Total fragment ids a decomposition can reference: every interned
    /// span plus the synthetic [`CODE_TAGS`] suffixes.
    pub fn fragment_count(&self) -> usize {
        self.spans.len() + CODE_TAGS.len()
    }

    /// The text of fragment `id` (no trailing separator). Panics when
    /// `id >= fragment_count()`.
    pub fn fragment_text(&self, id: u32) -> &str {
        let id = id as usize;
        if id < self.spans.len() {
            self.frag(id)
        } else {
            CODE_TAGS[id - self.spans.len()]
        }
    }

    /// Every fragment's text, in id order — the input for a
    /// tokenize-once fragment table.
    pub fn fragment_texts(&self) -> impl Iterator<Item = &str> {
        (0..self.fragment_count() as u32).map(move |id| self.fragment_text(id))
    }

    /// Background / off-topic body: `n` uniform picks from one pool
    /// (compile-time pool precompose only, so it also records the
    /// fragment decomposition).
    fn write_pool_words<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        pool: Range<usize>,
        n_range: std::ops::RangeInclusive<usize>,
        out: &mut String,
        frags: &mut Vec<u32>,
    ) {
        // Word count via the same multiply map as fragment picks (the
        // modulo in `gen_range` is a hardware divide).
        let (lo, hi) = (*n_range.start(), *n_range.end());
        let n = lo + uniform_index(rng, hi - lo + 1);
        for _ in 0..n {
            let id = self.pick(rng, pool.clone());
            self.write_frag(id, out);
            frags.push(id as u32);
        }
        Self::trim_last_space(out);
    }

    fn write_hype<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        game: GameKind,
        out: &mut String,
        frags: &mut Vec<u32>,
    ) {
        let n = rng.gen_range(1..=3);
        for _ in 0..n {
            let roll: f64 = rng.gen();
            let mut class = self.specific(game);
            for &(cum, source) in &self.hype_mix {
                if roll < cum {
                    class = match source {
                        HypeSource::Emote => self.emotes.clone(),
                        HypeSource::Common => self.hype_common.clone(),
                        HypeSource::GameSpecific => self.specific(game),
                    };
                    break;
                }
            }
            let id = self.pick(rng, class);
            self.write_frag(id, out);
            frags.push(id as u32);
            // Repetition: sometimes double the token.
            if rng.gen_bool(0.3) {
                self.write_frag(id, out);
                frags.push(id as u32);
            }
        }
        Self::trim_last_space(out);
    }

    /// Sample a burst's focus tokens (the writer analog of
    /// [`hype_focus`]: three game-specific picks plus one emote).
    pub fn sample_focus<R: Rng + ?Sized>(&self, rng: &mut R, game: GameKind) -> FocusSet {
        let specific = self.specific(game);
        FocusSet([
            self.pick(rng, specific.clone()) as u32,
            self.pick(rng, specific.clone()) as u32,
            self.pick(rng, specific) as u32,
            self.pick(rng, self.emotes.clone()) as u32,
        ])
    }

    /// Append one focused reaction-burst message (the writer analog of
    /// [`hype_with_focus`]).
    pub fn write_hype_focused<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        focus: &FocusSet,
        out: &mut String,
    ) {
        self.write_hype_focused_impl(rng, focus, out, None);
    }

    /// [`CompiledLexicon::write_hype_focused`] plus the fragment
    /// decomposition (same draws, same bytes).
    pub fn write_hype_focused_with_frags<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        focus: &FocusSet,
        out: &mut String,
        frags: &mut Vec<u32>,
    ) {
        self.write_hype_focused_impl(rng, focus, out, Some(frags));
    }

    fn write_hype_focused_impl<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        focus: &FocusSet,
        out: &mut String,
        mut frags: Option<&mut Vec<u32>>,
    ) {
        let n = rng.gen_range(1..=3);
        for _ in 0..n {
            let id = if rng.gen_bool(0.85) {
                focus.0[rng.gen_range(0..focus.0.len())] as usize
            } else {
                // A stray generic exclamation.
                self.pick(rng, self.hype_common.clone())
            };
            self.write_frag(id, out);
            if let Some(f) = frags.as_deref_mut() {
                f.push(id as u32);
            }
            if rng.gen_bool(0.35) {
                self.write_frag(id, out);
                if let Some(f) = frags.as_deref_mut() {
                    f.push(id as u32);
                }
            }
        }
        Self::trim_last_space(out);
    }
}

/// Generate one message of the given kind as an owned `String`.
///
/// Convenience wrapper over [`CompiledLexicon::write_message`] (same
/// draws, same bytes); the hot path writes into a caller-owned buffer
/// instead of allocating per message.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, kind: MessageKind, game: GameKind) -> String {
    let mut out = String::new();
    CompiledLexicon::shared().write_message(rng, kind, game, &mut out);
    out
}

/// The focus tokens of a [`FocusSet`], resolved to the interned text
/// (diagnostics/tests; the hot path never materializes them).
pub fn focus_tokens(focus: &FocusSet) -> Vec<&'static str> {
    let lex = CompiledLexicon::shared();
    focus.0.iter().map(|&id| lex.frag(id as usize)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_simkit::SeedTree;

    fn word_count(s: &str) -> usize {
        s.split_whitespace().count()
    }

    #[test]
    fn hype_is_short() {
        let mut rng = SeedTree::new(1).rng();
        let lens: Vec<f64> = (0..300)
            .map(|_| word_count(&generate(&mut rng, MessageKind::Hype, GameKind::Dota2)) as f64)
            .collect();
        // Individual messages can reach ~9 words (3 multi-word phrases,
        // doubled), but the *mean* must sit well below background's mean
        // of 9 — that contrast is the message-length feature.
        assert!(lens.iter().all(|&n| n <= 12.0));
        let mean = lens.iter().sum::<f64>() / lens.len() as f64;
        assert!(mean < 5.5, "hype mean length {mean}");
    }

    #[test]
    fn bot_is_long() {
        let mut rng = SeedTree::new(2).rng();
        for _ in 0..50 {
            let m = generate(&mut rng, MessageKind::Bot, GameKind::Dota2);
            assert!(word_count(&m) >= 14, "bot too short: {m:?}");
        }
    }

    #[test]
    fn background_is_medium() {
        let mut rng = SeedTree::new(3).rng();
        for _ in 0..100 {
            let n = word_count(&generate(&mut rng, MessageKind::Background, GameKind::Lol));
            assert!((4..=14).contains(&n));
        }
    }

    #[test]
    fn offtopic_is_short_but_diverse() {
        let mut rng = SeedTree::new(4).rng();
        let msgs: Vec<String> = (0..100)
            .map(|_| generate(&mut rng, MessageKind::OffTopic, GameKind::Lol))
            .collect();
        assert!(msgs.iter().all(|m| word_count(m) <= 6));
        // Diversity: many distinct messages.
        let distinct: std::collections::HashSet<&String> = msgs.iter().collect();
        assert!(distinct.len() > 60, "only {} distinct", distinct.len());
    }

    #[test]
    fn bots_are_mutually_similar() {
        let mut rng = SeedTree::new(5).rng();
        let msgs: Vec<String> = (0..30)
            .map(|_| generate(&mut rng, MessageKind::Bot, GameKind::Dota2))
            .collect();
        // At most 3 templates x 3 tags = 9 distinct strings.
        let distinct: std::collections::HashSet<&String> = msgs.iter().collect();
        assert!(distinct.len() <= 9);
    }

    #[test]
    fn game_specific_hype_differs() {
        let mut rng = SeedTree::new(6).rng();
        let dota: String = (0..300)
            .map(|_| generate(&mut rng, MessageKind::Hype, GameKind::Dota2))
            .collect::<Vec<_>>()
            .join(" ");
        assert!(dota.contains("rampage") || dota.contains("roshan") || dota.contains("aegis"));
        let lol: String = (0..300)
            .map(|_| generate(&mut rng, MessageKind::Hype, GameKind::Lol))
            .collect::<Vec<_>>()
            .join(" ");
        assert!(lol.contains("pentakill") || lol.contains("baron") || lol.contains("ace"));
    }

    #[test]
    fn generate_dispatches() {
        let mut rng = SeedTree::new(7).rng();
        for kind in [
            MessageKind::Background,
            MessageKind::Hype,
            MessageKind::Bot,
            MessageKind::OffTopic,
        ] {
            let m = generate(&mut rng, kind, GameKind::Lol);
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn generate_wrapper_matches_writer_bytes() {
        // The owned-String wrapper and the buffer writer must be the
        // same sampler: same seed, same bytes, same RNG stream.
        let lex = CompiledLexicon::shared();
        for game in [GameKind::Dota2, GameKind::Lol] {
            let mut a = SeedTree::new(99).child("w").rng();
            let mut b = SeedTree::new(99).child("w").rng();
            let mut buf = String::new();
            for i in 0..400 {
                let kind = match i % 4 {
                    0 => MessageKind::Background,
                    1 => MessageKind::Hype,
                    2 => MessageKind::Bot,
                    _ => MessageKind::OffTopic,
                };
                let owned = generate(&mut a, kind, game);
                buf.clear();
                lex.write_message(&mut b, kind, game, &mut buf);
                assert_eq!(buf, owned, "{game} message {i} ({kind:?})");
            }
        }
    }

    #[test]
    fn focused_bursts_concentrate_on_focus_tokens() {
        let lex = CompiledLexicon::shared();
        let mut rng = SeedTree::new(123).rng();
        for game in [GameKind::Dota2, GameKind::Lol] {
            let focus = lex.sample_focus(&mut rng, game);
            let tokens = focus_tokens(&focus);
            assert_eq!(tokens.len(), 4);
            // Count how many burst messages contain at least one focus
            // token: with the 0.85 focus bias this must dominate.
            let mut buf = String::new();
            let mut hits = 0;
            for _ in 0..200 {
                buf.clear();
                lex.write_hype_focused(&mut rng, &focus, &mut buf);
                assert!(!buf.is_empty());
                if tokens.iter().any(|t| buf.contains(t)) {
                    hits += 1;
                }
            }
            assert!(hits >= 140, "{game}: only {hits}/200 messages on focus");
        }
    }

    #[test]
    fn compiled_lexicon_interns_every_pool() {
        let lex = CompiledLexicon::shared();
        let total = EMOTES.len()
            + HYPE_COMMON.len()
            + HYPE_DOTA2.len()
            + HYPE_LOL.len()
            + BACKGROUND.len()
            + BOT_TEMPLATES.len();
        assert_eq!(lex.spans.len(), total);
        // Spot-check blob integrity: first emote and last bot template.
        assert_eq!(lex.frag(lex.emotes.start), EMOTES[0]);
        assert_eq!(
            lex.frag(lex.bot_templates.end - 1),
            BOT_TEMPLATES[BOT_TEMPLATES.len() - 1]
        );
    }

    #[test]
    fn frag_decompositions_reproduce_message_text() {
        // Joining a message's recorded fragment texts with single
        // spaces must rebuild the exact message bytes — the invariant
        // that makes tokenize-by-lookup equal tokenize-by-word-split.
        let lex = CompiledLexicon::shared();
        let mut rng = SeedTree::new(77).rng();
        let mut text = String::new();
        let mut frags: Vec<u32> = Vec::new();
        for kind in [
            MessageKind::Background,
            MessageKind::Hype,
            MessageKind::Bot,
            MessageKind::OffTopic,
        ] {
            for game in [GameKind::Dota2, GameKind::Lol] {
                for _ in 0..200 {
                    text.clear();
                    frags.clear();
                    lex.write_message_with_frags(&mut rng, kind, game, &mut text, &mut frags);
                    assert!(!frags.is_empty());
                    let joined = frags
                        .iter()
                        .map(|&id| lex.fragment_text(id))
                        .collect::<Vec<_>>()
                        .join(" ");
                    assert_eq!(joined, text, "{kind:?}/{game}");
                }
            }
        }
        // Focused bursts too.
        let focus = lex.sample_focus(&mut rng, GameKind::Dota2);
        for _ in 0..200 {
            text.clear();
            frags.clear();
            lex.write_hype_focused_with_frags(&mut rng, &focus, &mut text, &mut frags);
            let joined = frags
                .iter()
                .map(|&id| lex.fragment_text(id))
                .collect::<Vec<_>>()
                .join(" ");
            assert_eq!(joined, text);
        }
    }

    #[test]
    fn frag_recording_writers_preserve_bytes_and_draws() {
        // The *_with_frags variants must consume the identical RNG
        // stream and produce identical bytes as the plain writers —
        // recording is free w.r.t. determinism.
        let lex = CompiledLexicon::shared();
        let mut a = SeedTree::new(88).rng();
        let mut b = SeedTree::new(88).rng();
        let (mut ta, mut tb) = (String::new(), String::new());
        let mut frags: Vec<u32> = Vec::new();
        for i in 0..400 {
            let kind = match i % 4 {
                0 => MessageKind::Background,
                1 => MessageKind::Hype,
                2 => MessageKind::Bot,
                _ => MessageKind::OffTopic,
            };
            ta.clear();
            tb.clear();
            frags.clear();
            lex.write_message(&mut a, kind, GameKind::Lol, &mut ta);
            lex.write_message_with_frags(&mut b, kind, GameKind::Lol, &mut tb, &mut frags);
            assert_eq!(ta, tb, "message {i}");
        }
        let fa = lex.sample_focus(&mut a, GameKind::Lol);
        let fb = lex.sample_focus(&mut b, GameKind::Lol);
        assert_eq!(fa, fb);
        for i in 0..200 {
            ta.clear();
            tb.clear();
            frags.clear();
            lex.write_hype_focused(&mut a, &fa, &mut ta);
            lex.write_hype_focused_with_frags(&mut b, &fb, &mut tb, &mut frags);
            assert_eq!(ta, tb, "focused {i}");
        }
        // Post-loop streams still aligned: one more shared draw agrees.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn picks_cover_their_class_uniformly() {
        // The multiply-shift index map must reach every fragment of a
        // class and stay inside it.
        let lex = CompiledLexicon::shared();
        let mut rng = SeedTree::new(321).rng();
        let mut seen = vec![0u32; lex.spans.len()];
        for _ in 0..5000 {
            let id = lex.pick(&mut rng, lex.emotes.clone());
            assert!(lex.emotes.contains(&id));
            seen[id] += 1;
        }
        for id in lex.emotes.clone() {
            assert!(seen[id] > 0, "emote {id} never drawn");
        }
    }
}
