//! Channel catalog and platform facade.
//!
//! Section VII-D crawls the twenty most recent videos of the top-10 Dota2
//! channels and plots chat-rate and viewer CDFs; Section VI's crawler
//! polls channels for new videos. [`SimPlatform`] is the stand-in for
//! Twitch in both roles: a set of channels with popularity levels, each
//! with a list of recorded videos whose chat can be "crawled".

use crate::chat::{ChatGenerator, SimVideo};
use crate::game::GameProfile;
use crate::video::VideoGenerator;
use lightor_simkit::dist::log_uniform;
use lightor_simkit::SeedTree;
use lightor_types::{ChannelId, ChatLogView, GameKind, VideoId, VideoMeta};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// A broadcaster channel with a popularity multiplier.
///
/// Popularity scales both the chat rate and the viewer count of the
/// channel's videos; it is log-uniform because channel audiences span
/// orders of magnitude.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    /// Channel identifier.
    pub id: ChannelId,
    /// Game the channel streams.
    pub game: GameKind,
    /// Popularity multiplier applied to chat rate and viewers.
    pub popularity: f64,
}

/// The simulated live-streaming platform: channels and recorded videos.
#[derive(Clone, Debug)]
pub struct SimPlatform {
    channels: Vec<Channel>,
    videos: HashMap<VideoId, SimVideo>,
    by_channel: HashMap<ChannelId, Vec<VideoId>>,
}

/// Popularity multiplier range for top channels. Even "top" channels vary,
/// but the big spread is per-video (time of day, tournament vs ladder), so
/// this range is mild.
const POPULARITY_RANGE: (f64, f64) = (0.8, 1.25);

/// Per-video background chat rate (messages/second) on catalog videos.
/// Wider than the labelled-dataset profile: the applicability study
/// (Figure 9a) needs the low-rate tail where LIGHTOR stops applying —
/// roughly 15-20% of crawled videos fall under 500 messages/hour.
const VIDEO_RATE_RANGE: (f64, f64) = (0.07, 0.60);

impl SimPlatform {
    /// Build a platform with `n_channels` top channels of `game`, each
    /// holding `videos_per_channel` recorded videos.
    /// Video generation (the expensive part) fans out over rayon; each
    /// video derives its RNG from its own `SeedTree` node, so the
    /// catalog is bit-identical for any thread count.
    pub fn top_channels(
        game: GameKind,
        n_channels: usize,
        videos_per_channel: usize,
        seed: u64,
    ) -> Self {
        let profile = Arc::new(GameProfile::for_game(game));
        let vg = VideoGenerator::new(profile.clone());
        let cg = ChatGenerator::new(profile);
        let root = SeedTree::new(seed).child("platform");

        // Channels (and their popularity draws) are cheap and ordered;
        // lay out every (video id, channel, popularity, seed node) job
        // first, then generate the videos in parallel.
        let mut channels = Vec::with_capacity(n_channels);
        let mut jobs: Vec<(VideoId, ChannelId, f64, SeedTree)> =
            Vec::with_capacity(n_channels * videos_per_channel);
        let mut next_video = 0u64;
        for c in 0..n_channels {
            let ch_node = root.child("channel").index(c as u64);
            let mut ch_rng = ch_node.rng();
            let popularity = log_uniform(&mut ch_rng, POPULARITY_RANGE.0, POPULARITY_RANGE.1);
            let channel = Channel {
                id: ChannelId(c as u64),
                game,
                popularity,
            };
            for v in 0..videos_per_channel {
                let vid = VideoId(next_video);
                next_video += 1;
                jobs.push((
                    vid,
                    channel.id,
                    popularity,
                    ch_node.child("video").index(v as u64),
                ));
            }
            channels.push(channel);
        }

        let sims: Vec<SimVideo> = jobs
            .par_iter()
            .map(|&(vid, ch, popularity, v_node)| {
                let mut vrng = v_node.child("spec").rng();
                let mut spec = vg.generate(vid, ch, &mut vrng);
                // Catalog videos draw their chat intensity from the wide
                // per-video range, scaled by channel popularity; audience
                // scales with popularity too, floored well above the
                // paper's 100-viewer observation.
                spec.background_rate =
                    log_uniform(&mut vrng, VIDEO_RATE_RANGE.0, VIDEO_RATE_RANGE.1) * popularity;
                spec.meta.viewers = ((spec.meta.viewers as f64 * popularity) as u32).max(120);
                let mut crng = v_node.child("chat").rng();
                cg.generate(spec, &mut crng)
            })
            .collect();

        let mut videos = HashMap::with_capacity(sims.len());
        let mut by_channel: HashMap<ChannelId, Vec<VideoId>> = HashMap::new();
        for sim in sims {
            let (vid, ch) = (sim.video.meta.id, sim.video.meta.channel);
            by_channel.entry(ch).or_default().push(vid);
            videos.insert(vid, sim);
        }

        SimPlatform {
            channels,
            videos,
            by_channel,
        }
    }

    /// All channels, in id order.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The recorded videos of `channel`, most recent last.
    pub fn recent_videos(&self, channel: ChannelId) -> &[VideoId] {
        self.by_channel
            .get(&channel)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Metadata for a video, if it exists.
    pub fn video_meta(&self, id: VideoId) -> Option<&VideoMeta> {
        self.videos.get(&id).map(|v| &v.video.meta)
    }

    /// "Crawl" the chat replay of a video (what the Section VI web crawler
    /// fetches through platform APIs). Zero-copy: the returned view
    /// borrows the generator's columnar buffer.
    pub fn fetch_chat(&self, id: VideoId) -> Option<&ChatLogView> {
        self.videos.get(&id).map(|v| &v.video.chat)
    }

    /// Full simulated video including ground truth (evaluation only — a
    /// real platform has no labels).
    pub fn ground_truth(&self, id: VideoId) -> Option<&SimVideo> {
        self.videos.get(&id)
    }

    /// Iterate over every video on the platform.
    pub fn all_videos(&self) -> impl Iterator<Item = &SimVideo> {
        self.videos.values()
    }

    /// Total number of recorded videos.
    pub fn video_count(&self) -> usize {
        self.videos.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> SimPlatform {
        SimPlatform::top_channels(GameKind::Dota2, 4, 5, 21)
    }

    #[test]
    fn builds_requested_shape() {
        let p = platform();
        assert_eq!(p.channels().len(), 4);
        assert_eq!(p.video_count(), 20);
        for ch in p.channels() {
            assert_eq!(p.recent_videos(ch.id).len(), 5);
        }
    }

    #[test]
    fn popularity_in_range() {
        let p = platform();
        for ch in p.channels() {
            assert!(
                (POPULARITY_RANGE.0..=POPULARITY_RANGE.1).contains(&ch.popularity),
                "popularity {}",
                ch.popularity
            );
        }
    }

    #[test]
    fn all_videos_have_at_least_100_viewers() {
        // Paper Figure 9b: every crawled video has >100 viewers.
        let p = SimPlatform::top_channels(GameKind::Dota2, 10, 20, 22);
        for v in p.all_videos() {
            assert!(
                v.video.meta.viewers >= 100,
                "viewers {}",
                v.video.meta.viewers
            );
        }
    }

    #[test]
    fn majority_exceed_500_messages_per_hour() {
        // Paper Figure 9a: >80% of videos have ≥500 chat messages/hour.
        let p = SimPlatform::top_channels(GameKind::Dota2, 10, 20, 23);
        let ok = p
            .all_videos()
            .filter(|v| v.video.chat_rate() >= 500.0)
            .count();
        let total = p.video_count();
        assert!(
            ok as f64 / total as f64 >= 0.75,
            "{ok}/{total} above threshold"
        );
        // ...but not literally all of them: the long tail exists.
        assert!(ok < total, "every video above threshold is implausible");
    }

    #[test]
    fn crawl_api_round_trips() {
        let p = platform();
        let ch = p.channels()[0].id;
        let vid = p.recent_videos(ch)[0];
        let meta = p.video_meta(vid).unwrap();
        assert_eq!(meta.id, vid);
        assert_eq!(meta.channel, ch);
        let chat = p.fetch_chat(vid).unwrap();
        assert!(!chat.is_empty());
        assert!(p.ground_truth(vid).is_some());
        assert!(p.fetch_chat(VideoId(9999)).is_none());
        assert!(p.recent_videos(ChannelId(99)).is_empty());
    }

    #[test]
    fn construction_is_deterministic() {
        let a = SimPlatform::top_channels(GameKind::Lol, 2, 3, 7);
        let b = SimPlatform::top_channels(GameKind::Lol, 2, 3, 7);
        let ids_a: Vec<_> = a.channels().iter().map(|c| c.popularity).collect();
        let ids_b: Vec<_> = b.channels().iter().map(|c| c.popularity).collect();
        assert_eq!(ids_a, ids_b);
        for ch in a.channels() {
            for vid in a.recent_videos(ch.id) {
                assert_eq!(a.fetch_chat(*vid).unwrap(), b.fetch_chat(*vid).unwrap());
            }
        }
    }
}
