//! SocialSkip (Chorianopoulos 2013), as described in paper Section VII-C.
//!
//! Builds a 1-second-bin interest histogram from *seek* interactions:
//! a Seek Backward means the skipped-over range was interesting (+1), a
//! Seek Forward means it was boring (−1). The curve is smoothed, local
//! maxima become highlights, and each highlight spans ±10 s around its
//! maximum.

use lightor_simkit::{local_maxima, moving_average, Histogram};
use lightor_types::{Interaction, Sec, Session, TimeRange};

/// Seek-vote interest curve extractor.
#[derive(Clone, Copy, Debug)]
pub struct SocialSkip {
    /// Smoothing radius in bins (1 bin = 1 second).
    pub smooth_radius: usize,
    /// Half-width of the reported highlight around each local maximum.
    pub half_width: f64,
}

impl Default for SocialSkip {
    fn default() -> Self {
        SocialSkip {
            smooth_radius: 8,
            half_width: 10.0,
        }
    }
}

impl SocialSkip {
    /// The smoothed interest curve (one value per second of video).
    pub fn curve(&self, sessions: &[Session], duration: Sec) -> Vec<f64> {
        if duration.0 <= 0.0 {
            return Vec::new();
        }
        let mut hist = Histogram::with_bin_width(0.0, duration.0, 1.0);
        for s in sessions {
            for ev in &s.events {
                match *ev {
                    Interaction::SeekBackward { from, to } => {
                        // The jumped-back range [to, from] was interesting.
                        hist.add_range(to.0, from.0, 1.0);
                    }
                    Interaction::SeekForward { from, to } => {
                        // The skipped range [from, to] was boring.
                        hist.add_range(from.0, to.0, -1.0);
                    }
                    _ => {}
                }
            }
        }
        moving_average(hist.counts(), self.smooth_radius)
    }

    /// All extracted highlights, as `(start, end)` spans around curve
    /// maxima, strongest first.
    pub fn extract(&self, sessions: &[Session], duration: Sec) -> Vec<TimeRange> {
        let curve = self.curve(sessions, duration);
        let mut peaks = local_maxima(&curve);
        // Only positive-interest maxima count as highlights.
        peaks.retain(|&i| curve[i] > 0.0);
        peaks.sort_by(|&a, &b| curve[b].total_cmp(&curve[a]).then(a.cmp(&b)));
        peaks
            .into_iter()
            .map(|i| {
                let center = i as f64 + 0.5;
                TimeRange::from_secs(
                    (center - self.half_width).max(0.0),
                    (center + self.half_width).min(duration.0),
                )
            })
            .collect()
    }

    /// The extracted highlight nearest to `dot` — how the Figure 8
    /// comparison queries the baseline per red dot.
    pub fn extract_near(&self, sessions: &[Session], duration: Sec, dot: Sec) -> Option<TimeRange> {
        self.extract(sessions, duration)
            .into_iter()
            .min_by(|a, b| a.distance_to(dot).total_cmp(&b.distance_to(dot)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_types::UserId;

    fn seekback_sessions(target: f64, n: usize) -> Vec<Session> {
        (0..n)
            .map(|i| {
                Session::new(
                    UserId(i as u64),
                    vec![
                        Interaction::Play {
                            video_ts: Sec(target + 30.0),
                        },
                        Interaction::SeekBackward {
                            from: Sec(target + 20.0),
                            to: Sec(target - 5.0),
                        },
                        Interaction::Pause {
                            video_ts: Sec(target + 15.0),
                        },
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn seekbacks_create_a_peak() {
        let sessions = seekback_sessions(500.0, 8);
        let ss = SocialSkip::default();
        let spans = ss.extract(&sessions, Sec(1000.0));
        assert!(!spans.is_empty());
        let best = spans[0];
        assert!(
            best.contains(Sec(505.0)),
            "peak span {best} should cover the rewatched region"
        );
        assert!((best.duration().0 - 20.0).abs() < 1.0);
    }

    #[test]
    fn seek_forwards_suppress() {
        let mut sessions = seekback_sessions(500.0, 3);
        // Heavy skipping over 700..760 must not create a highlight there.
        for i in 0..10 {
            sessions.push(Session::new(
                UserId(100 + i),
                vec![
                    Interaction::Play {
                        video_ts: Sec(690.0),
                    },
                    Interaction::SeekForward {
                        from: Sec(700.0),
                        to: Sec(760.0),
                    },
                    Interaction::Pause {
                        video_ts: Sec(770.0),
                    },
                ],
            ));
        }
        let ss = SocialSkip::default();
        let spans = ss.extract(&sessions, Sec(1000.0));
        assert!(spans
            .iter()
            .all(|s| !s.contains(Sec(730.0)) || s.distance_to(Sec(505.0)).0 == 0.0));
    }

    #[test]
    fn extract_near_picks_closest() {
        let mut sessions = seekback_sessions(300.0, 8);
        sessions.extend(seekback_sessions(800.0, 6));
        let ss = SocialSkip::default();
        let near = ss.extract_near(&sessions, Sec(1000.0), Sec(790.0)).unwrap();
        assert!(near.contains(Sec(800.0)), "nearest span {near}");
    }

    #[test]
    fn no_seeks_no_highlights() {
        let sessions = vec![Session::new(
            UserId(0),
            vec![
                Interaction::Play {
                    video_ts: Sec(10.0),
                },
                Interaction::Pause {
                    video_ts: Sec(50.0),
                },
            ],
        )];
        let ss = SocialSkip::default();
        assert!(ss.extract(&sessions, Sec(100.0)).is_empty());
        assert!(ss.extract_near(&sessions, Sec(100.0), Sec(30.0)).is_none());
    }

    #[test]
    fn empty_duration_is_empty() {
        let ss = SocialSkip::default();
        assert!(ss.curve(&[], Sec(0.0)).is_empty());
    }
}
