//! The naive count-only detector (paper Section IV-C1).
//!
//! "Count which part of the video has the largest message number and put a
//! red dot at that position." Its two documented failure modes — bot
//! bursts and the reaction delay — are exactly what the prediction and
//! adjustment stages fix.

use lightor_simkit::{peaks_min_separation, Histogram};
use lightor_types::{ChatLogView, Sec};

/// Count-peak red-dot placement.
#[derive(Clone, Copy, Debug)]
pub struct NaiveCount {
    /// Histogram bin width in seconds.
    pub bin: f64,
    /// Minimum separation between reported dots (δ), in seconds.
    pub min_separation: f64,
}

impl Default for NaiveCount {
    fn default() -> Self {
        NaiveCount {
            bin: 10.0,
            min_separation: 120.0,
        }
    }
}

impl NaiveCount {
    /// Top-k message-count peaks, separated by at least δ, highest first.
    pub fn detect(&self, chat: &ChatLogView, duration: Sec, k: usize) -> Vec<Sec> {
        if duration.0 <= 0.0 || chat.is_empty() {
            return Vec::new();
        }
        let mut hist = Histogram::with_bin_width(0.0, duration.0, self.bin);
        for i in 0..chat.len() {
            hist.add(chat.ts(i).0);
        }
        let counts = hist.counts();
        let sep_bins = (self.min_separation / self.bin).ceil() as usize;
        let mut peaks = peaks_min_separation(counts, sep_bins.max(1));
        peaks.sort_by(|&a, &b| counts[b].total_cmp(&counts[a]).then(a.cmp(&b)));
        peaks
            .into_iter()
            .take(k)
            .map(|i| Sec(hist.bin_center(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_types::{ChatMessage, UserId};

    fn chat_with_bursts(bursts: &[(f64, usize)], duration: f64) -> ChatLogView {
        let mut msgs = Vec::new();
        for &(at, n) in bursts {
            for i in 0..n {
                msgs.push(ChatMessage::new(
                    at + i as f64 * 0.3,
                    UserId(i as u64),
                    "msg",
                ));
            }
        }
        // Light background.
        let mut t = 0.0;
        while t < duration {
            msgs.push(ChatMessage::new(t, UserId(999), "bg"));
            t += 20.0;
        }
        ChatLogView::from_messages(msgs)
    }

    #[test]
    fn finds_the_biggest_burst() {
        let chat = chat_with_bursts(&[(500.0, 30), (1200.0, 12)], 2000.0);
        let dots = NaiveCount::default().detect(&chat, Sec(2000.0), 2);
        assert_eq!(dots.len(), 2);
        assert!((dots[0].0 - 505.0).abs() < 15.0, "first dot {}", dots[0]);
        assert!((dots[1].0 - 1205.0).abs() < 15.0, "second dot {}", dots[1]);
    }

    #[test]
    fn respects_separation() {
        // Two bursts 60 s apart: only one may be reported at δ = 120.
        let chat = chat_with_bursts(&[(500.0, 30), (560.0, 25)], 1000.0);
        let dots = NaiveCount::default().detect(&chat, Sec(1000.0), 5);
        for i in 0..dots.len() {
            for j in (i + 1)..dots.len() {
                assert!((dots[i].0 - dots[j].0).abs() >= 120.0);
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let n = NaiveCount::default();
        assert!(n.detect(&ChatLogView::empty(), Sec(100.0), 3).is_empty());
        let chat = chat_with_bursts(&[(10.0, 5)], 100.0);
        assert!(n.detect(&chat, Sec(0.0), 3).is_empty());
    }

    #[test]
    fn k_caps_output() {
        let chat = chat_with_bursts(&[(200.0, 20), (600.0, 15), (1000.0, 10)], 1500.0);
        assert_eq!(NaiveCount::default().detect(&chat, Sec(1500.0), 2).len(), 2);
    }
}
