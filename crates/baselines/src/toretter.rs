//! Toretter-style statistical burst detection (Sakaki et al., "Earthquake
//! shakes Twitter users", adapted to live chat as in paper Section VII-B).
//!
//! Toretter models the number of event-related messages per time window
//! and raises an alarm when the observed count is statistically
//! improbable under the baseline rate. Crucially for the comparison in
//! Figure 7a, it reports the alarm at the *burst* position — it has no
//! concept of the reaction delay between a video highlight and the chat
//! discussing it, which is why its Video Precision@K (start) stays under
//! 20% while LIGHTOR's adjustment stage lifts the same peaks to ~3×
//! higher precision.

use lightor_simkit::{mean, std_dev, Histogram};
use lightor_types::{ChatLogView, Sec};

/// Statistical burst alarm detector.
#[derive(Clone, Copy, Debug)]
pub struct Toretter {
    /// Aggregation window in seconds.
    pub window: f64,
    /// Alarm threshold in baseline standard deviations.
    pub sigma_threshold: f64,
    /// Minimum separation between reported alarms (δ), in seconds.
    pub min_separation: f64,
}

impl Default for Toretter {
    fn default() -> Self {
        Toretter {
            window: 25.0,
            sigma_threshold: 2.0,
            min_separation: 120.0,
        }
    }
}

/// One raised alarm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Alarm {
    /// Alarm position (center of the offending window).
    pub at: Sec,
    /// Burst significance in baseline standard deviations.
    pub z_score: f64,
}

impl Toretter {
    /// All alarms over a video, most significant first.
    pub fn alarms(&self, chat: &ChatLogView, duration: Sec) -> Vec<Alarm> {
        if duration.0 <= 0.0 || chat.is_empty() {
            return Vec::new();
        }
        let mut hist = Histogram::with_bin_width(0.0, duration.0, self.window);
        for i in 0..chat.len() {
            hist.add(chat.ts(i).0);
        }
        let counts = hist.counts();
        let mu = mean(counts).unwrap_or(0.0);
        let sigma = std_dev(counts).unwrap_or(0.0).max(1e-9);

        let mut alarms: Vec<Alarm> = counts
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| {
                let z = (c - mu) / sigma;
                (z >= self.sigma_threshold).then(|| Alarm {
                    at: Sec(hist.bin_center(i)),
                    z_score: z,
                })
            })
            .collect();
        alarms.sort_by(|a, b| b.z_score.total_cmp(&a.z_score).then(a.at.total_cmp(&b.at)));
        alarms
    }

    /// Top-k alarm positions with δ separation — Toretter's "red dots".
    pub fn detect(&self, chat: &ChatLogView, duration: Sec, k: usize) -> Vec<Sec> {
        let mut chosen: Vec<Sec> = Vec::with_capacity(k);
        for a in self.alarms(chat, duration) {
            if chosen
                .iter()
                .all(|c| (c.0 - a.at.0).abs() > self.min_separation)
            {
                chosen.push(a.at);
                if chosen.len() == k {
                    break;
                }
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_types::{ChatMessage, UserId};

    fn chat_with_burst(burst_at: f64, burst_n: usize, duration: f64) -> ChatLogView {
        let mut msgs = Vec::new();
        let mut t = 0.0;
        while t < duration {
            msgs.push(ChatMessage::new(t, UserId(0), "bg"));
            t += 10.0;
        }
        for i in 0..burst_n {
            msgs.push(ChatMessage::new(
                burst_at + (i as f64) * 0.4,
                UserId(i as u64),
                "burst",
            ));
        }
        ChatLogView::from_messages(msgs)
    }

    #[test]
    fn alarm_fires_on_burst() {
        let chat = chat_with_burst(1000.0, 40, 3000.0);
        let t = Toretter::default();
        let alarms = t.alarms(&chat, Sec(3000.0));
        assert!(!alarms.is_empty());
        assert!(
            (alarms[0].at.0 - 1008.0).abs() < 26.0,
            "strongest alarm at {}",
            alarms[0].at
        );
        assert!(alarms[0].z_score >= 2.0);
    }

    #[test]
    fn no_alarms_on_flat_traffic() {
        let chat = chat_with_burst(0.0, 0, 3000.0);
        let t = Toretter::default();
        assert!(t.detect(&chat, Sec(3000.0), 5).is_empty());
    }

    #[test]
    fn alarm_lands_at_burst_not_highlight_start() {
        // The burst trails the (hypothetical) highlight at 975 s by 25 s;
        // Toretter reports the burst position — the systematic lateness
        // Figure 7a punishes.
        let chat = chat_with_burst(1000.0, 40, 3000.0);
        let dots = Toretter::default().detect(&chat, Sec(3000.0), 1);
        assert!(
            dots[0].0 >= 995.0,
            "dot {} should sit at the burst",
            dots[0]
        );
    }

    #[test]
    fn separation_is_enforced() {
        let mut msgs = chat_with_burst(1000.0, 40, 3000.0)
            .to_chat_log()
            .into_messages();
        msgs.extend(
            chat_with_burst(1060.0, 35, 3000.0)
                .to_chat_log()
                .into_messages(),
        );
        let chat = ChatLogView::from_messages(msgs);
        let dots = Toretter::default().detect(&chat, Sec(3000.0), 5);
        for i in 0..dots.len() {
            for j in (i + 1)..dots.len() {
                assert!((dots[i].0 - dots[j].0).abs() > 120.0);
            }
        }
    }

    #[test]
    fn empty_chat_is_empty() {
        let t = Toretter::default();
        assert!(t.alarms(&ChatLogView::empty(), Sec(100.0)).is_empty());
    }
}
