//! Moocer (Kim et al., "Understanding in-video dropouts and interaction
//! peaks", L@S 2014), as described in paper Section VII-C.
//!
//! Builds a 1-second-bin *play frequency* histogram — every second a
//! viewer plays adds +1 to that second's bin — smooths it, finds local
//! maxima, and reports each highlight as the span between the two turning
//! points flanking the maximum.

use lightor_simkit::{local_maxima, moving_average, turning_points, Histogram};
use lightor_types::{Sec, Session, TimeRange};

/// Play-frequency curve extractor.
#[derive(Clone, Copy, Debug)]
pub struct Moocer {
    /// Smoothing radius in bins (1 bin = 1 second).
    pub smooth_radius: usize,
}

impl Default for Moocer {
    fn default() -> Self {
        Moocer { smooth_radius: 8 }
    }
}

impl Moocer {
    /// The smoothed play-frequency curve (one value per second).
    pub fn curve(&self, sessions: &[Session], duration: Sec) -> Vec<f64> {
        if duration.0 <= 0.0 {
            return Vec::new();
        }
        let mut hist = Histogram::with_bin_width(0.0, duration.0, 1.0);
        for s in sessions {
            for p in s.plays() {
                hist.add_range(p.start().0, p.end().0, 1.0);
            }
        }
        moving_average(hist.counts(), self.smooth_radius)
    }

    /// All extracted highlights (turning-point spans), strongest first.
    pub fn extract(&self, sessions: &[Session], duration: Sec) -> Vec<TimeRange> {
        let curve = self.curve(sessions, duration);
        let mut peaks = local_maxima(&curve);
        peaks.retain(|&i| curve[i] > 0.0);
        peaks.sort_by(|&a, &b| curve[b].total_cmp(&curve[a]).then(a.cmp(&b)));
        peaks
            .into_iter()
            .map(|i| {
                let (l, r) = turning_points(&curve, i);
                TimeRange::from_secs(l as f64, (r as f64 + 1.0).min(duration.0))
            })
            .collect()
    }

    /// The extracted highlight nearest to `dot` (Figure 8 protocol).
    pub fn extract_near(&self, sessions: &[Session], duration: Sec, dot: Sec) -> Option<TimeRange> {
        self.extract(sessions, duration)
            .into_iter()
            .min_by(|a, b| a.distance_to(dot).total_cmp(&b.distance_to(dot)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_types::{Interaction, UserId};

    fn play_sessions(start: f64, end: f64, n: usize) -> Vec<Session> {
        (0..n)
            .map(|i| {
                let jitter = i as f64 * 0.5;
                Session::new(
                    UserId(i as u64),
                    vec![
                        Interaction::Play {
                            video_ts: Sec(start + jitter),
                        },
                        Interaction::Pause {
                            video_ts: Sec(end + jitter),
                        },
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn popular_region_becomes_highlight() {
        let sessions = play_sessions(500.0, 525.0, 10);
        let m = Moocer::default();
        let spans = m.extract(&sessions, Sec(1000.0));
        assert!(!spans.is_empty());
        let best = spans[0];
        assert!(
            best.overlaps(&TimeRange::from_secs(500.0, 525.0)),
            "span {best}"
        );
    }

    #[test]
    fn turning_points_bound_the_span() {
        let sessions = play_sessions(500.0, 525.0, 10);
        let m = Moocer::default();
        let span = m.extract(&sessions, Sec(1000.0))[0];
        // The span should not stretch into the un-watched region.
        assert!(span.start.0 > 450.0 && span.end.0 < 575.0, "span {span}");
    }

    #[test]
    fn extract_near_picks_closest() {
        let mut sessions = play_sessions(300.0, 320.0, 10);
        sessions.extend(play_sessions(800.0, 825.0, 8));
        let m = Moocer::default();
        let near = m.extract_near(&sessions, Sec(1000.0), Sec(810.0)).unwrap();
        assert!(near.overlaps(&TimeRange::from_secs(800.0, 825.0)), "{near}");
    }

    #[test]
    fn no_plays_no_highlights() {
        let m = Moocer::default();
        assert!(m.extract(&[], Sec(100.0)).is_empty());
        assert!(m.curve(&[], Sec(0.0)).is_empty());
    }
}
