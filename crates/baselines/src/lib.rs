//! The comparison systems from the paper's evaluation (Section VII):
//!
//! * [`naive`] — the count-only detector from Section IV-C1: put red dots
//!   at the largest message-count positions;
//! * [`toretter`] — Sakaki et al.'s social-network event detector applied
//!   to chat (Section VII-B, Figure 7a): statistical burst alarms with no
//!   reaction-delay adjustment;
//! * [`socialskip`] — Chorianopoulos' seek-vote curve over viewer
//!   interactions (Section VII-C, Figure 8);
//! * [`moocer`] — Kim et al.'s play-frequency curve with turning-point
//!   boundaries (Section VII-C, Figure 8).
//!
//! All four share the substrate in `lightor-simkit` (histograms,
//! smoothing, peak detection) and none sees ground truth.

#![warn(missing_docs)]

pub mod moocer;
pub mod naive;
pub mod socialskip;
pub mod toretter;

pub use moocer::Moocer;
pub use naive::NaiveCount;
pub use socialskip::SocialSkip;
pub use toretter::Toretter;
