//! System parameters, with the paper's defaults.

use serde::{Deserialize, Serialize};

/// Highlight Initializer parameters (paper Section IV).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InitializerConfig {
    /// Sliding-window length in seconds. Paper: 25 s (Section VII-A).
    pub window_len: f64,
    /// Stride between candidate windows, as a fraction of `window_len`.
    /// Candidates overlap; Algorithm 1 line 1 resolves overlaps by keeping
    /// the window with more messages.
    pub stride_frac: f64,
    /// Minimum distance between two red dots, δ. Paper: 120 s.
    pub min_separation: f64,
    /// Tolerance before the highlight start for a good red dot. Paper:
    /// 10 s ("people can accept less than 10 s delay").
    pub good_dot_tol: f64,
    /// Bin width used for locating the message peak inside a window.
    pub peak_bin: f64,
    /// Grid searched when learning the adjustment constant `c` (seconds).
    pub c_grid_max: f64,
}

impl Default for InitializerConfig {
    fn default() -> Self {
        InitializerConfig {
            window_len: 25.0,
            stride_frac: 0.5,
            min_separation: 120.0,
            good_dot_tol: 10.0,
            peak_bin: 5.0,
            c_grid_max: 60.0,
        }
    }
}

/// Highlight Extractor parameters (paper Section V).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExtractorConfig {
    /// Plays farther than this from the red dot are out of scope, Δ.
    /// Paper: 60 s.
    pub neighborhood: f64,
    /// Distance filter: a play whose interval is farther than this from
    /// the dot "typically does not cover the highlight".
    pub max_dot_distance: f64,
    /// Too-short plays are interest checks, not highlight watching.
    pub min_play_len: f64,
    /// Too-long plays are whole-video watching.
    pub max_play_len: f64,
    /// Type I move-back step, m. Paper: 20 s.
    pub move_back: f64,
    /// Convergence threshold ε on the red dot position.
    pub converge_eps: f64,
    /// Maximum refinement iterations (a safety net; the paper iterates
    /// "until users reach a consensus", about 4 rounds in Figure 8).
    pub max_iterations: usize,
    /// Crowd responses collected per task. Paper: 10.
    pub responses_per_task: usize,
}

impl Default for ExtractorConfig {
    fn default() -> Self {
        ExtractorConfig {
            neighborhood: 60.0,
            max_dot_distance: 45.0,
            min_play_len: 6.0,
            max_play_len: 75.0,
            move_back: 20.0,
            converge_eps: 3.0,
            max_iterations: 6,
            responses_per_task: 10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let i = InitializerConfig::default();
        assert_eq!(i.window_len, 25.0);
        assert_eq!(i.min_separation, 120.0);
        assert_eq!(i.good_dot_tol, 10.0);
        let e = ExtractorConfig::default();
        assert_eq!(e.neighborhood, 60.0);
        assert_eq!(e.move_back, 20.0);
        assert_eq!(e.responses_per_task, 10);
    }

    #[test]
    fn serde_round_trip() {
        let i = InitializerConfig::default();
        let js = serde_json::to_string(&i).unwrap();
        assert_eq!(serde_json::from_str::<InitializerConfig>(&js).unwrap(), i);
        let e = ExtractorConfig::default();
        let js = serde_json::to_string(&e).unwrap();
        assert_eq!(serde_json::from_str::<ExtractorConfig>(&js).unwrap(), e);
    }
}
