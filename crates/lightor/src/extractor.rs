//! The Highlight Extractor's iterative refinement loop (Algorithm 2).
//!
//! Each iteration publishes the current red-dot position to a crowd
//! source, filters the returned plays, classifies the dot's geometry, and
//! either extracts a boundary (Type II: medians) or moves the dot backward
//! (Type I: `−m`) for another round. The loop stops when the dot position
//! converges (`|s − s′| < ε`) or the iteration budget runs out.

use crate::aggregate::{aggregate_type1, aggregate_type2};
use crate::classify::{play_position_features, DotType, TypeClassifier};
use crate::config::ExtractorConfig;
use crate::filter::filter_plays;
use lightor_types::{PlaySet, RedDot, Sec};
use serde::{Deserialize, Serialize};

/// Diagnostics for one refinement iteration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Dot position this round's task was published at.
    pub dot: Sec,
    /// Plays returned by the crowd before filtering.
    pub plays_raw: usize,
    /// Plays surviving the filter stage.
    pub plays_filtered: usize,
    /// The classifier's verdict.
    pub classified: DotType,
    /// Boundary estimate, when Type II aggregation produced one.
    pub boundary: Option<(Sec, Sec)>,
}

/// The result of refining one red dot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Refined {
    /// Final start position (the converged dot).
    pub start: Sec,
    /// Final end position, when any Type II round produced one.
    pub end: Option<Sec>,
    /// Per-iteration diagnostics, in order.
    pub history: Vec<IterationRecord>,
}

impl Refined {
    /// Number of crowd rounds spent.
    pub fn iterations(&self) -> usize {
        self.history.len()
    }

    /// Whether the last round classified the dot as Type II.
    pub fn converged_type2(&self) -> bool {
        self.history
            .last()
            .is_some_and(|r| r.classified == DotType::TypeII)
    }
}

/// The Highlight Extractor: a trained Type I/II classifier plus the
/// iteration policy.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HighlightExtractor {
    cfg: ExtractorConfig,
    classifier: TypeClassifier,
}

impl HighlightExtractor {
    /// Build from a trained classifier and configuration.
    pub fn new(classifier: TypeClassifier, cfg: ExtractorConfig) -> Self {
        HighlightExtractor { cfg, classifier }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ExtractorConfig {
        &self.cfg
    }

    /// The classifier in use.
    pub fn classifier(&self) -> &TypeClassifier {
        &self.classifier
    }

    /// Refine one red dot. `collect` is called once per iteration with
    /// the dot position for that round and must return that round's play
    /// records (a fresh crowd task).
    pub fn refine(&self, dot: RedDot, collect: &mut dyn FnMut(Sec) -> PlaySet) -> Refined {
        let mut current = dot.at;
        let mut history: Vec<IterationRecord> = Vec::new();
        let mut last_boundary: Option<(Sec, Sec)> = None;
        // Start of the previous Type II boundary: when two Type II rounds
        // agree within ε the dot has converged, even if a (mis)classified
        // Type I round slipped in between — the classifier is only ~80%
        // accurate (Section V-C) and must not be allowed to walk a settled
        // dot away.
        let mut prev_t2_start: Option<Sec> = None;

        for _ in 0..self.cfg.max_iterations {
            let raw = collect(current);
            let filtered = filter_plays(&raw, current, &self.cfg);
            let feats = play_position_features(&filtered, current);
            let classified = if filtered.is_empty() {
                // No usable plays at all: treat as Type I (the dot is
                // probably nowhere near watchable content) and move back.
                DotType::TypeI
            } else {
                self.classifier.classify(&feats)
            };

            let mut record = IterationRecord {
                dot: current,
                plays_raw: raw.len(),
                plays_filtered: filtered.len(),
                classified,
                boundary: None,
            };

            let mut t2_agreement = false;
            let next = match classified {
                DotType::TypeII => match aggregate_type2(&filtered, current) {
                    Some((s, e)) => {
                        record.boundary = Some((s, e));
                        last_boundary = Some((s, e));
                        t2_agreement = prev_t2_start
                            .is_some_and(|p| (p.0 - s.0).abs() < self.cfg.converge_eps);
                        prev_t2_start = Some(s);
                        s
                    }
                    None => aggregate_type1(current, self.cfg.move_back),
                },
                DotType::TypeI => aggregate_type1(current, self.cfg.move_back),
            };
            history.push(record);

            let moved = (next.0 - current.0).abs();
            current = next;
            if moved < self.cfg.converge_eps || t2_agreement {
                break;
            }
        }

        Refined {
            start: current,
            end: last_boundary.map(|(_, e)| e),
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::PlayPositionFeatures;
    use lightor_types::Play;

    /// A classifier trained on realistic geometry: Type II dots also see
    /// "across" plays (click jitter, dots already inside the highlight);
    /// the load-bearing signal is the *before* fraction from hunting.
    fn classifier() -> TypeClassifier {
        let mut examples = Vec::new();
        for i in 0..40 {
            let j = (i % 7) as f64;
            examples.push((
                PlayPositionFeatures {
                    after: 5.0 + j,
                    before: if i % 5 == 0 { 1.0 } else { 0.0 },
                    across: 1.0 + j / 2.0,
                },
                DotType::TypeII,
            ));
            examples.push((
                PlayPositionFeatures {
                    after: 1.0 + j / 3.0,
                    before: 3.0 + j,
                    across: 2.0 + j / 2.0,
                },
                DotType::TypeI,
            ));
        }
        TypeClassifier::train(&examples)
    }

    fn extractor() -> HighlightExtractor {
        HighlightExtractor::new(classifier(), ExtractorConfig::default())
    }

    /// A crowd stub: viewers watch [h_start + 6, h_end + 4] when the dot is
    /// before the highlight end; otherwise they hunt (plays behind the dot).
    fn crowd_stub(h_start: f64, h_end: f64) -> impl FnMut(Sec) -> PlaySet {
        move |dot: Sec| {
            if dot.0 <= h_end {
                (0..9)
                    .map(|i| {
                        let off = (i as f64 - 4.0) * 0.8;
                        Play::from_secs(
                            (h_start + 6.0 + off).max(dot.0 - 2.0),
                            h_end + 4.0 + off * 0.5,
                        )
                    })
                    .collect()
            } else {
                (0..9)
                    .map(|i| {
                        let back = 12.0 + 3.0 * i as f64;
                        Play::from_secs(dot.0 - back, dot.0 - back + 8.0)
                    })
                    .collect()
            }
        }
    }

    #[test]
    fn type2_dot_converges_in_one_round() {
        let ex = extractor();
        let mut crowd = crowd_stub(1990.0, 2005.0);
        let refined = ex.refine(RedDot::new(1992.0, 0.9), &mut crowd);
        assert!(refined.converged_type2());
        assert!(refined.end.is_some());
        let s = refined.start.0;
        assert!(
            (1990.0..=2005.0).contains(&s),
            "refined start {s} should sit inside the highlight"
        );
        let e = refined.end.unwrap().0;
        assert!((2000.0..=2015.0).contains(&e), "refined end {e}");
    }

    #[test]
    fn type1_dot_walks_back_until_type2() {
        let ex = extractor();
        // Dot 45 s past the highlight end: needs ~2-3 move-backs.
        let mut crowd = crowd_stub(1990.0, 2005.0);
        let refined = ex.refine(RedDot::new(2050.0, 0.8), &mut crowd);
        assert!(refined.iterations() >= 2);
        assert!(
            refined.history[0].classified == DotType::TypeI,
            "first round should be Type I"
        );
        assert!(refined.converged_type2(), "must end Type II");
        assert!(refined.start.0 <= 2005.0 + 10.0);
        assert!(refined.end.is_some());
    }

    #[test]
    fn empty_crowd_keeps_moving_back() {
        let ex = extractor();
        let mut crowd = |_dot: Sec| PlaySet::default();
        let refined = ex.refine(RedDot::new(500.0, 0.5), &mut crowd);
        assert_eq!(
            refined.iterations(),
            ExtractorConfig::default().max_iterations
        );
        assert!(refined.end.is_none());
        // Moved back m per iteration.
        assert!(
            (refined.start.0 - (500.0 - 6.0 * 20.0)).abs() < 1e-9,
            "start {}",
            refined.start
        );
    }

    #[test]
    fn history_records_rounds() {
        let ex = extractor();
        let mut crowd = crowd_stub(1990.0, 2005.0);
        let refined = ex.refine(RedDot::new(2050.0, 0.8), &mut crowd);
        assert_eq!(refined.history.len(), refined.iterations());
        assert_eq!(refined.history[0].dot.0, 2050.0);
        for r in &refined.history {
            assert!(r.plays_filtered <= r.plays_raw);
        }
        let type2_rounds = refined
            .history
            .iter()
            .filter(|r| r.classified == DotType::TypeII)
            .count();
        assert!(type2_rounds >= 1);
    }

    #[test]
    fn dot_never_goes_negative() {
        let ex = extractor();
        let mut crowd = |_dot: Sec| PlaySet::default();
        let refined = ex.refine(RedDot::new(15.0, 0.5), &mut crowd);
        assert!(refined.start.0 >= 0.0);
    }
}
