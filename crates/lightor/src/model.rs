//! Serializable bundle of every trained artifact — what the platform layer
//! persists between sessions (Section VI: "the refined results will be
//! stored in the database continuously").

use crate::extractor::HighlightExtractor;
use crate::initializer::HighlightInitializer;
use serde::{Deserialize, Serialize};

/// All trained LIGHTOR models for one deployment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelBundle {
    /// The trained Highlight Initializer (scaler + window model + c).
    pub initializer: HighlightInitializer,
    /// The trained Highlight Extractor (Type I/II classifier + config).
    pub extractor: HighlightExtractor,
    /// Free-form provenance (training games, seeds, sizes).
    pub provenance: String,
}

impl ModelBundle {
    /// Serialize to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{DotType, PlayPositionFeatures, TypeClassifier};
    use crate::config::{ExtractorConfig, InitializerConfig};
    use crate::features::FeatureSet;
    use lightor_mlcore::{LogisticRegression, MinMaxScaler};

    fn bundle() -> ModelBundle {
        let scaler = MinMaxScaler::fit(&[vec![0.0, 0.0, 0.0], vec![10.0, 5.0, 1.0]]);
        let lr = LogisticRegression::from_parameters(vec![2.0, -1.0, 1.5], -0.5);
        let initializer = HighlightInitializer::from_parts(
            InitializerConfig::default(),
            FeatureSet::Full,
            scaler,
            lr,
            24.0,
        );
        let clf = TypeClassifier::train(&[
            (
                PlayPositionFeatures {
                    after: 9.0,
                    before: 0.0,
                    across: 1.0,
                },
                DotType::TypeII,
            ),
            (
                PlayPositionFeatures {
                    after: 2.0,
                    before: 4.0,
                    across: 4.0,
                },
                DotType::TypeI,
            ),
            (
                PlayPositionFeatures {
                    after: 8.0,
                    before: 1.0,
                    across: 1.0,
                },
                DotType::TypeII,
            ),
            (
                PlayPositionFeatures {
                    after: 3.0,
                    before: 5.0,
                    across: 2.0,
                },
                DotType::TypeI,
            ),
        ]);
        let extractor = HighlightExtractor::new(clf, ExtractorConfig::default());
        ModelBundle {
            initializer,
            extractor,
            provenance: "unit-test".to_owned(),
        }
    }

    #[test]
    fn json_round_trip() {
        let b = bundle();
        let js = b.to_json().unwrap();
        let back = ModelBundle::from_json(&js).unwrap();
        assert_eq!(back.provenance, "unit-test");
        assert_eq!(back.initializer.adjustment(), 24.0);
        assert_eq!(back.extractor.config(), &ExtractorConfig::default());
    }

    #[test]
    fn corrupt_json_is_an_error() {
        assert!(ModelBundle::from_json("{not json").is_err());
        assert!(ModelBundle::from_json("{}").is_err());
    }
}
