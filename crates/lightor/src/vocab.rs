//! Shared interned vocabulary for tokenize-once corpus construction.
//!
//! [`crate::corpus::TokenizedChat`]'s original build interns each
//! video's messages into a *per-corpus* [`lightor_mlcore::text::Vocab`]:
//! correct, but every cold rescore re-tokenizes the raw text from
//! scratch and every video pays the full hashing cost even for terms
//! the process has seen thousands of times. This module provides the
//! process-wide alternative:
//!
//! * [`GlobalVocab`] — an append-only, `Arc`-shareable term table with
//!   **stable u32 ids**: once a term is interned its id never changes
//!   for the lifetime of the process. Corpus builds intern through a
//!   [`VocabSession`] (one write-lock acquisition per corpus, not per
//!   token) and receive a [`VocabDelta`] naming exactly the terms that
//!   corpus added — the unit persisted next to tokenized columns so a
//!   restarted process can re-warm its vocabulary.
//! * [`FragmentTable`] — pre-tokenized fragments for generated chat:
//!   each fragment of a `CompiledLexicon`-style blob maps to its global
//!   token ids and whitespace word count once, so a simulated corpus
//!   tokenizes by table lookup instead of re-splitting message text.
//!
//! Scoring stays bit-exact under the id change: every feature
//! aggregate is accumulated in integers over term *counts* (see
//! [`lightor_mlcore::kmeans::LooWindow`]), which makes the features
//! invariant under any injective term-id remapping as long as the
//! dense count array covers the largest id. The proptests in this
//! module pin that equivalence on arbitrary unicode chat.
//!
//! Persistence note: a [`VocabDelta`] records terms in *id order*, so
//! replaying deltas in write order reconstructs the exact table. After
//! a crash-and-restart the store may replay deltas in a different
//! order than the original process interned them (videos are touched
//! on demand); ids may therefore differ across process lifetimes.
//! That is by design — persisted token ids are self-consistent within
//! their record (scoring needs only intra-corpus consistency plus
//! `dim`), and absorbing deltas is purely a warm-up for *future*
//! builds.

use lightor_mlcore::text::Tokenizer;
use std::collections::HashMap;
use std::sync::{RwLock, RwLockWriteGuard};

/// A process-wide append-only term table with stable u32 ids.
///
/// Cheap to share (`Arc<GlobalVocab>`); readers and concurrent corpus
/// builds synchronize on an internal [`RwLock`]. Interning goes
/// through [`GlobalVocab::session`] so a whole corpus build takes the
/// write lock once.
#[derive(Debug, Default)]
pub struct GlobalVocab {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    index: HashMap<String, u32>,
    /// Term text by id; `terms[id as usize]` is the interned spelling.
    terms: Vec<String>,
}

impl Inner {
    fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.index.get(token) {
            return id;
        }
        let id = self.terms.len() as u32;
        self.terms.push(token.to_owned());
        self.index.insert(token.to_owned(), id);
        id
    }
}

impl GlobalVocab {
    /// An empty vocabulary.
    pub fn new() -> Self {
        GlobalVocab::default()
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.inner.read().expect("vocab lock poisoned").terms.len()
    }

    /// True when no terms are interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up a term's id without interning.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.inner
            .read()
            .expect("vocab lock poisoned")
            .index
            .get(token)
            .copied()
    }

    /// The interned spelling of `id`, if assigned.
    pub fn term(&self, id: u32) -> Option<String> {
        self.inner
            .read()
            .expect("vocab lock poisoned")
            .terms
            .get(id as usize)
            .cloned()
    }

    /// Begin an interning session: takes the write lock once and holds
    /// it until the session is dropped or [`VocabSession::finish`]ed.
    /// Use one session per corpus build.
    pub fn session(&self) -> VocabSession<'_> {
        let guard = self.inner.write().expect("vocab lock poisoned");
        let base = guard.terms.len() as u32;
        VocabSession { guard, base }
    }

    /// Intern every term of a persisted [`VocabDelta`] (or any term
    /// list), warming the table for future builds. Returns how many
    /// terms were actually new. Ids are assigned in current-table
    /// order and may differ from the ids the delta's writer saw — see
    /// the module docs for why that is sound.
    pub fn absorb<S: AsRef<str>>(&self, terms: &[S]) -> usize {
        let mut inner = self.inner.write().expect("vocab lock poisoned");
        let before = inner.terms.len();
        for t in terms {
            inner.intern(t.as_ref());
        }
        inner.terms.len() - before
    }
}

/// A single-writer interning window over a [`GlobalVocab`].
///
/// Holds the vocabulary write lock for its lifetime; keep sessions
/// short (one corpus build) and never hold one across another lock
/// acquisition.
pub struct VocabSession<'a> {
    guard: RwLockWriteGuard<'a, Inner>,
    /// Table length when the session opened — the delta base.
    base: u32,
}

impl VocabSession<'_> {
    /// Get or assign the id of `token`.
    pub fn intern(&mut self, token: &str) -> u32 {
        self.guard.intern(token)
    }

    /// Tokenize `text` with the standard [`Tokenizer`] and append the
    /// (unsorted, possibly repeated) term ids to `out`.
    pub fn tokenize_into(&mut self, text: &str, out: &mut Vec<u32>) {
        let guard = &mut *self.guard;
        Tokenizer.for_each_token(text, |tok| {
            out.push(guard.intern(tok));
        });
    }

    /// Current table length (terms interned so far, globally).
    pub fn len(&self) -> usize {
        self.guard.terms.len()
    }

    /// True when no term has ever been interned into the table.
    pub fn is_empty(&self) -> bool {
        self.guard.terms.is_empty()
    }

    /// Close the session, returning the terms it added (in id order)
    /// as a persistable [`VocabDelta`].
    pub fn finish(self) -> VocabDelta {
        VocabDelta {
            base: self.base,
            terms: self.guard.terms[self.base as usize..].to_vec(),
        }
    }
}

/// The terms one interning session appended to a [`GlobalVocab`]:
/// `terms[i]` received id `base + i`. This is the unit persisted in a
/// v3 tokenized record so a fresh process can re-warm its vocabulary
/// from the store.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VocabDelta {
    /// First id this session assigned.
    pub base: u32,
    /// Newly interned terms, in id order.
    pub terms: Vec<String>,
}

impl VocabDelta {
    /// True when the session interned nothing new.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// Pre-tokenized fragments: each fragment's global token ids and
/// whitespace word count, computed once per (lexicon, vocab) pair.
///
/// Generated chat composes messages by concatenating fragments from an
/// interned blob (each fragment ends the message or is followed by
/// more fragments; the generator separates them so tokens never merge
/// across a fragment boundary). Given the fragment-id runs recorded at
/// generation time, a whole corpus tokenizes by table lookup.
#[derive(Clone, Debug, Default)]
pub struct FragmentTable {
    /// Flat token ids, fragment-major (unsorted, repeats kept).
    ids: Vec<u32>,
    /// Cumulative end of each fragment's ids (length = fragment count).
    ends: Vec<u32>,
    /// Whitespace word count of each fragment's text.
    word_counts: Vec<u32>,
}

impl FragmentTable {
    /// Tokenize every fragment against `vocab` (one session). Fragment
    /// ids are positional: fragment `i` of the iterator is id `i`.
    pub fn build<'a>(fragments: impl IntoIterator<Item = &'a str>, vocab: &GlobalVocab) -> Self {
        let mut sess = vocab.session();
        let mut table = FragmentTable::default();
        for text in fragments {
            sess.tokenize_into(text, &mut table.ids);
            table.ends.push(table.ids.len() as u32);
            table
                .word_counts
                .push(text.split_whitespace().count() as u32);
        }
        table
    }

    /// Number of fragments.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// True when the table holds no fragments.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Global token ids of fragment `frag` (unsorted, repeats kept).
    pub fn tokens(&self, frag: u32) -> &[u32] {
        let i = frag as usize;
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        &self.ids[start..self.ends[i] as usize]
    }

    /// Whitespace word count of fragment `frag`.
    pub fn word_count(&self, frag: u32) -> u32 {
        self.word_counts[frag as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::TokenizedChat;
    use lightor_types::{ChatLog, ChatMessage, UserId};
    use proptest::prelude::*;

    #[test]
    fn stable_ids_across_sessions() {
        let v = GlobalVocab::new();
        let mut s = v.session();
        let kill = s.intern("kill");
        let gg = s.intern("gg");
        let d1 = s.finish();
        assert_eq!(d1.base, 0);
        assert_eq!(d1.terms, vec!["kill".to_string(), "gg".to_string()]);

        let mut s = v.session();
        assert_eq!(s.intern("kill"), kill);
        let wow = s.intern("wow");
        let d2 = s.finish();
        assert_eq!(d2.base, 2);
        assert_eq!(d2.terms, vec!["wow".to_string()]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.get("gg"), Some(gg));
        assert_eq!(v.term(wow).as_deref(), Some("wow"));
    }

    #[test]
    fn absorb_warms_without_duplicates() {
        let v = GlobalVocab::new();
        assert_eq!(v.absorb(&["a", "b", "a"]), 2);
        assert_eq!(v.absorb(&["b", "c"]), 1);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn fragment_table_tokenizes_like_tokenizer() {
        let v = GlobalVocab::new();
        let t = FragmentTable::build(["gg wp ", "what a PLAY!! ", ""], &v);
        assert_eq!(t.len(), 3);
        assert_eq!(t.tokens(0).len(), 2);
        assert_eq!(t.word_count(0), 2);
        assert_eq!(t.tokens(1).len(), 3);
        assert_eq!(t.word_count(1), 3);
        assert!(t.tokens(2).is_empty());
        assert_eq!(t.word_count(2), 0);
        // "gg" and "wp" interned before "what"/"a"/"play".
        assert_eq!(v.get("gg"), Some(0));
        assert_eq!(v.get("play"), Some(4));
    }

    fn chat(messages: &[(f64, &str)]) -> ChatLog {
        ChatLog::new(
            messages
                .iter()
                .map(|&(t, s)| ChatMessage::new(t, UserId(1), s))
                .collect(),
        )
    }

    #[test]
    fn global_build_on_fresh_vocab_equals_oracle_exactly() {
        let c = chat(&[
            (1.0, "gg wp"),
            (2.5, "what a play"),
            (2.5, ""),
            (9.0, "消息 ✓ pog"),
        ]);
        let view = lightor_types::ChatLogView::from_chat_log(&c);
        let oracle = TokenizedChat::build(&c);
        let vocab = GlobalVocab::new();
        let (global, delta) = TokenizedChat::build_from_view_global(&view, &vocab);
        // A fresh vocab assigns ids in the same first-seen order as the
        // per-corpus build, so every column matches bit-for-bit.
        assert_eq!(global.token_ids(), oracle.token_ids());
        assert_eq!(global.token_ends(), oracle.token_ends());
        assert_eq!(global.word_counts(), oracle.word_counts());
        assert_eq!(global.timestamps(), oracle.timestamps());
        assert_eq!(global.dim(), oracle.dim());
        assert_eq!(delta.base, 0);
        assert_eq!(delta.terms.len(), vocab.len());
    }

    #[test]
    fn frag_run_build_equals_global_view_build_exactly() {
        // Generated chat tokenized by fragment-table lookup must equal
        // the view-based global build column for column. Ordering
        // matters: the FragmentTable is built FIRST, so the view build
        // finds every term already interned and assigns identical ids.
        use lightor_chatsim::{ChatGenerator, CompiledLexicon, GameProfile, VideoGenerator};
        use lightor_simkit::SeedTree;
        use lightor_types::{ChannelId, VideoId};
        use std::sync::Arc;

        let lex = CompiledLexicon::shared();
        let profile = Arc::new(GameProfile::dota2());
        let vg = VideoGenerator::new(profile.clone());
        let cg = ChatGenerator::new(profile);
        let root = SeedTree::new(42);
        let spec = {
            let mut vrng = root.child("video").rng();
            vg.generate(VideoId(0), ChannelId(0), &mut vrng)
        };
        let (sim, runs) = cg.generate_tokenized(spec, &mut root.child("chat").rng());
        let view = &sim.video.chat;

        let vocab = GlobalVocab::new();
        let table = FragmentTable::build(lex.fragment_texts(), &vocab);
        assert_eq!(table.len(), lex.fragment_count());

        let from_table = TokenizedChat::build_from_frag_runs(view, &runs, &table);
        let (from_view, delta) = TokenizedChat::build_from_view_global(view, &vocab);
        // Every message term comes from a fragment, so the view build
        // interned nothing new...
        assert!(delta.is_empty(), "unexpected new terms: {:?}", delta.terms);
        // ...and the corpora agree bit-for-bit.
        assert_eq!(from_table.token_ids(), from_view.token_ids());
        assert_eq!(from_table.token_ends(), from_view.token_ends());
        assert_eq!(from_table.word_counts(), from_view.word_counts());
        assert_eq!(from_table.timestamps(), from_view.timestamps());
        assert_eq!(from_table.dim(), from_view.dim());
    }

    proptest! {
        /// The tentpole pin: interned-vocab tokenization scores
        /// bit-exactly like the word-split per-corpus oracle on
        /// arbitrary unicode chat — even when the global vocab is
        /// pre-warmed so the term ids differ wildly from corpus-local
        /// ids.
        #[test]
        fn interned_features_bit_equal_oracle_on_unicode(
            texts in proptest::collection::vec("\\PC{0,24}", 0..40),
            warm in proptest::collection::vec("[a-z]{1,6}", 0..30),
        ) {
            let msgs: Vec<(f64, &str)> =
                texts.iter().enumerate().map(|(i, s)| (i as f64, s.as_str())).collect();
            let c = chat(&msgs);
            let view = lightor_types::ChatLogView::from_chat_log(&c);
            let oracle = TokenizedChat::build(&c);

            let vocab = GlobalVocab::new();
            let warm_refs: Vec<&str> = warm.iter().map(|s| s.as_str()).collect();
            vocab.absorb(&warm_refs);
            let (global, delta) = TokenizedChat::build_from_view_global(&view, &vocab);

            prop_assert_eq!(global.len(), oracle.len());
            prop_assert_eq!(global.word_counts(), oracle.word_counts());
            // Same per-message distinct-token counts under remapping.
            for i in 0..global.len() {
                prop_assert_eq!(global.vector(i).len(), oracle.vector(i).len());
            }
            // Every delta term really is new relative to the warm set.
            for t in &delta.terms {
                prop_assert!(!warm_refs.contains(&t.as_str()));
            }

            // Feature pin: identical windows, bit-identical features
            // and peaks despite the id remap.
            let windows = crate::window::sliding_windows(
                &c, lightor_types::Sec(40.0), 8.0, 0.5);
            let a = oracle.featurize_windows_chunked(&windows, 5.0, 1);
            let b = global.featurize_windows_chunked(&windows, 5.0, 1);
            prop_assert_eq!(a, b);
        }
    }
}
