//! The adjustment stage: learning the reaction-delay constant `c`
//! (paper Section IV-C2).
//!
//! Viewers comment on a highlight only after seeing it, so the chat peak
//! trails the highlight start. The paper models the relationship as
//! `time_start = time_peak − c` and learns the constant by maximizing the
//! number of *good red dots* over the training highlights:
//!
//! ```text
//! argmax_c Σ_i reward(time_peak_i − c, highlight_i)
//! ```
//!
//! where `reward` is 1 iff the dot satisfies the good-dot rule
//! (`s − tol ≤ r ≤ e`). We grid-search integer `c`, exactly the argmax in
//! the paper; ties resolve to the smallest `c` (least aggressive shift).

use lightor_types::{Highlight, Sec};

/// One training pair: a detected chat peak and its labelled highlight.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdjustExample {
    /// Message-count peak position inside the highlight's chat window.
    pub peak: Sec,
    /// The labelled highlight the peak reacts to.
    pub highlight: Highlight,
}

/// The paper's 0/1 reward: is `dot` a good red dot for `h`?
pub fn reward(dot: Sec, h: &Highlight, tol: Sec) -> f64 {
    if h.accepts_dot(dot, tol) {
        1.0
    } else {
        0.0
    }
}

/// Learn the optimal constant `c` over integer candidates `0..=c_max`.
///
/// Returns `(c, total_reward)`. The 0/1 reward is flat over an interval
/// of optimal `c` values; we take the *median* of the maximizing set —
/// the max-margin choice, so small shifts in test-video delay (or a
/// different game's highlight lengths) do not immediately push dots out
/// of the good region. With no examples the fallback is `c = 0`.
pub fn learn_adjustment(examples: &[AdjustExample], tol: Sec, c_max: f64) -> (f64, f64) {
    if examples.is_empty() {
        return (0.0, 0.0);
    }
    let mut best_reward = -1.0;
    let mut best_cs: Vec<f64> = vec![0.0];
    let mut c = 0.0;
    while c <= c_max {
        let total: f64 = examples
            .iter()
            .map(|ex| reward(ex.peak - Sec(c), &ex.highlight, tol))
            .sum();
        if total > best_reward {
            best_reward = total;
            best_cs = vec![c];
        } else if total == best_reward {
            best_cs.push(c);
        }
        c += 1.0;
    }
    (best_cs[best_cs.len() / 2], best_reward.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ex(peak: f64, start: f64, end: f64) -> AdjustExample {
        AdjustExample {
            peak: Sec(peak),
            highlight: Highlight::from_secs(start, end),
        }
    }

    #[test]
    fn reward_matches_good_dot_rule() {
        let h = Highlight::from_secs(100.0, 120.0);
        assert_eq!(reward(Sec(105.0), &h, Sec(10.0)), 1.0);
        assert_eq!(reward(Sec(90.0), &h, Sec(10.0)), 1.0);
        assert_eq!(reward(Sec(89.0), &h, Sec(10.0)), 0.0);
        assert_eq!(reward(Sec(121.0), &h, Sec(10.0)), 0.0);
    }

    #[test]
    fn recovers_constant_delay() {
        // Peaks consistently 24 s after highlight starts; highlights 15 s
        // long, so the raw peak is *after* the end and unrewarded.
        let examples: Vec<AdjustExample> = (0..10)
            .map(|i| {
                let s = 100.0 + i as f64 * 300.0;
                ex(s + 24.0, s, s + 15.0)
            })
            .collect();
        let (c, r) = learn_adjustment(&examples, Sec(10.0), 60.0);
        assert_eq!(r, 10.0);
        // Any c in [9, 34] is perfect; the max-margin pick is the middle.
        assert_eq!(c, 22.0);
    }

    #[test]
    fn noisy_delays_still_find_consensus() {
        // Delays 20..28 s with 10 s tolerance: a mid-range c satisfies all.
        let examples: Vec<AdjustExample> = (0..9)
            .map(|i| {
                let s = 200.0 * (i + 1) as f64;
                ex(s + 20.0 + i as f64, s, s + 12.0)
            })
            .collect();
        let (c, r) = learn_adjustment(&examples, Sec(10.0), 60.0);
        assert_eq!(r, 9.0, "c={c} should satisfy all examples");
        assert!((16.0..=30.0).contains(&c), "c={c}");
    }

    #[test]
    fn empty_examples_fall_back() {
        let (c, r) = learn_adjustment(&[], Sec(10.0), 60.0);
        assert_eq!((c, r), (0.0, 0.0));
    }

    #[test]
    fn outlier_example_is_outvoted() {
        let mut examples: Vec<AdjustExample> = (0..8)
            .map(|i| {
                let s = 300.0 * (i + 1) as f64;
                ex(s + 25.0, s, s + 10.0)
            })
            .collect();
        // One pathological peak long before its highlight.
        examples.push(ex(50.0, 500.0, 510.0));
        let (c, r) = learn_adjustment(&examples, Sec(10.0), 60.0);
        assert!((15.0..=35.0).contains(&c), "c={c}");
        assert_eq!(r, 8.0);
    }

    proptest! {
        #[test]
        fn learned_c_is_in_grid(
            delays in proptest::collection::vec(5.0..40.0f64, 1..12),
        ) {
            let examples: Vec<AdjustExample> = delays
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    let s = 200.0 * (i + 1) as f64;
                    ex(s + d, s, s + 15.0)
                })
                .collect();
            let (c, r) = learn_adjustment(&examples, Sec(10.0), 60.0);
            prop_assert!((0.0..=60.0).contains(&c));
            prop_assert!(r >= 1.0, "at least one example satisfiable, got {r}");
        }
    }
}
