//! Play filtering (paper Section V-C, "Filtering").
//!
//! Four rules, applied in order:
//!
//! 1. **Scope** — only plays overlapping `[dot − Δ, dot + Δ]` belong to
//!    this red dot at all (Section V-A).
//! 2. **Distance** — a play whose interval is farther than
//!    `max_dot_distance` from the dot "typically does not cover the
//!    highlight".
//! 3. **Length** — too-short plays are interest checks; too-long plays are
//!    whole-video watching.
//! 4. **Graph outliers** — build the play-overlap graph, find the node
//!    with the largest degree, keep it and its neighbours; everything
//!    else is an outlier.

use crate::config::ExtractorConfig;
use lightor_types::{Play, PlaySet, Sec, TimeRange};

/// Apply all four filter rules; the returned set is a subset of `plays`.
pub fn filter_plays(plays: &PlaySet, dot: Sec, cfg: &ExtractorConfig) -> PlaySet {
    let scope = TimeRange::new(
        Sec((dot.0 - cfg.neighborhood).max(0.0)),
        Sec(dot.0 + cfg.neighborhood),
    );
    let candidates: Vec<Play> = plays
        .iter()
        .filter(|p| p.range.overlaps(&scope))
        .filter(|p| p.range.distance_to(dot).0 <= cfg.max_dot_distance)
        .filter(|p| {
            let d = p.duration().0;
            d >= cfg.min_play_len && d <= cfg.max_play_len
        })
        .copied()
        .collect();

    PlaySet::new(remove_graph_outliers(candidates))
}

/// Keep the max-degree node of the overlap graph and its neighbours
/// (`Outliers = {v | v ≠ o and e_{v,o} ∉ E}`).
///
/// With zero or one candidate the input is returned unchanged; with
/// several disconnected cliques the largest-degree centre wins, ties
/// resolving to the earliest-starting node for determinism.
fn remove_graph_outliers(plays: Vec<Play>) -> Vec<Play> {
    let n = plays.len();
    if n <= 1 {
        return plays;
    }
    let mut degree = vec![0usize; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if plays[i].range.overlaps(&plays[j].range) {
                degree[i] += 1;
                degree[j] += 1;
            }
        }
    }
    let center = (0..n)
        .max_by(|&a, &b| {
            degree[a]
                .cmp(&degree[b])
                .then(plays[b].start().total_cmp(&plays[a].start()))
        })
        .expect("non-empty");
    plays
        .iter()
        .enumerate()
        .filter(|(i, p)| *i == center || p.range.overlaps(&plays[center].range))
        .map(|(_, p)| *p)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg() -> ExtractorConfig {
        ExtractorConfig::default()
    }

    fn plays(ranges: &[(f64, f64)]) -> PlaySet {
        ranges.iter().map(|&(s, e)| Play::from_secs(s, e)).collect()
    }

    #[test]
    fn far_plays_are_removed() {
        let ps = plays(&[(1990.0, 2010.0), (2300.0, 2320.0)]);
        let out = filter_plays(&ps, Sec(2000.0), &cfg());
        assert_eq!(out.len(), 1);
        assert_eq!(out.plays[0].start().0, 1990.0);
    }

    #[test]
    fn short_and_long_plays_are_removed() {
        let ps = plays(&[
            (1995.0, 1998.0), // 3 s check
            (1990.0, 2010.0), // good
            (1950.0, 2100.0), // 150 s binge
            (1992.0, 2012.0), // good
        ]);
        let out = filter_plays(&ps, Sec(2000.0), &cfg());
        assert_eq!(out.len(), 2);
        assert!(out
            .iter()
            .all(|p| p.duration().0 >= 6.0 && p.duration().0 <= 75.0));
    }

    #[test]
    fn graph_outlier_is_removed() {
        // Three mutually overlapping plays around 2000 s plus one isolated
        // (but in-scope, valid-length) play at 2035 s.
        let ps = plays(&[
            (1990.0, 2010.0),
            (1992.0, 2012.0),
            (1995.0, 2015.0),
            (2030.0, 2042.0),
        ]);
        let out = filter_plays(&ps, Sec(2000.0), &cfg());
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|p| p.start().0 < 2020.0));
    }

    #[test]
    fn single_play_survives() {
        let ps = plays(&[(1990.0, 2010.0)]);
        let out = filter_plays(&ps, Sec(2000.0), &cfg());
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn empty_input_is_empty() {
        let out = filter_plays(&PlaySet::default(), Sec(100.0), &cfg());
        assert!(out.is_empty());
    }

    #[test]
    fn ties_resolve_deterministically() {
        // Two disjoint pairs: both centres have degree 1; earliest-start
        // wins.
        let ps = plays(&[
            (1980.0, 1995.0),
            (1985.0, 2000.0),
            (2010.0, 2025.0),
            (2015.0, 2030.0),
        ]);
        let out = filter_plays(&ps, Sec(2000.0), &cfg());
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|p| p.start().0 <= 1985.0));
    }

    #[test]
    fn scope_boundary_is_inclusive_on_overlap() {
        // Play overlapping the Δ boundary survives scope but fails the
        // distance rule if its interval is > max_dot_distance away.
        let ps = plays(&[(2055.0, 2070.0)]);
        let out = filter_plays(&ps, Sec(2000.0), &cfg());
        assert!(out.is_empty(), "distance rule should remove it");
        let ps2 = plays(&[(2040.0, 2055.0)]);
        let out2 = filter_plays(&ps2, Sec(2000.0), &cfg());
        assert_eq!(out2.len(), 1);
    }

    proptest! {
        #[test]
        fn filter_is_a_subset_and_idempotent(
            ranges in proptest::collection::vec((1900.0..2100.0f64, 1.0..120.0f64), 0..24),
        ) {
            let ps: PlaySet = ranges
                .iter()
                .map(|&(s, len)| Play::from_secs(s, s + len))
                .collect();
            let dot = Sec(2000.0);
            let once = filter_plays(&ps, dot, &cfg());
            prop_assert!(once.len() <= ps.len());
            for p in once.iter() {
                prop_assert!(ps.iter().any(|q| q == p));
            }
            let twice = filter_plays(&once, dot, &cfg());
            prop_assert_eq!(&once, &twice);
        }
    }
}
