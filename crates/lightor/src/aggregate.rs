//! Boundary aggregation (paper Section V-C, "Aggregation" and
//! Algorithm 2 lines 6–14).
//!
//! * **Type II** — the plays mostly cover the highlight, so after dropping
//!   plays that end before the red dot, the highlight boundary is the
//!   per-endpoint *median* (robust to the remaining stragglers).
//! * **Type I** — the plays are hunting noise; no boundary can be trusted.
//!   Move the dot backward by `m` and collect fresh data.

use lightor_simkit::median;
use lightor_types::{PlaySet, Sec};

/// Type II aggregation: median start/end of the plays that do not end
/// before the dot. `None` when no play survives the pre-filter.
pub fn aggregate_type2(plays: &PlaySet, dot: Sec) -> Option<(Sec, Sec)> {
    let survivors: Vec<_> = plays.iter().filter(|p| p.end().0 >= dot.0).collect();
    if survivors.is_empty() {
        return None;
    }
    let starts: Vec<f64> = survivors.iter().map(|p| p.start().0).collect();
    let ends: Vec<f64> = survivors.iter().map(|p| p.end().0).collect();
    let s = median(&starts).expect("non-empty");
    let e = median(&ends).expect("non-empty");
    Some((Sec(s), Sec(e.max(s))))
}

/// Type I aggregation: move the dot backward by `m` (clamped at 0).
pub fn aggregate_type1(dot: Sec, move_back: f64) -> Sec {
    Sec((dot.0 - move_back).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_types::Play;
    use proptest::prelude::*;

    fn ps(ranges: &[(f64, f64)]) -> PlaySet {
        ranges.iter().map(|&(s, e)| Play::from_secs(s, e)).collect()
    }

    #[test]
    fn medians_of_surviving_plays() {
        let plays = ps(&[
            (1995.0, 2018.0),
            (1997.0, 2020.0),
            (1999.0, 2022.0),
            (1950.0, 1980.0), // ends before dot: dropped
        ]);
        let (s, e) = aggregate_type2(&plays, Sec(1990.0)).unwrap();
        assert_eq!(s.0, 1997.0);
        assert_eq!(e.0, 2020.0);
    }

    #[test]
    fn all_dropped_yields_none() {
        let plays = ps(&[(1900.0, 1950.0), (1910.0, 1960.0)]);
        assert_eq!(aggregate_type2(&plays, Sec(1990.0)), None);
        assert_eq!(aggregate_type2(&PlaySet::default(), Sec(0.0)), None);
    }

    #[test]
    fn median_resists_one_outlier() {
        let plays = ps(&[
            (1995.0, 2018.0),
            (1996.0, 2019.0),
            (1997.0, 2020.0),
            (1998.0, 2021.0),
            (2030.0, 2060.0), // outlier that survived filtering
        ]);
        let (s, _) = aggregate_type2(&plays, Sec(1990.0)).unwrap();
        assert_eq!(s.0, 1997.0, "median should ignore the outlier");
    }

    #[test]
    fn type1_moves_backward_and_clamps() {
        assert_eq!(aggregate_type1(Sec(100.0), 20.0).0, 80.0);
        assert_eq!(aggregate_type1(Sec(10.0), 20.0).0, 0.0);
    }

    #[test]
    fn degenerate_end_is_clamped_to_start() {
        // A single surviving play with end >= dot but end < its own start
        // cannot happen (Play normalizes), but mixed medians can produce
        // e < s when starts and ends come from different plays.
        let plays = ps(&[(1995.0, 1996.0), (1800.0, 2100.0), (1994.0, 1995.5)]);
        let (s, e) = aggregate_type2(&plays, Sec(1990.0)).unwrap();
        assert!(e.0 >= s.0);
    }

    proptest! {
        #[test]
        fn boundary_is_within_play_envelope(
            ranges in proptest::collection::vec((1900.0..2100.0f64, 5.0..60.0f64), 1..16),
        ) {
            let plays: PlaySet = ranges
                .iter()
                .map(|&(s, len)| Play::from_secs(s, s + len))
                .collect();
            if let Some((s, e)) = aggregate_type2(&plays, Sec(1950.0)) {
                let min_s = plays.iter().map(|p| p.start().0).fold(f64::INFINITY, f64::min);
                let max_e = plays.iter().map(|p| p.end().0).fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(s.0 >= min_s - 1e-9 && e.0 <= max_e + 1e-9);
                prop_assert!(s.0 <= e.0);
            }
        }
    }
}
