//! Type I / Type II red-dot classification (paper Section V-C,
//! "Classification", Figure 4).
//!
//! The *unknown* geometry — is the dot before or after the end of its
//! highlight? — correlates strongly with the *observable* positions of the
//! filtered plays relative to the dot:
//!
//! * `# plays after` — start at or after the dot,
//! * `# plays before` — end before the dot,
//! * `# plays across` — start before and end at/after the dot.
//!
//! Type I dots (dot past the highlight) provoke hunting, so plays pile up
//! before/across the dot; Type II dots see plays flowing forward from the
//! dot. A logistic regression on the three (normalized) counts separates
//! the two at ≈80% accuracy in the paper.

use lightor_mlcore::{LogisticRegression, MinMaxScaler, TrainConfig};
use lightor_types::{PlaySet, Sec};
use serde::{Deserialize, Serialize};

/// The relative position of a red dot and its highlight's end.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DotType {
    /// The dot is after the end of the highlight (viewers must hunt
    /// backward).
    TypeI,
    /// The dot is at/before the end of the highlight (viewers watch
    /// through).
    TypeII,
}

/// The three play-position features of Figure 4.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PlayPositionFeatures {
    /// Plays starting at or after the red dot.
    pub after: f64,
    /// Plays ending before the red dot.
    pub before: f64,
    /// Plays straddling the red dot.
    pub across: f64,
}

impl PlayPositionFeatures {
    /// Feature vector: *fractions* of the play set, so the classifier
    /// generalizes across response counts.
    pub fn to_vec(self) -> Vec<f64> {
        let total = (self.after + self.before + self.across).max(1.0);
        vec![self.after / total, self.before / total, self.across / total]
    }
}

/// Count the three features over a (filtered) play set.
pub fn play_position_features(plays: &PlaySet, dot: Sec) -> PlayPositionFeatures {
    let mut f = PlayPositionFeatures::default();
    for p in plays.iter() {
        if p.start().0 >= dot.0 {
            f.after += 1.0;
        } else if p.end().0 < dot.0 {
            f.before += 1.0;
        } else {
            f.across += 1.0;
        }
    }
    f
}

/// The trained Type I/II classifier.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TypeClassifier {
    scaler: MinMaxScaler,
    model: LogisticRegression,
}

impl TypeClassifier {
    /// Train from labelled examples `(features, type)`. Panics unless both
    /// types are represented.
    pub fn train(examples: &[(PlayPositionFeatures, DotType)]) -> Self {
        assert!(!examples.is_empty(), "no training examples");
        let rows: Vec<Vec<f64>> = examples.iter().map(|(f, _)| f.to_vec()).collect();
        let labels: Vec<bool> = examples.iter().map(|(_, t)| *t == DotType::TypeI).collect();
        let scaler = MinMaxScaler::fit(&rows);
        let scaled = scaler.transform_all(&rows);
        let model = LogisticRegression::fit(&scaled, &labels, &TrainConfig::default());
        TypeClassifier { scaler, model }
    }

    /// Classify a dot from its play-position features.
    pub fn classify(&self, f: &PlayPositionFeatures) -> DotType {
        let row = self.scaler.transform(&f.to_vec());
        if self.model.predict(&row) {
            DotType::TypeI
        } else {
            DotType::TypeII
        }
    }

    /// P(Type I) — for diagnostics.
    pub fn prob_type1(&self, f: &PlayPositionFeatures) -> f64 {
        self.model
            .predict_proba(&self.scaler.transform(&f.to_vec()))
    }

    /// A rule-based fallback mirroring Figure 4's logic, used before any
    /// labelled interaction data exists (cold-start deployments): if at
    /// least 30% of plays sit before/across the dot, call it Type I.
    pub fn heuristic(f: &PlayPositionFeatures) -> DotType {
        let total = f.after + f.before + f.across;
        if total == 0.0 {
            return DotType::TypeII;
        }
        if (f.before + f.across) / total >= 0.3 {
            DotType::TypeI
        } else {
            DotType::TypeII
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_types::Play;

    fn features(after: f64, before: f64, across: f64) -> PlayPositionFeatures {
        PlayPositionFeatures {
            after,
            before,
            across,
        }
    }

    #[test]
    fn counting_matches_figure_4() {
        // Figure 4 Type II example: 3 plays all starting at/after the dot.
        let dot = Sec(100.0);
        let ps: PlaySet = vec![
            Play::from_secs(100.0, 120.0),
            Play::from_secs(102.0, 118.0),
            Play::from_secs(105.0, 125.0),
        ]
        .into_iter()
        .collect();
        let f = play_position_features(&ps, dot);
        assert_eq!((f.after, f.before, f.across), (3.0, 0.0, 0.0));

        // Figure 4 Type I example: one of each.
        let ps2: PlaySet = vec![
            Play::from_secs(101.0, 110.0), // after
            Play::from_secs(80.0, 95.0),   // before
            Play::from_secs(90.0, 105.0),  // across
        ]
        .into_iter()
        .collect();
        let f2 = play_position_features(&ps2, dot);
        assert_eq!((f2.after, f2.before, f2.across), (1.0, 1.0, 1.0));
    }

    #[test]
    fn fractions_normalize() {
        let v = features(2.0, 1.0, 1.0).to_vec();
        assert_eq!(v, vec![0.5, 0.25, 0.25]);
        // Zero plays: degenerate but finite.
        let z = features(0.0, 0.0, 0.0).to_vec();
        assert_eq!(z, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn classifier_learns_the_separation() {
        // Synthetic but structured like the real data: Type II mostly
        // after-dominant, Type I mixed with heavy before/across.
        let mut examples = Vec::new();
        for i in 0..30 {
            let jitter = (i % 5) as f64;
            examples.push((features(8.0 + jitter, 0.0, 1.0), DotType::TypeII));
            examples.push((features(3.0, 3.0 + jitter, 3.0), DotType::TypeI));
        }
        let clf = TypeClassifier::train(&examples);
        assert_eq!(clf.classify(&features(9.0, 0.0, 1.0)), DotType::TypeII);
        assert_eq!(clf.classify(&features(2.0, 4.0, 4.0)), DotType::TypeI);
        let p_type1 = clf.prob_type1(&features(2.0, 5.0, 4.0));
        assert!(p_type1 > 0.5);
    }

    #[test]
    fn heuristic_matches_intuition() {
        assert_eq!(
            TypeClassifier::heuristic(&features(9.0, 0.0, 1.0)),
            DotType::TypeII
        );
        assert_eq!(
            TypeClassifier::heuristic(&features(3.0, 3.0, 3.0)),
            DotType::TypeI
        );
        assert_eq!(
            TypeClassifier::heuristic(&features(0.0, 0.0, 0.0)),
            DotType::TypeII
        );
    }

    #[test]
    fn serde_round_trip() {
        let examples = vec![
            (features(9.0, 0.0, 1.0), DotType::TypeII),
            (features(2.0, 4.0, 4.0), DotType::TypeI),
            (features(8.0, 1.0, 1.0), DotType::TypeII),
            (features(3.0, 5.0, 2.0), DotType::TypeI),
        ];
        let clf = TypeClassifier::train(&examples);
        let js = serde_json::to_string(&clf).unwrap();
        let back: TypeClassifier = serde_json::from_str(&js).unwrap();
        let probe = features(5.0, 2.0, 2.0);
        assert_eq!(clf.classify(&probe), back.classify(&probe));
    }
}
