//! The Highlight Initializer (paper Section IV, Algorithm 1).
//!
//! Training fits three pieces on a handful of labelled videos:
//!
//! 1. a [`MinMaxScaler`] over the window features,
//! 2. a [`LogisticRegression`] scoring "is this window talking about a
//!    highlight?",
//! 3. the adjustment constant `c` mapping a window's message peak to a red
//!    dot (`dot = peak − c`).
//!
//! Prediction (Algorithm 1) scores every window of an unseen video, keeps
//! the top-k subject to the δ separation rule, and emits adjusted red dots.

use crate::adjust::{learn_adjustment, AdjustExample};
use crate::config::InitializerConfig;
use crate::features::{FeatureSet, WindowFeatures};
use crate::window::sliding_windows;
use lightor_mlcore::{LogisticRegression, MinMaxScaler, TrainConfig};
use lightor_simkit::Histogram;
use lightor_types::{ChatLog, Highlight, RedDot, Sec, TimeRange};
use serde::{Deserialize, Serialize};

/// One labelled training video.
///
/// `label_ranges` are the chat regions a human labeller would mark as
/// "viewers are talking about highlight *i*" — index-aligned with
/// `highlights`. (The simulator exports its reaction-burst windows as
/// these labels.)
#[derive(Clone, Copy, Debug)]
pub struct TrainingVideo<'a> {
    /// The video's chat replay.
    pub chat: &'a ChatLog,
    /// Total video length.
    pub duration: Sec,
    /// Ground-truth highlight clips.
    pub highlights: &'a [Highlight],
    /// Labelled chat-response region per highlight.
    pub label_ranges: &'a [TimeRange],
}

/// A scored sliding window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredWindow {
    /// The window interval.
    pub range: TimeRange,
    /// Model probability that the window discusses a highlight.
    pub prob: f64,
    /// Message-count peak position inside the window.
    pub peak: Sec,
    /// Raw (unscaled) features.
    pub features: WindowFeatures,
}

/// The trained Highlight Initializer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HighlightInitializer {
    cfg: InitializerConfig,
    feature_set: FeatureSet,
    scaler: MinMaxScaler,
    model: LogisticRegression,
    c: f64,
}

/// Locate the message-count peak inside `range` using `bin`-second bins;
/// ties resolve to the earliest bin. Falls back to the range midpoint when
/// the window is empty.
pub fn window_peak(chat: &ChatLog, range: TimeRange, bin: f64) -> Sec {
    let msgs = chat.slice(range);
    if msgs.is_empty() {
        return range.midpoint();
    }
    let mut hist = Histogram::with_bin_width(range.start.0, range.end.0, bin);
    for m in msgs {
        hist.add(m.ts.0);
    }
    match hist.peak_bin() {
        Some(i) => Sec(hist.bin_center(i).clamp(range.start.0, range.end.0)),
        None => range.midpoint(),
    }
}

impl HighlightInitializer {
    /// Train on labelled videos (the paper uses as few as **one**).
    ///
    /// Panics if no video contributes both highlight and non-highlight
    /// windows (the logistic regression needs both classes).
    pub fn train(
        videos: &[TrainingVideo<'_>],
        feature_set: FeatureSet,
        cfg: InitializerConfig,
    ) -> Self {
        assert!(!videos.is_empty(), "need at least one training video");

        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut labels: Vec<bool> = Vec::new();
        let mut adjust_examples: Vec<AdjustExample> = Vec::new();

        for v in videos {
            let windows = sliding_windows(v.chat, v.duration, cfg.window_len, cfg.stride_frac);
            for w in &windows {
                let feats = WindowFeatures::compute(v.chat.slice(*w));
                rows.push(feature_set.vectorize(&feats));
                labels.push(v.label_ranges.iter().any(|r| r.overlaps(w)));
            }

            // Adjustment examples: for each labelled highlight, the kept
            // window with the most messages among those overlapping its
            // response region — the same window prediction would surface.
            for (h, label) in v.highlights.iter().zip(v.label_ranges) {
                let best = windows
                    .iter()
                    .filter(|w| w.overlaps(label))
                    .max_by_key(|w| v.chat.count_in(**w));
                if let Some(w) = best {
                    adjust_examples.push(AdjustExample {
                        peak: window_peak(v.chat, *w, cfg.peak_bin),
                        highlight: *h,
                    });
                }
            }
        }

        let scaler = MinMaxScaler::fit(&rows);
        let scaled = scaler.transform_all(&rows);
        let model = LogisticRegression::fit(&scaled, &labels, &TrainConfig::default());
        let (c, _) = learn_adjustment(&adjust_examples, Sec(cfg.good_dot_tol), cfg.c_grid_max);

        HighlightInitializer {
            cfg,
            feature_set,
            scaler,
            model,
            c,
        }
    }

    /// Score every window of a video, most probable first.
    pub fn score_windows(&self, chat: &ChatLog, duration: Sec) -> Vec<ScoredWindow> {
        let windows =
            sliding_windows(chat, duration, self.cfg.window_len, self.cfg.stride_frac);
        let mut scored: Vec<ScoredWindow> = windows
            .into_iter()
            .map(|range| {
                let features = WindowFeatures::compute(chat.slice(range));
                let row = self.scaler.transform(&self.feature_set.vectorize(&features));
                ScoredWindow {
                    range,
                    prob: self.model.predict_proba(&row),
                    peak: window_peak(chat, range, self.cfg.peak_bin),
                    features,
                }
            })
            .collect();
        scored.sort_by(|a, b| {
            b.prob
                .total_cmp(&a.prob)
                .then(a.range.start.total_cmp(&b.range.start))
        });
        scored
    }

    /// Top-k windows subject to the δ separation rule on their (adjusted)
    /// dot positions — Algorithm 1's `Top` with "no too-close highlights".
    pub fn top_k_windows(&self, chat: &ChatLog, duration: Sec, k: usize) -> Vec<ScoredWindow> {
        let mut chosen: Vec<ScoredWindow> = Vec::with_capacity(k);
        for w in self.score_windows(chat, duration) {
            let dot = self.dot_for(&w);
            if chosen
                .iter()
                .all(|c| (self.dot_for(c).0 - dot.0).abs() > self.cfg.min_separation)
            {
                chosen.push(w);
                if chosen.len() == k {
                    break;
                }
            }
        }
        chosen
    }

    /// Algorithm 1 end-to-end: the top-k red dots of a video.
    pub fn red_dots(&self, chat: &ChatLog, duration: Sec, k: usize) -> Vec<RedDot> {
        self.top_k_windows(chat, duration, k)
            .into_iter()
            .map(|w| RedDot::new(self.dot_for(&w).max(Sec::ZERO), w.prob))
            .collect()
    }

    fn dot_for(&self, w: &ScoredWindow) -> Sec {
        w.peak - Sec(self.c)
    }

    /// The learned adjustment constant `c`.
    pub fn adjustment(&self) -> f64 {
        self.c
    }

    /// The feature set this model scores with.
    pub fn feature_set(&self) -> FeatureSet {
        self.feature_set
    }

    /// The configuration in force.
    pub fn config(&self) -> &InitializerConfig {
        &self.cfg
    }

    /// The fitted window classifier (weights inspectable in reports).
    pub fn model(&self) -> &LogisticRegression {
        &self.model
    }

    /// Construct from previously trained parts (deserialization path).
    pub fn from_parts(
        cfg: InitializerConfig,
        feature_set: FeatureSet,
        scaler: MinMaxScaler,
        model: LogisticRegression,
        c: f64,
    ) -> Self {
        HighlightInitializer {
            cfg,
            feature_set,
            scaler,
            model,
            c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_chatsim::{dota2_dataset, SimVideo};

    fn training_view(v: &SimVideo) -> TrainingVideo<'_> {
        TrainingVideo {
            chat: &v.video.chat,
            duration: v.video.meta.duration,
            highlights: &v.video.highlights,
            label_ranges: &v.response_ranges,
        }
    }

    fn trained(n_train: usize, seed: u64) -> (HighlightInitializer, lightor_chatsim::Dataset) {
        let data = dota2_dataset(n_train + 2, seed);
        let views: Vec<TrainingVideo> =
            data.videos[..n_train].iter().map(training_view).collect();
        let init =
            HighlightInitializer::train(&views, FeatureSet::Full, InitializerConfig::default());
        (init, data)
    }

    #[test]
    fn window_peak_finds_burst() {
        use lightor_types::{ChatMessage, UserId};
        let chat = ChatLog::new(
            [10.0, 11.0, 12.0, 12.5, 13.0, 20.0]
                .iter()
                .map(|&t| ChatMessage::new(t, UserId(1), "x"))
                .collect(),
        );
        let p = window_peak(&chat, TimeRange::from_secs(0.0, 25.0), 5.0);
        assert!((10.0..15.0).contains(&p.0), "peak {p}");
        // Empty window: midpoint fallback.
        let p2 = window_peak(&ChatLog::empty(), TimeRange::from_secs(0.0, 10.0), 5.0);
        assert_eq!(p2.0, 5.0);
    }

    #[test]
    fn learned_adjustment_in_paper_band() {
        // Figure 7b: c stays within 23–27 s across training sizes. Our
        // generator's delays produce a compatible band; assert the looser
        // physical range.
        let (init, _) = trained(3, 41);
        let c = init.adjustment();
        assert!((15.0..=35.0).contains(&c), "c = {c}");
    }

    #[test]
    fn top_windows_are_mostly_highlight_windows() {
        let (init, data) = trained(3, 42);
        let test = &data.videos[3];
        let top = init.top_k_windows(&test.video.chat, test.video.meta.duration, 5);
        assert_eq!(top.len(), 5);
        let hits = top
            .iter()
            .filter(|w| test.window_is_highlight(w.range))
            .count();
        assert!(hits >= 3, "only {hits}/5 top windows are highlights");
    }

    #[test]
    fn red_dots_respect_separation() {
        let (init, data) = trained(3, 43);
        let test = &data.videos[4];
        let dots = init.red_dots(&test.video.chat, test.video.meta.duration, 8);
        for i in 0..dots.len() {
            for j in (i + 1)..dots.len() {
                assert!(
                    (dots[i].at.0 - dots[j].at.0).abs() > 120.0,
                    "dots too close: {} vs {}",
                    dots[i].at,
                    dots[j].at
                );
            }
        }
    }

    #[test]
    fn red_dots_hit_highlights() {
        // The headline behaviour: most top-5 dots are good dots.
        let (init, data) = trained(3, 44);
        let test = &data.videos[3];
        let dots = init.red_dots(&test.video.chat, test.video.meta.duration, 5);
        let good = dots
            .iter()
            .filter(|d| test.video.is_good_dot(d.at, Sec(10.0)))
            .count();
        assert!(good >= 3, "only {good}/5 good dots");
    }

    #[test]
    fn scores_are_probabilities_sorted_desc() {
        let (init, data) = trained(2, 45);
        let test = &data.videos[2];
        let scored = init.score_windows(&test.video.chat, test.video.meta.duration);
        assert!(!scored.is_empty());
        for w in scored.windows(2) {
            assert!(w[0].prob >= w[1].prob);
        }
        assert!(scored.iter().all(|w| (0.0..=1.0).contains(&w.prob)));
    }

    #[test]
    fn single_training_video_works() {
        // Figure 6b / 10a: LIGHTOR achieves high precision from ONE video.
        let (init, data) = trained(1, 46);
        let test = &data.videos[1];
        let top = init.top_k_windows(&test.video.chat, test.video.meta.duration, 5);
        let hits = top
            .iter()
            .filter(|w| test.window_is_highlight(w.range))
            .count();
        assert!(hits >= 3, "1-video model got {hits}/5");
    }

    #[test]
    fn serde_round_trip() {
        let (init, data) = trained(1, 47);
        let js = serde_json::to_string(&init).unwrap();
        let back: HighlightInitializer = serde_json::from_str(&js).unwrap();
        let test = &data.videos[1];
        let a = init.red_dots(&test.video.chat, test.video.meta.duration, 5);
        let b = back.red_dots(&test.video.chat, test.video.meta.duration, 5);
        assert_eq!(a, b);
        assert_eq!(back.feature_set(), FeatureSet::Full);
        assert_eq!(back.config(), init.config());
        assert_eq!(back.model(), init.model());
    }
}
