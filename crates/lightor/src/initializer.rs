//! The Highlight Initializer (paper Section IV, Algorithm 1).
//!
//! Training fits three pieces on a handful of labelled videos:
//!
//! 1. a [`MinMaxScaler`] over the window features,
//! 2. a [`LogisticRegression`] scoring "is this window talking about a
//!    highlight?",
//! 3. the adjustment constant `c` mapping a window's message peak to a red
//!    dot (`dot = peak − c`).
//!
//! Prediction (Algorithm 1) scores every window of an unseen video, keeps
//! the top-k subject to the δ separation rule, and emits adjusted red dots.

use crate::adjust::{learn_adjustment, AdjustExample};
use crate::config::InitializerConfig;
use crate::corpus::{FeaturizedWindow, TokenizedChat};
use crate::features::{FeatureSet, WindowFeatures};
use crate::window::{sliding_windows, sliding_windows_from_ts};
use lightor_mlcore::{LogisticRegression, MinMaxScaler, TrainConfig};
use lightor_simkit::Histogram;
use lightor_types::{ChatLog, ChatLogView, Highlight, RedDot, Sec, TimeRange};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One labelled training video.
///
/// `label_ranges` are the chat regions a human labeller would mark as
/// "viewers are talking about highlight *i*" — index-aligned with
/// `highlights`. (The simulator exports its reaction-burst windows as
/// these labels.)
///
/// The chat arrives as a zero-copy [`ChatLogView`]: training tokenizes
/// straight out of the columnar buffer
/// ([`TokenizedChat::build_from_view`]), so the train path holds no
/// owned per-message `String`s end to end.
#[derive(Clone, Copy, Debug)]
pub struct TrainingVideo<'a> {
    /// The video's chat replay (zero-copy columnar view).
    pub chat: &'a ChatLogView,
    /// Total video length.
    pub duration: Sec,
    /// Ground-truth highlight clips.
    pub highlights: &'a [Highlight],
    /// Labelled chat-response region per highlight.
    pub label_ranges: &'a [TimeRange],
}

/// A scored sliding window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredWindow {
    /// The window interval.
    pub range: TimeRange,
    /// Model probability that the window discusses a highlight.
    pub prob: f64,
    /// Message-count peak position inside the window.
    pub peak: Sec,
    /// Raw (unscaled) features.
    pub features: WindowFeatures,
}

/// The trained Highlight Initializer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HighlightInitializer {
    cfg: InitializerConfig,
    feature_set: FeatureSet,
    scaler: MinMaxScaler,
    model: LogisticRegression,
    c: f64,
}

/// Locate the message-count peak inside `range` using `bin`-second bins;
/// ties resolve to the **latest** bin (`Histogram::peak_bin` semantics,
/// which the incremental `TokenizedChat` peak pass reproduces exactly —
/// keep the two in lockstep). Falls back to the range midpoint when the
/// window is empty.
pub fn window_peak(chat: &ChatLog, range: TimeRange, bin: f64) -> Sec {
    let msgs = chat.slice(range);
    peak_of_ts(msgs.iter().map(|m| m.ts.0), msgs.len(), range, bin)
}

/// [`window_peak`] over a zero-copy [`ChatLogView`].
pub fn window_peak_view(chat: &ChatLogView, range: TimeRange, bin: f64) -> Sec {
    let (lo, hi) = chat.msg_range(range);
    peak_of_ts((lo..hi).map(|i| chat.ts(i).0), hi - lo, range, bin)
}

fn peak_of_ts(ts: impl Iterator<Item = f64>, n: usize, range: TimeRange, bin: f64) -> Sec {
    if n == 0 {
        return range.midpoint();
    }
    let mut hist = Histogram::with_bin_width(range.start.0, range.end.0, bin);
    for t in ts {
        hist.add(t);
    }
    match hist.peak_bin() {
        Some(i) => Sec(hist.bin_center(i).clamp(range.start.0, range.end.0)),
        None => range.midpoint(),
    }
}

impl HighlightInitializer {
    /// Train on labelled videos (the paper uses as few as **one**).
    ///
    /// Panics if no video contributes both highlight and non-highlight
    /// windows (the logistic regression needs both classes).
    pub fn train(
        videos: &[TrainingVideo<'_>],
        feature_set: FeatureSet,
        cfg: InitializerConfig,
    ) -> Self {
        assert!(!videos.is_empty(), "need at least one training video");

        // Featurize videos in parallel; each worker runs the sequential
        // rolling pass over its video so per-video results (and their
        // concatenation order below) are identical to a serial run.
        struct PerVideo {
            rows: Vec<Vec<f64>>,
            labels: Vec<bool>,
            adjust: Vec<AdjustExample>,
        }
        let per_video: Vec<PerVideo> = videos
            .par_iter()
            .map(|v| {
                let corpus = TokenizedChat::build_from_view(v.chat);
                let windows = sliding_windows_from_ts(
                    corpus.timestamps(),
                    v.duration,
                    cfg.window_len,
                    cfg.stride_frac,
                );
                let feats = corpus.featurize_windows_chunked(&windows, cfg.peak_bin, 1);
                let mut rows = Vec::with_capacity(feats.len());
                let mut labels = Vec::with_capacity(feats.len());
                for f in &feats {
                    rows.push(feature_set.vectorize(&f.features));
                    labels.push(v.label_ranges.iter().any(|r| r.overlaps(&f.range)));
                }

                // Adjustment examples: for each labelled highlight, the
                // kept window with the most messages among those
                // overlapping its response region — the same window
                // prediction would surface. The peak comes from the same
                // rolling pass that produced the features.
                let mut adjust = Vec::new();
                for (h, label) in v.highlights.iter().zip(v.label_ranges) {
                    let best = feats
                        .iter()
                        .filter(|f| f.range.overlaps(label))
                        .max_by_key(|f| f.features.msg_num as usize);
                    if let Some(f) = best {
                        adjust.push(AdjustExample {
                            peak: f.peak,
                            highlight: *h,
                        });
                    }
                }
                PerVideo {
                    rows,
                    labels,
                    adjust,
                }
            })
            .collect();

        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut labels: Vec<bool> = Vec::new();
        let mut adjust_examples: Vec<AdjustExample> = Vec::new();
        for pv in per_video {
            rows.extend(pv.rows);
            labels.extend(pv.labels);
            adjust_examples.extend(pv.adjust);
        }

        let scaler = MinMaxScaler::fit(&rows);
        let scaled = scaler.transform_all(&rows);
        let model = LogisticRegression::fit(&scaled, &labels, &TrainConfig::default());
        let (c, _) = learn_adjustment(&adjust_examples, Sec(cfg.good_dot_tol), cfg.c_grid_max);

        HighlightInitializer {
            cfg,
            feature_set,
            scaler,
            model,
            c,
        }
    }

    /// Score every window of a video, most probable first.
    ///
    /// Tokenizes straight out of the zero-copy view; callers scoring
    /// the same chat repeatedly should build a [`TokenizedChat`]
    /// themselves and use [`HighlightInitializer::score_corpus`].
    pub fn score_windows(&self, chat: &ChatLogView, duration: Sec) -> Vec<ScoredWindow> {
        self.score_corpus(&TokenizedChat::build_from_view(chat), duration)
    }

    /// Score every window of a pre-tokenized video, most probable first.
    ///
    /// The fast path: incremental rolling featurization fanned out
    /// across threads, peaks from the same pass, then the (cheap)
    /// logistic scoring. Output is byte-identical to
    /// [`HighlightInitializer::score_windows_naive`].
    pub fn score_corpus(&self, corpus: &TokenizedChat, duration: Sec) -> Vec<ScoredWindow> {
        let windows = sliding_windows_from_ts(
            corpus.timestamps(),
            duration,
            self.cfg.window_len,
            self.cfg.stride_frac,
        );
        let feats = corpus.featurize_windows(&windows, self.cfg.peak_bin);
        self.score_featurized(feats)
    }

    /// Reference implementation of [`HighlightInitializer::score_windows`]:
    /// per-window naive featurization ([`WindowFeatures::compute`]) and
    /// per-window peak histograms. Kept as the equivalence oracle for
    /// the incremental path (property-tested to produce identical
    /// output) and as the baseline side of the featurization benches.
    pub fn score_windows_naive(&self, chat: &ChatLog, duration: Sec) -> Vec<ScoredWindow> {
        let windows = sliding_windows(chat, duration, self.cfg.window_len, self.cfg.stride_frac);
        let feats = windows
            .into_iter()
            .map(|range| FeaturizedWindow {
                range,
                features: WindowFeatures::compute(chat.slice(range)),
                peak: window_peak(chat, range, self.cfg.peak_bin),
            })
            .collect();
        self.score_featurized(feats)
    }

    fn score_featurized(&self, feats: Vec<FeaturizedWindow>) -> Vec<ScoredWindow> {
        let mut scored: Vec<ScoredWindow> = feats
            .into_iter()
            .map(|f| {
                let row = self
                    .scaler
                    .transform(&self.feature_set.vectorize(&f.features));
                ScoredWindow {
                    range: f.range,
                    prob: self.model.predict_proba(&row),
                    peak: f.peak,
                    features: f.features,
                }
            })
            .collect();
        scored.sort_by(|a, b| {
            b.prob
                .total_cmp(&a.prob)
                .then(a.range.start.total_cmp(&b.range.start))
        });
        scored
    }

    /// Top-k windows subject to the δ separation rule on their (adjusted)
    /// dot positions — Algorithm 1's `Top` with "no too-close highlights".
    ///
    /// Builds the corpus internally; repeated calls on the same chat
    /// should prefer [`HighlightInitializer::top_k_windows_corpus`].
    pub fn top_k_windows(&self, chat: &ChatLogView, duration: Sec, k: usize) -> Vec<ScoredWindow> {
        self.top_k_windows_corpus(&TokenizedChat::build_from_view(chat), duration, k)
    }

    /// [`HighlightInitializer::top_k_windows`] over a pre-tokenized
    /// corpus — the serving path's hook: a cached [`TokenizedChat`]
    /// makes warm re-scores skip tokenization entirely.
    pub fn top_k_windows_corpus(
        &self,
        corpus: &TokenizedChat,
        duration: Sec,
        k: usize,
    ) -> Vec<ScoredWindow> {
        let mut chosen: Vec<ScoredWindow> = Vec::with_capacity(k);
        for w in self.score_corpus(corpus, duration) {
            let dot = self.dot_for(&w);
            if chosen
                .iter()
                .all(|c| (self.dot_for(c).0 - dot.0).abs() > self.cfg.min_separation)
            {
                chosen.push(w);
                if chosen.len() == k {
                    break;
                }
            }
        }
        chosen
    }

    /// Algorithm 1 end-to-end: the top-k red dots of a video.
    ///
    /// Builds the corpus internally; repeated calls on the same chat
    /// should prefer [`HighlightInitializer::red_dots_corpus`].
    pub fn red_dots(&self, chat: &ChatLogView, duration: Sec, k: usize) -> Vec<RedDot> {
        self.red_dots_corpus(&TokenizedChat::build_from_view(chat), duration, k)
    }

    /// [`HighlightInitializer::red_dots`] over a pre-tokenized corpus.
    pub fn red_dots_corpus(&self, corpus: &TokenizedChat, duration: Sec, k: usize) -> Vec<RedDot> {
        self.top_k_windows_corpus(corpus, duration, k)
            .into_iter()
            .map(|w| RedDot::new(self.dot_for(&w).max(Sec::ZERO), w.prob))
            .collect()
    }

    fn dot_for(&self, w: &ScoredWindow) -> Sec {
        w.peak - Sec(self.c)
    }

    /// The learned adjustment constant `c`.
    pub fn adjustment(&self) -> f64 {
        self.c
    }

    /// The feature set this model scores with.
    pub fn feature_set(&self) -> FeatureSet {
        self.feature_set
    }

    /// The configuration in force.
    pub fn config(&self) -> &InitializerConfig {
        &self.cfg
    }

    /// The fitted window classifier (weights inspectable in reports).
    pub fn model(&self) -> &LogisticRegression {
        &self.model
    }

    /// Construct from previously trained parts (deserialization path).
    pub fn from_parts(
        cfg: InitializerConfig,
        feature_set: FeatureSet,
        scaler: MinMaxScaler,
        model: LogisticRegression,
        c: f64,
    ) -> Self {
        HighlightInitializer {
            cfg,
            feature_set,
            scaler,
            model,
            c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_chatsim::{dota2_dataset, SimVideo};

    fn training_view(v: &SimVideo) -> TrainingVideo<'_> {
        TrainingVideo {
            chat: &v.video.chat,
            duration: v.video.meta.duration,
            highlights: &v.video.highlights,
            label_ranges: &v.response_ranges,
        }
    }

    fn trained(n_train: usize, seed: u64) -> (HighlightInitializer, lightor_chatsim::Dataset) {
        let data = dota2_dataset(n_train + 2, seed);
        let views: Vec<TrainingVideo> = data.videos[..n_train].iter().map(training_view).collect();
        let init =
            HighlightInitializer::train(&views, FeatureSet::Full, InitializerConfig::default());
        (init, data)
    }

    #[test]
    fn window_peak_finds_burst() {
        use lightor_types::{ChatMessage, UserId};
        let chat = ChatLog::new(
            [10.0, 11.0, 12.0, 12.5, 13.0, 20.0]
                .iter()
                .map(|&t| ChatMessage::new(t, UserId(1), "x"))
                .collect(),
        );
        let p = window_peak(&chat, TimeRange::from_secs(0.0, 25.0), 5.0);
        assert!((10.0..15.0).contains(&p.0), "peak {p}");
        // Empty window: midpoint fallback.
        let p2 = window_peak(&ChatLog::empty(), TimeRange::from_secs(0.0, 10.0), 5.0);
        assert_eq!(p2.0, 5.0);
    }

    #[test]
    fn learned_adjustment_in_paper_band() {
        // Figure 7b: c stays within 23–27 s across training sizes. Our
        // generator's delays produce a compatible band; assert the looser
        // physical range.
        let (init, _) = trained(3, 41);
        let c = init.adjustment();
        assert!((15.0..=35.0).contains(&c), "c = {c}");
    }

    #[test]
    fn top_windows_are_mostly_highlight_windows() {
        let (init, data) = trained(3, 42);
        let test = &data.videos[3];
        let top = init.top_k_windows(&test.video.chat, test.video.meta.duration, 5);
        assert_eq!(top.len(), 5);
        let hits = top
            .iter()
            .filter(|w| test.window_is_highlight(w.range))
            .count();
        assert!(hits >= 3, "only {hits}/5 top windows are highlights");
    }

    #[test]
    fn red_dots_respect_separation() {
        let (init, data) = trained(3, 43);
        let test = &data.videos[4];
        let dots = init.red_dots(&test.video.chat, test.video.meta.duration, 8);
        for i in 0..dots.len() {
            for j in (i + 1)..dots.len() {
                assert!(
                    (dots[i].at.0 - dots[j].at.0).abs() > 120.0,
                    "dots too close: {} vs {}",
                    dots[i].at,
                    dots[j].at
                );
            }
        }
    }

    #[test]
    fn red_dots_hit_highlights() {
        // The headline behaviour: most top-5 dots are good dots.
        let (init, data) = trained(3, 44);
        let test = &data.videos[3];
        let dots = init.red_dots(&test.video.chat, test.video.meta.duration, 5);
        let good = dots
            .iter()
            .filter(|d| test.video.is_good_dot(d.at, Sec(10.0)))
            .count();
        assert!(good >= 3, "only {good}/5 good dots");
    }

    #[test]
    fn scores_are_probabilities_sorted_desc() {
        let (init, data) = trained(2, 45);
        let test = &data.videos[2];
        let scored = init.score_windows(&test.video.chat, test.video.meta.duration);
        assert!(!scored.is_empty());
        for w in scored.windows(2) {
            assert!(w[0].prob >= w[1].prob);
        }
        assert!(scored.iter().all(|w| (0.0..=1.0).contains(&w.prob)));
    }

    #[test]
    fn single_training_video_works() {
        // Figure 6b / 10a: LIGHTOR achieves high precision from ONE video.
        let (init, data) = trained(1, 46);
        let test = &data.videos[1];
        let top = init.top_k_windows(&test.video.chat, test.video.meta.duration, 5);
        let hits = top
            .iter()
            .filter(|w| test.window_is_highlight(w.range))
            .count();
        assert!(hits >= 3, "1-video model got {hits}/5");
    }

    #[test]
    fn fast_path_matches_naive_reference_exactly() {
        // The incremental corpus path must be *bit-identical* to the
        // retained naive reference — scored windows carry the features,
        // peaks and probabilities, and `red_dots` is a deterministic
        // function of them, so equality here proves the end-to-end
        // output is unchanged through either path.
        let (init, data) = trained(2, 48);
        for sv in &data.videos {
            let chat = &sv.video.chat;
            let dur = sv.video.meta.duration;
            let fast = init.score_windows(chat, dur);
            let naive = init.score_windows_naive(&chat.to_chat_log(), dur);
            assert_eq!(fast, naive, "scored windows diverge");
            assert!(!fast.is_empty());
        }
    }

    #[test]
    fn scoring_is_thread_count_independent() {
        let (init, data) = trained(2, 49);
        let sv = &data.videos[2];
        let tc = TokenizedChat::build_from_view(&sv.video.chat);
        let windows = sliding_windows_from_ts(
            tc.timestamps(),
            sv.video.meta.duration,
            init.config().window_len,
            init.config().stride_frac,
        );
        let base = tc.featurize_windows_chunked(&windows, init.config().peak_bin, 1);
        for chunks in [2, 4, 7, 16] {
            let alt = tc.featurize_windows_chunked(&windows, init.config().peak_bin, chunks);
            assert_eq!(alt, base, "chunks = {chunks}");
        }
        // And the public scoring API (which picks its own chunking from
        // the thread pool) agrees with the single-chunk pass.
        let scored = init.score_corpus(&tc, sv.video.meta.duration);
        let naive = init.score_windows_naive(&sv.video.chat.to_chat_log(), sv.video.meta.duration);
        assert_eq!(scored, naive);
    }

    #[test]
    fn serde_round_trip() {
        let (init, data) = trained(1, 47);
        let js = serde_json::to_string(&init).unwrap();
        let back: HighlightInitializer = serde_json::from_str(&js).unwrap();
        let test = &data.videos[1];
        let a = init.red_dots(&test.video.chat, test.video.meta.duration, 5);
        let b = back.red_dots(&test.video.chat, test.video.meta.duration, 5);
        assert_eq!(a, b);
        assert_eq!(back.feature_set(), FeatureSet::Full);
        assert_eq!(back.config(), init.config());
        assert_eq!(back.model(), init.model());
    }
}
