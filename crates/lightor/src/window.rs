//! Sliding-window generation over a chat log (Algorithm 1, line 1).
//!
//! Candidate windows of length `l` are laid out with a stride of
//! `stride_frac * l`, so neighbouring candidates overlap. "When two
//! sliding windows have an overlap, we keep the one with more messages" —
//! resolved greedily from the most populated window down, which anchors
//! windows on chat bursts instead of an arbitrary grid phase.

use lightor_types::{ChatLog, Sec, TimeRange};
use std::collections::BTreeMap;

/// Generate the non-overlapping window set for a video.
///
/// Returns windows sorted by start time. Windows with zero messages are
/// kept (they are trivially non-highlights and the classifier needs the
/// full negative distribution at training time).
pub fn sliding_windows(
    chat: &ChatLog,
    video_len: Sec,
    window_len: f64,
    stride_frac: f64,
) -> Vec<TimeRange> {
    // One O(n) timestamp copy buys two-pointer candidate counting below;
    // callers holding a `TokenizedChat` skip it via
    // [`sliding_windows_from_ts`].
    let ts: Vec<f64> = chat.messages().iter().map(|m| m.ts.0).collect();
    sliding_windows_from_ts(&ts, video_len, window_len, stride_frac)
}

/// [`sliding_windows`] over a pre-extracted sorted timestamp slice
/// (e.g. `TokenizedChat::timestamps()`).
///
/// Candidate message counts use two monotone pointers (O(1) amortized
/// per candidate instead of a binary search each), and greedy overlap
/// resolution maintains the kept set as a start-ordered interval map:
/// a candidate can only overlap its predecessor or successor there, so
/// each acceptance check is O(log kept) instead of O(kept) — long
/// videos stay near O(n log n) overall.
pub fn sliding_windows_from_ts(
    ts: &[f64],
    video_len: Sec,
    window_len: f64,
    stride_frac: f64,
) -> Vec<TimeRange> {
    assert!(window_len > 0.0, "window length must be positive");
    assert!(
        (0.0..=1.0).contains(&stride_frac) && stride_frac > 0.0,
        "stride fraction must be in (0, 1]"
    );
    let len = video_len.0;
    if len <= 0.0 {
        return Vec::new();
    }
    let stride = window_len * stride_frac;

    // Candidate windows with counts. Successive candidates move both
    // endpoints forward, so two monotone pointers replace per-candidate
    // binary searches: `lo` = first message with ts >= start, `hi` =
    // first with ts > end (inclusive-end slice semantics).
    let mut candidates: Vec<(TimeRange, usize)> = Vec::new();
    let (mut lo, mut hi) = (0usize, 0usize);
    let mut t = 0.0;
    while t < len {
        let range = TimeRange::from_secs(t, (t + window_len).min(len));
        while lo < ts.len() && ts[lo] < range.start.0 {
            lo += 1;
        }
        if hi < lo {
            hi = lo;
        }
        while hi < ts.len() && ts[hi] <= range.end.0 {
            hi += 1;
        }
        candidates.push((range, hi - lo));
        t += stride;
    }

    // Greedy overlap resolution: most messages first; ties earlier-first
    // (deterministic).
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| {
        candidates[b]
            .1
            .cmp(&candidates[a].1)
            .then(candidates[a].0.start.total_cmp(&candidates[b].0.start))
    });

    // Kept windows are pairwise disjoint, so ordering them by start in a
    // BTreeMap (start-bits key: starts are non-negative finite, where
    // IEEE bit order equals numeric order) means a candidate can only
    // overlap the nearest kept window on each side. Touching endpoints
    // (shared boundary instant) are not a real overlap, hence the strict
    // comparisons.
    let mut kept: BTreeMap<u64, TimeRange> = BTreeMap::new();
    for i in order {
        let (range, _) = candidates[i];
        let key = range.start.0.to_bits();
        let pred_overlaps = kept
            .range(..=key)
            .next_back()
            .is_some_and(|(_, k)| k.end.0 > range.start.0);
        let succ_overlaps = kept
            .range(key..)
            .next()
            .is_some_and(|(_, k)| k.start.0 < range.end.0);
        if !pred_overlaps && !succ_overlaps {
            kept.insert(key, range);
        }
    }
    kept.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_types::{ChatMessage, UserId};
    use proptest::prelude::*;

    fn chat_at(times: &[f64]) -> ChatLog {
        ChatLog::new(
            times
                .iter()
                .map(|&t| ChatMessage::new(t, UserId(1), "x"))
                .collect(),
        )
    }

    #[test]
    fn empty_video_has_no_windows() {
        assert!(sliding_windows(&ChatLog::empty(), Sec(0.0), 25.0, 0.5).is_empty());
    }

    #[test]
    fn windows_are_sorted_and_disjoint() {
        let chat = chat_at(&[10.0, 12.0, 40.0, 41.0, 42.0, 90.0]);
        let wins = sliding_windows(&chat, Sec(120.0), 25.0, 0.5);
        for w in wins.windows(2) {
            assert!(w[0].start.0 <= w[1].start.0);
            assert_eq!(w[0].overlap_len(&w[1]).0, 0.0, "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn burst_window_is_kept_over_grid_phase() {
        // A burst at 30..35 s. The candidate [25, 50] holds all 5 messages;
        // it must survive overlap resolution over [12.5, 37.5] etc.
        let chat = chat_at(&[30.0, 31.0, 32.0, 33.0, 34.0]);
        let wins = sliding_windows(&chat, Sec(100.0), 25.0, 0.5);
        let best = wins.iter().max_by_key(|w| chat.count_in(**w)).unwrap();
        assert_eq!(chat.count_in(*best), 5, "burst split across windows");
    }

    #[test]
    fn full_coverage_without_stride_gaps() {
        // With stride = len the windows tile the video exactly.
        let chat = chat_at(&[]);
        let wins = sliding_windows(&chat, Sec(100.0), 25.0, 1.0);
        assert_eq!(wins.len(), 4);
        assert_eq!(wins[0], TimeRange::from_secs(0.0, 25.0));
        assert_eq!(wins[3], TimeRange::from_secs(75.0, 100.0));
    }

    #[test]
    fn tail_window_is_clipped() {
        let wins = sliding_windows(&ChatLog::empty(), Sec(30.0), 25.0, 1.0);
        assert_eq!(wins.last().unwrap().end.0, 30.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        sliding_windows(&ChatLog::empty(), Sec(10.0), 0.0, 0.5);
    }

    proptest! {
        #[test]
        fn kept_windows_never_overlap(
            times in proptest::collection::vec(0.0..500.0f64, 0..100),
            window in 10.0..40.0f64,
        ) {
            let chat = chat_at(&times);
            let wins = sliding_windows(&chat, Sec(500.0), window, 0.5);
            for i in 0..wins.len() {
                for j in (i + 1)..wins.len() {
                    prop_assert_eq!(wins[i].overlap_len(&wins[j]).0, 0.0);
                }
            }
        }

        #[test]
        fn every_message_lands_in_some_candidate(
            times in proptest::collection::vec(0.0..200.0f64, 1..40),
        ) {
            // The kept set need not cover every message, but no window may
            // extend past the video and all have the requested length or
            // less (tail clipping).
            let chat = chat_at(&times);
            let wins = sliding_windows(&chat, Sec(200.0), 25.0, 0.5);
            for w in &wins {
                prop_assert!(w.start.0 >= 0.0 && w.end.0 <= 200.0);
                prop_assert!(w.duration().0 <= 25.0 + 1e-9);
            }
        }
    }
}
